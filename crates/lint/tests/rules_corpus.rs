//! Corpus tests for the rule engine: each case feeds a small synthetic
//! source file through `analyze_file` (under a path that places it in or
//! out of the guarded module lists) and checks exactly which findings
//! fire. Wirecheck cases build a synthetic workspace in the cargo test
//! tmpdir so the golden-fixture geometry checks run against real bytes.

use tac_lint::rules::{analyze_file, FileAnalysis};
use tac_lint::wirecheck::wire_checks;

/// A decode-path module path (R1 + R2 both apply).
const DECODE: &str = "crates/sz/src/compress.rs";
/// A path outside every guarded list.
const PLAIN: &str = "crates/bench/src/lib.rs";

fn rules_fired(path: &str, src: &str) -> Vec<(&'static str, u32)> {
    analyze_file(path, src)
        .violations
        .iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn panic_constructs_fire_only_in_decode_modules() {
    let src = r#"
fn f(v: &[u8]) -> u8 {
    let a = v.first().unwrap();
    let b = v.first().expect("x");
    if *a > 1 { panic!("no"); }
    if *b > 1 { unreachable!(); }
    v[0]
}
"#;
    let fired = rules_fired(DECODE, src);
    let panics: Vec<u32> = fired
        .iter()
        .filter(|(r, _)| *r == "panic")
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(panics, vec![3, 4, 5, 6, 7], "{fired:?}");
    // The same source outside the decode list is clean.
    assert!(rules_fired(PLAIN, src).is_empty());
}

#[test]
fn indexing_after_call_and_try_is_flagged() {
    let src = r#"
fn f(v: &[u8], w: &[&[u8]]) -> u8 {
    let a = v.get(0..2).unwrap_or_default()[0];
    let b = inner(v)?[1];
    w[0][1]
}
"#;
    let panics = rules_fired(DECODE, src)
        .iter()
        .filter(|(r, _)| *r == "panic")
        .count();
    // `)[`, `?[`, `w[` and the chained `][` all count.
    assert_eq!(panics, 4);
}

#[test]
fn cfg_test_regions_and_test_paths_are_exempt() {
    let src = r#"
fn ok(v: &[u8]) -> Option<u8> { v.first().copied() }

#[cfg(test)]
mod tests {
    fn helper(v: &[u8]) -> u8 { v[0] }
    #[test]
    fn t() { assert_eq!(helper(&[3]).unwrap(), 3); }
}
"#;
    assert!(rules_fired(DECODE, src).is_empty());
    // An integration-test path is exempt wholesale.
    let bad = "fn f(v: &[u8]) -> u8 { v[0] }";
    assert!(rules_fired("crates/sz/tests/compress.rs", bad).is_empty());
    assert!(!rules_fired(DECODE, bad).is_empty());
}

#[test]
fn arith_flags_narrowing_casts_and_len_flavored_ops() {
    let src = r#"
fn f(pos: usize, n: usize, data: &[u8]) -> usize {
    let a = pos as u32;
    let b = pos + 4;
    let c = n * 12;
    let d = data.len() + 1;
    let e = a as u64;
    b + c + d + e as usize
}
"#;
    let arith: Vec<u32> = rules_fired(DECODE, src)
        .iter()
        .filter(|(r, _)| *r == "arith")
        .map(|&(_, l)| l)
        .collect();
    // line 3: narrowing cast; 4/5/6: unchecked ops on len-flavoured
    // operands (`pos`, exact-name `n`, and the `.len()` call). Lines
    // 7-8 are clean: `as u64`/`as usize` widen, and none of b/c/d/e is
    // len-flavoured.
    assert_eq!(arith, vec![3, 4, 5, 6]);
}

#[test]
fn checked_arithmetic_and_widening_casts_are_clean() {
    let src = r#"
fn f(pos: usize, len: usize) -> Option<usize> {
    let end = pos.checked_add(len)?;
    let wide = len as u64;
    let total = end.checked_mul(8)?;
    Some(total.max(wide as usize))
}
"#;
    assert!(rules_fired(DECODE, src).is_empty());
}

#[test]
fn same_line_suppression_covers_one_line() {
    let src = r#"
fn f(v: &[u8]) -> u8 {
    let a = v[0]; // tac-lint: allow(panic) -- structurally in bounds
    v[1]
}
"#;
    let fa = analyze_file(DECODE, src);
    let panics: Vec<u32> = fa
        .violations
        .iter()
        .filter(|v| v.rule == "panic")
        .map(|v| v.line)
        .collect();
    assert_eq!(panics, vec![4], "only the unsuppressed line fires");
    assert!(fa.suppressions.iter().all(|s| s.used));
}

#[test]
fn own_line_suppression_covers_the_following_fn_body() {
    let src = r#"
// tac-lint: allow(panic, arith) -- encoder-side; inputs are in-memory
fn encoder(v: &[u8], pos: usize) -> u8 {
    let x = pos + 4;
    v[x]
}

fn decoder(v: &[u8]) -> u8 {
    v[0]
}
"#;
    let fa = analyze_file(DECODE, src);
    let lines: Vec<u32> = fa.violations.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![9], "only the second fn fires");
}

#[test]
fn malformed_suppressions_are_themselves_findings() {
    for (src, what) in [
        (
            "// tac-lint: allow(panic)\nfn f() {}",
            "missing justification",
        ),
        (
            "// tac-lint: allow(bogus) -- why\nfn f() {}",
            "unknown rule",
        ),
        ("// tac-lint: deny(panic) -- why\nfn f() {}", "not allow()"),
        (
            "// tac-lint: allow(unsafe) -- why\nfn f() {}",
            "unsafe is not comment-suppressible",
        ),
        (
            "// tac-lint: allow(suppress) -- why\nfn f() {}",
            "suppress cannot excuse itself",
        ),
    ] {
        let fa = analyze_file(PLAIN, src);
        assert!(
            fa.violations.iter().any(|v| v.rule == "suppress"),
            "{what}: {src}"
        );
    }
}

#[test]
fn doc_comments_mentioning_the_syntax_are_not_suppressions() {
    let src = r#"
/// tac-lint: allow(panic) -- this is documentation, not a directive
fn f(v: &[u8]) -> u8 {
    v[0]
}
"#;
    let fa = analyze_file(DECODE, src);
    assert!(fa.suppressions.is_empty());
    assert_eq!(fa.violations.len(), 1);
    assert_eq!(fa.violations[0].rule, "panic");
}

#[test]
fn unsafe_is_flagged_everywhere_and_cannot_be_suppressed() {
    let src = r#"
// tac-lint: allow(panic) -- irrelevant
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    // Even in a module outside every list, and even inside cfg(test).
    let fa = analyze_file(PLAIN, src);
    assert_eq!(
        fa.violations.iter().filter(|v| v.rule == "unsafe").count(),
        1
    );
    let test_src = "#[cfg(test)]\nmod t { fn g(p: *const u8) -> u8 { unsafe { *p } } }";
    let fa = analyze_file(PLAIN, test_src);
    assert_eq!(
        fa.violations.iter().filter(|v| v.rule == "unsafe").count(),
        1
    );
}

#[test]
fn discarded_span_guards_are_flagged_everywhere() {
    // `let _ =` drops the RAII guard at the end of the statement: the
    // span times an empty scope. Fires even outside the guarded module
    // lists — instrumentation lives in every crate.
    let src = r#"
fn f() {
    let _ = span(Stage::Encode);
    let _ = tac_obs::span(Stage::Plan).arg("k", 1usize);
}
"#;
    let fired = rules_fired(PLAIN, src);
    let spans: Vec<u32> = fired
        .iter()
        .filter(|(r, _)| *r == "span")
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(spans, vec![3, 4], "{fired:?}");
}

#[test]
fn live_span_bindings_and_unrelated_discards_are_clean() {
    let src = r#"
fn f() {
    let _guard = span(Stage::Encode);
    let _plan = tac_obs::span(Stage::Plan);
    let _ = now_ns();
    let _ = RECORDER.set(s);
    let _ = write!(out, "x");
    let _ = keeps_alive(span(Stage::Pack));
    drop(_plan);
}
"#;
    let fired = rules_fired(PLAIN, src);
    assert!(
        fired.iter().all(|(r, _)| *r != "span"),
        "false positives: {fired:?}"
    );
}

#[test]
fn span_misuse_in_test_code_is_exempt_and_suppressible_elsewhere() {
    let in_test = r#"
#[cfg(test)]
mod tests {
    fn t() { let _ = span(Stage::Encode); }
}
"#;
    assert!(rules_fired(PLAIN, in_test).is_empty());

    let suppressed = r#"
fn f() {
    let _ = span(Stage::Encode); // tac-lint: allow(span) -- intentionally zero-width marker
}
"#;
    let fa = analyze_file(PLAIN, suppressed);
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
    assert!(fa.suppressions.iter().all(|s| s.used));
}

#[test]
fn consts_are_collected_with_literal_values() {
    let src = r#"
pub const MAGIC: [u8; 4] = *b"ABCD";
pub const VERSION: u8 = 3;
const NOT_LITERAL: usize = 4 + 4;
#[cfg(test)]
mod tests {
    const IN_TEST: u8 = 9;
}
"#;
    let fa = analyze_file(PLAIN, src);
    let get = |n: &str| fa.consts.iter().find(|c| c.name == n);
    assert_eq!(
        get("MAGIC").and_then(|c| c.bytes.clone()),
        Some(b"ABCD".to_vec())
    );
    assert_eq!(get("VERSION").and_then(|c| c.int), Some(3));
    assert_eq!(get("NOT_LITERAL").and_then(|c| c.int), None);
    assert!(get("IN_TEST").is_none(), "test consts are not collected");
}

// ---------------------------------------------------------------------
// R3 wirecheck over a synthetic workspace.
// ---------------------------------------------------------------------

/// Sources for a minimal, fully conformant wire-constant layout.
fn good_sources() -> Vec<(&'static str, String)> {
    vec![
        (
            "crates/core/src/container.rs",
            r#"
pub const MAGIC: &[u8; 4] = b"WCT1";
const VERSION_V1: u8 = 1;
const VERSION_V2: u8 = 2;
const VERSION_V3: u8 = 3;
const VERSION_V4: u8 = 4;
pub const CHUNK_ROW_BYTES_V2: usize = 41;
pub const CHUNK_ROW_BYTES_V3: usize = 42;
pub const CHUNK_ROW_BYTES_V4: usize = 43;
"#
            .to_string(),
        ),
        (
            "crates/core/src/stream.rs",
            "const TAG_A: u8 = 0;\nconst TAG_B: u8 = 1;\n\
             const TAG_EMPTY_F32: u8 = 5;\nconst TAG_WHOLE_F32: u8 = 6;\n\
             const TAG_GROUPS_F32: u8 = 7;\n"
                .to_string(),
        ),
        (
            "crates/sz/src/container.rs",
            "pub const MAGIC: [u8; 4] = *b\"WSZ1\";\npub const VERSION: u8 = 1;\n".to_string(),
        ),
        (
            "crates/codec/src/pco.rs",
            "pub const MAGIC: [u8; 4] = *b\"WPC1\";\npub const VERSION: u8 = 1;\n".to_string(),
        ),
        (
            "crates/codec/src/pco_ans.rs",
            "pub const MAGIC: [u8; 4] = *b\"WPA1\";\npub const VERSION: u8 = 1;\n\
             const PAGE: usize = 4096;\n"
                .to_string(),
        ),
        (
            "crates/codec/src/ans.rs",
            "const TABLE_BITS: u32 = 11;\nconst TABLE_SIZE: usize = 2048;\n".to_string(),
        ),
    ]
}

fn analyses_of(sources: &[(&'static str, String)]) -> Vec<FileAnalysis> {
    sources.iter().map(|(p, s)| analyze_file(p, s)).collect()
}

/// A chunked fixture with exact geometry:
/// `table_pos + 4 + rows*row + 8 == len`.
fn fixture_bytes(version: u8, rows: usize, row: usize) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(b"WCT1");
    b.push(version);
    b.push(0x00); // method tag
    b.push(0x01); // dtype tag (checked for v4 headers; noise otherwise)
    b.extend_from_slice(&[0xEE; 8]); // fake header/payload
    let table_pos = b.len() as u64;
    b.extend_from_slice(&(rows as u32).to_le_bytes());
    b.extend(std::iter::repeat(0u8).take(rows * row));
    b.extend_from_slice(&table_pos.to_le_bytes());
    b
}

/// Builds `root/tests/data` holding the given fixtures.
fn temp_root(name: &str, fixtures: &[(&str, Vec<u8>)]) -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let data = root.join("tests").join("data");
    std::fs::create_dir_all(&data).unwrap();
    // Clear fixtures from earlier runs of other cases under this name.
    for entry in std::fs::read_dir(&data).unwrap().flatten() {
        std::fs::remove_file(entry.path()).ok();
    }
    for (file, bytes) in fixtures {
        std::fs::write(data.join(file), bytes).unwrap();
    }
    root
}

#[test]
fn conformant_constants_and_fixtures_pass_wirecheck() {
    let root = temp_root(
        "wc_good",
        &[
            ("a.tacd", fixture_bytes(2, 3, 41)),
            ("b.tacd", fixture_bytes(3, 1, 42)),
            ("c.tacd", fixture_bytes(4, 2, 43)),
        ],
    );
    let v = wire_checks(&root, &analyses_of(&good_sources()));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn geometry_mismatch_is_reported() {
    // v2 fixture written with 42-byte rows: the file length no longer
    // matches `table_pos + 4 + rows*41 + 8`.
    let root = temp_root("wc_geom", &[("bad.tacd", fixture_bytes(2, 3, 42))]);
    let v = wire_checks(&root, &analyses_of(&good_sources()));
    assert!(
        v.iter().any(|x| x.message.contains("geometry mismatch")),
        "{v:?}"
    );
}

#[test]
fn missing_fixtures_are_a_finding() {
    let root = temp_root("wc_nofix", &[]);
    let v = wire_checks(&root, &analyses_of(&good_sources()));
    assert!(v.iter().any(|x| x.message.contains("no golden")), "{v:?}");
}

#[test]
fn duplicated_magic_literal_is_reported() {
    let mut sources = good_sources();
    sources.push((
        "crates/core/src/other.rs",
        "fn f(b: &[u8]) -> bool { b == b\"WCT1\" }\n".to_string(),
    ));
    let root = temp_root("wc_dupmagic", &[("a.tacd", fixture_bytes(2, 1, 41))]);
    let v = wire_checks(&root, &analyses_of(&sources));
    assert!(v.iter().any(|x| x.message.contains("duplicated")), "{v:?}");
}

#[test]
fn wrong_row_size_relation_is_reported() {
    let mut sources = good_sources();
    sources[0].1 = sources[0].1.replace("V3: usize = 42", "V3: usize = 44");
    let root = temp_root("wc_rowrel", &[("a.tacd", fixture_bytes(2, 1, 41))]);
    let v = wire_checks(&root, &analyses_of(&sources));
    assert!(
        v.iter()
            .any(|x| x.message.contains("must be CHUNK_ROW_BYTES_V2")),
        "{v:?}"
    );
}

#[test]
fn wrong_v4_row_size_relation_is_reported() {
    let mut sources = good_sources();
    sources[0].1 = sources[0].1.replace("V4: usize = 43", "V4: usize = 45");
    let root = temp_root("wc_rowrel4", &[("a.tacd", fixture_bytes(2, 1, 41))]);
    let v = wire_checks(&root, &analyses_of(&sources));
    assert!(
        v.iter()
            .any(|x| x.message.contains("must be CHUNK_ROW_BYTES_V3")),
        "{v:?}"
    );
}

#[test]
fn missing_f32_level_tags_are_reported() {
    let mut sources = good_sources();
    sources[1].1 = "const TAG_A: u8 = 0;\nconst TAG_B: u8 = 1;\n".to_string();
    let root = temp_root("wc_nof32tags", &[("a.tacd", fixture_bytes(2, 1, 41))]);
    let v = wire_checks(&root, &analyses_of(&sources));
    for name in ["TAG_EMPTY_F32", "TAG_WHOLE_F32", "TAG_GROUPS_F32"] {
        assert!(v.iter().any(|x| x.message.contains(name)), "{v:?}");
    }
}

#[test]
fn v4_fixture_with_unknown_dtype_tag_is_reported() {
    let mut fixture = fixture_bytes(4, 1, 43);
    fixture[6] = 9; // not a known element-type tag
    let root = temp_root("wc_baddtype", &[("a.tacd", fixture)]);
    let v = wire_checks(&root, &analyses_of(&good_sources()));
    assert!(
        v.iter()
            .any(|x| x.message.contains("not a known element type")),
        "{v:?}"
    );
}

#[test]
fn v4_geometry_mismatch_is_reported() {
    // v4 fixture written with v3-size rows: the dtype byte is missing
    // from every row, so the length check must fire.
    let root = temp_root("wc_geom4", &[("bad.tacd", fixture_bytes(4, 3, 42))]);
    let v = wire_checks(&root, &analyses_of(&good_sources()));
    assert!(
        v.iter().any(|x| x.message.contains("geometry mismatch")),
        "{v:?}"
    );
}

#[test]
fn bare_row_size_literal_is_reported() {
    let mut sources = good_sources();
    sources.push((
        "crates/core/src/roi.rs",
        "fn f(pos: usize) -> usize { pos.checked_add(41).unwrap_or(0) }\n".to_string(),
    ));
    let root = temp_root("wc_bareint", &[("a.tacd", fixture_bytes(2, 1, 41))]);
    let v = wire_checks(&root, &analyses_of(&sources));
    assert!(
        v.iter().any(|x| x.message.contains("bare chunk-row size")),
        "{v:?}"
    );
}

#[test]
fn ans_table_geometry_mismatch_is_reported() {
    let mut sources = good_sources();
    let ans = sources
        .iter_mut()
        .find(|(p, _)| p.ends_with("crates/codec/src/ans.rs"))
        .unwrap();
    ans.1 = "const TABLE_BITS: u32 = 11;\nconst TABLE_SIZE: usize = 4096;\n".to_string();
    let root = temp_root("wc_anstable", &[("a.tacd", fixture_bytes(2, 1, 41))]);
    let v = wire_checks(&root, &analyses_of(&sources));
    assert!(
        v.iter()
            .any(|x| x.message.contains("must equal 1 << TABLE_BITS")),
        "{v:?}"
    );
}

#[test]
fn bare_ans_wire_size_literal_is_reported() {
    let mut sources = good_sources();
    let pco_ans = sources
        .iter_mut()
        .find(|(p, _)| p.ends_with("crates/codec/src/pco_ans.rs"))
        .unwrap();
    // A second, bare use of the page size (2048 likewise covered).
    pco_ans
        .1
        .push_str("fn f(n: usize) -> usize { n.div_ceil(4096) }\n");
    let root = temp_root("wc_ansbare", &[("a.tacd", fixture_bytes(2, 1, 41))]);
    let v = wire_checks(&root, &analyses_of(&sources));
    assert!(
        v.iter().any(|x| x.message.contains("bare ANS wire size")),
        "{v:?}"
    );
}

#[test]
fn duplicate_tag_values_are_reported() {
    let mut sources = good_sources();
    sources[1].1 = "const TAG_A: u8 = 0;\nconst TAG_B: u8 = 0;\n".to_string();
    let root = temp_root("wc_tags", &[("a.tacd", fixture_bytes(2, 1, 41))]);
    let v = wire_checks(&root, &analyses_of(&sources));
    assert!(
        v.iter().any(|x| x.message.contains("duplicates the value")),
        "{v:?}"
    );
}

// ---------------------------------------------------------------------
// The binary: exit codes and the JSON report.
// ---------------------------------------------------------------------

#[test]
fn deny_mode_fails_on_violations_and_passes_when_clean() {
    use std::process::Command;
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_ws");
    // A self-consistent miniature workspace: the wirecheck module files
    // with conformant constants, plus one valid chunked fixture —
    // otherwise R3 reports the modules as missing and `--deny` could
    // never pass.
    for (rel, src) in good_sources() {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, src).unwrap();
    }
    std::fs::create_dir_all(root.join("tests").join("data")).unwrap();
    std::fs::write(
        root.join("tests").join("data").join("a.tacd"),
        fixture_bytes(2, 2, 41),
    )
    .unwrap();
    let file = root
        .join("crates")
        .join("sz")
        .join("src")
        .join("compress.rs");
    std::fs::create_dir_all(file.parent().unwrap()).unwrap();
    let json = root.join("LINT.json");

    // One decode-path panic: --deny must exit non-zero and still write
    // the report.
    std::fs::write(&file, "pub fn f(v: &[u8]) -> u8 { v[0] }\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_tac-lint"))
        .args(["--deny", "--root"])
        .arg(&root)
        .arg("--json")
        .arg(&json)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let report = std::fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"rule\": \"panic\""), "{report}");

    // Fixed file: --deny exits zero.
    std::fs::write(
        &file,
        "pub fn f(v: &[u8]) -> Option<u8> { v.first().copied() }\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_tac-lint"))
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
