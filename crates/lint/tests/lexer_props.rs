//! Property tests: the hand-rolled lexer and the rule engine are total.
//!
//! The lint runs over every workspace source file on every CI build, so
//! `lex`/`analyze_file` must never panic, whatever bytes they meet —
//! including half-finished edits: unterminated strings, unbalanced
//! fences, stray quotes. Inputs come from two generators: raw byte soup
//! (lossy-decoded, since the shim has no string strategy) and
//! pseudo-programs glued from adversarial Rust fragments.

use proptest::prelude::*;
use tac_lint::lexer::{byte_string_value, int_value, lex};
use tac_lint::rules::analyze_file;

/// Rust-ish source fragments chosen to hit the lexer's tricky paths
/// (raw/byte strings, nested comments, lifetimes vs chars, unterminated
/// literals) and the rule engine's scanners (suppressions, cfg(test)
/// headers, const declarations, panic/arith constructs).
const FRAGMENTS: &[&str] = &[
    "fn f(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ".unwrap()",
    ".expect(\"x\")",
    "panic!(",
    "unreachable!",
    "v[0]",
    "pos + 4",
    "len * 2",
    "as u8",
    "as usize",
    "const A: u8 = 1;",
    "const MAGIC: [u8; 4] = *b\"ABCD\";",
    "#[cfg(test)]",
    "mod tests",
    "// tac-lint: allow(panic) -- why\n",
    "// tac-lint: allow(",
    "unsafe",
    "'a",
    "'x'",
    "b'\\n'",
    "r#\"raw\"#",
    "br##\"raw\"##",
    "\"str\\\"esc\"",
    "/* nested /* block */ */",
    "/* open",
    "\"open",
    "0x_",
    "1e-4",
    "0..n",
    "let x = ",
    ";",
    "\n",
    "?",
    "!",
    "#",
    "e.len",
    "idx",
    "=>",
    "::",
    "..=",
];

fn soup(indices: &[u8]) -> String {
    indices
        .iter()
        .map(|&i| FRAGMENTS[i as usize % FRAGMENTS.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lex_is_total_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        // Positions are 1-based and lines never go backwards.
        let mut last = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= last && t.col >= 1, "line {} after {last}", t.line);
            last = t.line;
        }
    }

    #[test]
    fn whitespace_free_input_reconstructs_exactly(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // The lexer is total and lossless up to whitespace: with no
        // whitespace in the input, every char lands in exactly one
        // token and concatenating the token texts rebuilds the source.
        let src: String = String::from_utf8_lossy(&bytes)
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let joined: String = lex(&src).iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(joined, src);
    }

    #[test]
    fn analyze_file_is_total_on_fragment_soup(
        idx in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let src = soup(&idx);
        // Decode-path, wire-arith, and unlisted paths exercise all
        // three rule sets plus the const/byte-string collectors.
        for path in [
            "crates/sz/src/compress.rs",
            "crates/core/src/container.rs",
            "crates/other/src/lib.rs",
        ] {
            let fa = analyze_file(path, &src);
            for v in &fa.violations {
                prop_assert!(v.line >= 1 && v.col >= 1);
            }
        }
    }

    #[test]
    fn analyze_file_is_total_on_byte_soup(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = analyze_file("crates/sz/src/compress.rs", &src);
    }

    #[test]
    fn int_value_round_trips_radices_and_suffixes(x in any::<u64>()) {
        prop_assert_eq!(int_value(&format!("{x}")), Some(x));
        prop_assert_eq!(int_value(&format!("0x{x:x}")), Some(x));
        prop_assert_eq!(int_value(&format!("0b{x:b}usize")), Some(x));
        prop_assert_eq!(int_value(&format!("{x}u64")), Some(x));
    }

    #[test]
    fn literal_helpers_are_total_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let s = String::from_utf8_lossy(&bytes).into_owned();
        let _ = int_value(&s);
        let _ = byte_string_value(&s);
    }

    #[test]
    fn byte_string_value_round_trips_plain_ascii(
        idx in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        const PAL: &[u8] = b"ABCdef019 _-";
        let bytes: Vec<u8> = idx.iter().map(|&i| PAL[i as usize % PAL.len()]).collect();
        let text = format!("b\"{}\"", String::from_utf8_lossy(&bytes));
        prop_assert_eq!(byte_string_value(&text), Some(bytes));
    }
}
