//! R3 — wire-constant single source of truth.
//!
//! Cross-file checks over the constants the per-file pass extracted:
//!
//! * the three container formats declare their magic and version
//!   constants where the format lives, magics are 4 bytes and pairwise
//!   distinct, and each magic byte-string literal appears **exactly
//!   once** in non-test code (the declaration itself — every other use
//!   must go through the constant);
//! * the chunk-table row sizes are named constants
//!   (`CHUNK_ROW_BYTES_V2`/`_V3`/`_V4`, the v3 row being one codec byte
//!   larger than v2 and the v4 row one dtype byte larger than v3), and
//!   their values never recur as bare integer literals in the
//!   container/ROI/stream modules;
//! * the payload tag bytes in `core/stream.rs` are named `TAG_*`
//!   constants with pairwise-distinct values, including the f32 level
//!   tags (`TAG_EMPTY_F32`/`TAG_WHOLE_F32`/`TAG_GROUPS_F32`);
//! * every golden fixture under `tests/data/*.tacd` agrees with the
//!   declared constants: magic, version byte, for v4 a known dtype tag
//!   byte, and — for chunked containers — the exact file geometry
//!   `table_pos + count_prefix + rows * row_size + footer == file length`
//!   recomputed from the footer offset, the row count, and the declared
//!   row size. The writer, the reader, and the on-disk bytes must all
//!   mean the same thing by "a row".

use crate::rules::{ConstDecl, FileAnalysis, Violation};
use std::path::Path;

const CORE_CONTAINER: &str = "crates/core/src/container.rs";
const CORE_STREAM: &str = "crates/core/src/stream.rs";
const SZ_CONTAINER: &str = "crates/sz/src/container.rs";
const PCO: &str = "crates/codec/src/pco.rs";
const PCO_ANS: &str = "crates/codec/src/pco_ans.rs";
const ANS: &str = "crates/codec/src/ans.rs";
const BINS: &str = "crates/codec/src/bins.rs";

/// Size of the chunk table's `u32` row-count prefix.
const COUNT_PREFIX: u64 = 4;
/// Size of the trailing `u64` table-offset footer.
const FOOTER: u64 = 8;

fn violation(file: &str, line: u32, message: String) -> Violation {
    Violation {
        rule: "wire",
        file: file.to_string(),
        line,
        col: 1,
        message,
    }
}

fn find<'a>(analyses: &'a [FileAnalysis], suffix: &str) -> Option<&'a FileAnalysis> {
    analyses.iter().find(|a| a.file.ends_with(suffix))
}

fn get_const<'a>(fa: &'a FileAnalysis, name: &str) -> Option<&'a ConstDecl> {
    fa.consts.iter().find(|c| c.name == name)
}

/// Runs every R3 check. `root` is the workspace root (for fixtures).
pub fn wire_checks(root: &Path, analyses: &[FileAnalysis]) -> Vec<Violation> {
    let mut v = Vec::new();

    // --- Declared constants -------------------------------------------
    let mut magics: Vec<(&'static str, Vec<u8>)> = Vec::new();
    let mut require_magic = |v: &mut Vec<Violation>, file: &'static str| -> Option<Vec<u8>> {
        let Some(fa) = find(analyses, file) else {
            v.push(violation(
                file,
                1,
                "wire module missing from the scan".into(),
            ));
            return None;
        };
        match get_const(fa, "MAGIC").and_then(|c| c.bytes.clone()) {
            Some(m) if m.len() == 4 => {
                magics.push((file, m.clone()));
                Some(m)
            }
            Some(m) => {
                v.push(violation(
                    file,
                    1,
                    format!("MAGIC must be 4 bytes, found {}", m.len()),
                ));
                None
            }
            None => {
                v.push(violation(
                    file,
                    1,
                    "no `MAGIC` byte-string constant declared".into(),
                ));
                None
            }
        }
    };
    let core_magic = require_magic(&mut v, CORE_CONTAINER);
    require_magic(&mut v, SZ_CONTAINER);
    require_magic(&mut v, PCO);
    require_magic(&mut v, PCO_ANS);
    for i in 0..magics.len() {
        for j in i + 1..magics.len() {
            if magics[i].1 == magics[j].1 {
                v.push(violation(
                    magics[j].0,
                    1,
                    format!("magic collides with the one declared in {}", magics[i].0),
                ));
            }
        }
    }

    // Versions: the core container declares its three version bytes; the
    // single-version formats declare VERSION.
    let mut versions: Vec<u64> = Vec::new();
    if let Some(fa) = find(analyses, CORE_CONTAINER) {
        for (name, want) in [
            ("VERSION_V1", 1),
            ("VERSION_V2", 2),
            ("VERSION_V3", 3),
            ("VERSION_V4", 4),
        ] {
            match get_const(fa, name).and_then(|c| c.int) {
                Some(got) if got == want => versions.push(got),
                Some(got) => v.push(violation(
                    &fa.file,
                    1,
                    format!("{name} is {got}, expected {want}"),
                )),
                None => v.push(violation(
                    &fa.file,
                    1,
                    format!("no integer constant `{name}` declared"),
                )),
            }
        }
    }
    for file in [SZ_CONTAINER, PCO, PCO_ANS] {
        if let Some(fa) = find(analyses, file) {
            if get_const(fa, "VERSION").and_then(|c| c.int).is_none() {
                v.push(violation(
                    file,
                    1,
                    "no integer constant `VERSION` declared".into(),
                ));
            }
        }
    }

    // The ANS table geometry: TABLE_SIZE must be the named power of two
    // of TABLE_BITS, declared once in the ANS module.
    let mut ans_table_size = None;
    if let Some(fa) = find(analyses, ANS) {
        let bits = get_const(fa, "TABLE_BITS").and_then(|c| c.int);
        let size = get_const(fa, "TABLE_SIZE").and_then(|c| c.int);
        match (bits, size) {
            (Some(b), Some(s)) => {
                if b >= 32 || s != 1u64 << b {
                    v.push(violation(
                        &fa.file,
                        1,
                        format!("TABLE_SIZE ({s}) must equal 1 << TABLE_BITS ({b})"),
                    ));
                } else {
                    ans_table_size = Some(s);
                }
            }
            _ => v.push(violation(
                &fa.file,
                1,
                "ANS module must declare integer constants `TABLE_BITS` and `TABLE_SIZE`".into(),
            )),
        }
    } else {
        v.push(violation(
            ANS,
            1,
            "wire module missing from the scan".into(),
        ));
    }
    let pco_ans_page = find(analyses, PCO_ANS).and_then(|fa| {
        let page = get_const(fa, "PAGE").and_then(|c| c.int);
        if page.is_none() {
            v.push(violation(
                &fa.file,
                1,
                "no integer constant `PAGE` declared".into(),
            ));
        }
        page
    });

    // Chunk-table row sizes.
    let mut row_v2 = None;
    let mut row_v3 = None;
    let mut row_v4 = None;
    if let Some(fa) = find(analyses, CORE_CONTAINER) {
        row_v2 = get_const(fa, "CHUNK_ROW_BYTES_V2").and_then(|c| c.int);
        row_v3 = get_const(fa, "CHUNK_ROW_BYTES_V3").and_then(|c| c.int);
        row_v4 = get_const(fa, "CHUNK_ROW_BYTES_V4").and_then(|c| c.int);
        match (row_v2, row_v3) {
            (Some(a), Some(b)) if b != a + 1 => v.push(violation(
                &fa.file,
                1,
                format!("CHUNK_ROW_BYTES_V3 ({b}) must be CHUNK_ROW_BYTES_V2 ({a}) + 1 codec byte"),
            )),
            (None, _) => v.push(violation(
                &fa.file,
                1,
                "no `CHUNK_ROW_BYTES_V2` constant declared".into(),
            )),
            (_, None) => v.push(violation(
                &fa.file,
                1,
                "no `CHUNK_ROW_BYTES_V3` constant declared".into(),
            )),
            _ => {}
        }
        match (row_v3, row_v4) {
            (Some(b), Some(c)) if c != b + 1 => v.push(violation(
                &fa.file,
                1,
                format!("CHUNK_ROW_BYTES_V4 ({c}) must be CHUNK_ROW_BYTES_V3 ({b}) + 1 dtype byte"),
            )),
            (_, None) => v.push(violation(
                &fa.file,
                1,
                "no `CHUNK_ROW_BYTES_V4` constant declared".into(),
            )),
            _ => {}
        }
    }

    // Payload tag bytes are named constants with distinct values, and
    // the dtype-aware wire declares the three f32 level tags.
    if let Some(fa) = find(analyses, CORE_STREAM) {
        let tags: Vec<&ConstDecl> = fa
            .consts
            .iter()
            .filter(|c| c.name.starts_with("TAG_"))
            .collect();
        if tags.len() < 2 {
            v.push(violation(
                &fa.file,
                1,
                "payload tag bytes must be named TAG_* constants".into(),
            ));
        }
        for name in ["TAG_EMPTY_F32", "TAG_WHOLE_F32", "TAG_GROUPS_F32"] {
            if !tags.iter().any(|c| c.name == name && c.int.is_some()) {
                v.push(violation(
                    &fa.file,
                    1,
                    format!("no integer constant `{name}` declared (f32 level payload tag)"),
                ));
            }
        }
        for i in 0..tags.len() {
            for j in i + 1..tags.len() {
                if tags[i].int.is_some() && tags[i].int == tags[j].int {
                    v.push(violation(
                        &fa.file,
                        tags[j].line,
                        format!("{} duplicates the value of {}", tags[j].name, tags[i].name),
                    ));
                }
            }
        }
    }

    // --- Single source of truth ----------------------------------------
    // Each declared magic literal appears exactly once in non-test code.
    for (decl_file, magic) in &magics {
        let mut occurrences: Vec<(&str, u32)> = Vec::new();
        for fa in analyses {
            for (bytes, line) in &fa.byte_strings {
                if bytes == magic {
                    occurrences.push((&fa.file, *line));
                }
            }
        }
        for (file, line) in occurrences.iter().skip(1) {
            v.push(violation(
                file,
                *line,
                format!(
                    "magic {magic:02x?} duplicated outside its declaration in {decl_file}; \
                     use the constant"
                ),
            ));
        }
        if occurrences.is_empty() {
            v.push(violation(
                decl_file,
                1,
                "declared magic literal not found".into(),
            ));
        }
    }

    // Row sizes never recur as bare literals in the modules that share
    // them (the `container.rs` comment-as-spec failure mode).
    let rows: Vec<(u64, u8)> = [(row_v2, 2u8), (row_v3, 3), (row_v4, 4)]
        .into_iter()
        .filter_map(|(r, n)| r.map(|val| (val, n)))
        .collect();
    if !rows.is_empty() {
        for file in [CORE_CONTAINER, CORE_STREAM, "crates/core/src/roi.rs"] {
            if let Some(fa) = find(analyses, file) {
                for &(value, line, col) in &fa.bare_ints {
                    if let Some(&(_, n)) = rows.iter().find(|&&(r, _)| r == value) {
                        v.push(Violation {
                            rule: "wire",
                            file: fa.file.clone(),
                            line,
                            col,
                            message: format!(
                                "bare chunk-row size {value}; use CHUNK_ROW_BYTES_V{n}"
                            ),
                        });
                    }
                }
            }
        }
    }

    // The PcoAns page size and the ANS table size never recur as bare
    // integers in the codec's wire modules — every use must go through
    // the named constant (same failure mode as the chunk-row sizes).
    let ans_wire_sizes: Vec<(u64, &str)> = [(pco_ans_page, "PAGE"), (ans_table_size, "TABLE_SIZE")]
        .into_iter()
        .filter_map(|(val, name)| val.map(|v| (v, name)))
        .collect();
    if !ans_wire_sizes.is_empty() {
        for file in [PCO_ANS, ANS, BINS] {
            if let Some(fa) = find(analyses, file) {
                let decl_lines: Vec<u32> = fa
                    .consts
                    .iter()
                    .filter(|c| ans_wire_sizes.iter().any(|&(_, n)| c.name == n))
                    .map(|c| c.line)
                    .collect();
                for &(value, line, col) in &fa.bare_ints {
                    if decl_lines.contains(&line) {
                        continue;
                    }
                    if let Some(&(_, name)) = ans_wire_sizes.iter().find(|&&(s, _)| s == value) {
                        v.push(Violation {
                            rule: "wire",
                            file: fa.file.clone(),
                            line,
                            col,
                            message: format!("bare ANS wire size {value}; use {name}"),
                        });
                    }
                }
            }
        }
    }

    // --- Golden fixtures -----------------------------------------------
    check_fixtures(
        root,
        &mut v,
        core_magic.as_deref(),
        &versions,
        row_v2,
        row_v3,
        row_v4,
    );
    v
}

/// Cross-checks every `tests/data/*.tacd` golden fixture against the
/// declared wire constants.
fn check_fixtures(
    root: &Path,
    v: &mut Vec<Violation>,
    core_magic: Option<&[u8]>,
    versions: &[u64],
    row_v2: Option<u64>,
    row_v3: Option<u64>,
    row_v4: Option<u64>,
) {
    let dir = root.join("tests").join("data");
    let mut fixtures: Vec<std::path::PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "tacd"))
            .collect(),
        Err(_) => Vec::new(),
    };
    fixtures.sort();
    if fixtures.is_empty() {
        v.push(violation(
            "tests/data",
            1,
            "no golden .tacd fixtures found to cross-check wire constants against".into(),
        ));
        return;
    }
    for path in fixtures {
        let label = format!(
            "tests/data/{}",
            path.file_name()
                .map(|n| n.to_string_lossy())
                .unwrap_or_default()
        );
        let Ok(bytes) = std::fs::read(&path) else {
            v.push(violation(&label, 1, "fixture unreadable".into()));
            continue;
        };
        let mut bad = |msg: String| v.push(violation(&label, 1, msg));
        if bytes.len() < 5 {
            bad(format!(
                "fixture is {} bytes, smaller than any header",
                bytes.len()
            ));
            continue;
        }
        if let Some(magic) = core_magic {
            if &bytes[..4] != magic {
                bad(format!(
                    "fixture magic {:02x?} does not match the declared {magic:02x?}",
                    &bytes[..4]
                ));
                continue;
            }
        }
        let version = u64::from(bytes[4]);
        if !versions.is_empty() && !versions.contains(&version) {
            bad(format!(
                "fixture version byte {version} is not one of the declared {versions:?}"
            ));
            continue;
        }
        if version < 2 {
            continue; // v1 has no chunk table to check.
        }
        if version >= 4 {
            // v4 headers carry the element-type tag right after the
            // method byte; only the two known tags are valid.
            match bytes.get(6) {
                Some(&tag) if tag <= 1 => {}
                Some(&tag) => {
                    bad(format!(
                        "v4 fixture dtype tag byte {tag} is not a known element type \
                         (0 = f64, 1 = f32)"
                    ));
                    continue;
                }
                None => {
                    bad("v4 fixture too small to hold a dtype tag byte".into());
                    continue;
                }
            }
        }
        let row = match (version, row_v2, row_v3, row_v4) {
            (2, Some(r), _, _) | (3, _, Some(r), _) | (4, _, _, Some(r)) => r,
            _ => continue, // missing consts already reported
        };
        let len = bytes.len() as u64;
        if len < FOOTER + COUNT_PREFIX {
            bad("chunked fixture too small for a table footer".into());
            continue;
        }
        let Some(footer_at) = bytes.len().checked_sub(8) else {
            continue;
        };
        let footer: [u8; 8] = match bytes[footer_at..].try_into() {
            Ok(f) => f,
            Err(_) => continue,
        };
        let table_pos = u64::from_le_bytes(footer);
        let count_end = table_pos.checked_add(COUNT_PREFIX);
        if count_end.is_none() || count_end.is_some_and(|e| e > len - FOOTER) {
            bad(format!("footer table offset {table_pos} out of bounds"));
            continue;
        }
        let tp = table_pos as usize;
        let count_bytes: [u8; 4] = match bytes[tp..tp + 4].try_into() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let count = u64::from(u32::from_le_bytes(count_bytes));
        let expected_len = count
            .checked_mul(row)
            .and_then(|rows| rows.checked_add(table_pos))
            .and_then(|x| x.checked_add(COUNT_PREFIX))
            .and_then(|x| x.checked_add(FOOTER));
        if expected_len != Some(len) {
            bad(format!(
                "geometry mismatch: table at {table_pos} with {count} rows of \
                 {row} bytes implies a {expected_len:?}-byte file, got {len} \
                 (writer/reader/fixture disagree on the row size)"
            ));
        }
    }
}
