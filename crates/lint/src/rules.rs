//! The rule engine: per-file checks R1/R2/R4/R5 over the token stream.
//!
//! Rule names (used in reports and `allow(...)` suppressions):
//!
//! * `panic` (R1) — no `unwrap`/`expect`/`panic!`-family macros/slice
//!   indexing in decode-path modules;
//! * `arith` (R2) — no narrowing `as` casts and no unchecked `+`/`*` on
//!   length/offset-flavoured identifiers in wire-parsing modules;
//! * `wire` (R3) — wire-constant single source of truth (implemented in
//!   [`crate::wirecheck`], reported under this name);
//! * `unsafe` (R4) — `unsafe` appears only in per-file allowlisted
//!   locations (the allowlist ships empty);
//! * `suppress` (R5) — suppression comments must be well-formed and
//!   carry a justification;
//! * `span` (R6) — `let _ = span(..)` drops the RAII span guard on the
//!   same statement, timing an empty scope; bind it to a named
//!   underscore-prefixed variable (`let _guard = span(..)`) instead.
//!
//! Suppression syntax: `// tac-lint: allow(<rule>[, <rule>]) -- <why>`.
//! A suppression on the same line as code covers that line; on its own
//! line it covers the next item — the whole body when that item is a
//! `fn` (encoder-side functions whose index arithmetic is structurally
//! in-bounds use this), otherwise through the end of the statement.
//! `unsafe` and `suppress` findings cannot be comment-suppressed:
//! `unsafe` goes through the allowlist, and a suppression cannot excuse
//! itself.

use crate::lexer::{lex, Token, TokenKind};

/// R1: no panic-capable constructs. These modules parse or act on
/// attacker-controlled bytes; a panic is a denial of service.
pub const DECODE_PATH_MODULES: &[&str] = &[
    "crates/core/src/container.rs",
    "crates/core/src/stream.rs",
    "crates/core/src/roi.rs",
    "crates/core/src/extract.rs",
    "crates/core/src/select.rs",
    "crates/sz/src/wire.rs",
    "crates/sz/src/compress.rs",
    "crates/sz/src/huffman.rs",
    "crates/sz/src/bitstream.rs",
    "crates/sz/src/lossless.rs",
    "crates/codec/src/pco.rs",
    "crates/codec/src/pco_ans.rs",
    "crates/codec/src/ans.rs",
    "crates/codec/src/bins.rs",
    "crates/codec/src/sz.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/export.rs",
];

/// R2: lengths and offsets in these modules come off the wire; bare
/// `+`/`*` can overflow and `as` truncation can alias distinct values.
pub const WIRE_ARITH_MODULES: &[&str] = &[
    "crates/core/src/container.rs",
    "crates/core/src/stream.rs",
    "crates/core/src/select.rs",
    "crates/sz/src/wire.rs",
    "crates/sz/src/container.rs",
    "crates/sz/src/compress.rs",
    "crates/sz/src/huffman.rs",
    "crates/sz/src/lossless.rs",
    "crates/codec/src/pco.rs",
    "crates/codec/src/pco_ans.rs",
    "crates/codec/src/ans.rs",
    "crates/codec/src/bins.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/export.rs",
];

/// R4 per-file allowlist: `(path suffix, justification)`. Ships empty —
/// the workspace is `unsafe`-free and library crates `forbid` it.
pub const UNSAFE_ALLOWLIST: &[(&str, &str)] = &[];

/// All rule names, for validating `allow(...)` arguments.
pub const ALL_RULES: &[&str] = &["panic", "arith", "wire", "unsafe", "suppress", "span"];

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A parsed `tac-lint: allow(...)` comment and the line range it covers.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Workspace-relative file path.
    pub file: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Rules it suppresses.
    pub rules: Vec<String>,
    /// Mandatory `-- why` text.
    pub justification: String,
    /// First line covered.
    pub line_lo: u32,
    /// Last line covered.
    pub line_hi: u32,
    /// Whether it actually suppressed a finding.
    pub used: bool,
}

/// A `const NAME: … = …;` item, with its value decoded when it is a
/// plain integer or byte-string literal (what wire constants are).
#[derive(Debug, Clone)]
pub struct ConstDecl {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `const` keyword.
    pub line: u32,
    /// Constant name.
    pub name: String,
    /// Integer value, when the initializer is a single integer literal.
    pub int: Option<u64>,
    /// Byte-string value, when the initializer contains one.
    pub bytes: Option<Vec<u8>>,
}

/// Everything the per-file pass extracts; [`crate::wirecheck`] runs the
/// cross-file R3 checks over the collection.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Findings after suppression filtering.
    pub violations: Vec<Violation>,
    /// Suppressions found (used or not).
    pub suppressions: Vec<Suppression>,
    /// Constants declared outside test code.
    pub consts: Vec<ConstDecl>,
    /// Byte-string literals in non-test code: `(bytes, line)`.
    pub byte_strings: Vec<(Vec<u8>, u32)>,
    /// Integer literals in non-test code, outside `CHUNK_ROW_BYTES_*`
    /// declarations: `(value, line, col)`.
    pub bare_ints: Vec<(u64, u32, u32)>,
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];

const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier stems that mark a value as a length/offset/count — the
/// operands R2 requires checked arithmetic on.
const LEN_SUFFIXES: &[&str] = &[
    "len", "length", "pos", "off", "offset", "end", "idx", "count", "size", "bytes",
];
const LEN_EXACT: &[&str] = &["n", "consumed", "remaining"];

fn is_len_flavored(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    LEN_EXACT.contains(&lower.as_str()) || LEN_SUFFIXES.iter().any(|s| lower.ends_with(s))
}

fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Whether `path` (workspace-relative, forward slashes) is test-only
/// code: integration tests, benches, and anything under `tests/`.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.starts_with("benches/")
        || path.contains("/benches/")
}

fn in_module_list(path: &str, list: &[&str]) -> bool {
    list.iter().any(|m| path.ends_with(m))
}

/// Runs the per-file rules over `src`, treating it as the file at
/// workspace-relative `path` (module membership is decided by suffix).
pub fn analyze_file(path: &str, src: &str) -> FileAnalysis {
    let tokens = lex(src);
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].is_significant())
        .collect();
    let test_regions = find_test_regions(&tokens, &sig);
    let in_test = |line: u32| -> bool {
        is_test_path(path)
            || test_regions
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
    };

    let mut violations: Vec<Violation> = Vec::new();
    let mut suppressions = parse_suppressions(path, &tokens, &sig, &mut violations);

    if in_module_list(path, DECODE_PATH_MODULES) {
        rule_panic(path, &tokens, &sig, &in_test, &mut violations);
    }
    if in_module_list(path, WIRE_ARITH_MODULES) {
        rule_arith(path, &tokens, &sig, &in_test, &mut violations);
    }
    rule_unsafe(path, &tokens, &sig, &mut violations);
    rule_span(path, &tokens, &sig, &in_test, &mut violations);

    let (consts, row_const_lines) = collect_consts(path, &tokens, &sig, &in_test);
    let mut byte_strings = Vec::new();
    let mut bare_ints = Vec::new();
    for &i in &sig {
        let t = &tokens[i];
        if in_test(t.line) {
            continue;
        }
        match t.kind {
            TokenKind::Str => {
                if let Some(b) = crate::lexer::byte_string_value(&t.text) {
                    byte_strings.push((b, t.line));
                }
            }
            TokenKind::Number if !row_const_lines.contains(&t.line) => {
                if let Some(v) = crate::lexer::int_value(&t.text) {
                    bare_ints.push((v, t.line, t.col));
                }
            }
            _ => {}
        }
    }

    // Apply suppressions: a finding inside a covered line range with a
    // matching rule is dropped (and the suppression marked used).
    // `unsafe` and `suppress` findings are exempt by design.
    violations.retain(|v| {
        if v.rule == "unsafe" || v.rule == "suppress" {
            return true;
        }
        for s in suppressions.iter_mut() {
            if s.line_lo <= v.line && v.line <= s.line_hi && s.rules.iter().any(|r| r == v.rule) {
                s.used = true;
                return false;
            }
        }
        true
    });

    FileAnalysis {
        file: path.to_string(),
        violations,
        suppressions,
        consts,
        byte_strings,
        bare_ints,
    }
}

/// Finds `#[cfg(test)]`-guarded items and returns their line ranges.
fn find_test_regions(tokens: &[Token], sig: &[usize]) -> Vec<(u32, u32)> {
    let texts: Vec<&str> = sig.iter().map(|&i| tokens[i].text.as_str()).collect();
    let mut regions = Vec::new();
    let mut k = 0usize;
    while k + 6 < texts.len() {
        let is_cfg_test = texts[k] == "#"
            && texts[k + 1] == "["
            && texts[k + 2] == "cfg"
            && texts[k + 3] == "("
            && texts[k + 4] == "test"
            && texts[k + 5] == ")"
            && texts[k + 6] == "]";
        if !is_cfg_test {
            k += 1;
            continue;
        }
        let start_line = tokens[sig[k]].line;
        let mut j = k + 7;
        // Skip any further attributes on the same item.
        while j + 1 < texts.len() && texts[j] == "#" && texts[j + 1] == "[" {
            let mut depth = 0usize;
            j += 1;
            while j < texts.len() {
                match texts[j] {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        // Walk to the item's terminator: `;` at depth 0 or the matching
        // `}` of its body.
        if let Some((end, _)) = item_extent(tokens, sig, j) {
            regions.push((start_line, end));
            k = j;
        } else {
            k += 1;
        }
    }
    regions
}

/// From significant position `j`, walks one item: returns the last line
/// it covers and whether a `fn` keyword appeared in its header.
fn item_extent(tokens: &[Token], sig: &[usize], j: usize) -> Option<(u32, bool)> {
    let mut saw_fn = false;
    let mut depth = 0usize;
    let mut k = j;
    while k < sig.len() {
        let t = &tokens[sig[k]];
        match t.text.as_str() {
            "fn" if depth == 0 && t.kind == TokenKind::Ident => saw_fn = true,
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            ";" if depth == 0 => return Some((t.line, saw_fn)),
            "{" if depth == 0 => {
                // Find the matching close brace.
                let mut braces = 0usize;
                while k < sig.len() {
                    match tokens[sig[k]].text.as_str() {
                        "{" => braces += 1,
                        "}" => {
                            braces -= 1;
                            if braces == 0 {
                                return Some((tokens[sig[k]].line, saw_fn));
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return None;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Parses every `tac-lint:` comment; malformed ones become `suppress`
/// violations.
fn parse_suppressions(
    path: &str,
    tokens: &[Token],
    sig: &[usize],
    violations: &mut Vec<Violation>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        // Only plain `//` comments that *start* with the marker count:
        // doc comments (`///`, `//!`) merely talk about the syntax.
        let body = &t.text[2..];
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let trimmed = body.trim_start();
        if !trimmed.starts_with("tac-lint:") {
            continue;
        }
        let at = t.text.len() - trimmed.len();
        let mut bad = |msg: String| {
            violations.push(Violation {
                rule: "suppress",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: msg,
            });
        };
        let rest = t.text[at + "tac-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad("malformed suppression: expected `tac-lint: allow(<rule>) -- <why>`".into());
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("malformed suppression: unclosed `allow(`".into());
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for rule in args[..close].split(',') {
            let rule = rule.trim();
            if !ALL_RULES.contains(&rule) {
                bad(format!(
                    "unknown rule `{rule}` in suppression (rules: {})",
                    ALL_RULES.join(", ")
                ));
                ok = false;
            } else if rule == "suppress" || rule == "unsafe" {
                bad(format!(
                    "rule `{rule}` cannot be comment-suppressed ({})",
                    if rule == "unsafe" {
                        "use the per-file allowlist"
                    } else {
                        "a suppression cannot excuse itself"
                    }
                ));
                ok = false;
            } else {
                rules.push(rule.to_string());
            }
        }
        let tail = args[close + 1..].trim();
        let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if justification.is_empty() {
            bad("suppression is missing its mandatory `-- <justification>`".into());
            continue;
        }
        if !ok || rules.is_empty() {
            continue;
        }
        let (line_lo, line_hi) = suppression_scope(tokens, sig, i);
        out.push(Suppression {
            file: path.to_string(),
            line: t.line,
            rules,
            justification: justification.to_string(),
            line_lo,
            line_hi,
            used: false,
        });
    }
    out
}

/// Scope of the suppression comment at token index `ci`: its own line
/// when it trails code, otherwise the following item (whole body for
/// `fn` items, through the statement's `;` otherwise).
fn suppression_scope(tokens: &[Token], sig: &[usize], ci: usize) -> (u32, u32) {
    let line = tokens[ci].line;
    let trails_code = tokens[..ci]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| t.is_significant());
    if trails_code {
        return (line, line);
    }
    let Some(p) = sig.iter().position(|&i| i > ci) else {
        return (line, line);
    };
    // Skip attributes before the item proper.
    let texts: Vec<&str> = sig.iter().map(|&i| tokens[i].text.as_str()).collect();
    let mut j = p;
    while j + 1 < texts.len() && texts[j] == "#" && texts[j + 1] == "[" {
        let mut depth = 0usize;
        j += 1;
        while j < texts.len() {
            match texts[j] {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j += 1;
    }
    match item_extent(tokens, sig, j) {
        Some((end, saw_fn)) => {
            if saw_fn {
                (line, end)
            } else {
                // Non-fn item or statement: cover through its extent,
                // but never past the end of the immediate statement —
                // `item_extent` already stops at the first `;`/matching
                // `}`, which is exactly that.
                (line, end)
            }
        }
        None => (line, line.saturating_add(1)),
    }
}

/// R1 over one decode-path file.
fn rule_panic(
    path: &str,
    tokens: &[Token],
    sig: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    violations: &mut Vec<Violation>,
) {
    let mut push = |t: &Token, message: String| {
        violations.push(Violation {
            rule: "panic",
            file: path.to_string(),
            line: t.line,
            col: t.col,
            message,
        });
    };
    for k in 0..sig.len() {
        let t = &tokens[sig[k]];
        if in_test(t.line) {
            continue;
        }
        let next = sig.get(k + 1).map(|&i| &tokens[i]);
        let next2 = sig.get(k + 2).map(|&i| &tokens[i]);
        // `.unwrap(` / `.expect(`
        if t.text == "."
            && next.is_some_and(|n| {
                n.kind == TokenKind::Ident && (n.text == "unwrap" || n.text == "expect")
            })
            && next2.is_some_and(|n| n.text == "(")
        {
            let n = next.unwrap_or(t);
            push(
                n,
                format!(
                    "`.{}()` can panic in a decode path; return a typed error",
                    n.text
                ),
            );
        }
        // panic-family macros
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && next.is_some_and(|n| n.text == "!")
        {
            push(
                t,
                format!("`{}!` in a decode path; return a typed error", t.text),
            );
        }
        // slice/array indexing: `expr[` where expr ends in an ident,
        // call, index, or `?`.
        if t.text == "[" && k > 0 {
            let prev = &tokens[sig[k - 1]];
            let indexable = match prev.kind {
                TokenKind::Ident => !is_keyword(&prev.text),
                TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                _ => false,
            };
            if indexable {
                push(
                    t,
                    format!(
                        "indexing `{}[..]` can panic in a decode path; use `.get()`",
                        prev.text
                    ),
                );
            }
        }
    }
}

/// R2 over one wire-parsing file.
fn rule_arith(
    path: &str,
    tokens: &[Token],
    sig: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    violations: &mut Vec<Violation>,
) {
    let tok = |k: usize| sig.get(k).map(|&i| &tokens[i]);
    for k in 0..sig.len() {
        let t = &tokens[sig[k]];
        if in_test(t.line) {
            continue;
        }
        // Narrowing `as` cast.
        if t.kind == TokenKind::Ident && t.text == "as" {
            if let Some(n) = tok(k + 1) {
                if n.kind == TokenKind::Ident && NARROW_CASTS.contains(&n.text.as_str()) {
                    violations.push(Violation {
                        rule: "arith",
                        file: path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "narrowing `as {}` in a wire module; use `try_from` or prove the \
                             bound and suppress",
                            n.text
                        ),
                    });
                }
            }
            continue;
        }
        // Unchecked `+` / `*` with a length-flavoured operand.
        if !(t.kind == TokenKind::Punct && (t.text == "+" || t.text == "*")) {
            continue;
        }
        let Some(prev) = (k > 0).then(|| tok(k - 1)).flatten() else {
            continue;
        };
        let binary = match prev.kind {
            TokenKind::Ident => !is_keyword(&prev.text),
            TokenKind::Number => true,
            TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
            _ => false,
        };
        if !binary {
            continue;
        }
        // Flavour check on the operands immediately around the operator:
        // `pos + 4`, `a + e.len`, `x.len() * 12`.
        let prev_flavored = (prev.kind == TokenKind::Ident && is_len_flavored(&prev.text))
            || (prev.text == ")"
                && tok(k.wrapping_sub(2)).is_some_and(|p| p.text == "(")
                && tok(k.wrapping_sub(3))
                    .is_some_and(|p| p.kind == TokenKind::Ident && is_len_flavored(&p.text)));
        let next_flavored = tok(k + 1).is_some_and(|n| {
            n.kind == TokenKind::Ident
                && (is_len_flavored(&n.text)
                    || (tok(k + 2).is_some_and(|d| d.text == ".")
                        && tok(k + 3).is_some_and(|f| {
                            f.kind == TokenKind::Ident && is_len_flavored(&f.text)
                        })))
        });
        if prev_flavored || next_flavored {
            let op = if t.text == "+" {
                "addition"
            } else {
                "multiplication"
            };
            violations.push(Violation {
                rule: "arith",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "unchecked {op} on a length/offset operand in a wire module; use \
                     `checked_{}`",
                    if t.text == "+" { "add" } else { "mul" }
                ),
            });
        }
    }
}

/// R6: `let _ = …span(…)` drops the RAII guard at the end of the
/// statement, so the span measures an empty scope. The guard must be
/// bound to a live name (`let _guard = span(..)`), which keeps it open
/// for the enclosing block. Fires in every non-test file: misuse in an
/// instrumented crate silently produces zero-width spans.
fn rule_span(
    path: &str,
    tokens: &[Token],
    sig: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    violations: &mut Vec<Violation>,
) {
    let tok = |k: usize| sig.get(k).map(|&i| &tokens[i]);
    for k in 0..sig.len() {
        let t = &tokens[sig[k]];
        if !(t.kind == TokenKind::Ident && t.text == "let") || in_test(t.line) {
            continue;
        }
        if !tok(k + 1).is_some_and(|n| n.text == "_") || !tok(k + 2).is_some_and(|n| n.text == "=")
        {
            continue;
        }
        // The assigned expression must *start* with a call whose callee
        // path ends in `span` — `let _ = tac_obs::span(..)` or
        // `let _ = span(..).arg(..)`. A `span(..)` buried deeper in the
        // expression is handed to something that may keep it alive.
        let mut j = k + 3;
        let mut last_ident: Option<&Token> = None;
        while let Some(n) = tok(j) {
            match n.kind {
                TokenKind::Ident if !is_keyword(&n.text) => last_ident = Some(n),
                TokenKind::Punct if n.text == ":" => {}
                TokenKind::Punct if n.text == "(" => break,
                _ => {
                    last_ident = None;
                    break;
                }
            }
            j += 1;
        }
        if let Some(callee) = last_ident.filter(|n| n.text == "span") {
            violations.push(Violation {
                rule: "span",
                file: path.to_string(),
                line: callee.line,
                col: callee.col,
                message: "`let _ = span(..)` drops the guard immediately and times nothing; \
                          bind it (`let _span = span(..)`) so it lives to the end of the scope"
                    .into(),
            });
        }
    }
}

/// R4: every `unsafe` keyword is a finding unless the file is
/// allowlisted.
fn rule_unsafe(path: &str, tokens: &[Token], sig: &[usize], violations: &mut Vec<Violation>) {
    if let Some((_, why)) = UNSAFE_ALLOWLIST.iter().find(|(p, _)| path.ends_with(p)) {
        let _ = why;
        return;
    }
    for &i in sig {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            violations.push(Violation {
                rule: "unsafe",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: "`unsafe` outside the allowlist (which ships empty)".into(),
            });
        }
    }
}

/// Extracts non-test `const` declarations and the lines occupied by
/// `CHUNK_ROW_BYTES_*` initializers (exempt from the bare-literal scan).
fn collect_consts(
    path: &str,
    tokens: &[Token],
    sig: &[usize],
    in_test: &dyn Fn(u32) -> bool,
) -> (Vec<ConstDecl>, Vec<u32>) {
    let mut out = Vec::new();
    let mut row_lines = Vec::new();
    let tok = |k: usize| sig.get(k).map(|&i| &tokens[i]);
    for k in 0..sig.len() {
        let t = &tokens[sig[k]];
        if !(t.kind == TokenKind::Ident && t.text == "const") || in_test(t.line) {
            continue;
        }
        // `*const T` raw-pointer types are not declarations.
        if k > 0 && tok(k - 1).is_some_and(|p| p.text == "*") {
            continue;
        }
        let Some(name) = tok(k + 1).filter(|n| n.kind == TokenKind::Ident) else {
            continue;
        };
        // Find `=` at bracket depth 0, then the initializer up to `;`.
        let mut j = k + 2;
        let mut depth = 0usize;
        let mut eq = None;
        while let Some(t) = tok(j) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "=" if depth == 0 => {
                    eq = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else { continue };
        let mut value_toks = Vec::new();
        let mut j = eq + 1;
        let mut depth = 0usize;
        while let Some(t) = tok(j) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => break,
                _ => {}
            }
            value_toks.push(t);
            j += 1;
        }
        let int = match value_toks.as_slice() {
            [v] if v.kind == TokenKind::Number => crate::lexer::int_value(&v.text),
            _ => None,
        };
        let bytes = value_toks
            .iter()
            .find(|v| v.kind == TokenKind::Str)
            .and_then(|v| crate::lexer::byte_string_value(&v.text));
        if name.text.starts_with("CHUNK_ROW_BYTES") {
            for v in &value_toks {
                row_lines.push(v.line);
            }
        }
        out.push(ConstDecl {
            file: path.to_string(),
            line: t.line,
            name: name.text.clone(),
            int,
            bytes,
        });
    }
    (out, row_lines)
}
