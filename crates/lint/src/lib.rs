#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `tac-lint` — repo-specific static analysis for the TAC workspace.
//!
//! The container fuzzer (PR 4) kept finding decode-path crashes that
//! were all *statically visible*: panicking `unwrap`/indexing on
//! attacker-controlled bytes, bare arithmetic on wire-supplied lengths,
//! and wire constants duplicated as comments instead of named values.
//! This crate enforces those invariants at lint time:
//!
//! * a hand-rolled total [`lexer`] (no `syn`; the environment is
//!   offline) turns every workspace source file into tokens;
//! * the [`rules`] engine runs R1 (panic-free decode paths), R2
//!   (checked wire arithmetic), R4 (an `unsafe` inventory against an
//!   empty allowlist), and R5 (justified suppressions only);
//! * [`wirecheck`] runs R3, cross-checking declared wire constants
//!   against each other and against the golden fixtures on disk.
//!
//! The `tac-lint` binary walks the workspace, prints findings, and with
//! `--deny` fails the build on any unsuppressed violation; CI archives
//! its `--json` report as `LINT.json`.

pub mod lexer;
pub mod rules;
pub mod wirecheck;

pub use rules::{analyze_file, FileAnalysis, Suppression, Violation, ALL_RULES};

use std::path::{Path, PathBuf};

/// Aggregated result of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All unsuppressed findings, ordered by file then line.
    pub violations: Vec<Violation>,
    /// All suppression comments found (used or not).
    pub suppressions: Vec<Suppression>,
}

impl LintReport {
    /// Findings per rule name, in [`ALL_RULES`] order.
    pub fn counts_by_rule(&self) -> Vec<(&'static str, usize)> {
        ALL_RULES
            .iter()
            .map(|&r| (r, self.violations.iter().filter(|v| v.rule == r).count()))
            .collect()
    }

    /// Serializes the report (hand-rolled JSON, like the workspace's
    /// other machine-readable artifacts — no serde in the loop).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"violation_count\": {},\n",
            self.violations.len()
        ));
        s.push_str("  \"rule_counts\": {");
        let counts = self.counts_by_rule();
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{rule}\": {n}"));
        }
        s.push_str("},\n  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"message\": \"{}\"}}{}\n",
                v.rule,
                esc(&v.file),
                v.line,
                v.col,
                esc(&v.message),
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n  \"suppressions\": [\n");
        for (i, sup) in self.suppressions.iter().enumerate() {
            let rules: Vec<String> = sup.rules.iter().map(|r| format!("\"{r}\"")).collect();
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rules\": [{}], \
                 \"justification\": \"{}\", \"used\": {}}}{}\n",
                esc(&sup.file),
                sup.line,
                rules.join(", "),
                esc(&sup.justification),
                sup.used,
                if i + 1 < self.suppressions.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints every `.rs` file under `root` (skipping `target/` and version
/// control) plus the R3 fixture cross-checks.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, Path::new(""), &mut files)?;
    files.sort();
    let mut analyses = Vec::new();
    for rel in &files {
        let raw = std::fs::read(root.join(rel))?;
        let src = String::from_utf8_lossy(&raw);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        analyses.push(analyze_file(&rel_str, &src));
    }
    let wire = wirecheck::wire_checks(root, &analyses);
    let files_scanned = analyses.len();
    let mut violations = Vec::new();
    let mut suppressions = Vec::new();
    for fa in analyses {
        violations.extend(fa.violations);
        suppressions.extend(fa.suppressions);
    }
    violations.extend(wire);
    violations.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    suppressions.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport {
        files_scanned,
        violations,
        suppressions,
    })
}

fn collect_rs_files(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let dir = root.join(rel);
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name_str = name.to_string_lossy();
        let sub = rel.join(&name);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name_str == "target" || name_str.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &sub, out)?;
        } else if ty.is_file() && name_str.ends_with(".rs") {
            out.push(sub);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
