//! `tac-lint` CLI.
//!
//! ```text
//! tac-lint [--deny] [--json PATH] [--root PATH]
//! ```
//!
//! Walks the workspace (found from the current directory unless
//! `--root` is given), prints every finding as `file:line:col [rule]
//! message`, and writes a machine-readable report to `--json PATH`.
//! With `--deny`, any unsuppressed violation makes the process exit
//! non-zero — the CI configuration.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| tac_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("tac-lint: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    let report = match tac_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tac-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for v in &report.violations {
        println!("{}:{}:{} [{}] {}", v.file, v.line, v.col, v.rule, v.message);
    }
    let used = report.suppressions.iter().filter(|s| s.used).count();
    let counts: Vec<String> = report
        .counts_by_rule()
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(r, n)| format!("{r}: {n}"))
        .collect();
    println!(
        "tac-lint: {} files scanned, {} violation(s){}, {} suppression(s) ({} used)",
        report.files_scanned,
        report.violations.len(),
        if counts.is_empty() {
            String::new()
        } else {
            format!(" [{}]", counts.join(", "))
        },
        report.suppressions.len(),
        used,
    );

    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("tac-lint: writing {} failed: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("tac-lint: report written to {}", path.display());
    }

    if deny && !report.violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tac-lint: {msg}\nusage: tac-lint [--deny] [--json PATH] [--root PATH]");
    ExitCode::FAILURE
}
