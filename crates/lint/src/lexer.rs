//! Hand-rolled total Rust lexer.
//!
//! The build environment is offline, so there is no `syn`/`proc-macro2`;
//! the rule engine instead works over a flat token stream produced here.
//! The lexer is *total*: any input string produces a token vector, never a
//! panic and never an error. Unterminated strings and comments are closed
//! at end of input. It understands exactly the lexical subtleties the
//! rules need to not misfire:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   with arbitrary `#` fencing (`r#"…"#`, `br##"…"##`);
//! * raw identifiers (`r#type`);
//! * lifetimes vs. character literals (`'a` vs. `'a'` vs. `'\n'`);
//! * numeric literals with radix prefixes, underscores, exponents, and
//!   type suffixes.
//!
//! Everything else is a single-character `Punct`; rules that need
//! multi-character operators (`+=`, `as`) inspect neighbouring tokens.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Numeric literal (integer or float, any radix, with suffix).
    Number,
    /// String literal of any flavour (`"…"`, `b"…"`, `r#"…"#`).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Single punctuation character.
    Punct,
    /// `// …` comment (text includes the slashes).
    LineComment,
    /// `/* … */` comment, possibly nested.
    BlockComment,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based source line of the first character.
    pub line: u32,
    /// 1-based character column of the first character.
    pub col: u32,
}

impl Token {
    /// Whether this token participates in code (not a comment).
    pub fn is_significant(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Total: never panics, never fails.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one character, tracking line/column.
    fn bump(&mut self, buf: &mut String) {
        if let Some(&c) = self.chars.get(self.i) {
            self.i += 1;
            buf.push(c);
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn emit(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            let mut text = String::new();
            if c.is_whitespace() {
                self.bump(&mut text);
            } else if c == '/' && self.peek(1) == Some('/') {
                while let Some(c) = self.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    self.bump(&mut text);
                }
                self.emit(TokenKind::LineComment, text, line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(&mut text);
                self.emit(TokenKind::BlockComment, text, line, col);
            } else if c == '"' {
                self.bump(&mut text);
                self.string_body(&mut text);
                self.emit(TokenKind::Str, text, line, col);
            } else if c == '\'' {
                let kind = self.quote(&mut text);
                self.emit(kind, text, line, col);
            } else if c == 'r' || c == 'b' {
                let kind = self.prefixed(&mut text);
                self.emit(kind, text, line, col);
            } else if c.is_ascii_digit() {
                self.number(&mut text);
                self.emit(TokenKind::Number, text, line, col);
            } else if is_ident_start(c) {
                self.ident_tail(&mut text);
                self.emit(TokenKind::Ident, text, line, col);
            } else {
                self.bump(&mut text);
                self.emit(TokenKind::Punct, text, line, col);
            }
        }
        self.tokens
    }

    /// Nested `/* … */`; the leading `/*` has not been consumed yet.
    fn block_comment(&mut self, text: &mut String) {
        self.bump(text); // '/'
        self.bump(text); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump(text);
                    self.bump(text);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump(text);
                    self.bump(text);
                }
                (Some(_), _) => self.bump(text),
                (None, _) => break,
            }
        }
    }

    /// Body of a non-raw string; the opening quote is already consumed.
    fn string_body(&mut self, text: &mut String) {
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump(text);
                self.bump(text); // escaped char (if any)
            } else if c == '"' {
                self.bump(text);
                return;
            } else {
                self.bump(text);
            }
        }
    }

    /// Raw string body: `"` then content until `"` followed by `hashes`
    /// `#` characters. The opening fence is already consumed.
    fn raw_string_body(&mut self, text: &mut String, hashes: usize) {
        self.bump(text); // opening '"'
        while let Some(c) = self.peek(0) {
            if c == '"' && (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                self.bump(text);
                for _ in 0..hashes {
                    self.bump(text);
                }
                return;
            }
            self.bump(text);
        }
    }

    /// After a `'`: decides between a lifetime and a char literal.
    fn quote(&mut self, text: &mut String) -> TokenKind {
        self.bump(text); // '\''
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume until the closing quote.
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        self.bump(text);
                        self.bump(text);
                    } else if c == '\'' {
                        self.bump(text);
                        break;
                    } else {
                        self.bump(text);
                    }
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char, `'a` / `'static` a lifetime.
                self.ident_tail(text);
                if self.peek(0) == Some('\'') {
                    self.bump(text);
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // `'('`, `'5'`, …
                self.bump(text);
                if self.peek(0) == Some('\'') {
                    self.bump(text);
                }
                TokenKind::Char
            }
            None => TokenKind::Char,
        }
    }

    /// At an `r` or `b`: raw strings, byte strings, byte chars, raw
    /// identifiers, or a plain identifier starting with that letter.
    fn prefixed(&mut self, text: &mut String) -> TokenKind {
        let first = self.peek(0);
        if first == Some('r') {
            match self.peek(1) {
                Some('"') => {
                    self.bump(text); // 'r'
                    self.raw_string_body(text, 0);
                    return TokenKind::Str;
                }
                Some('#') => {
                    let mut hashes = 0usize;
                    while self.peek(1 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(1 + hashes) == Some('"') {
                        self.bump(text); // 'r'
                        for _ in 0..hashes {
                            self.bump(text);
                        }
                        self.raw_string_body(text, hashes);
                        return TokenKind::Str;
                    }
                    if hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                        // Raw identifier `r#type`.
                        self.bump(text); // 'r'
                        self.bump(text); // '#'
                        self.ident_tail(text);
                        return TokenKind::Ident;
                    }
                }
                _ => {}
            }
        } else if first == Some('b') {
            match self.peek(1) {
                Some('"') => {
                    self.bump(text); // 'b'
                    self.bump(text); // '"'
                    self.string_body(text);
                    return TokenKind::Str;
                }
                Some('\'') => {
                    self.bump(text); // 'b'
                    self.quote(text);
                    return TokenKind::Char;
                }
                Some('r') => {
                    let mut hashes = 0usize;
                    while self.peek(2 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(2 + hashes) == Some('"') {
                        self.bump(text); // 'b'
                        self.bump(text); // 'r'
                        for _ in 0..hashes {
                            self.bump(text);
                        }
                        self.raw_string_body(text, hashes);
                        return TokenKind::Str;
                    }
                }
                _ => {}
            }
        }
        self.ident_tail(text);
        TokenKind::Ident
    }

    fn ident_tail(&mut self, text: &mut String) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump(text);
        }
    }

    /// Numeric literal: radix prefixes, underscores, an optional fraction
    /// (only when followed by a digit, so `0..n` lexes as three tokens),
    /// an optional signed exponent, and any type suffix.
    fn number(&mut self, text: &mut String) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump(text);
        }
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump(text); // '.'
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump(text);
            }
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign = matches!(self.peek(1), Some('+') | Some('-'));
                let digit_at = if sign { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                    self.bump(text); // e
                    if sign {
                        self.bump(text);
                    }
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.bump(text);
                    }
                }
            }
        } else if matches!(text.chars().last(), Some('e') | Some('E'))
            && matches!(self.peek(0), Some('+') | Some('-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            // `1e-4`: the integer loop swallowed the `e`.
            self.bump(text); // sign
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump(text);
            }
        }
    }
}

/// Parses the numeric value of an integer literal token, handling radix
/// prefixes, `_` separators, and type suffixes. `None` for floats or
/// out-of-range values.
pub fn int_value(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(hex) = clean.strip_prefix("0x") {
        (16, hex)
    } else if let Some(oct) = clean.strip_prefix("0o") {
        (8, oct)
    } else if let Some(bin) = clean.strip_prefix("0b") {
        (2, bin)
    } else {
        (10, clean.as_str())
    };
    // Strip a type suffix (`u8`, `usize`, `i64`, …).
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    match &digits[end..] {
        "" | "u8" | "u16" | "u32" | "u64" | "u128" | "usize" | "i8" | "i16" | "i32" | "i64"
        | "i128" | "isize" => u64::from_str_radix(&digits[..end], radix).ok(),
        _ => None,
    }
}

/// Extracts the raw bytes of a byte-string literal token (`b"TACD"`,
/// `br#"x"#`). `None` for other strings or when escapes are present
/// (wire magics are plain ASCII).
pub fn byte_string_value(text: &str) -> Option<Vec<u8>> {
    let rest = text.strip_prefix('b')?;
    let rest = rest.strip_prefix('r').unwrap_or(rest);
    let rest = rest.trim_matches('#');
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('\\') {
        return None;
    }
    Some(inner.bytes().collect())
}
