#![forbid(unsafe_code)]

//! # tac-codec
//!
//! The pluggable **scalar-codec backend layer** of the TAC stack. TAC's
//! contribution (HPDC'22) is a per-level *pre-process* — the partitioned,
//! padded, batched arrays it produces can feed *any* error-bounded
//! compressor, and the follow-up TAC+ swaps prediction backends per level
//! to improve ratio further. This crate makes that pluggability concrete:
//!
//! * [`ScalarCodec`] — the trait every backend implements: error-bounded
//!   [`compress`](ScalarCodec::compress) /
//!   [`decompress`](ScalarCodec::decompress) of an `f64` array of known
//!   [`Dims`], plus [`compress_with_recon`](ScalarCodec::compress_with_recon)
//!   for distortion metrics without a decode pass and
//!   [`looks_like`](ScalarCodec::looks_like) stream sniffing;
//! * [`CodecId`] — a **stable one-byte wire tag** per backend, stored in
//!   `tac-core`'s level payloads and chunk tables so containers are
//!   self-describing;
//! * three registered backends: [`SzCodec`] (the SZ-style
//!   predict-quantize-encode compressor from `tac-sz`), [`PcoLite`]
//!   (a pcodec-inspired delta + per-page adaptive bit-packing codec),
//!   and [`PcoAns`] (PcoLite's front end with a tabled-ANS entropy
//!   stage and branch-free batch decode kernels);
//! * a registry — [`codec_for`], [`registered`], [`sniff_codec`],
//!   [`looks_like_stream`] — that `tac-core` dispatches through.
//!
//! ```
//! use tac_codec::{codec_for, CodecConfig, CodecId, Dims};
//!
//! let data: Vec<f64> = (0..512).map(|i| (i as f64 * 0.02).sin()).collect();
//! for id in CodecId::all() {
//!     let codec = codec_for(id);
//!     let bytes = codec
//!         .compress(&data, Dims::D3(8, 8, 8), &CodecConfig::abs(1e-4))
//!         .unwrap();
//!     let (restored, dims) = codec.decompress(&bytes).unwrap();
//!     assert_eq!(dims, Dims::D3(8, 8, 8));
//!     for (a, b) in data.iter().zip(&restored) {
//!         assert!((a - b).abs() <= 1e-4);
//!     }
//! }
//! ```
//!
//! ## Registering a third backend
//!
//! 1. Pick the next free wire tag and add a variant to [`CodecId`]
//!    (tags are append-only: existing numbers are frozen by shipped
//!    containers; never reuse or renumber them). Extend
//!    [`CodecId::from_tag`], [`CodecId::label`], and [`CodecId::all`].
//! 2. Implement [`ScalarCodec`] for a unit struct. The stream your
//!    `compress` emits must start with the magic number returned by
//!    [`magic`](ScalarCodec::magic), unique among backends and no
//!    prefix of another backend's magic, so [`sniff_codec`] (which
//!    probes longest magic first) and the container's codec-tag
//!    validation can tell streams apart; `decompress` must reject
//!    foreign or corrupt bytes with an error (never panic, never
//!    mis-decode).
//! 3. Return the new backend from [`codec_for`] ([`registered`] and
//!    the sniffers derive from [`CodecId::all`] automatically).
//! 4. That is the whole integration: `tac-core` threads any
//!    `TacConfig { codec, .. }` through planning, the parallel engine,
//!    the container, and ROI decoding via this registry, and the
//!    `codec_comparison` experiment in `tac-bench` picks up every
//!    registered backend automatically.
//!
//! The error-bound contract every backend must uphold: for each finite
//! input value `v` and its reconstruction `v'`, `|v - v'| <= abs_eb`;
//! non-finite values round-trip bit-exactly.

#![warn(missing_docs)]

mod ans;
mod bins;
mod error;
mod pco;
mod pco_ans;
mod sz;

pub use error::CodecError;
pub use pco::PcoLite;
pub use pco_ans::PcoAns;
pub use sz::SzCodec;
// The array-shape and bound vocabulary is shared with the SZ substrate;
// the element-type vocabulary with the dtype substrate.
pub use tac_dtype::{Element, TacDtype};
pub use tac_sz::{Dims, ErrorBound};

use serde::{Deserialize, Serialize};

/// Stable one-byte identifier of a scalar-codec backend — the tag
/// `tac-core` writes into level payloads and v3 chunk tables. Wire tags
/// are append-only; renumbering breaks every shipped container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodecId {
    /// The SZ-style predict–quantize–encode compressor (`tac-sz`). Wire
    /// tag 0; the implicit codec of every pre-codec (v1/v2) container.
    Sz,
    /// The pcodec-inspired delta + per-page adaptive bit-packing codec.
    /// Wire tag 1.
    PcoLite,
    /// The tabled-ANS codec: PcoLite's quantize–delta–zigzag front end
    /// with per-page greedy binning, a tabled rANS entropy stage over
    /// bin tokens, and branch-free batch decode. Wire tag 2.
    PcoAns,
}

impl CodecId {
    /// The wire tag (stable across releases).
    pub fn tag(self) -> u8 {
        match self {
            CodecId::Sz => 0,
            CodecId::PcoLite => 1,
            CodecId::PcoAns => 2,
        }
    }

    /// Inverse of [`CodecId::tag`].
    pub fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => CodecId::Sz,
            1 => CodecId::PcoLite,
            2 => CodecId::PcoAns,
            _ => return Err(CodecError::UnknownCodec(tag)),
        })
    }

    /// Human-readable name used by benchmark tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            CodecId::Sz => "sz",
            CodecId::PcoLite => "pco-lite",
            CodecId::PcoAns => "pco-ans",
        }
    }

    /// Every registered codec id, in wire-tag order.
    pub fn all() -> [CodecId; 3] {
        [CodecId::Sz, CodecId::PcoLite, CodecId::PcoAns]
    }

    /// Relative decode-throughput class of the backend, normalized to
    /// the SZ substrate (1.0). The values come from the repeatable
    /// raw-dense-stream measurements behind `BENCH_codec.json` (PcoLite
    /// ~2.4x, PcoAns ~5.4x SZ decode speed) and are deliberately coarse:
    /// the adaptive selector (`Method::Auto` in `tac-core`) uses them
    /// only as a small tie-break weight between candidates whose
    /// estimated sizes are close, never as a substitute for measuring.
    pub fn throughput_class(self) -> f64 {
        match self {
            CodecId::Sz => 1.0,
            CodecId::PcoLite => 2.4,
            CodecId::PcoAns => 5.4,
        }
    }
}

impl Default for CodecId {
    /// [`CodecId::Sz`] — the codec of every container written before the
    /// backend layer existed.
    fn default() -> Self {
        CodecId::Sz
    }
}

impl std::fmt::Display for CodecId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Backend-agnostic per-stream compression parameters.
///
/// The error bound arrives here already **resolved to an absolute
/// epsilon** (TAC resolves relative bounds per level, against each
/// level's own value range). The remaining knobs are hints: a backend
/// uses the ones that apply to it and ignores the rest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecConfig {
    /// Absolute point-wise error bound (`|v - v'| <= abs_eb`).
    pub abs_eb: f64,
    /// Quantizer capacity (SZ: number of quantization bins).
    pub capacity: usize,
    /// Whether a trailing lossless (LZSS) stage may run.
    pub lossless: bool,
    /// Whether block-regression prediction may run (SZ only).
    pub regression: bool,
}

impl CodecConfig {
    /// Configuration with the given absolute bound and default knobs.
    pub fn abs(abs_eb: f64) -> Self {
        CodecConfig {
            abs_eb,
            capacity: 65536,
            lossless: true,
            regression: true,
        }
    }

    /// Validates the resolved bound.
    pub fn validate(&self) -> Result<(), CodecError> {
        if self.abs_eb <= 0.0 || !self.abs_eb.is_finite() {
            return Err(CodecError::InvalidConfig(format!(
                "absolute error bound must be positive and finite, got {}",
                self.abs_eb
            )));
        }
        Ok(())
    }
}

/// An error-bounded lossy compressor for flat `f64` arrays of known
/// shape — the backend interface TAC's per-level pipeline dispatches
/// through.
///
/// Implementations must be deterministic (identical input and
/// configuration produce identical bytes — the parallel engine's
/// byte-identity guarantee depends on it) and must uphold the bound
/// contract: finite values reconstruct within `cfg.abs_eb`, non-finite
/// values bit-exactly.
pub trait ScalarCodec: Send + Sync {
    /// The backend's stable wire identity.
    fn id(&self) -> CodecId;

    /// Compresses `data` of shape `dims` under `cfg`.
    fn compress(&self, data: &[f64], dims: Dims, cfg: &CodecConfig) -> Result<Vec<u8>, CodecError>;

    /// Like [`ScalarCodec::compress`], additionally returning the exact
    /// reconstruction the decompressor will produce, so distortion
    /// metrics need no decode pass.
    fn compress_with_recon(
        &self,
        data: &[f64],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f64>), CodecError>;

    /// Decompresses a stream produced by this backend, returning the
    /// values and their shape. Foreign or corrupt bytes must error, as
    /// must `f32` streams ([`CodecError::WrongDtype`]).
    fn decompress(&self, bytes: &[u8]) -> Result<(Vec<f64>, Dims), CodecError>;

    /// [`ScalarCodec::compress`] for `f32` elements: verbatim/exception
    /// values are stored at 4 bytes and the stream's dtype flag is set.
    fn compress_f32(
        &self,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<Vec<u8>, CodecError>;

    /// [`ScalarCodec::compress_with_recon`] for `f32` elements.
    fn compress_with_recon_f32(
        &self,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f32>), CodecError>;

    /// [`ScalarCodec::decompress`] for `f32` streams. Rejects `f64`
    /// streams with [`CodecError::WrongDtype`].
    fn decompress_f32(&self, bytes: &[u8]) -> Result<(Vec<f32>, Dims), CodecError>;

    /// The backend's stream magic number — the byte prefix every stream
    /// it emits starts with. Must be unique among registered backends
    /// and not a prefix of another backend's magic; [`sniff_codec`]
    /// probes backends longest-magic-first so a longer magic can never
    /// be shadowed by a shorter one.
    fn magic(&self) -> &'static [u8];

    /// Cheap magic-number sniff: does `bytes` start like one of this
    /// backend's streams?
    fn looks_like(&self, bytes: &[u8]) -> bool;
}

/// Element types the codec layer can move through a [`ScalarCodec`]:
/// the bridge between `tac-dtype`'s sealed [`Element`] vocabulary and the
/// width-specific trait entry points.
///
/// Generic pipeline code writes `fn f<T: CodecElement>(...)` and calls
/// `T::codec_compress(codec, ...)`; monomorphization resolves the width
/// **once per stream**, so decode hot loops carry no per-value dtype
/// branches and no extra trait objects.
pub trait CodecElement: Element {
    /// Routes to the width-matching [`ScalarCodec`] compress entry point.
    fn codec_compress(
        codec: &dyn ScalarCodec,
        data: &[Self],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<Vec<u8>, CodecError>;

    /// Routes to the width-matching compress-with-recon entry point.
    fn codec_compress_with_recon(
        codec: &dyn ScalarCodec,
        data: &[Self],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<Self>), CodecError>;

    /// Routes to the width-matching decompress entry point.
    fn codec_decompress(
        codec: &dyn ScalarCodec,
        bytes: &[u8],
    ) -> Result<(Vec<Self>, Dims), CodecError>;
}

impl CodecElement for f64 {
    fn codec_compress(
        codec: &dyn ScalarCodec,
        data: &[f64],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<Vec<u8>, CodecError> {
        codec.compress(data, dims, cfg)
    }

    fn codec_compress_with_recon(
        codec: &dyn ScalarCodec,
        data: &[f64],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f64>), CodecError> {
        codec.compress_with_recon(data, dims, cfg)
    }

    fn codec_decompress(
        codec: &dyn ScalarCodec,
        bytes: &[u8],
    ) -> Result<(Vec<f64>, Dims), CodecError> {
        codec.decompress(bytes)
    }
}

impl CodecElement for f32 {
    fn codec_compress(
        codec: &dyn ScalarCodec,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<Vec<u8>, CodecError> {
        codec.compress_f32(data, dims, cfg)
    }

    fn codec_compress_with_recon(
        codec: &dyn ScalarCodec,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f32>), CodecError> {
        codec.compress_with_recon_f32(data, dims, cfg)
    }

    fn codec_decompress(
        codec: &dyn ScalarCodec,
        bytes: &[u8],
    ) -> Result<(Vec<f32>, Dims), CodecError> {
        codec.decompress_f32(bytes)
    }
}

/// The registered backend for a codec id.
pub fn codec_for(id: CodecId) -> &'static dyn ScalarCodec {
    match id {
        CodecId::Sz => &SzCodec,
        CodecId::PcoLite => &PcoLite,
        CodecId::PcoAns => &PcoAns,
    }
}

/// Every registered backend, in wire-tag order (derived from
/// [`CodecId::all`], so a new backend only has to be added there and in
/// [`codec_for`]).
pub fn registered() -> [&'static dyn ScalarCodec; 3] {
    CodecId::all().map(codec_for)
}

/// Identifies which registered codec produced `bytes`, by magic number.
///
/// Backends are probed **longest magic first** (ties broken by wire
/// tag), so a backend whose magic happens to extend another's can never
/// be mis-sniffed as the shorter match. An unrecognized stream is a
/// typed [`CodecError::UnknownStream`] carrying the offending prefix —
/// not a silent first-match fallback.
pub fn sniff_codec(bytes: &[u8]) -> Result<CodecId, CodecError> {
    let mut backends = registered();
    backends.sort_by(|a, b| {
        b.magic()
            .len()
            .cmp(&a.magic().len())
            .then(a.id().tag().cmp(&b.id().tag()))
    });
    backends
        .into_iter()
        .find(|c| c.looks_like(bytes))
        .map(|c| c.id())
        .ok_or_else(|| CodecError::UnknownStream {
            prefix: bytes.iter().copied().take(4).collect(),
        })
}

/// Codec-agnostic extension of `tac_sz::looks_like_stream`: true when
/// **any** registered backend recognizes the bytes as one of its
/// streams.
pub fn looks_like_stream(bytes: &[u8]) -> bool {
    sniff_codec(bytes).is_ok()
}

/// Sniffs the element type of a recognized stream without decoding it.
/// Every registered backend keeps its flag byte at offset 5 with bit 1
/// meaning `f32`; `None` when no backend recognizes the bytes.
pub fn stream_dtype(bytes: &[u8]) -> Option<TacDtype> {
    sniff_codec(bytes).ok()?;
    let flags = *bytes.get(5)?;
    Some(if flags & 0b0000_0010 != 0 {
        TacDtype::F32
    } else {
        TacDtype::F64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.013).sin() * 4.0 + (i as f64 * 0.002).cos())
            .collect()
    }

    #[test]
    fn codec_ids_roundtrip_and_stay_stable() {
        assert_eq!(CodecId::Sz.tag(), 0, "Sz wire tag is frozen at 0");
        assert_eq!(CodecId::PcoLite.tag(), 1, "PcoLite wire tag is frozen at 1");
        assert_eq!(CodecId::PcoAns.tag(), 2, "PcoAns wire tag is frozen at 2");
        for id in CodecId::all() {
            assert_eq!(CodecId::from_tag(id.tag()).unwrap(), id);
            assert_eq!(codec_for(id).id(), id);
        }
        assert!(CodecId::from_tag(99).is_err());
        assert_eq!(CodecId::default(), CodecId::Sz);
    }

    #[test]
    fn throughput_classes_are_normalized_to_sz() {
        assert_eq!(CodecId::Sz.throughput_class(), 1.0);
        for id in CodecId::all() {
            let class = id.throughput_class();
            assert!(class >= 1.0 && class.is_finite(), "{id}: {class}");
        }
        // The batch-decode backends really are faster than the SZ
        // substrate, and the tabled-ANS kernels are the fastest.
        assert!(CodecId::PcoLite.throughput_class() > CodecId::Sz.throughput_class());
        assert!(CodecId::PcoAns.throughput_class() > CodecId::PcoLite.throughput_class());
    }

    #[test]
    fn every_backend_roundtrips_within_bound() {
        let data = smooth(1000);
        for id in CodecId::all() {
            let codec = codec_for(id);
            for dims in [Dims::D1(1000), Dims::D2(50, 20), Dims::D3(10, 10, 10)] {
                let cfg = CodecConfig::abs(1e-3);
                let (bytes, recon) = codec.compress_with_recon(&data, dims, &cfg).unwrap();
                let (out, out_dims) = codec.decompress(&bytes).unwrap();
                assert_eq!(out_dims, dims, "{id}");
                for (i, (a, b)) in data.iter().zip(&out).enumerate() {
                    assert!((a - b).abs() <= 1e-3 * (1.0 + 1e-12), "{id} point {i}");
                }
                // compress_with_recon promises the decoder's exact output.
                for (a, b) in recon.iter().zip(&out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{id} recon mismatch");
                }
            }
        }
    }

    #[test]
    fn sniffing_tells_backends_apart() {
        let data = smooth(256);
        let cfg = CodecConfig::abs(1e-4);
        for id in CodecId::all() {
            let bytes = codec_for(id).compress(&data, Dims::D1(256), &cfg).unwrap();
            assert_eq!(sniff_codec(&bytes), Ok(id));
            assert!(looks_like_stream(&bytes));
            assert!(bytes.starts_with(codec_for(id).magic()), "{id}");
            // Every *other* backend must refuse the stream outright.
            for other in CodecId::all() {
                if other != id {
                    assert!(!codec_for(other).looks_like(&bytes));
                    assert!(
                        codec_for(other).decompress(&bytes).is_err(),
                        "{other} decoded a {id} stream"
                    );
                }
            }
        }
        assert!(matches!(
            sniff_codec(b"not a stream at all"),
            Err(CodecError::UnknownStream { ref prefix }) if prefix == b"not "
        ));
        assert!(matches!(
            sniff_codec(&[]),
            Err(CodecError::UnknownStream { ref prefix }) if prefix.is_empty()
        ));
        assert!(!looks_like_stream(&[]));
    }

    #[test]
    fn magics_are_unique_and_prefix_free() {
        // The longest-first probe order in sniff_codec is only sound if
        // no registered magic is a prefix of another's.
        let backends = registered();
        for a in &backends {
            assert!(!a.magic().is_empty(), "{} has an empty magic", a.id());
            for b in &backends {
                if a.id() != b.id() {
                    assert!(
                        !a.magic().starts_with(b.magic()),
                        "{} magic is prefixed by {}",
                        a.id(),
                        b.id()
                    );
                }
            }
        }
    }

    #[test]
    fn every_backend_roundtrips_f32_within_bound() {
        let data: Vec<f32> = smooth(1000).iter().map(|&v| v as f32).collect();
        for id in CodecId::all() {
            let codec = codec_for(id);
            let cfg = CodecConfig::abs(1e-3);
            let (bytes, recon) = codec
                .compress_with_recon_f32(&data, Dims::D2(50, 20), &cfg)
                .unwrap();
            assert_eq!(stream_dtype(&bytes), Some(TacDtype::F32), "{id}");
            let (out, dims) = codec.decompress_f32(&bytes).unwrap();
            assert_eq!(dims, Dims::D2(50, 20), "{id}");
            for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
                assert!(
                    (a as f64 - b as f64).abs() <= 1e-3 * (1.0 + 1e-6),
                    "{id} point {i}: {a} vs {b}"
                );
            }
            for (a, b) in recon.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "{id} recon mismatch");
            }
        }
    }

    #[test]
    fn dtype_mismatch_errors_are_typed_for_all_backends() {
        let data64 = smooth(64);
        let data32: Vec<f32> = data64.iter().map(|&v| v as f32).collect();
        let cfg = CodecConfig::abs(1e-3);
        for id in CodecId::all() {
            let codec = codec_for(id);
            let b64 = codec.compress(&data64, Dims::D1(64), &cfg).unwrap();
            let b32 = codec.compress_f32(&data32, Dims::D1(64), &cfg).unwrap();
            assert_eq!(stream_dtype(&b64), Some(TacDtype::F64), "{id}");
            assert!(
                matches!(
                    codec.decompress_f32(&b64),
                    Err(CodecError::WrongDtype { .. })
                ),
                "{id} decoded an f64 stream through the f32 entry point"
            );
            assert!(
                matches!(codec.decompress(&b32), Err(CodecError::WrongDtype { .. })),
                "{id} decoded an f32 stream through the f64 entry point"
            );
        }
        assert_eq!(stream_dtype(b"not a stream"), None);
    }

    #[test]
    fn codec_element_dispatch_matches_direct_calls() {
        // The monomorphized CodecElement routes must hit the exact same
        // entry points as direct calls — byte-for-byte.
        let data64 = smooth(256);
        let data32: Vec<f32> = data64.iter().map(|&v| v as f32).collect();
        let cfg = CodecConfig::abs(1e-4);
        for id in CodecId::all() {
            let codec = codec_for(id);
            let via_t = f64::codec_compress(codec, &data64, Dims::D1(256), &cfg).unwrap();
            let direct = codec.compress(&data64, Dims::D1(256), &cfg).unwrap();
            assert_eq!(via_t, direct, "{id} f64");
            let (out, _) = f64::codec_decompress(codec, &via_t).unwrap();
            assert_eq!(out.len(), data64.len());

            let via_t = f32::codec_compress(codec, &data32, Dims::D1(256), &cfg).unwrap();
            let direct = codec.compress_f32(&data32, Dims::D1(256), &cfg).unwrap();
            assert_eq!(via_t, direct, "{id} f32");
            let (out, _) = f32::codec_decompress(codec, &via_t).unwrap();
            assert_eq!(out.len(), data32.len());
        }
    }

    #[test]
    fn invalid_config_is_rejected_by_all_backends() {
        let data = smooth(8);
        for id in CodecId::all() {
            let codec = codec_for(id);
            for eb in [0.0, -1.0, f64::NAN, f64::INFINITY] {
                let cfg = CodecConfig::abs(eb);
                assert!(
                    codec.compress(&data, Dims::D1(8), &cfg).is_err(),
                    "{id} accepted eb {eb}"
                );
            }
            // Shape mismatch.
            assert!(codec
                .compress(&data, Dims::D2(3, 3), &CodecConfig::abs(1.0))
                .is_err());
        }
    }
}
