//! Tabled rANS (range asymmetric numeral system) entropy stage of
//! [`crate::PcoAns`].
//!
//! The coder is the 32-bit, 16-bit-renormalizing rANS variant used by
//! pcodec and ryg_rans: the state lives in `[1 << 16, 1 << 32)` and
//! every decode step consumes at most one 16-bit word. [`LANES`]
//! states are interleaved over symbol positions modulo [`LANES`] so
//! the per-state dependency chains (table load → multiply → refill)
//! overlap in flight — with four lanes the token pass is
//! throughput-bound, not latency-bound. Frequencies are normalized to
//! [`TABLE_SIZE`], making the decode step a mask, one table load, a
//! multiply and an add — no division and no per-symbol branching (the
//! word refill is computed branch-free from the state comparison).
//!
//! The encoder walks symbols in reverse and the emitted word stream is
//! then reversed, so the decoder reads words strictly forward. The
//! final encoder states are serialized and seed the decoder; a fully
//! consumed page must return every state to [`RANS_L`] — a whole-page
//! integrity check corrupt streams almost always fail.

use crate::CodecError;

/// log2 of the normalized frequency total.
pub(crate) const TABLE_BITS: u32 = 11;
/// Normalized frequency total: every page's bin weights sum to exactly
/// this. tac-lint R3 cross-checks it against `1 << TABLE_BITS`.
pub(crate) const TABLE_SIZE: usize = 2048;
/// Lower bound of the normalized state interval: decode refills below
/// it, and a drained stream rests exactly on it.
pub(crate) const RANS_L: u32 = 1 << 16;
/// Interleaved rANS states per stream. Symbol `i` decodes on lane
/// `i % LANES`; every batch but a page's last must cover a multiple of
/// this so lane assignment stays aligned across calls.
pub(crate) const LANES: usize = 4;

/// One decode-table slot, packed into a `u32` so a decode step costs a
/// single 4-byte load: `freq` in bits 0..12, `offs` in bits 12..24,
/// `sym` in bits 24..31. `offs` is `slot - cum(sym)`, precomputed per
/// slot so the step does not chase a second per-symbol table; both
/// fields fit 12 bits because they are bounded by [`TABLE_SIZE`].
type Slot = u32;

/// Packs one slot. `freq` and `offs` are at most [`TABLE_SIZE`], `sym`
/// at most the 65-class alphabet, so the fields cannot collide.
fn pack_slot(sym: u8, freq: u16, offs: u16) -> Slot {
    u32::from(freq) | (u32::from(offs) << 12) | (u32::from(sym) << 24)
}

/// One symbol's normalized frequency range (the encoder's view).
#[derive(Debug, Clone, Copy, Default)]
struct SymRange {
    freq: u16,
    cum: u16,
}

/// The encoder's frequency table (per-symbol ranges only — the decoder
/// uses the slot-indexed [`DecodeTable`] instead).
pub(crate) struct AnsTable {
    syms: Vec<SymRange>,
}

impl AnsTable {
    /// Builds the table from normalized weights. Every weight must be
    /// nonzero and the weights must sum to exactly [`TABLE_SIZE`];
    /// wire-provided weights that do not are corrupt.
    pub(crate) fn from_weights(weights: &[u16]) -> Result<AnsTable, CodecError> {
        if weights.is_empty() {
            return Err(CodecError::Corrupt("ANS table with no symbols".into()));
        }
        let mut syms = Vec::with_capacity(weights.len());
        let mut cum = 0usize;
        for (s, &freq) in weights.iter().enumerate() {
            if usize::from(u8::MAX) < s {
                return Err(CodecError::Corrupt(format!(
                    "ANS symbol index {s} overflows u8"
                )));
            }
            if freq == 0 || cum.wrapping_add(usize::from(freq)) > TABLE_SIZE {
                return Err(CodecError::Corrupt(format!(
                    "ANS weight {freq} for symbol {s} breaks the table total"
                )));
            }
            // cum < TABLE_SIZE here, so the narrowing is value-preserving.
            let cum16 = u16::try_from(cum).unwrap_or(0);
            syms.push(SymRange { freq, cum: cum16 });
            cum = cum.wrapping_add(usize::from(freq));
        }
        if cum != TABLE_SIZE {
            return Err(CodecError::Corrupt(format!(
                "ANS weights sum to {cum}, expected {TABLE_SIZE}"
            )));
        }
        Ok(AnsTable { syms })
    }
}

/// The decoder's slot-indexed table: one entry per normalized-frequency
/// slot, sized so a masked state maps straight to its entry. Kept as a
/// fixed-size array so the per-symbol lookup compiles without a bounds
/// check, and designed to be reused across pages — [`DecodeTable::fill`]
/// overwrites in place, so the batch kernel allocates nothing per page.
pub(crate) struct DecodeTable {
    slots: [Slot; TABLE_SIZE],
}

impl DecodeTable {
    /// An empty table (every slot decodes symbol 0); call
    /// [`DecodeTable::fill`] before decoding.
    pub(crate) fn new() -> DecodeTable {
        DecodeTable {
            slots: [pack_slot(0, 1, 0); TABLE_SIZE],
        }
    }

    /// Rebuilds the table in place from wire-provided weights, with the
    /// same validation as [`AnsTable::from_weights`].
    pub(crate) fn fill(&mut self, weights: &[u16]) -> Result<(), CodecError> {
        if weights.is_empty() {
            return Err(CodecError::Corrupt("ANS table with no symbols".into()));
        }
        let mut cum = 0usize;
        for (s, &freq) in weights.iter().enumerate() {
            let sym = u8::try_from(s)
                .map_err(|_| CodecError::Corrupt(format!("ANS symbol index {s} overflows u8")))?;
            if freq == 0 || cum.wrapping_add(usize::from(freq)) > TABLE_SIZE {
                return Err(CodecError::Corrupt(format!(
                    "ANS weight {freq} for symbol {s} breaks the table total"
                )));
            }
            for (offs, slot) in (0..freq).zip(self.slots.iter_mut().skip(cum)) {
                *slot = pack_slot(sym, freq, offs);
            }
            cum = cum.wrapping_add(usize::from(freq));
        }
        if cum != TABLE_SIZE {
            return Err(CodecError::Corrupt(format!(
                "ANS weights sum to {cum}, expected {TABLE_SIZE}"
            )));
        }
        Ok(())
    }
}

/// Scales raw symbol counts to weights summing exactly [`TABLE_SIZE`],
/// keeping every present symbol's weight nonzero. Rounding drift is
/// pushed onto the heaviest symbols, which distorts their code lengths
/// least.
// tac-lint: allow(panic, arith) -- encoder-only: at most TABLE_SIZE symbols with counts bounded by the page length, so the u64 scaling sums cannot overflow and the drift loops index within bounds.
pub(crate) fn normalize_weights(counts: &[u32]) -> Vec<u16> {
    let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    debug_assert!(total > 0, "cannot normalize an empty histogram");
    let mut w: Vec<u64> = counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0
            } else {
                ((u64::from(c) * TABLE_SIZE as u64) / total.max(1)).max(1)
            }
        })
        .collect();
    let mut sum: u64 = w.iter().sum();
    let argmax = |w: &[u64], floor: u64| -> usize {
        let mut best = 0usize;
        let mut best_v = 0u64;
        for (i, &v) in w.iter().enumerate() {
            if v > floor && v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    };
    while sum > TABLE_SIZE as u64 {
        let i = argmax(&w, 1);
        w[i] -= 1;
        sum -= 1;
    }
    while sum < TABLE_SIZE as u64 {
        let i = argmax(&w, 0);
        w[i] += 1;
        sum += 1;
    }
    w.iter().map(|&x| x as u16).collect()
}

/// Encodes `symbols` against `table`, returning the decoder-ordered
/// word stream (little-endian `u16`s) and the [`LANES`] seed states
/// (lane 0 first).
// tac-lint: allow(panic, arith) -- encoder-only: symbols come from the in-crate bin map (always < syms.len()), the state arithmetic is the bounded rANS step, and the `as u16` word casts truncate intentionally.
pub(crate) fn encode(table: &AnsTable, symbols: &[u8]) -> (Vec<u8>, [u32; LANES]) {
    let mut words: Vec<u16> = Vec::with_capacity(symbols.len() / 2);
    let mut lanes = [RANS_L; LANES];
    for (i, &s) in symbols.iter().enumerate().rev() {
        let r = table.syms[usize::from(s)];
        let freq = u32::from(r.freq);
        let x_max = u64::from(freq) << (32 - TABLE_BITS);
        let x = &mut lanes[i % LANES];
        while u64::from(*x) >= x_max {
            words.push(*x as u16);
            *x >>= 16;
        }
        *x = ((*x / freq) << TABLE_BITS) + (*x % freq) + u32::from(r.cum);
    }
    words.reverse();
    let mut bytes = Vec::with_capacity(words.len() * 2);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    (bytes, lanes)
}

/// Streaming [`LANES`]-lane decoder over one page's word stream.
pub(crate) struct AnsDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    x0: u32,
    x1: u32,
    x2: u32,
    x3: u32,
}

impl<'a> AnsDecoder<'a> {
    /// A decoder over `bytes`, seeded with the serialized final encoder
    /// states (lane 0 first).
    pub(crate) fn new(bytes: &'a [u8], seeds: [u32; LANES]) -> AnsDecoder<'a> {
        let [x0, x1, x2, x3] = seeds;
        AnsDecoder {
            bytes,
            pos: 0,
            x0,
            x1,
            x2,
            x3,
        }
    }

    /// One decode step on one lane. The refill is branch-free: the
    /// comparison result masks both the word and the position advance.
    /// Past-the-end reads see zero bytes; [`AnsDecoder::finished`]
    /// rejects streams that actually ran short.
    ///
    /// `slots` is the fixed-size table array, so the masked index
    /// compiles to a single unchecked load (the mask proves the bound),
    /// and the word refill is one 16-bit gather with a predictable
    /// in-bounds branch.
    #[inline(always)]
    fn step(bytes: &[u8], pos: &mut usize, slots: &[Slot; TABLE_SIZE], x: u32) -> (u32, u8) {
        let e = slots
            .get((x as usize) & (TABLE_SIZE - 1))
            .copied()
            .unwrap_or(pack_slot(0, 1, 0));
        let x = (e & 0xFFF)
            .wrapping_mul(x >> TABLE_BITS)
            .wrapping_add((e >> 12) & 0xFFF);
        let need = u32::from(x < RANS_L);
        let word = match bytes.get(*pos..pos.wrapping_add(2)) {
            Some(s) => u32::from(u16::from_le_bytes(s.try_into().unwrap_or([0u8; 2]))),
            None => u32::from(bytes.get(*pos).copied().unwrap_or(0)),
        };
        let x = (x << (16 * need)) | (word * need);
        *pos = pos.wrapping_add((need as usize) * 2);
        // tac-lint: allow(arith) -- the sym field occupies bits 24..31 of the packed slot, so the shifted value is at most 7 bits and the cast is value-preserving.
        (x, (e >> 24) as u8)
    }

    /// Decodes `out.len()` symbols in forward order. Lane assignment is
    /// global across calls as long as every call but the last covers a
    /// multiple of [`LANES`] — the batch kernel's power-of-two batches
    /// guarantee it.
    #[inline]
    pub(crate) fn decode_into(&mut self, table: &DecodeTable, out: &mut [u8]) {
        let slots = &table.slots;
        let mut x0 = self.x0;
        let mut x1 = self.x1;
        let mut x2 = self.x2;
        let mut x3 = self.x3;
        let mut pos = self.pos;
        let mut quads = out.chunks_exact_mut(LANES);
        for quad in &mut quads {
            if let [a, b, c, d] = quad {
                let (nx, s) = Self::step(self.bytes, &mut pos, slots, x0);
                *a = s;
                x0 = nx;
                let (nx, s) = Self::step(self.bytes, &mut pos, slots, x1);
                *b = s;
                x1 = nx;
                let (nx, s) = Self::step(self.bytes, &mut pos, slots, x2);
                *c = s;
                x2 = nx;
                let (nx, s) = Self::step(self.bytes, &mut pos, slots, x3);
                *d = s;
                x3 = nx;
            }
        }
        let mut rest = quads.into_remainder().iter_mut();
        if let Some(a) = rest.next() {
            let (nx, s) = Self::step(self.bytes, &mut pos, slots, x0);
            *a = s;
            x0 = nx;
        }
        if let Some(b) = rest.next() {
            let (nx, s) = Self::step(self.bytes, &mut pos, slots, x1);
            *b = s;
            x1 = nx;
        }
        if let Some(c) = rest.next() {
            let (nx, s) = Self::step(self.bytes, &mut pos, slots, x2);
            *c = s;
            x2 = nx;
        }
        self.x0 = x0;
        self.x1 = x1;
        self.x2 = x2;
        self.x3 = x3;
        self.pos = pos;
    }

    /// Whether the stream drained exactly: every word consumed and all
    /// states back at their seeds.
    pub(crate) fn finished(&self) -> bool {
        self.pos == self.bytes.len()
            && self.x0 == RANS_L
            && self.x1 == RANS_L
            && self.x2 == RANS_L
            && self.x3 == RANS_L
    }

    /// Decoder renormalizations so far (for observability). Every
    /// renormalization consumes exactly one 16-bit word, so the count
    /// falls out of the read position — nothing is tallied in the hot
    /// loop.
    pub(crate) fn renorms(&self) -> u64 {
        (self.pos / 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(weights: &[u16], symbols: &[u8]) -> Vec<u8> {
        let table = AnsTable::from_weights(weights).unwrap();
        let mut dtable = DecodeTable::new();
        dtable.fill(weights).unwrap();
        let (bytes, seeds) = encode(&table, symbols);
        let mut dec = AnsDecoder::new(&bytes, seeds);
        let mut out = vec![0u8; symbols.len()];
        // Decode in uneven chunks to exercise cross-call lane state
        // (all chunks but the last must be even).
        let (head, tail) = out.split_at_mut(symbols.len() / LANES * LANES);
        for chunk in head.chunks_mut(64) {
            dec.decode_into(&dtable, chunk);
        }
        dec.decode_into(&dtable, tail);
        assert!(dec.finished(), "stream must drain to its seed states");
        out
    }

    #[test]
    fn skewed_alphabet_roundtrips() {
        let counts = [1000u32, 200, 30, 4, 1];
        let weights = normalize_weights(&counts);
        assert_eq!(weights.iter().map(|&w| u32::from(w)).sum::<u32>(), 2048);
        let symbols: Vec<u8> = (0..4097u32)
            .map(|i| {
                let h = i.wrapping_mul(2654435761) >> 16;
                match h % 100 {
                    0 => 4,
                    1..=3 => 3,
                    4..=10 => 2,
                    11..=30 => 1,
                    _ => 0,
                }
            })
            .collect();
        assert_eq!(roundtrip(&weights, &symbols), symbols);
    }

    #[test]
    fn single_symbol_alphabet_emits_no_words() {
        let table = AnsTable::from_weights(&[2048]).unwrap();
        let symbols = vec![0u8; 1000];
        let (bytes, seeds) = encode(&table, &symbols);
        assert!(bytes.is_empty(), "degenerate alphabet needs no payload");
        assert_eq!(seeds, [RANS_L; LANES]);
        assert_eq!(roundtrip(&[2048], &symbols), symbols);
    }

    #[test]
    fn uniform_alphabet_costs_about_log2n_bits() {
        let weights = normalize_weights(&[1; 64]);
        let table = AnsTable::from_weights(&weights).unwrap();
        let symbols: Vec<u8> = (0..8192u32).map(|i| (i % 64) as u8).collect();
        let (bytes, _) = encode(&table, &symbols);
        // 64 equiprobable symbols = 6 bits each = 6144 bytes for 8192.
        let ideal = 8192 * 6 / 8;
        assert!(
            bytes.len() <= ideal + ideal / 50,
            "{} bytes vs ideal {ideal}",
            bytes.len()
        );
        assert_eq!(roundtrip(&weights, &symbols), symbols);
    }

    #[test]
    fn empty_symbol_stream_is_legal() {
        let table = AnsTable::from_weights(&[1024, 1024]).unwrap();
        let (bytes, seeds) = encode(&table, &[]);
        assert!(bytes.is_empty());
        let dec = AnsDecoder::new(&bytes, seeds);
        assert!(dec.finished());
    }

    #[test]
    fn bad_weight_tables_are_rejected() {
        let mut dtable = DecodeTable::new();
        let bads: [&[u16]; 4] = [
            &[],
            &[0, 2048],    // zero weight
            &[1024, 1023], // short sum
            &[2048, 1],    // overflow sum
        ];
        for bad in bads {
            assert!(AnsTable::from_weights(bad).is_err(), "{bad:?}");
            assert!(dtable.fill(bad).is_err(), "{bad:?}");
        }
        assert!(AnsTable::from_weights(&[2048]).is_ok());
        assert!(dtable.fill(&[2048]).is_ok());
    }

    #[test]
    fn corrupt_words_fail_the_drain_check() {
        let weights = normalize_weights(&[100, 50, 25]);
        let table = AnsTable::from_weights(&weights).unwrap();
        let mut dtable = DecodeTable::new();
        dtable.fill(&weights).unwrap();
        let symbols: Vec<u8> = (0..999u32).map(|i| (i % 3) as u8).collect();
        let (bytes, seeds) = encode(&table, &symbols);
        assert!(!bytes.is_empty());
        let mut broken = 0usize;
        for cut in [0, bytes.len() / 2, bytes.len().saturating_sub(2)] {
            let mut dec = AnsDecoder::new(&bytes[..cut], seeds);
            let mut out = vec![0u8; symbols.len()];
            dec.decode_into(&dtable, &mut out);
            if !dec.finished() || out != symbols {
                broken += 1;
            }
        }
        assert_eq!(broken, 3, "truncated streams must not decode cleanly");
    }

    #[test]
    fn normalization_keeps_rare_symbols_alive() {
        let mut counts = [0u32; 65];
        counts[0] = 1_000_000;
        counts[64] = 1;
        let w = normalize_weights(&counts);
        assert!(w[0] > 2000);
        assert_eq!(w[64], 1, "a present symbol must keep nonzero weight");
        assert_eq!(w[1], 0, "an absent symbol must stay at zero");
        assert_eq!(w.iter().map(|&x| u32::from(x)).sum::<u32>(), 2048);
    }
}
