//! Error type shared by every codec backend.

use std::fmt;
use tac_sz::SzError;

/// Errors surfaced by scalar-codec compression and decompression.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The SZ substrate failed.
    Sz(SzError),
    /// A compressed stream is malformed or truncated.
    Corrupt(String),
    /// The configuration is invalid for the backend.
    InvalidConfig(String),
    /// A wire tag does not name any registered codec.
    UnknownCodec(u8),
    /// A byte stream matches no registered codec's magic number, so it
    /// cannot be sniffed.
    UnknownStream {
        /// Up to the first four bytes of the unrecognized stream.
        prefix: Vec<u8>,
    },
    /// The stream was produced by a different codec than the one asked
    /// to decode it (wire tag / magic number disagreement).
    WrongCodec {
        /// The codec that was asked to decode.
        expected: &'static str,
        /// What the stream's magic actually looks like.
        found: String,
    },
    /// The stream's element type does not match the caller's request
    /// (e.g. decoding an `f32` stream through the `f64` entry point).
    WrongDtype {
        /// Element type recorded in the stream's flag bits.
        stream: &'static str,
        /// Element type the caller asked to decode.
        requested: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Sz(e) => write!(f, "sz backend: {e}"),
            CodecError::Corrupt(msg) => write!(f, "corrupt codec stream: {msg}"),
            CodecError::InvalidConfig(msg) => write!(f, "invalid codec configuration: {msg}"),
            CodecError::UnknownCodec(tag) => write!(f, "unknown codec wire tag {tag}"),
            CodecError::UnknownStream { prefix } => {
                write!(f, "stream prefix {prefix:02x?} matches no registered codec")
            }
            CodecError::WrongCodec { expected, found } => {
                write!(f, "stream is not a {expected} stream (found {found})")
            }
            CodecError::WrongDtype { stream, requested } => {
                write!(
                    f,
                    "stream holds {stream} elements, caller expected {requested}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Sz(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SzError> for CodecError {
    fn from(e: SzError) -> Self {
        CodecError::Sz(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CodecError::from(SzError::ZeroDimension);
        assert!(e.to_string().contains("sz backend"));
        assert!(std::error::Error::source(&e).is_some());
        let w = CodecError::WrongCodec {
            expected: "pco-lite",
            found: "sz magic".into(),
        };
        assert!(w.to_string().contains("pco-lite"));
        assert!(std::error::Error::source(&w).is_none());
        let u = CodecError::UnknownStream {
            prefix: b"XXXX".to_vec(),
        };
        assert!(u.to_string().contains("no registered codec"));
    }
}
