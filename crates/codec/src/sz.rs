//! The SZ backend: a thin [`ScalarCodec`] wrapper around `tac-sz`.

use crate::{CodecConfig, CodecError, CodecId, ScalarCodec};
use tac_sz::{Dims, ErrorBound, SzConfig};

/// The SZ-style predict–quantize–encode compressor, wrapped as a
/// pluggable backend. This is the default codec and the implicit codec
/// of every container written before the backend layer existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCodec;

impl SzCodec {
    fn sz_config(cfg: &CodecConfig) -> Result<SzConfig, CodecError> {
        cfg.validate()?;
        Ok(SzConfig {
            error_bound: ErrorBound::Abs(cfg.abs_eb),
            capacity: cfg.capacity,
            lossless: cfg.lossless,
            regression: cfg.regression,
        })
    }

    /// Maps a width mismatch to the codec layer's typed error (the SZ
    /// substrate would report it as `UnsupportedFormat`, losing the
    /// machine-checkable distinction).
    fn check_dtype(bytes: &[u8], want: tac_dtype::TacDtype) -> Result<(), CodecError> {
        match tac_sz::stream_dtype(bytes) {
            Some(found) if found != want => Err(CodecError::WrongDtype {
                stream: found.label(),
                requested: want.label(),
            }),
            _ => Ok(()), // absent/corrupt headers fall through to decode errors
        }
    }
}

impl ScalarCodec for SzCodec {
    fn id(&self) -> CodecId {
        CodecId::Sz
    }

    fn compress(&self, data: &[f64], dims: Dims, cfg: &CodecConfig) -> Result<Vec<u8>, CodecError> {
        Ok(tac_sz::compress(data, dims, &Self::sz_config(cfg)?)?)
    }

    fn compress_with_recon(
        &self,
        data: &[f64],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f64>), CodecError> {
        Ok(tac_sz::compress_with_recon(
            data,
            dims,
            &Self::sz_config(cfg)?,
        )?)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<(Vec<f64>, Dims), CodecError> {
        Self::check_dtype(bytes, tac_dtype::TacDtype::F64)?;
        Ok(tac_sz::decompress(bytes)?)
    }

    fn compress_f32(
        &self,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<Vec<u8>, CodecError> {
        Ok(tac_sz::compress_t(data, dims, &Self::sz_config(cfg)?)?)
    }

    fn compress_with_recon_f32(
        &self,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f32>), CodecError> {
        Ok(tac_sz::compress_with_recon_t(
            data,
            dims,
            &Self::sz_config(cfg)?,
        )?)
    }

    fn decompress_f32(&self, bytes: &[u8]) -> Result<(Vec<f32>, Dims), CodecError> {
        Self::check_dtype(bytes, tac_dtype::TacDtype::F32)?;
        Ok(tac_sz::decompress_t(bytes)?)
    }

    fn magic(&self) -> &'static [u8] {
        tac_sz::stream_magic()
    }

    fn looks_like(&self, bytes: &[u8]) -> bool {
        tac_sz::looks_like_stream(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tac_sz_bit_for_bit() {
        let data: Vec<f64> = (0..512).map(|i| (i as f64 * 0.01).sin()).collect();
        let cfg = CodecConfig::abs(1e-4);
        let via_trait = SzCodec.compress(&data, Dims::D3(8, 8, 8), &cfg).unwrap();
        let direct = tac_sz::compress(
            &data,
            Dims::D3(8, 8, 8),
            &SzConfig {
                error_bound: ErrorBound::Abs(1e-4),
                capacity: cfg.capacity,
                lossless: cfg.lossless,
                regression: cfg.regression,
            },
        )
        .unwrap();
        assert_eq!(via_trait, direct, "the wrapper must not change the bytes");
        assert!(SzCodec.looks_like(&via_trait));
        let (out, dims) = SzCodec.decompress(&via_trait).unwrap();
        assert_eq!(dims, Dims::D3(8, 8, 8));
        assert_eq!(out.len(), data.len());
    }
}
