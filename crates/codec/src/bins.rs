//! Greedy bin optimization over per-page latent histograms —
//! [`crate::PcoAns`]'s replacement for PcoLite's single per-page bit
//! width.
//!
//! Latents (zigzagged quantized deltas) are classed by bit length
//! (0..=64). A *bin* is an inclusive run of classes; each latent is
//! encoded as its bin's *token* (entropy-coded by the rANS stage) plus
//! an *offset* within the bin (bit-packed verbatim). Starting from one
//! bin per nonempty class, adjacent bins merge greedily while the
//! estimated page cost — offset bits + token entropy + per-bin table
//! overhead — keeps falling. Pages with a few tight clusters get
//! narrow offsets and a cheap, skewed token stream; noisy pages
//! collapse into a couple of wide bins whose tokens cost almost
//! nothing.
//!
//! The class helpers ([`class_lower`], [`run_offset_bits`]) are shared
//! with the decoder, which recomputes each bin's lower bound and
//! offset width from the serialized class run — weights travel on the
//! wire, geometry does not.

use crate::pco::bit_len;

/// Number of bit-length classes (`bit_len` of a `u64` is 0..=64).
pub(crate) const CLASSES: usize = 65;

/// Serialized bits one bin costs in the page header (lo `u8` + hi
/// `u8` + weight `u16`).
const BIN_HEADER_BITS: f64 = 32.0;

/// One planned bin: an inclusive class run and its page count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BinPlan {
    /// Lowest bit-length class in the run.
    pub lo: u8,
    /// Highest bit-length class in the run (inclusive).
    pub hi: u8,
    /// Page values landing in the run.
    pub count: u32,
}

/// Smallest latent whose bit-length class is `c` (0 for class 0).
/// Classes above 64 cannot occur in validated streams; defensively they
/// map to 0.
#[inline]
pub(crate) fn class_lower(c: u8) -> u64 {
    if c == 0 {
        0
    } else {
        1u64.checked_shl(u32::from(c) - 1).unwrap_or(0)
    }
}

/// Largest latent in class `c` (`u64::MAX` for class 64).
#[inline]
pub(crate) fn class_upper(c: u8) -> u64 {
    if c >= 64 {
        u64::MAX
    } else {
        class_lower(c.wrapping_add(1)).wrapping_sub(1)
    }
}

/// Offset width in bits for a bin spanning classes `lo..=hi`: enough
/// for the distance from the run's lower bound to its upper bound.
#[inline]
pub(crate) fn run_offset_bits(lo: u8, hi: u8) -> u32 {
    let span = class_upper(hi).wrapping_sub(class_lower(lo));
    u32::try_from(bit_len(span)).unwrap_or(64)
}

/// Plans a page's bins from its class histogram. `total` is the page
/// length. The result is empty only for an all-zero histogram (which
/// cannot occur — every latent has a class), is ordered by class, and
/// never exceeds [`CLASSES`] entries.
// tac-lint: allow(panic, arith) -- encoder-only: at most 65 bins indexed within bounds, counts bounded by the page length, and the cost model runs in f64.
pub(crate) fn plan_bins(hist: &[u32; CLASSES], total: u32) -> Vec<BinPlan> {
    let mut bins: Vec<BinPlan> = hist
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(cls, &count)| BinPlan {
            lo: cls as u8,
            hi: cls as u8,
            count,
        })
        .collect();
    if bins.is_empty() {
        return bins;
    }
    let n = f64::from(total.max(1));
    // Estimated bits a bin contributes: verbatim offsets, the entropy
    // of its token at its empirical probability, and its table entry.
    let cost = |b: &BinPlan| -> f64 {
        let c = f64::from(b.count);
        c * f64::from(run_offset_bits(b.lo, b.hi)) + c * (n / c).log2() + BIN_HEADER_BITS
    };
    loop {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..bins.len() - 1 {
            let (a, b) = (bins[i], bins[i + 1]);
            let merged = BinPlan {
                lo: a.lo,
                hi: b.hi,
                count: a.count + b.count,
            };
            let saving = cost(&a) + cost(&b) - cost(&merged);
            if saving > 0.0 && best.map_or(true, |(_, s)| saving > s) {
                best = Some((i, saving));
            }
        }
        match best {
            Some((i, _)) => {
                let right = bins.remove(i + 1);
                bins[i].hi = right.hi;
                bins[i].count += right.count;
            }
            None => return bins,
        }
    }
}

/// Maps each class to the index of its containing bin. Classes in the
/// gaps between bins are necessarily empty on the page that produced
/// the plan; they map to bin 0 as an unused placeholder.
// tac-lint: allow(panic, arith) -- encoder-only: at most 65 bins, so indices fit u8 and the fixed-size map is indexed by validated classes.
pub(crate) fn class_to_bin(bins: &[BinPlan]) -> [u8; CLASSES] {
    let mut map = [0u8; CLASSES];
    for (i, b) in bins.iter().enumerate() {
        for slot in &mut map[usize::from(b.lo)..=usize::from(b.hi)] {
            *slot = i as u8;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_bounds_cover_u64_without_gaps() {
        assert_eq!(class_lower(0), 0);
        assert_eq!(class_upper(0), 0);
        assert_eq!(class_lower(1), 1);
        assert_eq!(class_upper(1), 1);
        assert_eq!(class_lower(8), 128);
        assert_eq!(class_upper(8), 255);
        assert_eq!(class_lower(64), 1 << 63);
        assert_eq!(class_upper(64), u64::MAX);
        for c in 1..=64u8 {
            assert_eq!(class_lower(c), class_upper(c - 1) + 1, "class {c}");
        }
    }

    #[test]
    fn offset_widths_match_the_spans() {
        assert_eq!(run_offset_bits(0, 0), 0);
        assert_eq!(run_offset_bits(1, 1), 0);
        assert_eq!(run_offset_bits(5, 5), 4);
        assert_eq!(run_offset_bits(0, 1), 1);
        assert_eq!(run_offset_bits(0, 64), 64);
        assert_eq!(run_offset_bits(64, 64), 63);
    }

    #[test]
    fn concentrated_pages_keep_narrow_bins() {
        let mut hist = [0u32; CLASSES];
        hist[3] = 2000;
        hist[4] = 1800;
        hist[20] = 5;
        let bins = plan_bins(&hist, 3805);
        assert!(!bins.is_empty() && bins.len() <= 3);
        let total: u32 = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 3805);
        // The rare far class must not drag the dense ones wide: the
        // first bin stays within the dense classes.
        assert!(bins[0].hi <= 4, "dense bin widened to {:?}", bins[0]);
    }

    #[test]
    fn adjacent_sparse_classes_merge() {
        // With few values per class, per-bin header overhead dominates
        // and neighbouring classes should collapse together.
        let mut hist = [0u32; CLASSES];
        for h in hist.iter_mut().take(12).skip(4) {
            *h = 10;
        }
        let bins = plan_bins(&hist, 80);
        assert!(
            bins.len() < 8,
            "sparse neighbouring classes should merge, got {bins:?}"
        );
        let total: u32 = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn dense_classes_stay_separate() {
        // With many values per class, the 32-bit header is noise and
        // the narrower offsets win: no merge should happen.
        let mut hist = [0u32; CLASSES];
        hist[4] = 1000;
        hist[5] = 1000;
        let bins = plan_bins(&hist, 2000);
        assert_eq!(bins.len(), 2, "dense classes merged: {bins:?}");
    }

    #[test]
    fn single_class_page_is_one_bin_zero_offset() {
        let mut hist = [0u32; CLASSES];
        hist[0] = 4096;
        let bins = plan_bins(&hist, 4096);
        assert_eq!(
            bins,
            vec![BinPlan {
                lo: 0,
                hi: 0,
                count: 4096
            }]
        );
        assert_eq!(run_offset_bits(0, 0), 0);
    }

    #[test]
    fn class_map_routes_every_class_in_a_run() {
        let bins = [
            BinPlan {
                lo: 0,
                hi: 2,
                count: 10,
            },
            BinPlan {
                lo: 5,
                hi: 7,
                count: 3,
            },
        ];
        let map = class_to_bin(&bins);
        assert_eq!(&map[0..3], &[0, 0, 0]);
        assert_eq!(&map[5..8], &[1, 1, 1]);
    }
}
