//! `PcoAns`: a tabled-ANS, batch-decoding error-bounded codec — the
//! throughput-oriented successor to [`crate::PcoLite`].
//!
//! The front end is PcoLite's, unchanged: uniform quantization to
//! `q = round(v / 2eb)`, delta encoding, zigzag folding, raw
//! exceptions for values that cannot quantize. The tail is pcodec's
//! recipe instead of LZSS + bit packing:
//!
//! 1. **Greedy bin optimization** ([`crate::bins`]) — each fixed-size
//!    page's latents split into a bin *token* and an *offset* within
//!    the bin, with the bins chosen per page from the latent histogram.
//! 2. **Tabled rANS** ([`crate::ans`]) — the token stream is entropy
//!    coded against the page's normalized bin weights; the table
//!    travels as (class run, weight) pairs and the geometry is
//!    recomputed on decode.
//! 3. **Branch-free batch decode** — pages decode in batches of
//!    [`BATCH`] values through SoA scratch buffers: one pass decodes
//!    tokens (four interleaved rANS lanes, packed single-load table
//!    slots, branch-free word refill), then one pass per batch gathers
//!    offsets with unaligned 64-bit reads and reconstructs values in
//!    place. No per-value branching; exceptions are patched after all
//!    pages.
//!
//! There is deliberately **no trailing LZSS stage** — on PcoLite the
//! `pack` + `lossless` stages dominate decode wall time, and the
//! entropy coding the LZSS pass recovered now happens in the rANS
//! stage at a fraction of the cost.

use crate::ans::{self, AnsDecoder, AnsTable, DecodeTable, LANES, RANS_L};
use crate::bins::{self, CLASSES};
use crate::pco::{bit_len, exception_bytes, quantize, unzigzag, zigzag, BitPacker};
use crate::{CodecConfig, CodecError, CodecId, ScalarCodec};
use tac_dtype::{Element, TacDtype};
use tac_sz::wire::{ByteReader, ByteWriter};
use tac_sz::Dims;

/// Stream magic number ("TAC Pco-ANS v1").
pub(crate) const MAGIC: [u8; 4] = *b"TPA1";
/// Current format version.
pub(crate) const VERSION: u8 = 1;
/// Flag bit: elements are `f32` (unset: `f64`). Same bit position as
/// every other backend so registry-level dtype sniffing reads one byte.
const FLAG_F32: u8 = 0b0000_0010;
/// Values per page. Each page carries its own bin table, ANS payload
/// and offset stream; larger than PcoLite's page because the header is
/// bigger and the bins adapt within the page anyway.
const PAGE: usize = 4096;
/// Values per decode batch: tokens move through an SoA scratch buffer
/// of this size, which fits L1 alongside the decode table.
const BATCH: usize = 256;
/// Serialized bytes per bin-table entry (lo `u8` + hi `u8` + weight
/// `u16`).
const BIN_BYTES: usize = 4;
/// Fixed per-page bytes besides the bin table: bin count `u8`, the
/// four `u32` lane seed states, word byte count `u32`, offset byte
/// count `u32`.
const PAGE_FIXED_BYTES: usize = 25;

/// The tabled-ANS pcodec-style backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcoAns;

fn corrupt(msg: impl Into<String>) -> CodecError {
    CodecError::Corrupt(msg.into())
}

/// Encodes one page of zigzag latents into `out`.
// tac-lint: allow(panic, arith) -- encoder-only: bins and tokens index fixed 65-entry in-memory tables, counts are bounded by PAGE = 4096, and every size fits its wire type by construction.
fn encode_page(z: &[u64], out: &mut Vec<u8>) {
    let table_span = tac_obs::span(tac_obs::Stage::AnsTable);
    let mut hist = [0u32; CLASSES];
    for &v in z {
        hist[bit_len(v)] += 1;
    }
    let plan = bins::plan_bins(&hist, z.len() as u32);
    let counts: Vec<u32> = plan.iter().map(|b| b.count).collect();
    let weights = ans::normalize_weights(&counts);
    let table =
        AnsTable::from_weights(&weights).expect("normalized weights always form a valid table");
    let map = bins::class_to_bin(&plan);
    drop(table_span);
    tac_obs::hist(tac_obs::HistKind::AnsPageBins, plan.len());
    tac_obs::add(tac_obs::Counter::AnsPages, 1);

    let lowers: Vec<u64> = plan.iter().map(|b| bins::class_lower(b.lo)).collect();
    let widths: Vec<u32> = plan
        .iter()
        .map(|b| bins::run_offset_bits(b.lo, b.hi))
        .collect();
    let mut tokens = Vec::with_capacity(z.len());
    let mut total_bits = 0usize;
    for &v in z {
        let t = map[bit_len(v)];
        tokens.push(t);
        total_bits += widths[t as usize] as usize;
    }
    let (words, seeds) = ans::encode(&table, &tokens);
    let mut packer = BitPacker::with_capacity(total_bits.div_ceil(8));
    for (&v, &t) in z.iter().zip(&tokens) {
        packer.push(v - lowers[t as usize], widths[t as usize] as usize);
    }
    let offsets = packer.finish();

    out.push(plan.len() as u8);
    for (b, &w) in plan.iter().zip(&weights) {
        out.push(b.lo);
        out.push(b.hi);
        out.extend(w.to_le_bytes());
    }
    for x in seeds {
        out.extend(x.to_le_bytes());
    }
    out.extend((words.len() as u32).to_le_bytes());
    out.extend_from_slice(&words);
    out.extend((offsets.len() as u32).to_le_bytes());
    out.extend_from_slice(&offsets);
}

/// Element-generic encoder body shared by the `f64` and `f32` trait
/// entry points (the quantize → delta → zigzag front end is shared
/// with PcoLite verbatim).
fn compress_impl<T: Element>(
    data: &[T],
    dims: Dims,
    cfg: &CodecConfig,
) -> Result<(Vec<u8>, Vec<T>), CodecError> {
    dims.validate(data.len())?;
    cfg.validate()?;
    let abs_eb = cfg.abs_eb;
    let two_eb = 2.0 * abs_eb;

    let n = data.len();
    let mut recon = Vec::with_capacity(n);
    let mut z = Vec::with_capacity(n);
    let mut exceptions: Vec<(u64, T)> = Vec::new();
    let mut prev = 0i64;
    {
        let _quantize = tac_obs::span(tac_obs::Stage::Quantize);
        for (i, &v) in data.iter().enumerate() {
            match quantize(v, two_eb, abs_eb) {
                Some((q, r)) => {
                    recon.push(r);
                    z.push(zigzag(q.wrapping_sub(prev)));
                    prev = q;
                }
                None => {
                    recon.push(v);
                    z.push(zigzag(0));
                    exceptions.push((i as u64, v));
                }
            }
        }
    }
    tac_obs::add_bytes(tac_obs::Counter::PcoExceptions, exceptions.len());

    // tac-lint: allow(arith) -- writer-side capacity estimate over in-memory lengths; a wrong guess only costs a reallocation.
    let mut body = Vec::with_capacity(8 + exceptions.len() * exception_bytes::<T>() + n);
    body.extend((exceptions.len() as u64).to_le_bytes());
    for &(idx, v) in &exceptions {
        body.extend(idx.to_le_bytes());
        v.append_le(&mut body);
    }
    {
        let _pack = tac_obs::span(tac_obs::Stage::Pack);
        for page in z.chunks(PAGE) {
            encode_page(page, &mut body);
        }
    }

    let mut flags = 0u8;
    if T::DTYPE == TacDtype::F32 {
        flags |= FLAG_F32;
    }
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(flags);
    w.put_u8(dims.rank());
    match dims {
        Dims::D1(a) => w.put_u64(a as u64),
        Dims::D2(a, b) => {
            w.put_u64(a as u64);
            w.put_u64(b as u64);
        }
        Dims::D3(a, b, c) => {
            w.put_u64(a as u64);
            w.put_u64(b as u64);
            w.put_u64(c as u64);
        }
        Dims::D4(a, b, c, d) => {
            w.put_u64(a as u64);
            w.put_u64(b as u64);
            w.put_u64(c as u64);
            w.put_u64(d as u64);
        }
    }
    w.put_f64(abs_eb);
    let mut out = w.into_bytes();
    out.extend_from_slice(&body);
    Ok((out, recon))
}

/// The value mask for a `width`-bit offset read (all-ones below
/// `width`, zero for an empty read), precomputed per bin so the batch
/// loop applies it with one AND.
fn offset_mask(width: u32) -> u64 {
    if width == 0 {
        0
    } else {
        u64::MAX >> 64u32.saturating_sub(width).min(63)
    }
}

/// Reads `width` bits at absolute bit position `bitpos` from an
/// LSB-first stream: one unaligned 64-bit gather, with a spill byte
/// only on the rare reads that straddle past 64 loaded bits, so the
/// batch loop carries no per-bit refill state. Past-the-end reads see
/// zero bits; the page-level offset-byte check rejects streams that
/// actually ran short. `mask` must be `offset_mask(width)`.
#[inline(always)]
fn read_bits(bytes: &[u8], bitpos: usize, width: u32, mask: u64) -> u64 {
    let at = bitpos >> 3;
    let shift = bitpos & 7;
    let lo = match bytes.get(at..at.wrapping_add(8)) {
        Some(s) => u64::from_le_bytes(s.try_into().unwrap_or([0u8; 8])),
        None => {
            // Stream tail: gather what remains, zero-padded.
            let mut acc = 0u64;
            let mut sh = 0u32;
            for &b in bytes.iter().skip(at).take(8) {
                acc |= u64::from(b) << sh;
                sh = sh.wrapping_add(8);
            }
            acc
        }
    };
    let v = if shift.wrapping_add(width as usize) <= 64 {
        lo >> shift
    } else {
        let hi = u64::from(bytes.get(at.wrapping_add(8)).copied().unwrap_or(0));
        (lo >> shift) | ((hi << (63 - shift)) << 1)
    };
    v & mask
}

/// Reusable per-stream decode state: the slot-indexed rANS table, the
/// token batch, and the bin-geometry lookups. The lookup arrays are
/// sized for the full `u8` token range so the batch loop's indexed
/// loads compile without bounds checks, and everything is rebuilt in
/// place per page — the page loop allocates nothing.
struct DecodeScratch {
    table: DecodeTable,
    tokens: [u8; BATCH],
    lowers: [u64; 256],
    widths: [u32; 256],
    masks: [u64; 256],
}

impl DecodeScratch {
    fn new() -> DecodeScratch {
        DecodeScratch {
            table: DecodeTable::new(),
            tokens: [0; BATCH],
            lowers: [0; 256],
            widths: [0; 256],
            masks: [0; 256],
        }
    }
}

/// Parses and validates one page's bin table into `scratch` (lower
/// bound and offset width per bin, plus the rANS decode table built
/// from the serialized weights), returning the bin count.
fn read_bin_table(b: &mut ByteReader, scratch: &mut DecodeScratch) -> Result<usize, CodecError> {
    let n_bins = usize::from(b.get_u8().map_err(|_| corrupt("page header truncated"))?);
    if n_bins == 0 || n_bins > CLASSES {
        return Err(corrupt(format!("page with {n_bins} bins")));
    }
    scratch.lowers = [0; 256];
    scratch.widths = [0; 256];
    scratch.masks = [0; 256];
    let mut weights = [0u16; CLASSES];
    let mut prev_hi: Option<u8> = None;
    for (((lw, wd), mk), wt) in scratch
        .lowers
        .iter_mut()
        .zip(scratch.widths.iter_mut())
        .zip(scratch.masks.iter_mut())
        .zip(weights.iter_mut())
        .take(n_bins)
    {
        let truncated = |_| corrupt("page bin table truncated");
        let lo = b.get_u8().map_err(truncated)?;
        let hi = b.get_u8().map_err(truncated)?;
        let weight = b.get_u16().map_err(truncated)?;
        if lo > hi || usize::from(hi) >= CLASSES || prev_hi.is_some_and(|p| lo <= p) {
            return Err(corrupt(format!("bin classes {lo}..={hi} out of order")));
        }
        prev_hi = Some(hi);
        *lw = bins::class_lower(lo);
        *wd = bins::run_offset_bits(lo, hi);
        *mk = offset_mask(*wd);
        *wt = weight;
    }
    scratch
        .table
        .fill(weights.get(..n_bins).unwrap_or_default())?;
    Ok(n_bins)
}

/// Decodes one page into `out` (exactly the page's values): batched
/// ANS token decode into SoA scratch, offset gathers, then value
/// reconstruction. Exceptions are patched by the caller after all
/// pages.
fn decode_page<T: Element>(
    b: &mut ByteReader,
    scratch: &mut DecodeScratch,
    prev: &mut i64,
    two_eb: f64,
    out: &mut [T],
) -> Result<(), CodecError> {
    let table_span = tac_obs::span(tac_obs::Stage::AnsTable);
    let n_bins = read_bin_table(b, scratch)?;
    drop(table_span);
    let truncated = |_| corrupt("page header truncated");
    let mut seeds = [0u32; LANES];
    for x in seeds.iter_mut() {
        *x = b.get_u32().map_err(truncated)?;
        if *x < RANS_L {
            return Err(corrupt("ANS seed state below the normalized interval"));
        }
    }
    let word_bytes = b.get_u32().map_err(truncated)? as usize;
    if word_bytes % 2 != 0 {
        return Err(corrupt(format!("odd ANS word byte count {word_bytes}")));
    }
    let words = b
        .get_bytes(word_bytes)
        .map_err(|_| corrupt("ANS words truncated"))?;
    let offset_bytes = b.get_u32().map_err(truncated)? as usize;
    let offsets = b
        .get_bytes(offset_bytes)
        .map_err(|_| corrupt("offset stream truncated"))?;

    let DecodeScratch {
        table,
        tokens,
        lowers,
        widths,
        masks,
    } = scratch;
    let mut dec = AnsDecoder::new(words, seeds);
    let mut bitpos = 0usize;
    let mut q = *prev;
    // All chunks but the last are the full (even) BATCH, which keeps
    // the decoder's lane parity aligned across calls.
    for chunk in out.chunks_mut(BATCH) {
        let Some(batch) = tokens.get_mut(..chunk.len()) else {
            return Err(corrupt("batch bound outran its scratch buffer"));
        };
        dec.decode_into(table, batch);
        for (slot, &t) in chunk.iter_mut().zip(batch.iter()) {
            let ti = usize::from(t);
            let w = widths.get(ti).copied().unwrap_or(0);
            let lower = lowers.get(ti).copied().unwrap_or(0);
            let mask = masks.get(ti).copied().unwrap_or(0);
            let zv = lower.wrapping_add(read_bits(offsets, bitpos, w, mask));
            bitpos = bitpos.wrapping_add(w as usize);
            q = q.wrapping_add(unzigzag(zv));
            *slot = T::from_f64(q as f64 * two_eb);
        }
    }
    if !dec.finished() {
        return Err(corrupt("ANS stream does not drain to its seed states"));
    }
    if bitpos.div_ceil(8) != offset_bytes {
        return Err(corrupt(format!(
            "offset stream holds {offset_bytes} bytes but decode consumed {bitpos} bits"
        )));
    }
    tac_obs::add(tac_obs::Counter::AnsPages, 1);
    tac_obs::add(tac_obs::Counter::AnsRenorms, dec.renorms());
    tac_obs::hist(tac_obs::HistKind::AnsPageBins, n_bins);
    *prev = q;
    Ok(())
}

/// Element-generic decoder body: the stream's dtype flag must match
/// `T`.
fn decompress_impl<T: Element>(bytes: &[u8]) -> Result<(Vec<T>, Dims), CodecError> {
    let mut r = ByteReader::new(bytes);
    let magic = r
        .get_bytes(4)
        .map_err(|_| corrupt("stream shorter than header"))?;
    if magic != MAGIC {
        return Err(CodecError::WrongCodec {
            expected: "pco-ans",
            found: format!("magic {magic:02x?}"),
        });
    }
    let version = r.get_u8().map_err(|_| corrupt("header truncated"))?;
    if version != VERSION {
        return Err(corrupt(format!(
            "pco-ans version {version} (expected {VERSION})"
        )));
    }
    let flags = r.get_u8().map_err(|_| corrupt("header truncated"))?;
    if flags & !FLAG_F32 != 0 {
        return Err(corrupt(format!("unknown flag bits {flags:#04x}")));
    }
    let stream_dtype = if flags & FLAG_F32 != 0 {
        TacDtype::F32
    } else {
        TacDtype::F64
    };
    if stream_dtype != T::DTYPE {
        return Err(CodecError::WrongDtype {
            stream: stream_dtype.label(),
            requested: T::DTYPE.label(),
        });
    }
    let rank = r.get_u8().map_err(|_| corrupt("header truncated"))?;
    if !(1..=4).contains(&rank) {
        return Err(corrupt(format!("invalid rank {rank}")));
    }
    let mut dim = || -> Result<usize, CodecError> {
        r.get_u64()
            .map(|v| v as usize)
            .map_err(|_| corrupt("header truncated"))
    };
    let dims = match rank {
        1 => Dims::D1(dim()?),
        2 => Dims::D2(dim()?, dim()?),
        3 => Dims::D3(dim()?, dim()?, dim()?),
        _ => Dims::D4(dim()?, dim()?, dim()?, dim()?),
    };
    if dims.is_empty() {
        return Err(corrupt("zero-sized dimensions"));
    }
    if dims.len() > (1usize << 40) {
        return Err(corrupt(format!(
            "declared element count {} is implausible",
            dims.len()
        )));
    }
    let abs_eb = r.get_f64().map_err(|_| corrupt("header truncated"))?;
    if abs_eb <= 0.0 || !abs_eb.is_finite() {
        return Err(corrupt(format!("invalid stored eb {abs_eb}")));
    }
    let two_eb = 2.0 * abs_eb;
    let n = dims.len();
    let body = r.rest();
    let mut b = ByteReader::new(body);

    // Bound the up-front `recon` allocation by what the body can hold:
    // every page needs its fixed header plus at least one bin entry, so
    // a crafted header cannot demand terabytes from a tiny body.
    let min_body = 8usize.saturating_add(
        n.div_ceil(PAGE)
            .saturating_mul(PAGE_FIXED_BYTES.saturating_add(BIN_BYTES)),
    );
    if min_body > body.len() {
        return Err(corrupt(format!(
            "{n} declared points need at least {min_body} body bytes, found {}",
            body.len()
        )));
    }

    // Exception table (identical layout to PcoLite).
    let n_exc = b.get_u64().map_err(|_| corrupt("body truncated"))? as usize;
    if n_exc > n || n_exc.saturating_mul(exception_bytes::<T>()) > b.remaining() {
        return Err(corrupt(format!("{n_exc} exceptions for {n} points")));
    }
    let mut exceptions = Vec::with_capacity(n_exc);
    let mut last_idx: Option<usize> = None;
    for _ in 0..n_exc {
        let idx = b.get_u64().map_err(|_| corrupt("exception truncated"))? as usize;
        let chunk = b
            .get_bytes(T::WIRE_BYTES)
            .map_err(|_| corrupt("exception truncated"))?;
        let v = T::read_le(chunk).ok_or_else(|| corrupt("exception truncated"))?;
        if idx >= n || last_idx.is_some_and(|p| idx <= p) {
            return Err(corrupt(format!("exception index {idx} out of order")));
        }
        last_idx = Some(idx);
        exceptions.push((idx, v));
    }

    // Pages, through the batch kernel: values land directly in their
    // final slots, so the hot loop carries no capacity bookkeeping.
    let pack_span = tac_obs::span(tac_obs::Stage::Pack);
    let mut recon = vec![T::ZERO; n];
    let mut prev = 0i64;
    let mut scratch = DecodeScratch::new();
    for chunk in recon.chunks_mut(PAGE) {
        decode_page(&mut b, &mut scratch, &mut prev, two_eb, chunk)?;
    }
    drop(pack_span);
    if b.remaining() != 0 {
        return Err(corrupt(format!("{} trailing bytes", b.remaining())));
    }
    for (idx, v) in exceptions {
        let slot = recon
            .get_mut(idx)
            .ok_or_else(|| corrupt(format!("exception index {idx} out of range")))?;
        *slot = v;
    }
    Ok((recon, dims))
}

impl ScalarCodec for PcoAns {
    fn id(&self) -> CodecId {
        CodecId::PcoAns
    }

    fn compress(&self, data: &[f64], dims: Dims, cfg: &CodecConfig) -> Result<Vec<u8>, CodecError> {
        compress_impl(data, dims, cfg).map(|(bytes, _)| bytes)
    }

    fn compress_with_recon(
        &self,
        data: &[f64],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f64>), CodecError> {
        compress_impl(data, dims, cfg)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<(Vec<f64>, Dims), CodecError> {
        decompress_impl(bytes)
    }

    fn compress_f32(
        &self,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<Vec<u8>, CodecError> {
        compress_impl(data, dims, cfg).map(|(bytes, _)| bytes)
    }

    fn compress_with_recon_f32(
        &self,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f32>), CodecError> {
        compress_impl(data, dims, cfg)
    }

    fn decompress_f32(&self, bytes: &[u8]) -> Result<(Vec<f32>, Dims), CodecError> {
        decompress_impl(bytes)
    }

    fn magic(&self) -> &'static [u8] {
        &MAGIC
    }

    fn looks_like(&self, bytes: &[u8]) -> bool {
        bytes.len() > 5
            && bytes.get(..4) == Some(MAGIC.as_slice())
            && bytes.get(4) == Some(&VERSION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64], dims: Dims, eb: f64) -> Vec<f64> {
        let cfg = CodecConfig::abs(eb);
        let (bytes, recon) = PcoAns.compress_with_recon(data, dims, &cfg).unwrap();
        let (out, out_dims) = PcoAns.decompress(&bytes).unwrap();
        assert_eq!(out_dims, dims);
        for (a, b) in recon.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits(), "recon promise broken");
        }
        out
    }

    fn check_bound(orig: &[f64], recon: &[f64], eb: f64) {
        for (i, (&a, &b)) in orig.iter().zip(recon).enumerate() {
            if a.is_finite() {
                assert!((a - b).abs() <= eb * (1.0 + 1e-12), "point {i}: {a} vs {b}");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "non-finite point {i}");
            }
        }
    }

    #[test]
    fn smooth_3d_roundtrips_and_compresses() {
        let n = 16;
        let data: Vec<f64> = (0..n * n * n)
            .map(|i| (i as f64 * 0.003).sin() * 10.0 + (i as f64 * 0.0007).cos())
            .collect();
        let cfg = CodecConfig::abs(1e-3);
        let bytes = PcoAns.compress(&data, Dims::D3(n, n, n), &cfg).unwrap();
        let (out, _) = PcoAns.decompress(&bytes).unwrap();
        check_bound(&data, &out, 1e-3);
        assert!(
            bytes.len() < data.len() * 8 / 4,
            "smooth data should compress 4x+, took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn constant_field_is_tiny() {
        let data = vec![42.5f64; 8192];
        let cfg = CodecConfig::abs(1e-6);
        let bytes = PcoAns.compress(&data, Dims::D1(8192), &cfg).unwrap();
        let (out, _) = PcoAns.decompress(&bytes).unwrap();
        check_bound(&data, &out, 1e-6);
        assert!(
            bytes.len() < 200,
            "constant field took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn multi_page_streams_roundtrip() {
        // Crosses several page boundaries, including a partial tail
        // page and an odd final batch.
        let data: Vec<f64> = (0..3 * 4096 + 777)
            .map(|i| (i as f64 * 0.001).sin() * 50.0 + i as f64 * 0.01)
            .collect();
        let out = roundtrip(&data, Dims::D1(data.len()), 1e-4);
        check_bound(&data, &out, 1e-4);
    }

    #[test]
    fn non_finite_values_roundtrip_bit_exactly() {
        let mut data: Vec<f64> = (0..512).map(|i| i as f64 * 0.1).collect();
        data[3] = f64::NAN;
        data[100] = f64::INFINITY;
        data[200] = f64::NEG_INFINITY;
        let out = roundtrip(&data, Dims::D1(512), 1e-2);
        check_bound(&data, &out, 1e-2);
        assert!(out[3].is_nan());
        assert_eq!(out[100], f64::INFINITY);
        assert_eq!(out[200], f64::NEG_INFINITY);
    }

    #[test]
    fn extreme_magnitudes_fall_back_to_raw() {
        let data = vec![1e300, -1e300, 5.0, 1e-300, 0.0, f64::MAX];
        let out = roundtrip(&data, Dims::D1(6), 1e-12);
        for (a, b) in data.iter().zip(&out) {
            if a.abs() > 1e15 {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert!((a - b).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn white_noise_respects_bound() {
        let data: Vec<f64> = (0..4096u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
            })
            .collect();
        let out = roundtrip(&data, Dims::D3(16, 16, 16), 0.5);
        check_bound(&data, &out, 0.5);
    }

    #[test]
    fn spiky_but_flat_data_stays_small() {
        // Mostly-flat signal with rare huge jumps: the spikes should
        // land in their own rare bin, not widen everything.
        let mut data = vec![1.0f64; 6000];
        for i in (0..6000).step_by(500) {
            data[i] = 1e6;
        }
        let cfg = CodecConfig::abs(1e-3);
        let bytes = PcoAns.compress(&data, Dims::D1(6000), &cfg).unwrap();
        let (out, _) = PcoAns.decompress(&bytes).unwrap();
        check_bound(&data, &out, 1e-3);
        assert!(
            bytes.len() < 6000,
            "spiky-but-flat data took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn corrupt_streams_error_never_panic() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.01).sin()).collect();
        let cfg = CodecConfig::abs(1e-4);
        let bytes = PcoAns.compress(&data, Dims::D1(5000), &cfg).unwrap();
        let mut mutated = bytes.clone();
        for i in 0..mutated.len() {
            mutated[i] ^= 0xFF;
            let _ = PcoAns.decompress(&mutated);
            mutated[i] ^= 0xFF;
        }
        for cut in 0..bytes.len().min(64) {
            assert!(PcoAns.decompress(&bytes[..cut]).is_err(), "cut {cut}");
        }
        assert!(PcoAns.decompress(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(PcoAns.decompress(&extra).is_err());
    }

    #[test]
    fn bit_flips_never_decode_to_the_wrong_length() {
        // Whatever a flipped stream decodes to (if anything), the shape
        // contract must hold: `dims.len()` values, exactly.
        let data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.02).cos() * 3.0).collect();
        let bytes = PcoAns
            .compress(&data, Dims::D1(2000), &CodecConfig::abs(1e-3))
            .unwrap();
        let mut mutated = bytes.clone();
        for i in (0..mutated.len()).step_by(7) {
            mutated[i] ^= 0x10;
            if let Ok((out, dims)) = PcoAns.decompress(&mutated) {
                assert_eq!(out.len(), dims.len());
            }
            mutated[i] ^= 0x10;
        }
    }

    #[test]
    fn huge_declared_dims_error_instead_of_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0); // flags
        bytes.push(1); // rank
        bytes.extend((1u64 << 40).to_le_bytes()); // dim
        bytes.extend(1e-3f64.to_le_bytes()); // abs_eb
        bytes.extend(0u64.to_le_bytes()); // body: zero exceptions
        let err = PcoAns.decompress(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn unknown_flag_bits_are_rejected() {
        let data = vec![1.0f64; 64];
        let mut bytes = PcoAns
            .compress(&data, Dims::D1(64), &CodecConfig::abs(1e-3))
            .unwrap();
        bytes[5] |= 0b0000_0100;
        assert!(matches!(
            PcoAns.decompress(&bytes),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn foreign_magic_is_wrong_codec() {
        let sz = tac_sz::compress(&[1.0; 8], Dims::D1(8), &tac_sz::SzConfig::abs(1.0)).unwrap();
        assert!(matches!(
            PcoAns.decompress(&sz),
            Err(CodecError::WrongCodec { .. })
        ));
        assert!(!PcoAns.looks_like(&sz));
    }

    #[test]
    fn f32_streams_roundtrip_and_stay_native_width() {
        let data: Vec<f32> = (0..5000)
            .map(|i| (i as f32 * 0.01).sin() * 4.0 + (i as f32 * 0.002).cos())
            .collect();
        let cfg = CodecConfig::abs(1e-3);
        let (bytes, recon) = PcoAns
            .compress_with_recon_f32(&data, Dims::D1(5000), &cfg)
            .unwrap();
        let (out, dims) = PcoAns.decompress_f32(&bytes).unwrap();
        assert_eq!(dims, Dims::D1(5000));
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            assert!(
                (a as f64 - b as f64).abs() <= 1e-3 * (1.0 + 1e-6),
                "point {i}"
            );
        }
        for (a, b) in recon.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Wrong-width entry points reject.
        assert!(matches!(
            PcoAns.decompress(&bytes),
            Err(CodecError::WrongDtype { .. })
        ));
    }

    #[test]
    fn f32_corrupt_streams_error_never_panic() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin()).collect();
        let cfg = CodecConfig::abs(1e-4);
        let bytes = PcoAns.compress_f32(&data, Dims::D1(1000), &cfg).unwrap();
        let mut mutated = bytes.clone();
        for i in (0..mutated.len()).step_by(3) {
            mutated[i] ^= 0xFF;
            let _ = PcoAns.decompress_f32(&mutated);
            let _ = PcoAns.decompress(&mutated);
            mutated[i] ^= 0xFF;
        }
        for cut in 0..bytes.len().min(64) {
            assert!(PcoAns.decompress_f32(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn read_bits_matches_a_reference_reader() {
        // Pack a known pattern and gather it back at every width.
        let mut packer = BitPacker::with_capacity(64);
        let widths = [3usize, 0, 64, 7, 13, 1, 57, 64, 5];
        let values = [
            0b101u64,
            0,
            0xDEAD_BEEF_CAFE_F00D,
            0x55,
            0x1ABC,
            1,
            0x00FF_EE11_2233_4455,
            u64::MAX,
            0x1F,
        ];
        for (&v, &w) in values.iter().zip(&widths) {
            packer.push(v, w);
        }
        let bytes = packer.finish();
        let mut bitpos = 0usize;
        for (&v, &w) in values.iter().zip(&widths) {
            let got = read_bits(&bytes, bitpos, w as u32, offset_mask(w as u32));
            assert_eq!(got, v, "width {w} at bit {bitpos}");
            bitpos += w;
        }
    }
}
