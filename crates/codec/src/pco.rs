//! `PcoLite`: a pcodec-inspired error-bounded codec.
//!
//! [pcodec](https://github.com/mwlon/pcodec) compresses numerical
//! columns with delta encoding, adaptive binning, and bit packing.
//! `PcoLite` transplants that recipe onto TAC's error-bounded setting:
//!
//! 1. **Uniform quantization** — each finite value maps to the integer
//!    `q = round(v / (2*eb))`; the reconstruction `q * 2*eb` is within
//!    `eb` of `v` by construction. Values that cannot quantize
//!    (non-finite, |q| overflowing, or precision loss at extreme
//!    `v / eb` ratios) become raw **exceptions** stored bit-exactly.
//! 2. **Delta encoding** — consecutive quantized integers are close for
//!    the smooth per-level fields TAC extracts, so the stream of
//!    differences is small; zigzag mapping folds signs away.
//! 3. **Per-page adaptive binning** — the stream splits into fixed-size
//!    pages; each page independently picks the bit width minimizing
//!    `packed_bits + outlier_cost`, storing the few values wider than
//!    the chosen width as per-page outliers (patched bit packing).
//! 4. **Bit packing** + the shared LZSS lossless stage when it helps.
//!
//! Unlike SZ there is no neighbour prediction: decoding a value needs
//! only the running delta sum, which keeps the decoder a single linear
//! scan. The shape ([`Dims`]) is metadata only — rank does not change
//! the encoding.

use crate::{CodecConfig, CodecError, CodecId, ScalarCodec};
use tac_dtype::{Element, TacDtype};
use tac_sz::wire::{ByteReader, ByteWriter};
use tac_sz::{lossless, Dims};

/// Stream magic number ("TAC Pco-Lite v1").
const MAGIC: [u8; 4] = *b"TPL1";
/// Current format version.
const VERSION: u8 = 1;
/// Flag bit: body passed through the LZSS stage.
const FLAG_LOSSLESS: u8 = 0b0000_0001;
/// Flag bit: elements are `f32` (unset: `f64`, so every pre-dtype stream
/// decodes unchanged). Kept at the same bit as `tac-sz`'s dtype flag so
/// registry-level sniffing reads one byte for either backend.
const FLAG_F32: u8 = 0b0000_0010;
/// Values per page. Each page picks its own bit width, so the page size
/// trades adaptivity against per-page header overhead.
const PAGE: usize = 1024;
/// Serialized size of one exception entry for element type `T`
/// (index u64 + the element's native-width bits: 16 bytes at f64, 12 at
/// f32 — pages and exceptions both carry the element width). Shared
/// with `PcoAns`, whose exception table uses the identical layout.
pub(crate) fn exception_bytes<T: Element>() -> usize {
    8 + T::WIRE_BYTES
}
/// Serialized size of one page outlier (position u16 + zigzag u64).
const OUTLIER_BYTES: usize = 10;

/// The pcodec-inspired delta + per-page adaptive bit-packing backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcoLite;

/// Bits needed to represent `v` (0 for 0).
#[inline]
pub(crate) fn bit_len(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

#[inline]
pub(crate) fn zigzag(d: i64) -> u64 {
    ((d as u64) << 1) ^ ((d >> 63) as u64)
}

#[inline]
pub(crate) fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Quantizes one value, or `None` when it must be stored raw. Returns
/// the code and the `T`-narrowed reconstruction the decoder will
/// materialize; the bound check runs on that narrowed value, so `T`'s
/// rounding can never silently break the bound.
#[inline]
pub(crate) fn quantize<T: Element>(value: T, two_eb: f64, abs_eb: f64) -> Option<(i64, T)> {
    let v = value.to_f64();
    if !v.is_finite() {
        return None;
    }
    let t = v / two_eb;
    // Stay clear of the i64 edge (and of `as` saturation): beyond 2^62
    // the f64 lattice is coarser than 1 anyway, so round-tripping
    // through the integer grid could not stay within bound.
    if !t.is_finite() || t.abs() >= (1i64 << 62) as f64 {
        return None;
    }
    let q = t.round() as i64;
    let recon = T::from_f64(q as f64 * two_eb);
    if (v - recon.to_f64()).abs() <= abs_eb {
        Some((q, recon))
    } else {
        None
    }
}

/// LSB-first bit packer. Shared with `PcoAns`, whose offset streams use
/// the identical LSB-first layout.
pub(crate) struct BitPacker {
    buf: Vec<u8>,
    acc: u128,
    nbits: u32,
}

impl BitPacker {
    pub(crate) fn with_capacity(bytes: usize) -> Self {
        BitPacker {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    // tac-lint: allow(arith) -- encoder-side bit packing: width <= 64 fits u32, and the `as u8` casts truncate the accumulator intentionally.
    pub(crate) fn push(&mut self, v: u64, width: usize) {
        if width == 0 {
            return;
        }
        self.acc |= (v as u128) << self.nbits;
        self.nbits += width as u32;
        while self.nbits >= 8 {
            self.buf.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    // tac-lint: allow(arith) -- the `as u8` cast truncates the accumulator intentionally.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push(self.acc as u8);
        }
        self.buf
    }
}

/// LSB-first bit unpacker over a byte slice.
struct BitUnpacker<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u128,
    nbits: u32,
}

impl<'a> BitUnpacker<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitUnpacker {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    // tac-lint: allow(arith) -- pos stays within bytes.len() + 1 via the guarded get, and width <= 64 (validated by the page-header check) fits u32.
    fn read(&mut self, width: usize) -> u64 {
        if width == 0 {
            return 0;
        }
        while (self.nbits as usize) < width {
            // Past-the-end reads yield zero bits; the caller sized the
            // slice from the declared page length, so this is unreachable
            // for well-formed streams.
            let b = self.bytes.get(self.pos).copied().unwrap_or(0);
            self.pos += 1;
            self.acc |= (b as u128) << self.nbits;
            self.nbits += 8;
        }
        let mask = if width == 64 {
            u64::MAX as u128
        } else {
            (1u128 << width) - 1
        };
        let v = (self.acc & mask) as u64;
        self.acc >>= width;
        self.nbits -= width as u32;
        v
    }
}

/// Packed bytes a `len`-value page of `width`-bit values occupies.
#[inline]
fn packed_bytes(len: usize, width: usize) -> usize {
    len.saturating_mul(width).div_ceil(8)
}

/// Picks the page's bit width: minimize packed size plus outlier cost,
/// preferring the smaller width on ties. Returns `(width, n_outliers)`.
// tac-lint: allow(panic, arith) -- encoder-only: the arrays are fixed [_; 65] indexed by w <= 64, and n_over <= len <= PAGE keeps the cost sums tiny.
fn choose_width(counts: &[usize; 65], len: usize) -> (usize, usize) {
    // over[w] = number of values needing more than w bits.
    let mut over = [0usize; 65];
    for w in (0..64).rev() {
        over[w] = over[w + 1] + counts[w + 1];
    }
    let mut best = (64usize, 0usize);
    let mut best_cost = usize::MAX;
    for (w, &n_over) in over.iter().enumerate() {
        let cost = n_over * OUTLIER_BYTES + packed_bytes(len, w);
        if cost < best_cost {
            best_cost = cost;
            best = (w, n_over);
        }
    }
    best
}

/// Encodes one page of zigzag values into `out`.
// tac-lint: allow(panic, arith) -- encoder-only: bit_len(v) <= 64 indexes the fixed [_; 65] array, and width/outlier-count/position all fit their wire types by the PAGE = 1024 bound.
fn encode_page(z: &[u64], out: &mut Vec<u8>) {
    let mut counts = [0usize; 65];
    for &v in z {
        counts[bit_len(v)] += 1;
    }
    let (width, n_outliers) = choose_width(&counts, z.len());
    tac_obs::hist(tac_obs::HistKind::PcoPageBits, width);
    tac_obs::add(tac_obs::Counter::PcoPages, 1);
    tac_obs::add_bytes(tac_obs::Counter::PcoOutliers, n_outliers);
    out.push(width as u8);
    out.extend((n_outliers as u16).to_le_bytes());
    for (pos, &v) in z.iter().enumerate() {
        if bit_len(v) > width {
            out.extend((pos as u16).to_le_bytes());
            out.extend(v.to_le_bytes());
        }
    }
    let mut packer = BitPacker::with_capacity(packed_bytes(z.len(), width));
    for &v in z {
        packer.push(if bit_len(v) > width { 0 } else { v }, width);
    }
    out.extend(packer.finish());
}

fn corrupt(msg: impl Into<String>) -> CodecError {
    CodecError::Corrupt(msg.into())
}

/// Element-generic encoder body shared by the `f64` and `f32` trait
/// entry points. The `f64` instantiation is byte-identical to the
/// historical format (the dtype flag stays clear).
fn compress_impl<T: Element>(
    data: &[T],
    dims: Dims,
    cfg: &CodecConfig,
) -> Result<(Vec<u8>, Vec<T>), CodecError> {
    dims.validate(data.len())?;
    cfg.validate()?;
    let abs_eb = cfg.abs_eb;
    let two_eb = 2.0 * abs_eb;

    // Quantize; exceptions keep the running q (delta 0) so the delta
    // stream stays smooth across them.
    let n = data.len();
    let mut recon = Vec::with_capacity(n);
    let mut z = Vec::with_capacity(n);
    let mut exceptions: Vec<(u64, T)> = Vec::new();
    let mut prev = 0i64;
    {
        let _quantize = tac_obs::span(tac_obs::Stage::Quantize);
        for (i, &v) in data.iter().enumerate() {
            match quantize(v, two_eb, abs_eb) {
                Some((q, r)) => {
                    recon.push(r);
                    z.push(zigzag(q.wrapping_sub(prev)));
                    prev = q;
                }
                None => {
                    recon.push(v);
                    z.push(zigzag(0));
                    exceptions.push((i as u64, v));
                }
            }
        }
    }
    tac_obs::add_bytes(tac_obs::Counter::PcoExceptions, exceptions.len());

    // Body: exception table, then the pages back to back.
    // tac-lint: allow(arith) -- writer-side capacity estimate over in-memory lengths; a wrong guess only costs a reallocation.
    let mut body =
        Vec::with_capacity(8 + exceptions.len() * exception_bytes::<T>() + n * 2 / PAGE.max(1) + n);
    body.extend((exceptions.len() as u64).to_le_bytes());
    for &(idx, v) in &exceptions {
        body.extend(idx.to_le_bytes());
        v.append_le(&mut body);
    }
    {
        let _pack = tac_obs::span(tac_obs::Stage::Pack);
        for page in z.chunks(PAGE) {
            encode_page(page, &mut body);
        }
    }

    let mut flags = 0u8;
    if T::DTYPE == TacDtype::F32 {
        flags |= FLAG_F32;
    }
    let body = if cfg.lossless {
        let packed = {
            let _lossless = tac_obs::span(tac_obs::Stage::Lossless);
            lossless::compress(&body)
        };
        if packed.len() < body.len() {
            flags |= FLAG_LOSSLESS;
            packed
        } else {
            body
        }
    } else {
        body
    };

    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(flags);
    w.put_u8(dims.rank());
    match dims {
        Dims::D1(a) => w.put_u64(a as u64),
        Dims::D2(a, b) => {
            w.put_u64(a as u64);
            w.put_u64(b as u64);
        }
        Dims::D3(a, b, c) => {
            w.put_u64(a as u64);
            w.put_u64(b as u64);
            w.put_u64(c as u64);
        }
        Dims::D4(a, b, c, d) => {
            w.put_u64(a as u64);
            w.put_u64(b as u64);
            w.put_u64(c as u64);
            w.put_u64(d as u64);
        }
    }
    w.put_f64(abs_eb);
    let mut out = w.into_bytes();
    out.extend_from_slice(&body);
    Ok((out, recon))
}

/// Element-generic decoder body: the stream's dtype flag must match `T`.
fn decompress_impl<T: Element>(bytes: &[u8]) -> Result<(Vec<T>, Dims), CodecError> {
    let mut r = ByteReader::new(bytes);
    let magic = r
        .get_bytes(4)
        .map_err(|_| corrupt("stream shorter than header"))?;
    if magic != MAGIC {
        return Err(CodecError::WrongCodec {
            expected: "pco-lite",
            found: format!("magic {magic:02x?}"),
        });
    }
    let version = r.get_u8().map_err(|_| corrupt("header truncated"))?;
    if version != VERSION {
        return Err(corrupt(format!(
            "pco-lite version {version} (expected {VERSION})"
        )));
    }
    let flags = r.get_u8().map_err(|_| corrupt("header truncated"))?;
    let stream_dtype = if flags & FLAG_F32 != 0 {
        TacDtype::F32
    } else {
        TacDtype::F64
    };
    if stream_dtype != T::DTYPE {
        return Err(CodecError::WrongDtype {
            stream: stream_dtype.label(),
            requested: T::DTYPE.label(),
        });
    }
    let rank = r.get_u8().map_err(|_| corrupt("header truncated"))?;
    if !(1..=4).contains(&rank) {
        return Err(corrupt(format!("invalid rank {rank}")));
    }
    let mut dim = || -> Result<usize, CodecError> {
        r.get_u64()
            .map(|v| v as usize)
            .map_err(|_| corrupt("header truncated"))
    };
    let dims = match rank {
        1 => Dims::D1(dim()?),
        2 => Dims::D2(dim()?, dim()?),
        3 => Dims::D3(dim()?, dim()?, dim()?),
        _ => Dims::D4(dim()?, dim()?, dim()?, dim()?),
    };
    if dims.is_empty() {
        return Err(corrupt("zero-sized dimensions"));
    }
    if dims.len() > (1usize << 40) {
        return Err(corrupt(format!(
            "declared element count {} is implausible",
            dims.len()
        )));
    }
    let abs_eb = r.get_f64().map_err(|_| corrupt("header truncated"))?;
    if abs_eb <= 0.0 || !abs_eb.is_finite() {
        return Err(corrupt(format!("invalid stored eb {abs_eb}")));
    }
    let two_eb = 2.0 * abs_eb;
    let n = dims.len();

    let raw_body = r.rest();
    let body_owned;
    let body: &[u8] = if flags & FLAG_LOSSLESS != 0 {
        body_owned = {
            let _lossless = tac_obs::span(tac_obs::Stage::Lossless);
            lossless::decompress(raw_body)?
        };
        &body_owned
    } else {
        raw_body
    };
    let mut b = ByteReader::new(body);

    // Bound the up-front `recon` allocation by what the body can
    // actually hold: even a stream of all-zero-width pages needs a
    // 3-byte header per page plus the 8-byte exception count, so a
    // crafted header cannot demand terabytes from a tiny body.
    let min_body = 8usize.saturating_add(n.div_ceil(PAGE).saturating_mul(3));
    if min_body > body.len() {
        return Err(corrupt(format!(
            "{n} declared points need at least {min_body} body bytes, found {}",
            body.len()
        )));
    }

    // Exception table.
    let n_exc = b.get_u64().map_err(|_| corrupt("body truncated"))? as usize;
    if n_exc > n || n_exc.saturating_mul(exception_bytes::<T>()) > b.remaining() {
        return Err(corrupt(format!("{n_exc} exceptions for {n} points")));
    }
    let mut exceptions = Vec::with_capacity(n_exc);
    let mut last_idx: Option<usize> = None;
    for _ in 0..n_exc {
        let idx = b.get_u64().map_err(|_| corrupt("exception truncated"))? as usize;
        let chunk = b
            .get_bytes(T::WIRE_BYTES)
            .map_err(|_| corrupt("exception truncated"))?;
        let v = T::read_le(chunk).ok_or_else(|| corrupt("exception truncated"))?;
        if idx >= n || last_idx.is_some_and(|p| idx <= p) {
            return Err(corrupt(format!("exception index {idx} out of order")));
        }
        last_idx = Some(idx);
        exceptions.push((idx, v));
    }

    // Pages.
    let pack_span = tac_obs::span(tac_obs::Stage::Pack);
    let mut recon = Vec::with_capacity(n);
    let mut prev = 0i64;
    let mut done = 0usize;
    while done < n {
        let page_len = PAGE.min(n - done);
        let width = b.get_u8().map_err(|_| corrupt("page header truncated"))? as usize;
        if width > 64 {
            return Err(corrupt(format!("page bit width {width}")));
        }
        let n_out = b.get_u16().map_err(|_| corrupt("page header truncated"))? as usize;
        if n_out > page_len {
            return Err(corrupt(format!(
                "{n_out} outliers in a {page_len}-value page"
            )));
        }
        let mut outliers = Vec::with_capacity(n_out);
        let mut last_pos: Option<usize> = None;
        for _ in 0..n_out {
            let truncated = |_| corrupt("page outlier truncated");
            let pos = b.get_u16().map_err(truncated)? as usize;
            let zv = b.get_u64().map_err(truncated)?;
            if pos >= page_len || last_pos.is_some_and(|p| pos <= p) {
                return Err(corrupt(format!("outlier position {pos} out of order")));
            }
            last_pos = Some(pos);
            outliers.push((pos, zv));
        }
        let packed = b
            .get_bytes(packed_bytes(page_len, width))
            .map_err(|_| corrupt("page payload truncated"))?;
        let mut unpacker = BitUnpacker::new(packed);
        let mut next_outlier = outliers.iter().peekable();
        for pos in 0..page_len {
            let mut zv = unpacker.read(width);
            if next_outlier.peek().is_some_and(|&&(p, _)| p == pos) {
                if let Some(&(_, ozv)) = next_outlier.next() {
                    zv = ozv;
                }
            }
            prev = prev.wrapping_add(unzigzag(zv));
            recon.push(T::from_f64(prev as f64 * two_eb));
        }
        done += page_len;
    }
    drop(pack_span);
    if b.remaining() != 0 {
        return Err(corrupt(format!("{} trailing bytes", b.remaining())));
    }
    for (idx, v) in exceptions {
        let slot = recon
            .get_mut(idx)
            .ok_or_else(|| corrupt(format!("exception index {idx} out of range")))?;
        *slot = v;
    }
    Ok((recon, dims))
}

impl ScalarCodec for PcoLite {
    fn id(&self) -> CodecId {
        CodecId::PcoLite
    }

    fn compress(&self, data: &[f64], dims: Dims, cfg: &CodecConfig) -> Result<Vec<u8>, CodecError> {
        compress_impl(data, dims, cfg).map(|(bytes, _)| bytes)
    }

    fn compress_with_recon(
        &self,
        data: &[f64],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f64>), CodecError> {
        compress_impl(data, dims, cfg)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<(Vec<f64>, Dims), CodecError> {
        decompress_impl(bytes)
    }

    fn compress_f32(
        &self,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<Vec<u8>, CodecError> {
        compress_impl(data, dims, cfg).map(|(bytes, _)| bytes)
    }

    fn compress_with_recon_f32(
        &self,
        data: &[f32],
        dims: Dims,
        cfg: &CodecConfig,
    ) -> Result<(Vec<u8>, Vec<f32>), CodecError> {
        compress_impl(data, dims, cfg)
    }

    fn decompress_f32(&self, bytes: &[u8]) -> Result<(Vec<f32>, Dims), CodecError> {
        decompress_impl(bytes)
    }

    fn magic(&self) -> &'static [u8] {
        &MAGIC
    }

    fn looks_like(&self, bytes: &[u8]) -> bool {
        bytes.len() > 5
            && bytes.get(..4) == Some(MAGIC.as_slice())
            && bytes.get(4) == Some(&VERSION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64], dims: Dims, eb: f64) -> Vec<f64> {
        let cfg = CodecConfig::abs(eb);
        let (bytes, recon) = PcoLite.compress_with_recon(data, dims, &cfg).unwrap();
        let (out, out_dims) = PcoLite.decompress(&bytes).unwrap();
        assert_eq!(out_dims, dims);
        for (a, b) in recon.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits(), "recon promise broken");
        }
        out
    }

    fn check_bound(orig: &[f64], recon: &[f64], eb: f64) {
        for (i, (&a, &b)) in orig.iter().zip(recon).enumerate() {
            if a.is_finite() {
                assert!((a - b).abs() <= eb * (1.0 + 1e-12), "point {i}: {a} vs {b}");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "non-finite point {i}");
            }
        }
    }

    #[test]
    fn smooth_3d_roundtrips_and_compresses() {
        let n = 16;
        let data: Vec<f64> = (0..n * n * n)
            .map(|i| (i as f64 * 0.003).sin() * 10.0 + (i as f64 * 0.0007).cos())
            .collect();
        let cfg = CodecConfig::abs(1e-3);
        let bytes = PcoLite.compress(&data, Dims::D3(n, n, n), &cfg).unwrap();
        let (out, _) = PcoLite.decompress(&bytes).unwrap();
        check_bound(&data, &out, 1e-3);
        assert!(
            bytes.len() < data.len() * 8 / 4,
            "smooth data should compress 4x+, took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn constant_field_is_tiny() {
        let data = vec![42.5f64; 4096];
        let cfg = CodecConfig::abs(1e-6);
        let bytes = PcoLite.compress(&data, Dims::D1(4096), &cfg).unwrap();
        let (out, _) = PcoLite.decompress(&bytes).unwrap();
        check_bound(&data, &out, 1e-6);
        assert!(
            bytes.len() < 200,
            "constant field took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn non_finite_values_roundtrip_bit_exactly() {
        let mut data: Vec<f64> = (0..512).map(|i| i as f64 * 0.1).collect();
        data[3] = f64::NAN;
        data[100] = f64::INFINITY;
        data[200] = f64::NEG_INFINITY;
        let out = roundtrip(&data, Dims::D1(512), 1e-2);
        check_bound(&data, &out, 1e-2);
        assert!(out[3].is_nan());
        assert_eq!(out[100], f64::INFINITY);
        assert_eq!(out[200], f64::NEG_INFINITY);
    }

    #[test]
    fn extreme_magnitudes_fall_back_to_raw() {
        // v/eb beyond the i64 lattice: must store raw, still bit-exact
        // (the bound cannot be met lossily, so lossless is the answer).
        let data = vec![1e300, -1e300, 5.0, 1e-300, 0.0, f64::MAX];
        let out = roundtrip(&data, Dims::D1(6), 1e-12);
        for (a, b) in data.iter().zip(&out) {
            if a.abs() > 1e15 {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert!((a - b).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn white_noise_respects_bound() {
        let data: Vec<f64> = (0..4096u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
            })
            .collect();
        let out = roundtrip(&data, Dims::D3(16, 16, 16), 0.5);
        check_bound(&data, &out, 0.5);
    }

    #[test]
    fn page_outliers_handle_isolated_jumps() {
        // Mostly-flat signal with rare huge spikes: the page width should
        // stay small and the spikes ride as outliers.
        let mut data = vec![1.0f64; 3000];
        for i in (0..3000).step_by(500) {
            data[i] = 1e6;
        }
        let cfg = CodecConfig::abs(1e-3);
        let bytes = PcoLite.compress(&data, Dims::D1(3000), &cfg).unwrap();
        let (out, _) = PcoLite.decompress(&bytes).unwrap();
        check_bound(&data, &out, 1e-3);
        assert!(
            bytes.len() < 3000,
            "spiky-but-flat data took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn corrupt_streams_error_never_panic() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let cfg = CodecConfig::abs(1e-4);
        let bytes = PcoLite.compress(&data, Dims::D1(1000), &cfg).unwrap();
        // Bit flips anywhere must not panic.
        let mut mutated = bytes.clone();
        for i in (0..mutated.len()).step_by(3) {
            mutated[i] ^= 0xFF;
            let _ = PcoLite.decompress(&mutated);
            mutated[i] ^= 0xFF;
        }
        // Truncations must error.
        for cut in 0..bytes.len().min(64) {
            assert!(PcoLite.decompress(&bytes[..cut]).is_err(), "cut {cut}");
        }
        assert!(PcoLite.decompress(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage must error.
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(PcoLite.decompress(&extra).is_err());
    }

    #[test]
    fn huge_declared_dims_error_instead_of_allocating() {
        // A 35-byte crafted header declaring 2^40 elements must be
        // rejected by the body-size bound, not die in an 8 TiB
        // `Vec::with_capacity`.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0); // flags
        bytes.push(1); // rank
        bytes.extend((1u64 << 40).to_le_bytes()); // dim
        bytes.extend(1e-3f64.to_le_bytes()); // abs_eb
        bytes.extend(0u64.to_le_bytes()); // body: zero exceptions, no pages
        let err = PcoLite.decompress(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn foreign_magic_is_wrong_codec() {
        let sz = tac_sz::compress(&[1.0; 8], Dims::D1(8), &tac_sz::SzConfig::abs(1.0)).unwrap();
        assert!(matches!(
            PcoLite.decompress(&sz),
            Err(CodecError::WrongCodec { .. })
        ));
        assert!(!PcoLite.looks_like(&sz));
    }

    #[test]
    fn f32_exceptions_are_stored_at_native_width() {
        // All-exception input (NaN-heavy): the f32 stream's exception
        // table is 12 bytes/entry vs 16 at f64, so it must be smaller.
        let data64 = vec![f64::NAN; 600];
        let data32 = vec![f32::NAN; 600];
        let cfg = CodecConfig {
            lossless: false,
            ..CodecConfig::abs(1e-3)
        };
        let b64 = PcoLite.compress(&data64, Dims::D1(600), &cfg).unwrap();
        let b32 = PcoLite.compress_f32(&data32, Dims::D1(600), &cfg).unwrap();
        assert!(
            b32.len() + 600 * 4 <= b64.len(),
            "f32 {} vs f64 {}",
            b32.len(),
            b64.len()
        );
        let (out, _) = PcoLite.decompress_f32(&b32).unwrap();
        assert!(out.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn f32_narrowed_reconstruction_respects_bound() {
        // Quantized reconstructions are narrowed to f32 before the bound
        // check; large-magnitude values whose narrow breaks the bound must
        // ride as exceptions instead.
        let data: Vec<f32> = (0..2048)
            .map(|i| 99_999_992.0f32 + (i as f32 * 0.25).sin() * 40.0)
            .collect();
        let cfg = CodecConfig::abs(6.0);
        let (bytes, recon) = PcoLite
            .compress_with_recon_f32(&data, Dims::D1(2048), &cfg)
            .unwrap();
        let (out, _) = PcoLite.decompress_f32(&bytes).unwrap();
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            assert!((a as f64 - b as f64).abs() <= 6.0, "point {i}: {a} vs {b}");
            assert_eq!(recon[i].to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_corrupt_streams_error_never_panic() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin()).collect();
        let cfg = CodecConfig::abs(1e-4);
        let bytes = PcoLite.compress_f32(&data, Dims::D1(1000), &cfg).unwrap();
        let mut mutated = bytes.clone();
        for i in (0..mutated.len()).step_by(3) {
            mutated[i] ^= 0xFF;
            let _ = PcoLite.decompress_f32(&mutated);
            let _ = PcoLite.decompress(&mutated);
            mutated[i] ^= 0xFF;
        }
        for cut in 0..bytes.len().min(64) {
            assert!(PcoLite.decompress_f32(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn zigzag_is_a_bijection_at_the_edges() {
        for d in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -54321] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn width_choice_prefers_outliers_for_heavy_tails() {
        // 1000 tiny values + 3 huge ones: packing everything at 64 bits
        // would cost 8000 bytes; 4-bit packing plus 3 outliers costs ~530.
        let mut counts = [0usize; 65];
        counts[4] = 1000;
        counts[60] = 3;
        let (w, n_out) = choose_width(&counts, 1003);
        assert_eq!(n_out, 3);
        assert!((4..8).contains(&w), "chose width {w}");
    }
}
