//! Conversions between the AMR representation and uniform-resolution
//! grids (the paper's Fig. 2: up-sample coarse levels and merge).

use crate::dataset::AmrDataset;
use crate::level::AmrLevel;
use tac_dtype::Element;

/// Up-samples every level to finest resolution (piecewise-constant /
/// nearest-neighbour, the standard AMR prolongation for cell data) and
/// merges into one uniform grid.
///
/// Because the tree invariant guarantees exactly-one coverage, the merge
/// has no conflicts. This is also step 1 of the paper's "3D baseline".
pub fn to_uniform<T: Element>(ds: &AmrDataset<T>) -> Vec<T> {
    let n = ds.finest_dim();
    let mut out = vec![T::ZERO; n * n * n];
    for (l, level) in ds.levels().iter().enumerate() {
        let scale = ds.upsample_rate(l);
        splat_level(level, scale, n, &mut out);
    }
    out
}

/// Up-samples a single level into an `n^3` grid (positions not covered by
/// this level stay zero). Used by per-level post-analysis.
pub fn level_to_uniform<T: Element>(level: &AmrLevel<T>, scale: usize, n: usize) -> Vec<T> {
    assert_eq!(level.dim() * scale, n, "scale must map level onto the grid");
    let mut out = vec![T::ZERO; n * n * n];
    splat_level(level, scale, n, &mut out);
    out
}

fn splat_level<T: Element>(level: &AmrLevel<T>, scale: usize, n: usize, out: &mut [T]) {
    let dim = level.dim();
    for z in 0..dim {
        for y in 0..dim {
            for x in 0..dim {
                if !level.present(x, y, z) {
                    continue;
                }
                let v = level.value(x, y, z);
                for dz in 0..scale {
                    for dy in 0..scale {
                        let row = x * scale + n * (y * scale + dy + n * (z * scale + dz));
                        out[row..row + scale].fill(v);
                    }
                }
            }
        }
    }
}

/// Number of *redundant* points the 3D baseline materializes: the uniform
/// grid size minus the true AMR storage. Each coarse cell at level `l`
/// expands to `8^l` copies, `8^l - 1` of them redundant.
pub fn redundant_points<T: Element>(ds: &AmrDataset<T>) -> usize {
    let n = ds.finest_dim();
    n * n * n - ds.total_present()
}

/// Scatters a uniform-resolution grid back into the AMR structure of
/// `template`: each present cell of each level takes the value of its
/// *first* (lowest-coordinate) covered fine position. With
/// piecewise-constant up-sampling this inverts [`to_uniform`] exactly for
/// data that came from an AMR dataset.
pub fn from_uniform<T: Element>(template: &AmrDataset<T>, uniform: &[T]) -> AmrDataset<T> {
    let n = template.finest_dim();
    assert_eq!(uniform.len(), n * n * n, "uniform grid size mismatch");
    let mut levels = Vec::with_capacity(template.num_levels());
    for (l, level) in template.levels().iter().enumerate() {
        let scale = template.upsample_rate(l);
        let dim = level.dim();
        let mut new_level = AmrLevel::empty(dim);
        for z in 0..dim {
            for y in 0..dim {
                for x in 0..dim {
                    if level.present(x, y, z) {
                        let fx = x * scale;
                        let fy = y * scale;
                        let fz = z * scale;
                        new_level.set_value(x, y, z, uniform[fx + n * (fy + n * fz)]);
                    }
                }
            }
        }
        levels.push(new_level);
    }
    AmrDataset::new(template.name().to_string(), levels)
}

/// Averages (rather than samples) each covered block when scattering back
/// — the restriction operator used when the uniform grid has been
/// modified (e.g. decompressed) and block values may disagree. The mean
/// accumulates in `f64` working precision and narrows once per cell.
pub fn from_uniform_averaged<T: Element>(template: &AmrDataset<T>, uniform: &[T]) -> AmrDataset<T> {
    let n = template.finest_dim();
    assert_eq!(uniform.len(), n * n * n, "uniform grid size mismatch");
    let mut levels = Vec::with_capacity(template.num_levels());
    for (l, level) in template.levels().iter().enumerate() {
        let scale = template.upsample_rate(l);
        let dim = level.dim();
        let mut new_level = AmrLevel::empty(dim);
        let inv = 1.0 / (scale * scale * scale) as f64;
        for z in 0..dim {
            for y in 0..dim {
                for x in 0..dim {
                    if !level.present(x, y, z) {
                        continue;
                    }
                    let mut acc = 0.0;
                    for dz in 0..scale {
                        for dy in 0..scale {
                            for dx in 0..scale {
                                let fx = x * scale + dx;
                                let fy = y * scale + dy;
                                let fz = z * scale + dz;
                                acc += uniform[fx + n * (fy + n * fz)].to_f64();
                            }
                        }
                    }
                    new_level.set_value(x, y, z, T::from_f64(acc * inv));
                }
            }
        }
        levels.push(new_level);
    }
    AmrDataset::new(template.name().to_string(), levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::half_refined;

    #[test]
    fn uniform_roundtrip_on_tree_data() {
        let ds = half_refined(8);
        ds.validate().unwrap();
        let uni = to_uniform(&ds);
        assert_eq!(uni.len(), 512);
        let back = from_uniform(&ds, &uni);
        for (a, b) in ds.levels().iter().zip(back.levels()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn coarse_cell_fills_its_block() {
        let ds = half_refined(8);
        let uni = to_uniform(&ds);
        // Coarse cell (0,0,0) value = 0*0*0+1 = 1.0 fills fine block [0,2)^3.
        for z in 0..2 {
            for y in 0..2 {
                for x in 0..2 {
                    assert_eq!(uni[x + 8 * (y + 8 * z)], 1.0);
                }
            }
        }
        // Fine half keeps per-cell values.
        assert_eq!(uni[7 + 8 * (3 + 8 * 2)], (7 + 3 + 2) as f64);
    }

    #[test]
    fn redundancy_counts_coarse_expansion() {
        let ds = half_refined(8);
        // 512 uniform points; present = 8*8*4 fine + 2*4*4 coarse = 288.
        assert_eq!(redundant_points(&ds), 512 - 288);
    }

    #[test]
    fn averaged_restriction_matches_exact_for_constant_blocks() {
        let ds = half_refined(16);
        let uni = to_uniform(&ds);
        let a = from_uniform(&ds, &uni);
        let b = from_uniform_averaged(&ds, &uni);
        for (x, y) in a.levels().iter().zip(b.levels()) {
            for (u, v) in x.data().iter().zip(y.data()) {
                assert!((u - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn level_to_uniform_isolates_one_level() {
        let ds = half_refined(8);
        let coarse_only = level_to_uniform(&ds.levels()[1], 2, 8);
        // Fine half of the domain is zero in the coarse-only expansion.
        assert_eq!(coarse_only[7], 0.0);
        assert_eq!(coarse_only[0], 1.0);
    }

    #[test]
    fn f32_uniform_roundtrip() {
        // A small two-level f32 dataset round-trips through the uniform
        // grid exactly, like its f64 counterpart.
        let mut fine: AmrLevel<f32> = AmrLevel::empty(4);
        for z in 0..4 {
            for y in 0..4 {
                for x in 2..4 {
                    fine.set_value(x, y, z, (x + y + z) as f32 * 0.5);
                }
            }
        }
        let mut coarse: AmrLevel<f32> = AmrLevel::empty(2);
        for z in 0..2 {
            for y in 0..2 {
                coarse.set_value(0, y, z, (y + z) as f32 + 1.0);
            }
        }
        let ds = AmrDataset::new("f32demo", vec![fine, coarse]);
        ds.validate().unwrap();
        let uni = to_uniform(&ds);
        let back = from_uniform(&ds, &uni);
        for (a, b) in ds.levels().iter().zip(back.levels()) {
            assert_eq!(a, b);
        }
        let avg = from_uniform_averaged(&ds, &uni);
        for (a, b) in ds.levels().iter().zip(avg.levels()) {
            assert_eq!(a, b, "constant blocks average back exactly");
        }
    }
}
