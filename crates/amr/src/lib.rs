#![forbid(unsafe_code)]

//! # tac-amr
//!
//! Data model for **tree-based adaptive mesh refinement (AMR)** snapshots,
//! as produced by AMReX/Nyx in octree mode: each refinement level is a
//! cubic grid holding only the cells refined to exactly that level, with a
//! bit mask recording which cells are present. No value is stored twice
//! (the "tree-structured" layout of the paper's Fig. 16a).
//!
//! The crate provides:
//! * [`AmrLevel`] / [`AmrDataset`] — levels, fine-to-coarse ordering,
//!   refinement-ratio and exactly-one-coverage validation;
//! * [`BlockGrid`] — unit-block occupancy summaries that TAC's
//!   pre-process strategies (OpST / AKDTree / GSP) consume;
//! * [`to_uniform`] / [`from_uniform`] — piecewise-constant prolongation
//!   to a single uniform grid and back (the "3D baseline" substrate);
//! * Morton-order utilities for the zMesh reordering baseline.
//!
//! ```
//! use tac_amr::{AmrDataset, AmrLevel, to_uniform};
//!
//! // One coarse 2^3 level, fully present: a valid single-level dataset.
//! let level = AmrLevel::dense(2, vec![1.0; 8]);
//! let ds = AmrDataset::new("toy", vec![level]);
//! ds.validate().unwrap();
//! assert_eq!(to_uniform(&ds), vec![1.0; 8]);
//! ```

#![warn(missing_docs)]

mod aabb;
mod blocks;
mod dataset;
mod level;
mod mask;
mod morton;
mod upsample;

pub use aabb::Aabb;
pub use blocks::{copy_region, paste_region, BlockGrid};
pub use dataset::{AmrDataset, AmrValidationError};
pub use level::AmrLevel;
pub use mask::BitMask;
pub use morton::{morton2_decode, morton2_encode, morton3_decode, morton3_encode};
pub use upsample::{
    from_uniform, from_uniform_averaged, level_to_uniform, redundant_points, to_uniform,
};

// Re-exported so dataset-shaped code can name element types without a
// direct `tac-dtype` dependency.
pub use tac_dtype::{Element, TacDtype};
