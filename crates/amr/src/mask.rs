//! Compact bit mask recording which cells of a level are present.
//!
//! Tree-based AMR stores each cell at exactly one refinement level; the
//! positions *not* stored at a level are "empty" there. A bit per cell is
//! 64x cheaper than a `Vec<bool>` for the 1024^3-scale grids the paper
//! works with.

/// A fixed-length bit mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

impl BitMask {
    /// Creates an all-zero mask of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitMask {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one mask of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut m = BitMask {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        m.clear_tail();
        m
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits in [0, 1].
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Iterator over indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Zeroes any bits beyond `len` in the last word (keeps `count_ones`
    /// honest after `ones`).
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Serializes as `len: u64 LE` followed by the packed words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.words.len() * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parses a mask written by [`BitMask::to_bytes`]; `None` on malformed
    /// input (wrong length, or set bits beyond `len`).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let len = u64::from_le_bytes(bytes[0..8].try_into().ok()?) as usize;
        let n_words = len.div_ceil(64);
        if bytes.len() != 8 + n_words * 8 {
            return None;
        }
        let mut words = Vec::with_capacity(n_words);
        for i in 0..n_words {
            let off = 8 + i * 8;
            words.push(u64::from_le_bytes(bytes[off..off + 8].try_into().ok()?));
        }
        let mut mask = BitMask { words, len };
        // Reject streams with garbage beyond the tail rather than silently
        // miscounting.
        let tail = len % 64;
        if tail != 0 {
            if let Some(&last) = mask.words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return None;
                }
            }
        }
        mask.clear_tail();
        Some(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitMask::zeros(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 100);
        let o = BitMask::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!((o.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMask::zeros(130);
        for i in (0..130).step_by(3) {
            m.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(m.get(i), i % 3 == 0, "bit {i}");
        }
        m.set(63, false);
        m.set(64, false);
        assert!(!m.get(63) && !m.get(64));
    }

    #[test]
    fn count_matches_iteration() {
        let mut m = BitMask::zeros(777);
        let picks = [0usize, 1, 63, 64, 65, 100, 511, 776];
        for &i in &picks {
            m.set(i, true);
        }
        assert_eq!(m.count_ones(), picks.len());
        let collected: Vec<usize> = m.iter_ones().collect();
        assert_eq!(collected, picks);
    }

    #[test]
    fn ones_tail_is_clean() {
        // 70 bits: second word must only have 6 set bits.
        let m = BitMask::ones(70);
        assert_eq!(m.count_ones(), 70);
    }

    #[test]
    fn density_of_half() {
        let mut m = BitMask::zeros(1000);
        for i in 0..500 {
            m.set(i * 2, true);
        }
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitMask::zeros(8).get(8);
    }

    #[test]
    fn byte_serialization_roundtrip() {
        let mut m = BitMask::zeros(100);
        for i in [0usize, 5, 63, 64, 99] {
            m.set(i, true);
        }
        let bytes = m.to_bytes();
        let back = BitMask::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BitMask::from_bytes(&[]).is_none());
        assert!(BitMask::from_bytes(&[1, 2, 3]).is_none());
        // Declares 4 bits but ships 2 words.
        let mut bad = 4u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 16]);
        assert!(BitMask::from_bytes(&bad).is_none());
        // Tail bits set beyond len.
        let mut bad = 4u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(BitMask::from_bytes(&bad).is_none());
    }
}
