//! Compact bit mask recording which cells of a level are present.
//!
//! Tree-based AMR stores each cell at exactly one refinement level; the
//! positions *not* stored at a level are "empty" there. A bit per cell is
//! 64x cheaper than a `Vec<bool>` for the 1024^3-scale grids the paper
//! works with.

use crate::aabb::Aabb;

/// A fixed-length bit mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

impl BitMask {
    /// Creates an all-zero mask of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitMask {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one mask of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut m = BitMask {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        m.clear_tail();
        m
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits in [0, 1].
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Iterator over indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Tight bounding box of the set bits, interpreting the mask as a
    /// `dim^3` grid (x fastest), or `None` when no bit is set. This is
    /// the box the chunked container records for whole-level payloads so
    /// ROI decoding can skip levels entirely.
    ///
    /// Scans word-wise, one `(y, z)` row at a time (a row is `dim`
    /// consecutive bits), so the cost is ~`dim^3 / 64` word operations
    /// rather than per-bit div/mod — this runs on every container
    /// serialization.
    ///
    /// # Panics
    /// Panics if `len != dim^3`.
    pub fn bounding_box(&self, dim: usize) -> Option<Aabb> {
        assert_eq!(self.len, dim * dim * dim, "mask is not a {dim}^3 grid");
        let mut lo = (usize::MAX, usize::MAX, usize::MAX);
        let mut hi = (0usize, 0usize, 0usize);
        let mut any = false;
        for z in 0..dim {
            for y in 0..dim {
                if let Some((first_x, last_x)) = self.range_of_ones(dim * (y + dim * z), dim) {
                    any = true;
                    lo = (lo.0.min(first_x), lo.1.min(y), lo.2.min(z));
                    hi = (hi.0.max(last_x), hi.1.max(y), hi.2.max(z));
                }
            }
        }
        any.then(|| Aabb::new(lo, (hi.0 + 1, hi.1 + 1, hi.2 + 1)))
    }

    /// First and last set-bit offsets within the bit range
    /// `[start, start + len)`, relative to `start`; `None` when the
    /// range is all zero. Word-wise: masks the partial words at both
    /// ends and uses trailing/leading-zero counts.
    fn range_of_ones(&self, start: usize, len: usize) -> Option<(usize, usize)> {
        debug_assert!(start + len <= self.len);
        if len == 0 {
            return None;
        }
        let (w0, w1) = (start / 64, (start + len - 1) / 64);
        let mut first: Option<usize> = None;
        let mut last: Option<usize> = None;
        for wi in w0..=w1 {
            let mut word = self.words[wi];
            if wi == w0 {
                word &= u64::MAX << (start % 64);
            }
            if wi == w1 {
                let tail = (start + len - 1) % 64;
                if tail < 63 {
                    word &= (1u64 << (tail + 1)) - 1;
                }
            }
            if word != 0 {
                let base = wi * 64;
                first.get_or_insert(base + word.trailing_zeros() as usize - start);
                last = Some(base + 63 - word.leading_zeros() as usize - start);
            }
        }
        Some((first?, last.expect("last set with first")))
    }

    /// Zeroes any bits beyond `len` in the last word (keeps `count_ones`
    /// honest after `ones`).
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Serializes as `len: u64 LE` followed by the packed words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.words.len() * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parses a mask written by [`BitMask::to_bytes`]; `None` on malformed
    /// input (wrong length, or set bits beyond `len`).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let len = u64::from_le_bytes(bytes[0..8].try_into().ok()?) as usize;
        let n_words = len.div_ceil(64);
        if bytes.len() != 8 + n_words * 8 {
            return None;
        }
        let mut words = Vec::with_capacity(n_words);
        for i in 0..n_words {
            let off = 8 + i * 8;
            words.push(u64::from_le_bytes(bytes[off..off + 8].try_into().ok()?));
        }
        let mut mask = BitMask { words, len };
        // Reject streams with garbage beyond the tail rather than silently
        // miscounting.
        let tail = len % 64;
        if tail != 0 {
            if let Some(&last) = mask.words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return None;
                }
            }
        }
        mask.clear_tail();
        Some(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitMask::zeros(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 100);
        let o = BitMask::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!((o.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMask::zeros(130);
        for i in (0..130).step_by(3) {
            m.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(m.get(i), i % 3 == 0, "bit {i}");
        }
        m.set(63, false);
        m.set(64, false);
        assert!(!m.get(63) && !m.get(64));
    }

    #[test]
    fn count_matches_iteration() {
        let mut m = BitMask::zeros(777);
        let picks = [0usize, 1, 63, 64, 65, 100, 511, 776];
        for &i in &picks {
            m.set(i, true);
        }
        assert_eq!(m.count_ones(), picks.len());
        let collected: Vec<usize> = m.iter_ones().collect();
        assert_eq!(collected, picks);
    }

    #[test]
    fn ones_tail_is_clean() {
        // 70 bits: second word must only have 6 set bits.
        let m = BitMask::ones(70);
        assert_eq!(m.count_ones(), 70);
    }

    #[test]
    fn density_of_half() {
        let mut m = BitMask::zeros(1000);
        for i in 0..500 {
            m.set(i * 2, true);
        }
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitMask::zeros(8).get(8);
    }

    #[test]
    fn bounding_box_is_tight() {
        let dim = 4;
        let mut m = BitMask::zeros(dim * dim * dim);
        assert!(m.bounding_box(dim).is_none());
        // Set (1,2,0) and (3,0,2).
        m.set(1 + dim * 2, true);
        m.set(3 + dim * dim * 2, true);
        let b = m.bounding_box(dim).unwrap();
        assert_eq!(b, Aabb::new((1, 0, 0), (4, 3, 3)));
        let full = BitMask::ones(dim * dim * dim);
        assert_eq!(full.bounding_box(dim).unwrap(), Aabb::whole(dim));
    }

    #[test]
    fn bounding_box_matches_brute_force_on_random_masks() {
        // Exercises rows smaller than a word (dim 4), word-aligned rows
        // (dim 8 on word boundaries), and multi-word rows (dim 128 won't
        // fit here, dim 16 rows span word boundaries at odd offsets).
        for dim in [2usize, 4, 8, 16] {
            for seed in 0u64..8 {
                let n = dim * dim * dim;
                let mut m = BitMask::zeros(n);
                let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for i in 0..n {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state % 7 == 0 {
                        m.set(i, true);
                    }
                }
                // Brute force with per-bit coordinates.
                let mut lo = (usize::MAX, usize::MAX, usize::MAX);
                let mut hi = (0usize, 0usize, 0usize);
                let mut any = false;
                for i in m.iter_ones() {
                    let (x, y, z) = (i % dim, (i / dim) % dim, i / (dim * dim));
                    lo = (lo.0.min(x), lo.1.min(y), lo.2.min(z));
                    hi = (hi.0.max(x), hi.1.max(y), hi.2.max(z));
                    any = true;
                }
                let expect = any.then(|| Aabb::new(lo, (hi.0 + 1, hi.1 + 1, hi.2 + 1)));
                assert_eq!(m.bounding_box(dim), expect, "dim {dim} seed {seed}");
            }
        }
    }

    #[test]
    fn byte_serialization_roundtrip() {
        let mut m = BitMask::zeros(100);
        for i in [0usize, 5, 63, 64, 99] {
            m.set(i, true);
        }
        let bytes = m.to_bytes();
        let back = BitMask::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BitMask::from_bytes(&[]).is_none());
        assert!(BitMask::from_bytes(&[1, 2, 3]).is_none());
        // Declares 4 bits but ships 2 words.
        let mut bad = 4u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 16]);
        assert!(BitMask::from_bytes(&bad).is_none());
        // Tail bits set beyond len.
        let mut bad = 4u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(BitMask::from_bytes(&bad).is_none());
    }
}
