//! A multi-level tree-based AMR dataset.

use crate::level::AmrLevel;
use tac_dtype::{Element, TacDtype};

/// A complete AMR snapshot of one scalar field.
///
/// Levels are ordered **fine to coarse** (index 0 = finest), matching the
/// paper's Table 1. The refinement ratio between adjacent levels is fixed
/// at 2: level `l+1` has half the side length of level `l`, and one of its
/// cells covers a 2x2x2 block of level-`l` positions.
///
/// The *tree-based* invariant (AMReX quadtree/octree mode, used by Nyx):
/// every spatial position at finest resolution is covered by **exactly
/// one** present cell across all levels — no redundancy.
///
/// All levels share one element type `T` (`f64` by default).
#[derive(Debug, Clone)]
pub struct AmrDataset<T: Element = f64> {
    name: String,
    levels: Vec<AmrLevel<T>>,
}

/// Violations reported by [`AmrDataset::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmrValidationError {
    /// Fewer than one level.
    NoLevels,
    /// Level `i+1` does not have half the side of level `i`.
    BadRefinementRatio {
        /// Index of the finer level.
        fine_level: usize,
        /// Side of the finer level.
        fine_dim: usize,
        /// Side of the coarser level.
        coarse_dim: usize,
    },
    /// A finest-resolution position covered by `count` levels (must be 1).
    CoverageViolation {
        /// Position in finest-level coordinates.
        position: (usize, usize, usize),
        /// How many levels claim this position.
        count: usize,
    },
}

impl std::fmt::Display for AmrValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmrValidationError::NoLevels => write!(f, "dataset has no levels"),
            AmrValidationError::BadRefinementRatio {
                fine_level,
                fine_dim,
                coarse_dim,
            } => write!(
                f,
                "level {} has dim {fine_dim} but level {} has dim {coarse_dim} (ratio must be 2)",
                fine_level,
                fine_level + 1
            ),
            AmrValidationError::CoverageViolation { position, count } => write!(
                f,
                "finest position {position:?} covered by {count} levels (expected exactly 1)"
            ),
        }
    }
}

impl std::error::Error for AmrValidationError {}

impl<T: Element> AmrDataset<T> {
    /// Builds a dataset from fine-to-coarse levels.
    ///
    /// # Panics
    /// Panics if `levels` is empty. Refinement/coverage issues are *not*
    /// checked here; call [`AmrDataset::validate`].
    pub fn new(name: impl Into<String>, levels: Vec<AmrLevel<T>>) -> Self {
        assert!(!levels.is_empty(), "dataset needs at least one level");
        AmrDataset {
            name: name.into(),
            levels,
        }
    }

    /// Dataset name (e.g. `Run1_Z10`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type shared by every level.
    pub fn dtype(&self) -> TacDtype {
        T::DTYPE
    }

    /// Levels, fine to coarse.
    pub fn levels(&self) -> &[AmrLevel<T>] {
        &self.levels
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The finest level.
    pub fn finest(&self) -> &AmrLevel<T> {
        &self.levels[0]
    }

    /// Side length of the finest grid (the uniform-resolution size).
    pub fn finest_dim(&self) -> usize {
        self.levels[0].dim()
    }

    /// Total number of *present* cells across levels (true storage size of
    /// the AMR representation).
    pub fn total_present(&self) -> usize {
        self.levels.iter().map(|l| l.num_present()).sum()
    }

    /// Per-level densities, fine to coarse (Table 1's density column).
    pub fn densities(&self) -> Vec<f64> {
        self.levels.iter().map(|l| l.density()).collect()
    }

    /// Scale factor from level `l` cells to finest positions: `2^l`.
    pub fn upsample_rate(&self, level: usize) -> usize {
        1 << level
    }

    /// Checks refinement ratios and the exactly-one-cover invariant.
    pub fn validate(&self) -> Result<(), AmrValidationError> {
        if self.levels.is_empty() {
            return Err(AmrValidationError::NoLevels);
        }
        for i in 0..self.levels.len() - 1 {
            let fine = self.levels[i].dim();
            let coarse = self.levels[i + 1].dim();
            if coarse * 2 != fine {
                return Err(AmrValidationError::BadRefinementRatio {
                    fine_level: i,
                    fine_dim: fine,
                    coarse_dim: coarse,
                });
            }
        }
        // Count covering levels per finest position.
        let n = self.finest_dim();
        let mut cover = vec![0u8; n * n * n];
        for (l, level) in self.levels.iter().enumerate() {
            let scale = self.upsample_rate(l);
            let dim = level.dim();
            for z in 0..dim {
                for y in 0..dim {
                    for x in 0..dim {
                        if !level.present(x, y, z) {
                            continue;
                        }
                        for dz in 0..scale {
                            for dy in 0..scale {
                                for dx in 0..scale {
                                    let fx = x * scale + dx;
                                    let fy = y * scale + dy;
                                    let fz = z * scale + dz;
                                    cover[fx + n * (fy + n * fz)] += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        for (i, &c) in cover.iter().enumerate() {
            if c != 1 {
                let x = i % n;
                let y = (i / n) % n;
                let z = i / (n * n);
                return Err(AmrValidationError::CoverageViolation {
                    position: (x, y, z),
                    count: c as usize,
                });
            }
        }
        Ok(())
    }

    /// Density of the finest level — the quantity TAC's top-level
    /// TAC-vs-3D-baseline switch inspects (Sec. 4.4).
    pub fn finest_density(&self) -> f64 {
        self.levels[0].density()
    }
}

#[cfg(test)]
pub(crate) use tests::half_refined;

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-level dataset: the +x half of the domain refined, the -x half
    /// coarse.
    pub(crate) fn half_refined(fine_dim: usize) -> AmrDataset {
        let coarse_dim = fine_dim / 2;
        let mut fine = AmrLevel::empty(fine_dim);
        for z in 0..fine_dim {
            for y in 0..fine_dim {
                for x in fine_dim / 2..fine_dim {
                    fine.set_value(x, y, z, (x + y + z) as f64);
                }
            }
        }
        let mut coarse = AmrLevel::empty(coarse_dim);
        for z in 0..coarse_dim {
            for y in 0..coarse_dim {
                for x in 0..coarse_dim / 2 {
                    coarse.set_value(x, y, z, (x * y * z) as f64 + 1.0);
                }
            }
        }
        AmrDataset::new("half", vec![fine, coarse])
    }

    #[test]
    fn valid_two_level_dataset() {
        let ds = half_refined(8);
        assert_eq!(ds.num_levels(), 2);
        assert!(ds.validate().is_ok());
        assert!((ds.finest_density() - 0.5).abs() < 1e-12);
        assert_eq!(ds.total_present(), 8 * 8 * 4 + 4 * 4 * 2);
    }

    #[test]
    fn refinement_ratio_violation_detected() {
        let fine = AmrLevel::dense(8, vec![0.0; 512]);
        let coarse = AmrLevel::empty(2); // should be 4
        let ds = AmrDataset::new("bad", vec![fine, coarse]);
        assert!(matches!(
            ds.validate(),
            Err(AmrValidationError::BadRefinementRatio { .. })
        ));
    }

    #[test]
    fn double_coverage_detected() {
        // Fine level fully present AND coarse cell (0,0,0) present.
        let fine = AmrLevel::dense(4, vec![1.0; 64]);
        let mut coarse = AmrLevel::empty(2);
        coarse.set_value(0, 0, 0, 2.0);
        let ds = AmrDataset::new("dup", vec![fine, coarse]);
        assert!(matches!(
            ds.validate(),
            Err(AmrValidationError::CoverageViolation { count: 2, .. })
        ));
    }

    #[test]
    fn hole_detected() {
        // Nothing covers any position.
        let fine = AmrLevel::<f64>::empty(4);
        let coarse = AmrLevel::empty(2);
        let ds = AmrDataset::new("hole", vec![fine, coarse]);
        assert!(matches!(
            ds.validate(),
            Err(AmrValidationError::CoverageViolation { count: 0, .. })
        ));
    }

    #[test]
    fn single_level_dense_is_valid() {
        let ds = AmrDataset::new("uni", vec![AmrLevel::dense(4, vec![1.0; 64])]);
        assert!(ds.validate().is_ok());
        assert_eq!(ds.upsample_rate(0), 1);
    }

    #[test]
    fn densities_match_levels() {
        let ds = half_refined(8);
        let d = ds.densities();
        assert_eq!(d.len(), 2);
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
    }
}
