//! Morton (z-order) curve utilities.
//!
//! The zMesh baseline re-orders AMR points along a space-filling curve so
//! that geometrically adjacent points sit near each other in the 1D
//! stream. Morton interleaving is the standard choice ("original
//! z-ordering" in the paper's Fig. 16).

/// Spreads the low 21 bits of `v` so there are two zero bits between
/// consecutive data bits (3D interleave building block).
#[inline]
fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`part1by2`].
#[inline]
fn compact1by2(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Encodes 3D coordinates (each < 2^21) into a Morton index.
#[inline]
pub fn morton3_encode(x: usize, y: usize, z: usize) -> u64 {
    debug_assert!(x < (1 << 21) && y < (1 << 21) && z < (1 << 21));
    part1by2(x as u64) | (part1by2(y as u64) << 1) | (part1by2(z as u64) << 2)
}

/// Decodes a Morton index back into `(x, y, z)`.
#[inline]
pub fn morton3_decode(m: u64) -> (usize, usize, usize) {
    (
        compact1by2(m) as usize,
        compact1by2(m >> 1) as usize,
        compact1by2(m >> 2) as usize,
    )
}

/// Spreads the low 32 bits with one zero bit between data bits (2D).
#[inline]
fn part1by1(v: u64) -> u64 {
    let mut x = v & 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000ffff0000ffff;
    x = (x | (x << 8)) & 0x00ff00ff00ff00ff;
    x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0f;
    x = (x | (x << 2)) & 0x3333333333333333;
    x = (x | (x << 1)) & 0x5555555555555555;
    x
}

#[inline]
fn compact1by1(v: u64) -> u64 {
    let mut x = v & 0x5555555555555555;
    x = (x | (x >> 1)) & 0x3333333333333333;
    x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0f;
    x = (x | (x >> 4)) & 0x00ff00ff00ff00ff;
    x = (x | (x >> 8)) & 0x0000ffff0000ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x
}

/// Encodes 2D coordinates (each < 2^32) into a Morton index.
#[inline]
pub fn morton2_encode(x: usize, y: usize) -> u64 {
    part1by1(x as u64) | (part1by1(y as u64) << 1)
}

/// Decodes a 2D Morton index back into `(x, y)`.
#[inline]
pub fn morton2_decode(m: u64) -> (usize, usize) {
    (compact1by1(m) as usize, compact1by1(m >> 1) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_3d_roundtrip() {
        for &(x, y, z) in &[
            (0usize, 0usize, 0usize),
            (1, 2, 3),
            (255, 0, 255),
            (1023, 511, 7),
            ((1 << 21) - 1, (1 << 21) - 1, (1 << 21) - 1),
        ] {
            assert_eq!(morton3_decode(morton3_encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn encode_decode_2d_roundtrip() {
        for &(x, y) in &[(0usize, 0usize), (5, 9), (65535, 1), (123456, 654321)] {
            assert_eq!(morton2_decode(morton2_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn first_octant_bits() {
        // (1,0,0) -> bit 0; (0,1,0) -> bit 1; (0,0,1) -> bit 2.
        assert_eq!(morton3_encode(1, 0, 0), 0b001);
        assert_eq!(morton3_encode(0, 1, 0), 0b010);
        assert_eq!(morton3_encode(0, 0, 1), 0b100);
        assert_eq!(morton3_encode(1, 1, 1), 0b111);
    }

    #[test]
    fn z_order_is_locality_preserving_within_octants() {
        // All 8 cells of the (0..2)^3 cube come before any cell with a
        // coordinate >= 2.
        let max_small = (0..2usize)
            .flat_map(|z| (0..2usize).flat_map(move |y| (0..2usize).map(move |x| (x, y, z))))
            .map(|(x, y, z)| morton3_encode(x, y, z))
            .max()
            .unwrap();
        assert!(max_small < morton3_encode(2, 0, 0));
        assert!(max_small < morton3_encode(0, 2, 0));
        assert!(max_small < morton3_encode(0, 0, 2));
    }

    #[test]
    fn morton_order_is_a_bijection_on_a_grid() {
        let n = 8;
        let mut seen = vec![false; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let m = morton3_encode(x, y, z) as usize;
                    assert!(m < n * n * n);
                    assert!(!seen[m], "collision at {m}");
                    seen[m] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
