//! A single AMR refinement level: a cubic grid with an occupancy mask.

use crate::mask::BitMask;
use tac_dtype::{Element, TacDtype};

/// One refinement level of a tree-based AMR dataset.
///
/// The grid is cubic with side `dim`; cell `(x, y, z)` lives at flat index
/// `x + dim*(y + dim*z)`. A cell is *present* (stored at this level) iff
/// its mask bit is set; absent cells hold zero in `data` and their values
/// live at some other level.
///
/// The element type `T` is `f64` by default (the historical stack-wide
/// width) or `f32`; every kernel downstream is monomorphized over it.
#[derive(Debug, Clone, PartialEq)]
pub struct AmrLevel<T: Element = f64> {
    dim: usize,
    data: Vec<T>,
    mask: BitMask,
}

impl<T: Element> AmrLevel<T> {
    /// Creates a level from raw parts.
    ///
    /// # Panics
    /// Panics if `data.len() != dim^3` or the mask length differs.
    pub fn new(dim: usize, data: Vec<T>, mask: BitMask) -> Self {
        let n = dim * dim * dim;
        assert_eq!(data.len(), n, "data length must be dim^3");
        assert_eq!(mask.len(), n, "mask length must be dim^3");
        AmrLevel { dim, data, mask }
    }

    /// Creates an empty (all-absent) level.
    pub fn empty(dim: usize) -> Self {
        let n = dim * dim * dim;
        AmrLevel {
            dim,
            data: vec![T::ZERO; n],
            mask: BitMask::zeros(n),
        }
    }

    /// Creates a fully populated level from dense data.
    pub fn dense(dim: usize, data: Vec<T>) -> Self {
        let n = dim * dim * dim;
        assert_eq!(data.len(), n, "data length must be dim^3");
        AmrLevel {
            dim,
            data,
            mask: BitMask::ones(n),
        }
    }

    /// Element type of this level's values.
    pub fn dtype(&self) -> TacDtype {
        T::DTYPE
    }

    /// Grid side length.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total cell count (`dim^3`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.data.len()
    }

    /// Number of present cells.
    pub fn num_present(&self) -> usize {
        self.mask.count_ones()
    }

    /// Fraction of present cells, in percent-free [0, 1] form. The paper's
    /// "density of 77%" corresponds to `0.77` here.
    pub fn density(&self) -> f64 {
        self.mask.density()
    }

    /// Flat index of `(x, y, z)`.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dim && y < self.dim && z < self.dim);
        x + self.dim * (y + self.dim * z)
    }

    /// Whether cell `(x, y, z)` is present at this level.
    #[inline]
    pub fn present(&self, x: usize, y: usize, z: usize) -> bool {
        self.mask.get(self.index(x, y, z))
    }

    /// Value at `(x, y, z)` (zero for absent cells).
    #[inline]
    pub fn value(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.index(x, y, z)]
    }

    /// Writes a present cell.
    pub fn set_value(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.index(x, y, z);
        self.data[i] = v;
        self.mask.set(i, true);
    }

    /// Marks a cell absent and zeroes its storage.
    pub fn clear_cell(&mut self, x: usize, y: usize, z: usize) {
        let i = self.index(x, y, z);
        self.data[i] = T::ZERO;
        self.mask.set(i, false);
    }

    /// Raw data slice (absent cells are zero).
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw data slice. Callers must keep mask semantics intact.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Occupancy mask.
    #[inline]
    pub fn mask(&self) -> &BitMask {
        &self.mask
    }

    /// Values of present cells, in flat-index order (the "1D baseline"
    /// representation of this level).
    pub fn present_values(&self) -> Vec<T> {
        self.mask.iter_ones().map(|i| self.data[i]).collect()
    }

    /// Min/max over present cells in `f64` working precision; `None` if
    /// the level is empty. (Widening is exact for both element types, so
    /// relative error bounds resolve against the true range.)
    pub fn value_range(&self) -> Option<(f64, f64)> {
        let mut it = self.mask.iter_ones().map(|i| self.data[i].to_f64());
        let first = it.next()?;
        let mut min = first;
        let mut max = first;
        for v in it {
            min = min.min(v);
            max = max.max(v);
        }
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut lvl = AmrLevel::empty(4);
        assert_eq!(lvl.num_cells(), 64);
        assert_eq!(lvl.num_present(), 0);
        lvl.set_value(1, 2, 3, 9.5);
        assert!(lvl.present(1, 2, 3));
        assert_eq!(lvl.value(1, 2, 3), 9.5);
        assert!(!lvl.present(3, 2, 1));
        assert_eq!(lvl.density(), 1.0 / 64.0);
        assert_eq!(lvl.dtype(), TacDtype::F64);
    }

    #[test]
    fn dense_level_is_full() {
        let lvl = AmrLevel::dense(2, (0..8).map(|i| i as f64).collect());
        assert_eq!(lvl.num_present(), 8);
        assert_eq!(lvl.value(1, 1, 1), 7.0);
        assert_eq!(lvl.present_values().len(), 8);
    }

    #[test]
    fn clear_cell_resets_storage() {
        let mut lvl = AmrLevel::dense(2, vec![1.0; 8]);
        lvl.clear_cell(0, 0, 0);
        assert!(!lvl.present(0, 0, 0));
        assert_eq!(lvl.value(0, 0, 0), 0.0);
        assert_eq!(lvl.num_present(), 7);
    }

    #[test]
    fn value_range_ignores_absent_cells() {
        let mut lvl = AmrLevel::empty(2);
        assert_eq!(lvl.value_range(), None);
        lvl.set_value(0, 0, 0, -3.0);
        lvl.set_value(1, 1, 1, 12.0);
        assert_eq!(lvl.value_range(), Some((-3.0, 12.0)));
    }

    #[test]
    fn f32_levels_carry_native_width_values() {
        let mut lvl: AmrLevel<f32> = AmrLevel::empty(2);
        assert_eq!(lvl.dtype(), TacDtype::F32);
        lvl.set_value(0, 0, 0, 1.5f32);
        lvl.set_value(1, 0, 0, f32::MIN_POSITIVE);
        assert_eq!(lvl.value(0, 0, 0), 1.5f32);
        let (min, max) = lvl.value_range().unwrap();
        assert_eq!(min, f32::MIN_POSITIVE as f64);
        assert_eq!(max, 1.5);
        assert_eq!(lvl.present_values(), vec![1.5f32, f32::MIN_POSITIVE]);
    }

    #[test]
    #[should_panic(expected = "dim^3")]
    fn wrong_data_length_panics() {
        AmrLevel::dense(3, vec![0.0; 26]);
    }
}
