//! Unit-block decomposition of a level.
//!
//! All three TAC pre-process strategies reason about a level at the
//! granularity of small cubic *unit blocks* (the paper uses 16^3 units for
//! 512^3 levels). [`BlockGrid`] caches per-block occupancy counts;
//! [`copy_region`]/[`paste_region`] move cell data between the level's
//! flat array and contiguous extraction buffers.

use crate::aabb::Aabb;
use crate::level::AmrLevel;
use tac_dtype::Element;

/// Per-unit-block occupancy summary of one AMR level.
#[derive(Debug, Clone)]
pub struct BlockGrid {
    unit: usize,
    nb: usize,
    counts: Vec<u32>,
}

impl BlockGrid {
    /// Scans `level`, counting present cells per unit block.
    ///
    /// # Panics
    /// Panics if `unit` does not divide the level dimension.
    pub fn build<T: Element>(level: &AmrLevel<T>, unit: usize) -> Self {
        let dim = level.dim();
        assert!(
            unit > 0 && dim % unit == 0,
            "unit {unit} must divide dim {dim}"
        );
        let nb = dim / unit;
        let mut counts = vec![0u32; nb * nb * nb];
        // Walk cells once; derive the owning block from the coordinates.
        for z in 0..dim {
            let bz = z / unit;
            for y in 0..dim {
                let by = y / unit;
                let row_block = nb * (by + nb * bz);
                for x in 0..dim {
                    if level.present(x, y, z) {
                        counts[x / unit + row_block] += 1;
                    }
                }
            }
        }
        BlockGrid { unit, nb, counts }
    }

    /// Unit block side length.
    #[inline]
    pub fn unit(&self) -> usize {
        self.unit
    }

    /// Blocks per grid side.
    #[inline]
    pub fn blocks_per_side(&self) -> usize {
        self.nb
    }

    /// Total number of unit blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.counts.len()
    }

    /// Cells per unit block (`unit^3`).
    #[inline]
    pub fn cells_per_block(&self) -> usize {
        self.unit * self.unit * self.unit
    }

    /// Flat block index.
    #[inline]
    pub fn index(&self, bx: usize, by: usize, bz: usize) -> usize {
        debug_assert!(bx < self.nb && by < self.nb && bz < self.nb);
        bx + self.nb * (by + self.nb * bz)
    }

    /// Present-cell count of block `(bx, by, bz)`.
    #[inline]
    pub fn count(&self, bx: usize, by: usize, bz: usize) -> u32 {
        self.counts[self.index(bx, by, bz)]
    }

    /// Whether the block holds no present cells.
    #[inline]
    pub fn is_empty_block(&self, bx: usize, by: usize, bz: usize) -> bool {
        self.count(bx, by, bz) == 0
    }

    /// Whether every cell of the block is present.
    #[inline]
    pub fn is_full_block(&self, bx: usize, by: usize, bz: usize) -> bool {
        self.count(bx, by, bz) as usize == self.cells_per_block()
    }

    /// Number of blocks holding at least one present cell.
    pub fn num_nonempty(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Fraction of non-empty blocks (block-granular density — the quantity
    /// TAC's density filter consumes).
    pub fn block_density(&self) -> f64 {
        self.num_nonempty() as f64 / self.num_blocks().max(1) as f64
    }

    /// The cell-coordinate box of unit block `(bx, by, bz)`.
    pub fn block_aabb(&self, bx: usize, by: usize, bz: usize) -> Aabb {
        Aabb::of_region(
            (bx * self.unit, by * self.unit, bz * self.unit),
            (self.unit, self.unit, self.unit),
        )
    }

    /// Tight cell-coordinate bounding box of all non-empty unit blocks,
    /// or `None` when the level is empty. Chunked containers use this as
    /// the whole-level extent for ROI chunk-table entries.
    pub fn nonempty_aabb(&self) -> Option<Aabb> {
        let mut acc: Option<Aabb> = None;
        for bz in 0..self.nb {
            for by in 0..self.nb {
                for bx in 0..self.nb {
                    if !self.is_empty_block(bx, by, bz) {
                        let b = self.block_aabb(bx, by, bz);
                        acc = Some(acc.map_or(b, |a| a.union(&b)));
                    }
                }
            }
        }
        acc
    }

    /// Sum of counts over the cuboid of blocks `[b0, b1)` (exclusive upper
    /// corner), used by AKDTree's split scoring.
    pub fn count_region(&self, b0: (usize, usize, usize), b1: (usize, usize, usize)) -> u64 {
        let mut acc = 0u64;
        for bz in b0.2..b1.2 {
            for by in b0.1..b1.1 {
                for bx in b0.0..b1.0 {
                    acc += self.count(bx, by, bz) as u64;
                }
            }
        }
        acc
    }
}

/// Copies the cell cuboid with origin `(x0, y0, z0)` and extents
/// `(w, h, d)` out of a level's flat data into a contiguous buffer
/// (x fastest).
pub fn copy_region<T: Copy>(
    data: &[T],
    dim: usize,
    (x0, y0, z0): (usize, usize, usize),
    (w, h, d): (usize, usize, usize),
) -> Vec<T> {
    assert!(
        x0 + w <= dim && y0 + h <= dim && z0 + d <= dim,
        "region out of bounds"
    );
    let mut out = Vec::with_capacity(w * h * d);
    for z in z0..z0 + d {
        for y in y0..y0 + h {
            let row = x0 + dim * (y + dim * z);
            out.extend_from_slice(&data[row..row + w]);
        }
    }
    out
}

/// Writes a contiguous buffer produced by [`copy_region`] back at the same
/// position.
pub fn paste_region<T: Copy>(
    data: &mut [T],
    dim: usize,
    (x0, y0, z0): (usize, usize, usize),
    (w, h, d): (usize, usize, usize),
    src: &[T],
) {
    assert!(
        x0 + w <= dim && y0 + h <= dim && z0 + d <= dim,
        "region out of bounds"
    );
    assert_eq!(src.len(), w * h * d, "source buffer size mismatch");
    let mut i = 0;
    for z in z0..z0 + d {
        for y in y0..y0 + h {
            let row = x0 + dim * (y + dim * z);
            data[row..row + w].copy_from_slice(&src[i..i + w]);
            i += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::AmrLevel;

    fn checkerboard_level(dim: usize, unit: usize) -> AmrLevel {
        // Alternate unit blocks present/absent in a 3D checkerboard.
        let mut lvl = AmrLevel::empty(dim);
        for z in 0..dim {
            for y in 0..dim {
                for x in 0..dim {
                    let parity = (x / unit + y / unit + z / unit) % 2;
                    if parity == 0 {
                        lvl.set_value(x, y, z, (x + y + z) as f64);
                    }
                }
            }
        }
        lvl
    }

    #[test]
    fn counts_match_checkerboard() {
        let (dim, unit) = (8, 2);
        let lvl = checkerboard_level(dim, unit);
        let grid = BlockGrid::build(&lvl, unit);
        assert_eq!(grid.blocks_per_side(), 4);
        assert_eq!(grid.num_blocks(), 64);
        assert_eq!(grid.num_nonempty(), 32);
        assert!((grid.block_density() - 0.5).abs() < 1e-12);
        for bz in 0..4 {
            for by in 0..4 {
                for bx in 0..4 {
                    let expect = if (bx + by + bz) % 2 == 0 { 8 } else { 0 };
                    assert_eq!(grid.count(bx, by, bz), expect);
                    assert_eq!(grid.is_full_block(bx, by, bz), expect == 8);
                    assert_eq!(grid.is_empty_block(bx, by, bz), expect == 0);
                }
            }
        }
    }

    #[test]
    fn nonempty_aabb_covers_checkerboard() {
        let lvl = checkerboard_level(8, 2);
        let grid = BlockGrid::build(&lvl, 2);
        // Checkerboard touches every octant: bbox is the whole grid.
        assert_eq!(grid.nonempty_aabb().unwrap(), Aabb::whole(8));
        assert_eq!(grid.block_aabb(1, 2, 3), Aabb::new((2, 4, 6), (4, 6, 8)));
        // A level with one occupied corner block gets a tight box.
        let mut corner = AmrLevel::empty(8);
        corner.set_value(7, 6, 7, 1.0);
        let grid = BlockGrid::build(&corner, 2);
        assert_eq!(
            grid.nonempty_aabb().unwrap(),
            Aabb::new((6, 6, 6), (8, 8, 8))
        );
        // Empty level: no box.
        let grid = BlockGrid::build(&AmrLevel::<f64>::empty(8), 2);
        assert!(grid.nonempty_aabb().is_none());
    }

    #[test]
    fn count_region_sums_blocks() {
        let lvl = checkerboard_level(8, 2);
        let grid = BlockGrid::build(&lvl, 2);
        let all = grid.count_region((0, 0, 0), (4, 4, 4));
        assert_eq!(all, lvl.num_present() as u64);
        let half = grid.count_region((0, 0, 0), (2, 4, 4));
        assert_eq!(half * 2, all);
    }

    #[test]
    fn copy_paste_region_roundtrip() {
        let dim = 6;
        let data: Vec<f64> = (0..dim * dim * dim).map(|i| i as f64).collect();
        let region = copy_region(&data, dim, (1, 2, 3), (4, 3, 2));
        assert_eq!(region.len(), 24);
        // Spot-check ordering: first element is (1,2,3).
        assert_eq!(region[0], (1 + dim * (2 + dim * 3)) as f64);
        let mut out = vec![0.0; dim * dim * dim];
        paste_region(&mut out, dim, (1, 2, 3), (4, 3, 2), &region);
        for z in 3..5 {
            for y in 2..5 {
                for x in 1..5 {
                    let i = x + dim * (y + dim * z);
                    assert_eq!(out[i], data[i]);
                }
            }
        }
        // Outside the region stays zero.
        assert_eq!(out[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_unit_panics() {
        let lvl = AmrLevel::<f64>::empty(10);
        BlockGrid::build(&lvl, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_region_panics() {
        let data = vec![0.0; 8];
        copy_region(&data, 2, (1, 1, 1), (2, 1, 1));
    }
}
