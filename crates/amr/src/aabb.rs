//! Axis-aligned bounding boxes over cell coordinates.
//!
//! The chunked container format records one [`Aabb`] per compressed
//! chunk so a region-of-interest decode can skip every chunk that
//! cannot contribute. Boxes are **half-open**: `min` is the lowest
//! contained cell, `max` is one past the highest, so `volume` and
//! intersection tests need no `+1` bookkeeping and an empty box is
//! simply `min == max`.

/// A half-open axis-aligned box `[min, max)` in cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aabb {
    /// Lowest contained cell (inclusive).
    pub min: (usize, usize, usize),
    /// One past the highest contained cell (exclusive).
    pub max: (usize, usize, usize),
}

impl Aabb {
    /// Builds a box from its corners, clamping `max` up to `min` so a
    /// degenerate input yields an empty box rather than a panic.
    pub fn new(min: (usize, usize, usize), max: (usize, usize, usize)) -> Self {
        Aabb {
            min,
            max: (max.0.max(min.0), max.1.max(min.1), max.2.max(min.2)),
        }
    }

    /// The box covering a whole `dim^3` grid.
    pub fn whole(dim: usize) -> Self {
        Aabb {
            min: (0, 0, 0),
            max: (dim, dim, dim),
        }
    }

    /// The box of a cuboid region: `origin` plus extents `(w, h, d)`.
    pub fn of_region(origin: (usize, usize, usize), shape: (usize, usize, usize)) -> Self {
        Aabb {
            min: origin,
            max: (origin.0 + shape.0, origin.1 + shape.1, origin.2 + shape.2),
        }
    }

    /// Whether the box contains no cells.
    pub fn is_empty(&self) -> bool {
        self.min.0 >= self.max.0 || self.min.1 >= self.max.1 || self.min.2 >= self.max.2
    }

    /// Number of cells covered.
    pub fn volume(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            (self.max.0 - self.min.0) * (self.max.1 - self.min.1) * (self.max.2 - self.min.2)
        }
    }

    /// Whether the cell at `(x, y, z)` lies inside.
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        self.min.0 <= x
            && x < self.max.0
            && self.min.1 <= y
            && y < self.max.1
            && self.min.2 <= z
            && z < self.max.2
    }

    /// Whether the two boxes share at least one cell.
    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.0 < other.max.0
            && other.min.0 < self.max.0
            && self.min.1 < other.max.1
            && other.min.1 < self.max.1
            && self.min.2 < other.max.2
            && other.min.2 < self.max.2
    }

    /// The overlapping box, or `None` when disjoint.
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if !self.intersects(other) {
            return None;
        }
        Some(Aabb {
            min: (
                self.min.0.max(other.min.0),
                self.min.1.max(other.min.1),
                self.min.2.max(other.min.2),
            ),
            max: (
                self.max.0.min(other.max.0),
                self.max.1.min(other.max.1),
                self.max.2.min(other.max.2),
            ),
        })
    }

    /// Smallest box covering both inputs (an empty side adopts the
    /// other).
    pub fn union(&self, other: &Aabb) -> Aabb {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Aabb {
            min: (
                self.min.0.min(other.min.0),
                self.min.1.min(other.min.1),
                self.min.2.min(other.min.2),
            ),
            max: (
                self.max.0.max(other.max.0),
                self.max.1.max(other.max.1),
                self.max.2.max(other.max.2),
            ),
        }
    }

    /// Maps the box from fine to coarse coordinates, dividing by
    /// `factor` with a floor on `min` and a ceiling on `max` — the
    /// coarse box covers every coarse cell any fine cell touches.
    ///
    /// # Panics
    /// Panics if `factor` is zero.
    pub fn coarsen(&self, factor: usize) -> Aabb {
        assert!(factor > 0, "coarsening factor must be positive");
        if self.is_empty() {
            return Aabb::new(self.min, self.min);
        }
        Aabb {
            min: (
                self.min.0 / factor,
                self.min.1 / factor,
                self.min.2 / factor,
            ),
            max: (
                self.max.0.div_ceil(factor),
                self.max.1.div_ceil(factor),
                self.max.2.div_ceil(factor),
            ),
        }
    }

    /// Maps the box from coarse to fine coordinates (multiplies both
    /// corners by `factor`).
    pub fn refine(&self, factor: usize) -> Aabb {
        Aabb {
            min: (
                self.min.0 * factor,
                self.min.1 * factor,
                self.min.2 * factor,
            ),
            max: (
                self.max.0 * factor,
                self.max.1 * factor,
                self.max.2 * factor,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let b = Aabb::of_region((1, 2, 3), (4, 5, 6));
        assert_eq!(b.max, (5, 7, 9));
        assert_eq!(b.volume(), 4 * 5 * 6);
        assert!(b.contains(1, 2, 3));
        assert!(b.contains(4, 6, 8));
        assert!(!b.contains(5, 2, 3));
        assert!(!Aabb::whole(8).is_empty());
        assert_eq!(Aabb::whole(8).volume(), 512);
    }

    #[test]
    fn empty_boxes() {
        let e = Aabb::new((3, 3, 3), (3, 5, 5));
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0);
        assert!(!e.intersects(&Aabb::whole(8)));
        // Degenerate max below min clamps to empty instead of panicking.
        let d = Aabb::new((4, 4, 4), (2, 2, 2));
        assert!(d.is_empty());
    }

    #[test]
    fn intersection_and_union() {
        let a = Aabb::new((0, 0, 0), (4, 4, 4));
        let b = Aabb::new((2, 2, 2), (6, 6, 6));
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::new((2, 2, 2), (4, 4, 4)));
        let u = a.union(&b);
        assert_eq!(u, Aabb::new((0, 0, 0), (6, 6, 6)));
        let far = Aabb::new((10, 10, 10), (12, 12, 12));
        assert!(!a.intersects(&far));
        assert!(a.intersection(&far).is_none());
        // Touching faces (half-open) do not intersect.
        let adj = Aabb::new((4, 0, 0), (8, 4, 4));
        assert!(!a.intersects(&adj));
    }

    #[test]
    fn union_with_empty_adopts_other() {
        let a = Aabb::new((1, 1, 1), (3, 3, 3));
        let e = Aabb::new((9, 9, 9), (9, 9, 9));
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn coarsen_floor_and_ceil() {
        let b = Aabb::new((3, 4, 5), (9, 8, 13));
        let c = b.coarsen(4);
        assert_eq!(c, Aabb::new((0, 1, 1), (3, 2, 4)));
        // Coarsened box covers every original cell.
        for (x, y, z) in [(3, 4, 5), (8, 7, 12)] {
            assert!(c.contains(x / 4, y / 4, z / 4));
        }
        assert_eq!(b.coarsen(1), b);
        let r = c.refine(4);
        assert!(r.contains(3, 4, 5) && r.contains(8, 7, 12));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_coarsen_panics() {
        Aabb::whole(4).coarsen(0);
    }
}
