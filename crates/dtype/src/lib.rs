#![forbid(unsafe_code)]

//! # tac-dtype
//!
//! The element-type abstraction the whole TAC stack is generic over.
//!
//! Real AMR pipelines ship both `f64` (simulation precision) and `f32`
//! (visualization / in-situ precision) fields. Following pcodec's
//! `dtype_dispatch` architecture, the stack supports both through **macro
//! monomorphization**: every kernel is generic over the sealed [`Element`]
//! trait, and the [`dispatch_dtype!`] macro expands a runtime
//! [`TacDtype`] tag into one fully monomorphized call per type — no trait
//! objects and no per-value dtype branches inside hot loops.
//!
//! ```
//! use tac_dtype::{dispatch_dtype, Element, TacDtype};
//!
//! fn sum_as_f64<T: Element>(data: &[T]) -> f64 {
//!     data.iter().map(|v| v.to_f64()).sum()
//! }
//!
//! let dtype = TacDtype::F32;
//! let total = dispatch_dtype!(dtype, T => {
//!     let data: Vec<T> = vec![T::from_f64(1.5); 4];
//!     sum_as_f64(&data)
//! });
//! assert_eq!(total, 6.0);
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Wire-stable element-type tag.
///
/// The tag byte is written into container headers and per-chunk rows
/// (wire v4); absent tags on older streams mean [`TacDtype::F64`], so
/// every pre-v4 container keeps decoding unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TacDtype {
    /// IEEE-754 binary64 (the historical default of the whole stack).
    #[default]
    F64,
    /// IEEE-754 binary32.
    F32,
}

impl TacDtype {
    /// Wire tag byte. `0` = f64, `1` = f32 — never renumber.
    pub const fn tag(self) -> u8 {
        match self {
            TacDtype::F64 => 0,
            TacDtype::F32 => 1,
        }
    }

    /// Parses a wire tag byte.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(TacDtype::F64),
            1 => Some(TacDtype::F32),
            _ => None,
        }
    }

    /// Bytes one element occupies on the wire (little-endian IEEE bits).
    pub const fn wire_bytes(self) -> usize {
        match self {
            TacDtype::F64 => 8,
            TacDtype::F32 => 4,
        }
    }

    /// Human-readable name (`"f64"` / `"f32"`).
    pub const fn label(self) -> &'static str {
        match self {
            TacDtype::F64 => "f64",
            TacDtype::F32 => "f32",
        }
    }
}

impl fmt::Display for TacDtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

mod sealed {
    /// Sealing trait: [`super::Element`] is implemented for `f32` and
    /// `f64` only, by this crate only. Downstream code can rely on the
    /// set of element types being closed (which is what makes
    /// `dispatch_dtype!` exhaustive).
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// A scalar element type the TAC stack can compress: `f32` or `f64`.
///
/// The trait is **sealed** — exactly two implementations exist, and
/// [`dispatch_dtype!`] covers both. Arithmetic inside the kernels runs in
/// `f64` (exact for every `f32` input); `Element` is the boundary where
/// values enter and leave that working precision, and where IEEE bits
/// cross the wire at the type's native width.
pub trait Element:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + fmt::Debug
    + fmt::Display
    + 'static
{
    /// Runtime tag for this element type.
    const DTYPE: TacDtype;
    /// Bytes per element on the wire.
    const WIRE_BYTES: usize;
    /// Additive identity.
    const ZERO: Self;
    /// Smallest positive *normal* value, widened to `f64`. Relative error
    /// bounds on constant data fall back to this so the quantizer step
    /// stays representable at this type's precision.
    const MIN_POSITIVE: f64;
    /// Machine epsilon, widened to `f64`.
    const EPSILON: f64;

    /// Widens to the `f64` working precision (exact for both types).
    fn to_f64(self) -> f64;
    /// Narrows from working precision with IEEE round-to-nearest. This is
    /// the *only* lossy step in the stack's arithmetic, and every
    /// quantizer bound check runs after it.
    fn from_f64(v: f64) -> Self;
    /// IEEE bits, zero-extended to 64.
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Element::to_bits_u64`] (upper bits ignored for f32).
    fn from_bits_u64(bits: u64) -> Self;
    /// Whether the value is neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// Whether the value is NaN.
    fn is_nan(self) -> bool;
    /// Appends the little-endian IEEE bits ([`Element::WIRE_BYTES`] bytes).
    fn append_le(self, out: &mut Vec<u8>);
    /// Reads one element from the head of `bytes`; `None` when fewer than
    /// [`Element::WIRE_BYTES`] bytes remain.
    fn read_le(bytes: &[u8]) -> Option<Self>;
}

impl Element for f64 {
    const DTYPE: TacDtype = TacDtype::F64;
    const WIRE_BYTES: usize = 8;
    const ZERO: Self = 0.0;
    const MIN_POSITIVE: f64 = f64::MIN_POSITIVE;
    const EPSILON: f64 = f64::EPSILON;

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn append_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        Some(f64::from_bits(u64::from_le_bytes(arr)))
    }
}

impl Element for f32 {
    const DTYPE: TacDtype = TacDtype::F32;
    const WIRE_BYTES: usize = 4;
    const ZERO: Self = 0.0;
    const MIN_POSITIVE: f64 = f32::MIN_POSITIVE as f64;
    const EPSILON: f64 = f32::EPSILON as f64;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline]
    fn append_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
        Some(f32::from_bits(u32::from_le_bytes(arr)))
    }
}

/// Expands a runtime [`TacDtype`] into one monomorphized block per
/// element type.
///
/// Inside the block, the given identifier is a local type alias bound to
/// the concrete type (`f32` or `f64`), so generic kernels called with it
/// compile to straight-line per-type code — the dispatch is a single
/// match at the call boundary, never inside a loop.
///
/// ```
/// use tac_dtype::{dispatch_dtype, Element, TacDtype};
///
/// let width = dispatch_dtype!(TacDtype::F32, T => { T::WIRE_BYTES });
/// assert_eq!(width, 4);
/// ```
#[macro_export]
macro_rules! dispatch_dtype {
    ($dtype:expr, $T:ident => $body:block) => {
        match $dtype {
            $crate::TacDtype::F64 => {
                type $T = f64;
                $body
            }
            $crate::TacDtype::F32 => {
                type $T = f32;
                $body
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_wire_stable() {
        assert_eq!(TacDtype::F64.tag(), 0);
        assert_eq!(TacDtype::F32.tag(), 1);
        assert_eq!(TacDtype::from_tag(0), Some(TacDtype::F64));
        assert_eq!(TacDtype::from_tag(1), Some(TacDtype::F32));
        assert_eq!(TacDtype::from_tag(2), None);
        assert_eq!(TacDtype::from_tag(255), None);
    }

    #[test]
    fn widths_and_labels() {
        assert_eq!(TacDtype::F64.wire_bytes(), 8);
        assert_eq!(TacDtype::F32.wire_bytes(), 4);
        assert_eq!(f64::WIRE_BYTES, 8);
        assert_eq!(f32::WIRE_BYTES, 4);
        assert_eq!(TacDtype::F64.to_string(), "f64");
        assert_eq!(TacDtype::F32.to_string(), "f32");
        assert_eq!(TacDtype::default(), TacDtype::F64);
    }

    #[test]
    fn f64_conversions_are_identity() {
        for v in [0.0, -1.5, f64::MIN_POSITIVE, 1e300, f64::INFINITY] {
            assert_eq!(Element::to_f64(v), v);
            assert_eq!(<f64 as Element>::from_f64(v), v);
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()), v);
        }
        assert!(Element::is_nan(f64::NAN));
        assert!(!Element::is_finite(f64::INFINITY));
    }

    #[test]
    fn f32_narrowing_rounds_to_nearest() {
        // 1.0 + 2^-30 is not representable in f32; rounds back to 1.0.
        let v = 1.0f64 + 2f64.powi(-30);
        assert_eq!(<f32 as Element>::from_f64(v), 1.0f32);
        // Values beyond f32 range saturate to infinity, staying non-finite
        // rather than wrapping.
        assert_eq!(<f32 as Element>::from_f64(1e300), f32::INFINITY);
        // Sub-subnormal magnitudes underflow to zero — the degenerate-step
        // case resolve_level_eb must reject.
        assert_eq!(<f32 as Element>::from_f64(1e-46), 0.0f32);
        // Negative zero survives the round trip bit-exactly.
        let nz = <f32 as Element>::from_f64(-0.0);
        assert_eq!(nz.to_bits_u64(), (-0.0f32).to_bits() as u64);
    }

    #[test]
    fn bits_roundtrip_f32() {
        for v in [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::INFINITY] {
            assert_eq!(f32::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
        let nan = f32::from_bits_u64(f32::NAN.to_bits_u64());
        assert!(Element::is_nan(nan));
    }

    #[test]
    fn wire_helpers_roundtrip() {
        let mut buf = Vec::new();
        1.25f64.append_le(&mut buf);
        (-3.5f32).append_le(&mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(f64::read_le(&buf), Some(1.25));
        assert_eq!(f32::read_le(&buf[8..]), Some(-3.5));
        assert_eq!(f32::read_le(&buf[10..]), None);
        assert_eq!(f64::read_le(&[]), None);
    }

    #[test]
    fn dispatch_macro_monomorphizes_both_arms() {
        fn width_of<T: Element>() -> usize {
            T::WIRE_BYTES
        }
        for (dtype, want) in [(TacDtype::F64, 8usize), (TacDtype::F32, 4usize)] {
            let got = dispatch_dtype!(dtype, T => { width_of::<T>() });
            assert_eq!(got, want);
        }
    }

    #[test]
    fn min_positive_matches_type_precision() {
        assert_eq!(f64::MIN_POSITIVE_CONST, f64::MIN_POSITIVE);
        assert_eq!(f32::MIN_POSITIVE_CONST, f32::MIN_POSITIVE as f64);
    }

    // Disambiguate the associated const from the inherent one in the test
    // above.
    trait MinPos {
        const MIN_POSITIVE_CONST: f64;
    }
    impl MinPos for f64 {
        const MIN_POSITIVE_CONST: f64 = <f64 as Element>::MIN_POSITIVE;
    }
    impl MinPos for f32 {
        const MIN_POSITIVE_CONST: f64 = <f32 as Element>::MIN_POSITIVE;
    }
}
