//! Adaptive method+codec selection behind [`Method::Auto`] — the
//! TAC+-style answer to "no single compressor wins every workload".
//!
//! The selection pass scores every fixed `(method, codec)` candidate
//! and, for the TAC method, every per-level codec independently, then
//! hands the winning concrete choice back to the pipeline. Two regimes:
//!
//! * **Exhaustive** (datasets up to
//!   [`AutoParams::exhaustive_limit`](crate::AutoParams) present
//!   values): every candidate is compressed in full and the smallest
//!   payload wins, so the choice is exact — the per-level TAC mix is by
//!   construction at least as small as every fixed TAC candidate.
//! * **Sampled** (larger datasets): each candidate trial-encodes a
//!   contiguous window of its own traversal order (present values per
//!   level for TAC/1D, the zMesh gather for zMesh, bytes-per-value
//!   scaled to the full uniform grid for the 3D baseline), bounded by
//!   [`AutoParams::sample_budget`](crate::AutoParams) values per
//!   candidate, and payload sizes are extrapolated from the trials.
//!
//! Candidates are scored by estimated payload bytes, nudged by two
//! small tie-breaks — the codec's measured decode-throughput class
//! ([`CodecId::throughput_class`]) and the observed error headroom of
//! the trial reconstruction — each worth at most a few percent, well
//! inside the dominance tolerance the test suite pins. The pass is
//! serial and deterministic: identical input and configuration always
//! select the same candidate, so `Method::Auto` output is byte-identical
//! for every worker count, like every fixed path.
//!
//! The winner is recorded in the per-level method/codec tags the v3/v4
//! container already carries; **decode needs no new wire format** and
//! [`Method::Auto`] itself never serializes.

use crate::config::TacConfig;
use crate::container::{CompressedDataset, Method, MethodBody};
use crate::error::TacError;
use crate::pipeline::{compress_dataset_t, resolve_level_eb_for};
use crate::stream::CompressedLevel;
use crate::zmesh::{gather, zmesh_order_window};
use tac_amr::{AmrDataset, BitMask};
use tac_codec::{codec_for, CodecElement, CodecId, Dims};

/// Weight of the decode-throughput tie-break: the fastest-decoding
/// codec's score is discounted by at most this fraction, so throughput
/// only decides between candidates whose sizes are within ~2%.
const THROUGHPUT_TIEBREAK: f64 = 0.02;

/// Weight of the error-headroom tie-break (sampled regime only, where
/// trial reconstructions are on hand): a candidate reconstructing well
/// inside the bound is discounted by at most this fraction.
const HEADROOM_TIEBREAK: f64 = 0.01;

/// Smallest per-level sample window of the sampled regime: below this,
/// per-stream header overhead dominates and extrapolation is noise.
const MIN_WINDOW: usize = 64;

/// One `(method, codec)` candidate the selection pass evaluated.
#[derive(Debug, Clone)]
pub struct CandidateEstimate {
    /// The fixed method of the candidate.
    pub method: Method,
    /// The codec of the candidate.
    pub codec: CodecId,
    /// Estimated payload bytes (exact in the exhaustive regime).
    pub estimated_bytes: usize,
    /// Whether the estimate came from a full trial compression.
    pub exact: bool,
    /// The candidate's score (estimated bytes after the throughput and
    /// headroom tie-break discounts); smaller wins.
    pub score: f64,
}

/// The outcome of a [`Method::Auto`] selection pass.
#[derive(Debug, Clone)]
pub struct AutoSelection {
    /// The winning concrete method (never [`Method::Auto`]).
    pub method: Method,
    /// The winning codec. For a TAC winner this is the codec of the
    /// first non-empty level; [`AutoSelection::level_codecs`] carries
    /// the full per-level assignment.
    pub codec: CodecId,
    /// Per-level codec assignment, fine to coarse (TAC winner only;
    /// empty for the single-stream and 1D winners).
    pub level_codecs: Vec<CodecId>,
    /// Whether the exhaustive (exact) regime ran.
    pub exhaustive: bool,
    /// Every candidate evaluated, in method/codec sweep order.
    pub candidates: Vec<CandidateEstimate>,
}

/// A scored concrete choice under consideration.
struct Choice {
    score: f64,
    method: Method,
    codec: CodecId,
    level_codecs: Vec<CodecId>,
}

/// Scores a candidate: estimated bytes, discounted by the codec's
/// decode-throughput class and the observed error headroom. Both
/// discounts are bounded by their tie-break weights, so a candidate can
/// only out-score another that is genuinely close in size.
fn score(est: f64, codec: CodecId, headroom: f64) -> f64 {
    let max_class = CodecId::all()
        .iter()
        .map(|c| c.throughput_class())
        .fold(1.0, f64::max);
    let span = (max_class - 1.0).max(f64::MIN_POSITIVE);
    let tp = (codec.throughput_class() - 1.0) / span;
    est * (1.0 - THROUGHPUT_TIEBREAK * tp) * (1.0 - HEADROOM_TIEBREAK * headroom.clamp(0.0, 1.0))
}

/// Keeps `candidate` when it strictly out-scores the current winner, so
/// earlier-considered candidates win ties (the consideration order is
/// fixed: per-level TAC mix first, then the fixed sweep order).
fn consider(winner: &mut Option<Choice>, candidate: Choice) {
    if winner.as_ref().map_or(true, |w| candidate.score < w.score) {
        *winner = Some(candidate);
    }
}

/// Runs the selection pass for `ds` under `cfg` and returns the winning
/// concrete choice plus every candidate's estimate.
///
/// # Errors
/// Fails only when *every* candidate fails to compress (for example a
/// relative bound that cannot resolve anywhere); the error of the
/// TAC-with-configured-codec candidate — the choice the fixed pipeline
/// would have made — is propagated so `Method::Auto` reports the same
/// failure the equivalent fixed call would.
pub fn select_auto<T: CodecElement>(
    ds: &AmrDataset<T>,
    cfg: &TacConfig,
) -> Result<AutoSelection, TacError> {
    let _select = tac_obs::span(tac_obs::Stage::Select).arg("levels", ds.num_levels());
    if ds.total_present() <= cfg.auto.exhaustive_limit {
        select_exhaustive(ds, cfg)
    } else {
        select_sampled(ds, cfg)
    }
}

/// Exhaustive regime: compress every `(method, codec)` candidate in
/// full and score serialized container bytes; per level, the TAC
/// candidate takes the cheapest codec.
fn select_exhaustive<T: CodecElement>(
    ds: &AmrDataset<T>,
    cfg: &TacConfig,
) -> Result<AutoSelection, TacError> {
    let mut candidates = Vec::new();
    // The full container of each successful TAC run, by codec (kept to
    // assemble the per-level mix exactly).
    let mut tac_runs: Vec<(CodecId, CompressedDataset)> = Vec::new();
    let mut winner: Option<Choice> = None;
    let mut fallback_err: Option<TacError> = None;
    for method in Method::fixed() {
        for codec in CodecId::all() {
            let trial_cfg = TacConfig {
                codec,
                ..cfg.clone()
            };
            let cd = match compress_dataset_t(ds, &trial_cfg, method) {
                Ok(cd) => cd,
                Err(e) => {
                    // Remember the failure of the choice the fixed
                    // pipeline would have made, to propagate if nothing
                    // succeeds at all.
                    if method == Method::Tac && codec == cfg.codec {
                        fallback_err = Some(e);
                    }
                    continue;
                }
            };
            tac_obs::add(tac_obs::Counter::SelectCandidates, 1);
            tac_obs::add_bytes(tac_obs::Counter::SelectSampledValues, ds.total_present());
            // Score what the dominance contract is stated over: the
            // serialized container, headers and chunk tables included.
            let est = cd.to_bytes().len();
            candidates.push(CandidateEstimate {
                method,
                codec,
                estimated_bytes: est,
                exact: true,
                score: score(est as f64, codec, 0.0),
            });
            if method == Method::Tac {
                tac_runs.push((codec, cd));
            }
        }
    }

    // The per-level TAC mix: for each level, the codec whose run made
    // that level smallest (chunk structure is codec-independent, so the
    // per-level minimum also minimizes the container). The mixed
    // container is assembled from the trial runs' levels and measured
    // exactly. It is no larger than any fixed TAC candidate, and it is
    // considered first, so it wins ties.
    if let Some((_, first_cd)) = tac_runs.first() {
        let levels_total = match &first_cd.body {
            MethodBody::Tac(levels) => levels.len(),
            _ => 0,
        };
        let mut level_codecs = Vec::with_capacity(levels_total);
        let mut mixed_levels = Vec::with_capacity(levels_total);
        for l in 0..levels_total {
            let mut lvl_best: Option<(f64, CodecId, &CompressedLevel)> = None;
            for (codec, cd) in &tac_runs {
                let MethodBody::Tac(levels) = &cd.body else {
                    continue;
                };
                let Some(cl) = levels.get(l) else { continue };
                let s = score(cl.total_bytes() as f64, *codec, 0.0);
                if lvl_best.map_or(true, |(bs, ..)| s < bs) {
                    lvl_best = Some((s, *codec, cl));
                }
            }
            let Some((_, codec, cl)) = lvl_best else {
                continue;
            };
            level_codecs.push(codec);
            mixed_levels.push(cl.clone());
        }
        let mixed = CompressedDataset {
            name: first_cd.name.clone(),
            finest_dim: first_cd.finest_dim,
            dtype: first_cd.dtype,
            masks: first_cd.masks.clone(),
            body: MethodBody::Tac(mixed_levels),
        };
        let est = mixed.to_bytes().len();
        let codec = representative_codec(ds, &level_codecs, cfg);
        consider(
            &mut winner,
            Choice {
                score: score(est as f64, codec, 0.0),
                method: Method::Tac,
                codec,
                level_codecs,
            },
        );
    }
    for c in &candidates {
        if c.method != Method::Tac {
            consider(
                &mut winner,
                Choice {
                    score: c.score,
                    method: c.method,
                    codec: c.codec,
                    level_codecs: Vec::new(),
                },
            );
        }
    }
    finish(winner, candidates, true, fallback_err)
}

/// The codec recorded as a TAC winner's headline choice: the assignment
/// of its first non-empty level (the wire tags every level separately,
/// so this is presentation only).
fn representative_codec<T: CodecElement>(
    ds: &AmrDataset<T>,
    level_codecs: &[CodecId],
    cfg: &TacConfig,
) -> CodecId {
    ds.levels()
        .iter()
        .zip(level_codecs)
        .find(|(lvl, _)| lvl.num_present() != 0)
        .map(|(_, &c)| c)
        .unwrap_or(cfg.codec)
}

/// One level's contiguous sample window and resolved bound.
struct LevelSample<T> {
    level: usize,
    abs_eb: f64,
    window: Vec<T>,
    present: usize,
}

/// A trial encode of one window: raw stream size and the worst absolute
/// reconstruction error observed.
fn trial<T: CodecElement>(
    codec: CodecId,
    window: &[T],
    abs_eb: f64,
    cfg: &TacConfig,
) -> Option<(usize, f64)> {
    let cc = cfg.codec_config(abs_eb);
    let (stream, recon) =
        T::codec_compress_with_recon(codec_for(codec), window, Dims::D1(window.len()), &cc).ok()?;
    tac_obs::add_bytes(tac_obs::Counter::SelectSampledValues, window.len());
    let worst = window
        .iter()
        .zip(&recon)
        .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
        .fold(0.0, f64::max);
    Some((stream.len(), worst))
}

/// Sampled regime: extrapolate every candidate's payload from bounded
/// trial encodes over contiguous windows of its own traversal order.
fn select_sampled<T: CodecElement>(
    ds: &AmrDataset<T>,
    cfg: &TacConfig,
) -> Result<AutoSelection, TacError> {
    let budget = cfg.auto.sample_budget;
    let present_total = ds.total_present();
    let mut fallback_err: Option<TacError> = None;

    // One O(present) range scan per level, shared by the per-level
    // bound resolution and the single-stream candidates' global range.
    let level_ranges: Vec<Option<(f64, f64)>> =
        ds.levels().iter().map(|l| l.value_range()).collect();

    // Contiguous prefix windows of present values (literal prefixes of
    // the 1D streams the per-level methods would encode), budget split
    // proportionally to level populations.
    let mut samples: Vec<LevelSample<T>> = Vec::new();
    for (l, level) in ds.levels().iter().enumerate() {
        let present = level.num_present();
        if present == 0 {
            continue;
        }
        let abs_eb = match resolve_level_eb_for(
            T::DTYPE,
            cfg.error_bound,
            cfg.level_scale(l),
            level_ranges.get(l).copied().flatten(),
        ) {
            Ok(eb) => eb,
            Err(e) => {
                // The per-level methods would fail on this level; keep
                // the error for the all-failed case and let the
                // single-stream candidates still compete.
                if fallback_err.is_none() {
                    fallback_err = Some(e);
                }
                samples.clear();
                break;
            }
        };
        let share = ((budget as f64) * (present as f64) / (present_total as f64)).ceil() as usize;
        let take = share.max(MIN_WINDOW).min(present);
        let data = level.data();
        let window: Vec<T> = level
            .mask()
            .iter_ones()
            .take(take)
            .filter_map(|i| data.get(i).copied())
            .collect();
        samples.push(LevelSample {
            level: l,
            abs_eb,
            window,
            present,
        });
    }

    let mut candidates = Vec::new();
    let mut winner: Option<Choice> = None;

    // TAC and the 1D baseline: per-level extrapolated 1D trials. The
    // same trials serve both (TAC's 3D regions hold the same values);
    // TAC is considered first, so it wins the resulting ties, matching
    // the paper's default preference for level-wise 3D compression.
    if !samples.is_empty() {
        // One trial per (level, codec); every estimate below derives
        // from this single pass.
        let mut level_trials: Vec<Vec<Option<(f64, f64)>>> = Vec::with_capacity(samples.len());
        for s in &samples {
            let mut row = Vec::new();
            for codec in CodecId::all() {
                row.push(trial(codec, &s.window, s.abs_eb, cfg).map(|(raw, worst)| {
                    let scale_factor = (s.present as f64) / (s.window.len() as f64);
                    (
                        (raw as f64) * scale_factor,
                        worst / s.abs_eb.max(f64::MIN_POSITIVE),
                    )
                }));
            }
            level_trials.push(row);
        }
        let mut per_codec_totals: Vec<(CodecId, f64, f64)> = Vec::new(); // (codec, est, worst err ratio)
        for (ci, codec) in CodecId::all().into_iter().enumerate() {
            let mut total_est = 0.0;
            let mut worst_ratio = 0.0f64;
            let mut ok = true;
            for row in &level_trials {
                match row.get(ci).copied().flatten() {
                    Some((est, ratio)) => {
                        total_est += est;
                        worst_ratio = worst_ratio.max(ratio);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                per_codec_totals.push((codec, total_est, worst_ratio));
            }
        }
        let mut level_codecs: Vec<CodecId> = vec![CodecId::default(); ds.num_levels()];
        let mut mixed_score = 0.0;
        let mut mixed_est = 0.0;
        let mut mixed_ok = true;
        for (s, row) in samples.iter().zip(&level_trials) {
            let mut lvl_best: Option<(f64, CodecId, f64)> = None;
            for (ci, codec) in CodecId::all().into_iter().enumerate() {
                let Some((est, ratio)) = row.get(ci).copied().flatten() else {
                    continue;
                };
                let sc = score(est, codec, 1.0 - ratio);
                if lvl_best.map_or(true, |(bs, ..)| sc < bs) {
                    lvl_best = Some((sc, codec, est));
                }
            }
            match lvl_best {
                Some((sc, codec, est)) => {
                    if let Some(slot) = level_codecs.get_mut(s.level) {
                        *slot = codec;
                    }
                    mixed_score += sc;
                    mixed_est += est;
                }
                None => mixed_ok = false,
            }
        }
        if mixed_ok {
            candidates.push(CandidateEstimate {
                method: Method::Tac,
                codec: representative_codec(ds, &level_codecs, cfg),
                estimated_bytes: mixed_est as usize,
                exact: false,
                score: mixed_score,
            });
            consider(
                &mut winner,
                Choice {
                    score: mixed_score,
                    method: Method::Tac,
                    codec: representative_codec(ds, &level_codecs, cfg),
                    level_codecs,
                },
            );
        }
        for (codec, est, worst_ratio) in per_codec_totals {
            let sc = score(est, codec, 1.0 - worst_ratio);
            candidates.push(CandidateEstimate {
                method: Method::Baseline1D,
                codec,
                estimated_bytes: est as usize,
                exact: false,
                score: sc,
            });
            consider(
                &mut winner,
                Choice {
                    score: sc,
                    method: Method::Baseline1D,
                    codec,
                    level_codecs: Vec::new(),
                },
            );
        }
    }

    // Global value range for the single-stream candidates, combined
    // from the per-level scans above.
    let global_range =
        level_ranges
            .iter()
            .flatten()
            .fold(None, |acc: Option<(f64, f64)>, &(lo, hi)| match acc {
                None => Some((lo, hi)),
                Some((alo, ahi)) => Some((alo.min(lo), ahi.max(hi))),
            });

    if let Some(range) = global_range {
        if let Ok(abs_eb) = resolve_level_eb_for(T::DTYPE, cfg.error_bound, 1.0, Some(range)) {
            // zMesh: a prefix window of the real geometric traversal,
            // walked lazily so selection cost stays bounded by the
            // budget, not the dataset.
            let mask_refs: Vec<&BitMask> = ds.levels().iter().map(|l| l.mask()).collect();
            let data_refs: Vec<&[T]> = ds.levels().iter().map(|l| l.data()).collect();
            let take = budget.max(MIN_WINDOW);
            let order = zmesh_order_window(&mask_refs, ds.finest_dim(), 0, take);
            let zwindow: Vec<T> = gather(&order, &data_refs);
            if !zwindow.is_empty() {
                // One trial per codec serves both single-stream
                // candidates: zMesh scales bytes to the present values,
                // the 3D baseline scales bytes-per-value to the full
                // uniform grid it would store — which is what correctly
                // penalizes it on sparse data.
                let fd = ds.finest_dim();
                let uniform_cells = (fd * fd) * fd;
                for codec in CodecId::all() {
                    let Some((raw, worst)) = trial(codec, &zwindow, abs_eb, cfg) else {
                        continue;
                    };
                    let bpv = (raw as f64) / (zwindow.len() as f64);
                    let headroom = 1.0 - (worst / abs_eb.max(f64::MIN_POSITIVE));
                    for (method, est) in [
                        (Method::ZMesh, bpv * (present_total as f64)),
                        (Method::Baseline3D, bpv * (uniform_cells as f64)),
                    ] {
                        let sc = score(est, codec, headroom);
                        candidates.push(CandidateEstimate {
                            method,
                            codec,
                            estimated_bytes: est as usize,
                            exact: false,
                            score: sc,
                        });
                        consider(
                            &mut winner,
                            Choice {
                                score: sc,
                                method,
                                codec,
                                level_codecs: Vec::new(),
                            },
                        );
                    }
                }
            }
        }
    }
    tac_obs::add(tac_obs::Counter::SelectCandidates, candidates.len() as u64);
    finish(winner, candidates, false, fallback_err)
}

/// Wraps up a pass: the winner (or the propagated fallback error when
/// nothing succeeded) plus the candidate table.
fn finish(
    winner: Option<Choice>,
    candidates: Vec<CandidateEstimate>,
    exhaustive: bool,
    fallback_err: Option<TacError>,
) -> Result<AutoSelection, TacError> {
    match winner {
        Some(w) => {
            tac_obs::add(tac_obs::Counter::SelectWinnerBytes, w.score as u64);
            Ok(AutoSelection {
                method: w.method,
                codec: w.codec,
                level_codecs: w.level_codecs,
                exhaustive,
                candidates,
            })
        }
        None => Err(fallback_err.unwrap_or_else(|| {
            TacError::InvalidDataset("auto selection found no viable candidate".into())
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac_amr::AmrLevel;
    use tac_sz::ErrorBound;

    /// Two-level dataset with a blobby fine region and smooth values
    /// (the same shape the pipeline tests use).
    fn blobby(fine_dim: usize) -> AmrDataset {
        let coarse_dim = fine_dim / 2;
        let mut fine = AmrLevel::empty(fine_dim);
        let mut coarse = AmrLevel::empty(coarse_dim);
        let c = fine_dim as f64 / 2.0;
        for z in 0..coarse_dim {
            for y in 0..coarse_dim {
                for x in 0..coarse_dim {
                    let (fx, fy, fz) = (2 * x, 2 * y, 2 * z);
                    let dist = ((fx as f64 - c).powi(2)
                        + (fy as f64 - c).powi(2)
                        + (fz as f64 - c).powi(2))
                    .sqrt();
                    if dist < fine_dim as f64 * 0.33 {
                        for dz in 0..2 {
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let (px, py, pz) = (fx + dx, fy + dy, fz + dz);
                                    let v = ((px as f64) * 0.3).sin()
                                        + ((py as f64) * 0.2).cos()
                                        + pz as f64 * 0.05
                                        + 5.0;
                                    fine.set_value(px, py, pz, v);
                                }
                            }
                        }
                    } else {
                        let v = ((x as f64) * 0.3).sin() + y as f64 * 0.01 + 3.0;
                        coarse.set_value(x, y, z, v);
                    }
                }
            }
        }
        AmrDataset::new("blobby", vec![fine, coarse])
    }

    fn cfg() -> TacConfig {
        TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            ..Default::default()
        }
    }

    #[test]
    fn exhaustive_winner_is_at_least_as_small_as_every_fixed_pair() {
        let ds = blobby(16);
        let sel = select_auto(&ds, &cfg()).unwrap();
        assert!(sel.exhaustive);
        assert_ne!(sel.method, Method::Auto);
        assert_eq!(sel.candidates.len(), 12, "4 methods x 3 codecs");
        assert!(sel.candidates.iter().all(|c| c.exact));
        // The winner's score is minimal over every fixed candidate
        // (modulo the bounded tie-break discounts).
        let best_fixed = sel
            .candidates
            .iter()
            .map(|c| c.score)
            .fold(f64::INFINITY, f64::min);
        if sel.method == Method::Tac {
            // The per-level mix dominates every fixed TAC candidate.
            assert_eq!(sel.level_codecs.len(), ds.num_levels());
        }
        let winner_score = match sel.method {
            Method::Tac => best_fixed, // mix score <= fixed TAC scores
            m => {
                sel.candidates
                    .iter()
                    .find(|c| c.method == m && c.codec == sel.codec)
                    .unwrap()
                    .score
            }
        };
        assert!(winner_score <= best_fixed * (1.0 + 1e-12));
    }

    #[test]
    fn selection_is_deterministic() {
        let ds = blobby(16);
        let a = select_auto(&ds, &cfg()).unwrap();
        let b = select_auto(&ds, &cfg()).unwrap();
        assert_eq!(a.method, b.method);
        assert_eq!(a.codec, b.codec);
        assert_eq!(a.level_codecs, b.level_codecs);
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (x, y) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(x.estimated_bytes, y.estimated_bytes);
            assert_eq!(x.score, y.score);
        }
    }

    #[test]
    fn empty_dataset_selects_a_method_that_can_store_it() {
        // zMesh rejects datasets with no present cells; the selection
        // must route around it and still pick a working candidate.
        let ds: AmrDataset = AmrDataset::new("void", vec![AmrLevel::empty(4)]);
        let sel = select_auto(&ds, &cfg()).unwrap();
        assert_ne!(sel.method, Method::Auto);
        assert_ne!(sel.method, Method::ZMesh);
        assert!(sel.candidates.iter().all(|c| c.method != Method::ZMesh));
        // The winner genuinely compresses the degenerate input.
        let trial_cfg = TacConfig {
            codec: sel.codec,
            ..cfg()
        };
        compress_dataset_t(&ds, &trial_cfg, sel.method).unwrap();
    }

    #[test]
    fn sampled_regime_engages_above_the_limit() {
        let ds = blobby(16);
        let small = TacConfig {
            auto: crate::config::AutoParams {
                exhaustive_limit: 8,
                sample_budget: 256,
            },
            ..cfg()
        };
        let sel = select_auto(&ds, &small).unwrap();
        assert!(!sel.exhaustive);
        assert_ne!(sel.method, Method::Auto);
        assert!(sel.candidates.iter().all(|c| !c.exact));
        // Still deterministic.
        let again = select_auto(&ds, &small).unwrap();
        assert_eq!(sel.method, again.method);
        assert_eq!(sel.level_codecs, again.level_codecs);
    }

    #[test]
    fn throughput_tiebreak_is_bounded() {
        // A candidate may only win on throughput when sizes are within
        // the tie-break weights (~3% combined) — far inside the 5%
        // dominance tolerance.
        for codec in CodecId::all() {
            let s = score(1000.0, codec, 1.0);
            assert!(s >= 1000.0 * (1.0 - THROUGHPUT_TIEBREAK - HEADROOM_TIEBREAK));
            assert!(s <= 1000.0);
        }
    }
}
