//! GSP — ghost-shell padding (paper Sec. 3.3, Algorithm 3).
//!
//! High-density levels keep their full grid, but the few empty unit
//! blocks are *padded* with values diffused from their non-empty face
//! neighbours instead of zeros. Lorenzo prediction across a block boundary
//! then sees plausible values rather than a cliff to zero, which removes
//! the boundary error bloom the paper shows in Fig. 12a.
//!
//! For each empty block adjacent to at least one non-empty block, the pad
//! value is the mean of the adjacent boundary slices of all non-empty
//! face neighbours (blocks touched by several neighbours average over all
//! of them — the red blocks of Fig. 10). Empty blocks with no non-empty
//! neighbour (interiors of large voids) stay zero.
//!
//! Padding is removed on decompression simply by masking: padded cells
//! are absent in the occupancy mask, so reconstruction discards them.

use tac_amr::{AmrLevel, BlockGrid};
use tac_dtype::Element;

/// Pads a copy of the level's dense grid. Returns the padded grid and the
/// number of blocks padded.
///
/// Generic over the element type: averaging runs in `f64` working
/// precision (exact for `f32` inputs) and the pad value narrows back to
/// `T` once per block. The `f64` monomorphization is bit-identical to
/// the historical implementation.
pub fn pad_ghost_shell<T: Element>(level: &AmrLevel<T>, grid: &BlockGrid) -> (Vec<T>, usize) {
    let dim = level.dim();
    let unit = grid.unit();
    let nb = grid.blocks_per_side();
    let mut out = level.data().to_vec();
    let mut padded = 0usize;

    for bz in 0..nb {
        for by in 0..nb {
            for bx in 0..nb {
                if !grid.is_empty_block(bx, by, bz) {
                    continue;
                }
                // Average the facing boundary slice of every non-empty
                // face neighbour.
                let mut acc = 0.0f64;
                let mut weight = 0usize;
                let neighbours: [(isize, isize, isize); 6] = [
                    (-1, 0, 0),
                    (1, 0, 0),
                    (0, -1, 0),
                    (0, 1, 0),
                    (0, 0, -1),
                    (0, 0, 1),
                ];
                for (dx, dy, dz) in neighbours {
                    let nx = bx as isize + dx;
                    let ny = by as isize + dy;
                    let nz = bz as isize + dz;
                    if nx < 0 || ny < 0 || nz < 0 {
                        continue;
                    }
                    let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);
                    if nx >= nb || ny >= nb || nz >= nb || grid.is_empty_block(nx, ny, nz) {
                        continue;
                    }
                    let (sum, count) =
                        boundary_slice_sum(level, unit, (nx, ny, nz), (-dx, -dy, -dz));
                    if count > 0 {
                        acc += sum / count as f64;
                        weight += 1;
                    }
                }
                if weight == 0 {
                    continue;
                }
                let pad = T::from_f64(acc / weight as f64);
                padded += 1;
                let (x0, y0, z0) = (bx * unit, by * unit, bz * unit);
                for z in z0..z0 + unit {
                    for y in y0..y0 + unit {
                        let row = x0 + dim * (y + dim * z);
                        out[row..row + unit].fill(pad);
                    }
                }
            }
        }
    }
    (out, padded)
}

/// Sums the *present* cells of the face slice of block `b` facing
/// direction `toward` (unit vector pointing at the empty neighbour).
/// Returns `(sum, count)`.
fn boundary_slice_sum<T: Element>(
    level: &AmrLevel<T>,
    unit: usize,
    (bx, by, bz): (usize, usize, usize),
    toward: (isize, isize, isize),
) -> (f64, usize) {
    let (x0, y0, z0) = (bx * unit, by * unit, bz * unit);
    // The slice of this block adjacent to the neighbour in direction
    // `toward` — e.g. toward = (-1,0,0) means the x == x0 face.
    let (xs, xe) = match toward.0 {
        -1 => (x0, x0 + 1),
        1 => (x0 + unit - 1, x0 + unit),
        _ => (x0, x0 + unit),
    };
    let (ys, ye) = match toward.1 {
        -1 => (y0, y0 + 1),
        1 => (y0 + unit - 1, y0 + unit),
        _ => (y0, y0 + unit),
    };
    let (zs, ze) = match toward.2 {
        -1 => (z0, z0 + 1),
        1 => (z0 + unit - 1, z0 + unit),
        _ => (z0, z0 + unit),
    };
    let mut sum = 0.0;
    let mut count = 0usize;
    for z in zs..ze {
        for y in ys..ye {
            for x in xs..xe {
                if level.present(x, y, z) {
                    sum += level.value(x, y, z).to_f64();
                    count += 1;
                }
            }
        }
    }
    (sum, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8^3 level, unit 4: block (0,0,0) empty, the rest filled with a
    /// constant per block.
    fn two_by_two_level(empty: &[(usize, usize, usize)]) -> AmrLevel {
        let mut lvl = AmrLevel::empty(8);
        for bz in 0..2 {
            for by in 0..2 {
                for bx in 0..2 {
                    if empty.contains(&(bx, by, bz)) {
                        continue;
                    }
                    let v = (bx + 2 * by + 4 * bz + 1) as f64;
                    for z in 0..4 {
                        for y in 0..4 {
                            for x in 0..4 {
                                lvl.set_value(bx * 4 + x, by * 4 + y, bz * 4 + z, v);
                            }
                        }
                    }
                }
            }
        }
        lvl
    }

    #[test]
    fn single_empty_block_gets_neighbour_average() {
        let lvl = two_by_two_level(&[(0, 0, 0)]);
        let grid = BlockGrid::build(&lvl, 4);
        let (padded, count) = pad_ghost_shell(&lvl, &grid);
        assert_eq!(count, 1);
        // Neighbours of (0,0,0): (1,0,0)=2, (0,1,0)=3, (0,0,1)=5.
        let want = (2.0 + 3.0 + 5.0) / 3.0;
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    assert!((padded[x + 8 * (y + 8 * z)] - want).abs() < 1e-12);
                }
            }
        }
        // Non-empty blocks are untouched.
        assert_eq!(padded[7 + 8 * (7 + 8 * 7)], 8.0);
    }

    #[test]
    fn isolated_void_stays_zero() {
        // All 8 blocks empty: nothing to diffuse from.
        let lvl = two_by_two_level(&[
            (0, 0, 0),
            (1, 0, 0),
            (0, 1, 0),
            (1, 1, 0),
            (0, 0, 1),
            (1, 0, 1),
            (0, 1, 1),
            (1, 1, 1),
        ]);
        let grid = BlockGrid::build(&lvl, 4);
        let (padded, count) = pad_ghost_shell(&lvl, &grid);
        assert_eq!(count, 0);
        assert!(padded.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn full_level_needs_no_padding() {
        let lvl = two_by_two_level(&[]);
        let grid = BlockGrid::build(&lvl, 4);
        let (padded, count) = pad_ghost_shell(&lvl, &grid);
        assert_eq!(count, 0);
        assert_eq!(&padded, lvl.data());
    }

    #[test]
    fn boundary_slice_uses_facing_side() {
        // Block with a gradient: facing slices differ.
        let mut lvl = AmrLevel::empty(8);
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    lvl.set_value(4 + x, y, z, x as f64); // block (1,0,0), value = local x
                }
            }
        }
        let grid = BlockGrid::build(&lvl, 4);
        let (padded, count) = pad_ghost_shell(&lvl, &grid);
        // (0,0,0), (1,1,0) and (1,0,1) all touch the one non-empty block.
        assert_eq!(count, 3);
        // Empty block (0,0,0) faces block (1,0,0)'s x==4 slice (local
        // x=0 -> value 0).
        assert!((padded[0] - 0.0).abs() < 1e-12);
        // Empty block (1,1,0) faces the y==3 slice (local x averages to
        // (0+1+2+3)/4 = 1.5).
        assert!((padded[4 + 8 * 4] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn partial_neighbour_averages_present_cells_only() {
        let mut lvl = AmrLevel::<f64>::empty(8);
        // Neighbour block (1,0,0) has only two present cells on its x==4
        // face, values 10 and 20.
        lvl.set_value(4, 0, 0, 10.0);
        lvl.set_value(4, 1, 0, 20.0);
        let grid = BlockGrid::build(&lvl, 4);
        let (padded, _) = pad_ghost_shell(&lvl, &grid);
        assert!((padded[0] - 15.0).abs() < 1e-12);
    }
}
