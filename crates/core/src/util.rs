//! Small parallel-execution helper shared by the pipeline.

/// Applies `f` to every item, distributing work over `threads` scoped
/// worker threads (atomic work-stealing index), and returns results in
/// input order. Falls back to a sequential loop for one thread or tiny
/// inputs.
pub(crate) fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots = std::sync::Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock().expect("result mutex poisoned")[i] = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(4, &items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_path_matches() {
        let items: Vec<i32> = vec![3, 1, 4];
        assert_eq!(par_map(1, &items, |&x| x + 1), vec![4, 2, 5]);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map(8, &[42], |&x| x), vec![42]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Heavier items early; correctness only (timing not asserted).
        let items: Vec<u64> = (0..32).rev().collect();
        let out = par_map(4, &items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }
}
