//! TAC configuration: unit-block size, density thresholds, error bounds
//! (including per-level adaptive bounds), and method selection.

use crate::error::TacError;
use serde::{Deserialize, Serialize};
use tac_codec::{CodecConfig, CodecId};
use tac_par::Parallelism;
use tac_sz::ErrorBound;

/// The pre-process strategy applied to one AMR level before 3D
/// compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Level has no present cells; nothing is stored.
    Empty,
    /// Zero filling: compress the full grid, absent cells as 0 (baseline
    /// for GSP, paper Fig. 12a).
    ZeroFill,
    /// Naive sparse tensor: remove empty unit blocks, batch the survivors
    /// (Sec. 3.1, Fig. 5).
    NaST,
    /// Optimized sparse tensor: dynamic-programming max-cube extraction
    /// (Sec. 3.1, Alg. 1).
    OpST,
    /// Adaptive k-d tree extraction (Sec. 3.2, Alg. 2).
    AkdTree,
    /// Ghost-shell padding (Sec. 3.3, Alg. 3).
    Gsp,
}

impl Strategy {
    /// Wire tag for container serialization.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Strategy::Empty => 0,
            Strategy::ZeroFill => 1,
            Strategy::NaST => 2,
            Strategy::OpST => 3,
            Strategy::AkdTree => 4,
            Strategy::Gsp => 5,
        }
    }

    /// Inverse of [`Strategy::tag`].
    pub(crate) fn from_tag(tag: u8) -> Result<Self, TacError> {
        Ok(match tag {
            0 => Strategy::Empty,
            1 => Strategy::ZeroFill,
            2 => Strategy::NaST,
            3 => Strategy::OpST,
            4 => Strategy::AkdTree,
            5 => Strategy::Gsp,
            _ => return Err(TacError::Corrupt(format!("unknown strategy tag {tag}"))),
        })
    }
}

/// Tuning knobs of the adaptive `Method::Auto` selection pass (the
/// TAC+-style per-level method+codec chooser in [`crate::select`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoParams {
    /// Datasets with at most this many present values are selected by
    /// **exhaustive trial compression**: every `(method, codec)`
    /// candidate runs in full and the smallest payload wins, so the
    /// choice is exact. Larger datasets fall back to subsampled
    /// trial-encode estimates.
    pub exhaustive_limit: usize,
    /// Per-candidate value budget of the subsampled estimate regime:
    /// each trial encode sees at most this many values (contiguous
    /// windows of the candidate's own traversal order), which bounds
    /// selection cost independently of dataset size.
    pub sample_budget: usize,
}

impl Default for AutoParams {
    fn default() -> Self {
        AutoParams {
            // Covers every testkit scenario (finest grids up to 32^3),
            // so the dominance sweeps run on exact choices.
            exhaustive_limit: 65_536,
            // Small enough that the whole sampled selection pass stays
            // well under 15% of the winner's own compression wall.
            sample_budget: 2_048,
        }
    }
}

/// Full TAC configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TacConfig {
    /// Unit block side length (the paper uses 16 for 512^3 levels; scaled
    /// runs use 8). Must divide every level dimension.
    pub unit: usize,
    /// Density threshold T1 between OpST and AKDTree (paper: 0.50).
    pub t1: f64,
    /// Density threshold T2 between AKDTree and GSP — and the finest-level
    /// threshold of the Sec. 4.4 TAC-vs-3D-baseline switch (paper: 0.60).
    pub t2: f64,
    /// Base error bound applied to every level (before per-level scaling).
    pub error_bound: ErrorBound,
    /// Per-level error-bound multipliers, fine to coarse (Sec. 4.5's
    /// adaptive error bound; e.g. `[3.0, 1.0]` is the paper's 3:1 power-
    /// spectrum tuning). Empty means uniform bounds. Missing trailing
    /// levels default to 1.0.
    pub level_eb_scale: Vec<f64>,
    /// Force one strategy for every level (used by the per-figure
    /// benchmarks); `None` selects by density (the hybrid of Sec. 3.4).
    pub forced_strategy: Option<Strategy>,
    /// Enable the Sec. 4.4 top-level switch: when the finest level's
    /// density exceeds `t2`, compress via the 3D baseline instead of
    /// level-wise TAC.
    pub adaptive_3d_switch: bool,
    /// Scalar-codec backend every payload stream compresses through
    /// (see [`tac_codec::ScalarCodec`]). The default, [`CodecId::Sz`],
    /// reproduces the paper's SZ substrate; [`CodecId::PcoLite`] swaps
    /// in the pcodec-style delta + bit-packing backend.
    pub codec: CodecId,
    /// Quantizer capacity handed to the SZ substrate.
    pub sz_capacity: usize,
    /// Whether SZ's lossless backend runs.
    pub sz_lossless: bool,
    /// Whether SZ's block-regression predictor runs (SZ2-style; disable
    /// for SZ-1.4-style pure Lorenzo).
    pub sz_regression: bool,
    /// Worker budget for the block-sharded compression engine. The
    /// engine shards the dataset into per-level, per-region tasks and
    /// runs them on this many work-stealing threads; output bytes are
    /// identical for every setting.
    pub parallelism: Parallelism,
    /// Spatial tile side (in cells, per level) bounding how far apart
    /// regions may sit and still share one SZ batch. `None` merges by
    /// shape alone (maximum batching); `Some(t)` keeps chunks local so
    /// the v2 container's region-of-interest decode can skip more of
    /// the payload.
    pub roi_tile: Option<usize>,
    /// Tuning of the `Method::Auto` adaptive selection pass (ignored by
    /// the fixed methods).
    pub auto: AutoParams,
}

impl Default for TacConfig {
    fn default() -> Self {
        TacConfig {
            unit: 8,
            t1: 0.50,
            t2: 0.60,
            error_bound: ErrorBound::Rel(1e-4),
            level_eb_scale: Vec::new(),
            forced_strategy: None,
            adaptive_3d_switch: false,
            codec: CodecId::Sz,
            sz_capacity: 65536,
            sz_lossless: true,
            sz_regression: true,
            parallelism: Parallelism::Auto,
            roi_tile: None,
            auto: AutoParams::default(),
        }
    }
}

impl TacConfig {
    /// Default configuration with the given base error bound.
    pub fn with_error_bound(eb: ErrorBound) -> Self {
        TacConfig {
            error_bound: eb,
            ..Default::default()
        }
    }

    /// Sets per-level error-bound multipliers (fine to coarse).
    pub fn with_level_scales(mut self, scales: Vec<f64>) -> Self {
        self.level_eb_scale = scales;
        self
    }

    /// Forces a single strategy for all levels.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.forced_strategy = Some(strategy);
        self
    }

    /// Sets the unit block size.
    pub fn with_unit(mut self, unit: usize) -> Self {
        self.unit = unit;
        self
    }

    /// Enables the Sec. 4.4 adaptive 3D-baseline switch.
    pub fn with_adaptive_3d_switch(mut self) -> Self {
        self.adaptive_3d_switch = true;
        self
    }

    /// Sets the engine's worker budget.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Selects the scalar-codec backend for every payload stream.
    pub fn with_codec(mut self, codec: CodecId) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the ROI chunk tile (spatially-local grouping for the v2
    /// container's region-of-interest decode).
    pub fn with_roi_tile(mut self, tile: usize) -> Self {
        self.roi_tile = Some(tile);
        self
    }

    /// Sets the `Method::Auto` selection-pass tuning (exhaustive-trial
    /// threshold and per-candidate sampling budget).
    pub fn with_auto(mut self, auto: AutoParams) -> Self {
        self.auto = auto;
        self
    }

    /// Error-bound multiplier for level `l` (1.0 when unspecified).
    pub fn level_scale(&self, level: usize) -> f64 {
        self.level_eb_scale.get(level).copied().unwrap_or(1.0)
    }

    /// Validates thresholds and unit size.
    pub fn validate(&self) -> Result<(), TacError> {
        if self.unit == 0 || !self.unit.is_power_of_two() {
            return Err(TacError::InvalidConfig(format!(
                "unit block size {} must be a positive power of two",
                self.unit
            )));
        }
        if !(0.0..=1.0).contains(&self.t1) || !(0.0..=1.0).contains(&self.t2) || self.t1 > self.t2 {
            return Err(TacError::InvalidConfig(format!(
                "thresholds must satisfy 0 <= t1 <= t2 <= 1, got t1={} t2={}",
                self.t1, self.t2
            )));
        }
        if self
            .level_eb_scale
            .iter()
            .any(|&s| s <= 0.0 || !s.is_finite())
        {
            return Err(TacError::InvalidConfig(
                "level eb scales must be positive and finite".into(),
            ));
        }
        if self.parallelism == Parallelism::Threads(0) {
            return Err(TacError::InvalidConfig(
                "parallelism thread count must be >= 1".into(),
            ));
        }
        if self.roi_tile == Some(0) {
            return Err(TacError::InvalidConfig(
                "roi tile must be positive when set".into(),
            ));
        }
        if self.auto.sample_budget == 0 {
            return Err(TacError::InvalidConfig(
                "auto sample budget must be positive".into(),
            ));
        }
        Ok(())
    }

    /// The backend-agnostic codec configuration for a given resolved
    /// absolute bound (what the engine hands to
    /// [`tac_codec::ScalarCodec::compress`]).
    pub(crate) fn codec_config(&self, abs_eb: f64) -> CodecConfig {
        CodecConfig {
            abs_eb,
            capacity: self.sz_capacity,
            lossless: self.sz_lossless,
            regression: self.sz_regression,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_thresholds() {
        let c = TacConfig::default();
        assert_eq!(c.t1, 0.50);
        assert_eq!(c.t2, 0.60);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn strategy_tags_roundtrip() {
        for s in [
            Strategy::Empty,
            Strategy::ZeroFill,
            Strategy::NaST,
            Strategy::OpST,
            Strategy::AkdTree,
            Strategy::Gsp,
        ] {
            assert_eq!(Strategy::from_tag(s.tag()).unwrap(), s);
        }
        assert!(Strategy::from_tag(99).is_err());
    }

    #[test]
    fn level_scale_defaults_to_one() {
        let c = TacConfig::default().with_level_scales(vec![3.0]);
        assert_eq!(c.level_scale(0), 3.0);
        assert_eq!(c.level_scale(1), 1.0);
    }

    #[test]
    fn validation_rejects_bad_config() {
        let c = TacConfig {
            unit: 3,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TacConfig {
            t1: 0.7,
            t2: 0.6,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TacConfig {
            level_eb_scale: vec![0.0],
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TacConfig {
            parallelism: Parallelism::Threads(0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TacConfig {
            roi_tile: Some(0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TacConfig {
            auto: AutoParams {
                sample_budget: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn parallelism_and_tile_builders() {
        let c = TacConfig::default()
            .with_parallelism(Parallelism::Threads(3))
            .with_roi_tile(8);
        assert_eq!(c.parallelism, Parallelism::Threads(3));
        assert_eq!(c.roi_tile, Some(8));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn auto_params_default_and_build() {
        let d = AutoParams::default();
        assert!(d.exhaustive_limit >= 32 * 32 * 32 + 16 * 16 * 16);
        assert!(d.sample_budget > 0);
        let c = TacConfig::default().with_auto(AutoParams {
            exhaustive_limit: 0,
            sample_budget: 128,
        });
        assert_eq!(c.auto.sample_budget, 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn codec_defaults_to_sz_and_builds() {
        assert_eq!(TacConfig::default().codec, CodecId::Sz);
        let c = TacConfig::default().with_codec(CodecId::PcoLite);
        assert_eq!(c.codec, CodecId::PcoLite);
        assert!(c.validate().is_ok());
        let cc = c.codec_config(1e-3);
        assert_eq!(cc.abs_eb, 1e-3);
        assert_eq!(cc.capacity, c.sz_capacity);
    }
}
