//! Self-contained container for a compressed AMR dataset.
//!
//! The container records the compression *method* (TAC or one of the
//! paper's three baselines), the per-level occupancy masks (the AMR grid
//! structure — LZSS-packed, and accounted separately from the payload
//! because every method shares it, mirroring how AMReX stores box lists
//! outside the field data), and the method-specific payload.

use crate::config::Strategy;
use crate::error::TacError;
use crate::stream::{CompressedLevel, Reader, Writer};
use serde::{Deserialize, Serialize};
use tac_amr::BitMask;
use tac_sz::CompressionStats;

/// Container magic number.
const MAGIC: &[u8; 4] = b"TACD";
/// Container format version.
const VERSION: u8 = 1;

/// Which compressor produced a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Level-wise 3D compression with per-level pre-processing (the
    /// paper's contribution).
    Tac,
    /// Each level compressed separately as a 1D array of its present
    /// values (the paper's "1D baseline").
    Baseline1D,
    /// All levels interleaved geometrically into one 1D stream (zMesh).
    ZMesh,
    /// Coarse levels up-sampled, merged to uniform resolution, compressed
    /// as one 3D array (the paper's "3D baseline").
    Baseline3D,
}

impl Method {
    fn tag(self) -> u8 {
        match self {
            Method::Tac => 0,
            Method::Baseline1D => 1,
            Method::ZMesh => 2,
            Method::Baseline3D => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, TacError> {
        Ok(match tag {
            0 => Method::Tac,
            1 => Method::Baseline1D,
            2 => Method::ZMesh,
            3 => Method::Baseline3D,
            _ => return Err(TacError::Corrupt(format!("unknown method tag {tag}"))),
        })
    }

    /// Human-readable name used by the benchmark harnesses.
    pub fn label(self) -> &'static str {
        match self {
            Method::Tac => "TAC",
            Method::Baseline1D => "1D",
            Method::ZMesh => "zMesh",
            Method::Baseline3D => "3D",
        }
    }
}

/// Method-specific compressed payload.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodBody {
    /// One [`CompressedLevel`] per AMR level, fine to coarse.
    Tac(Vec<CompressedLevel>),
    /// Per level: `None` for empty levels, else `(abs_eb, sz D1 stream)`.
    Baseline1D(Vec<Option<(f64, Vec<u8>)>>),
    /// One stream over the zMesh-ordered concatenation of all levels.
    ZMesh {
        /// Resolved absolute error bound.
        abs_eb: f64,
        /// SZ rank-1 stream.
        stream: Vec<u8>,
    },
    /// One rank-3 stream over the merged uniform grid.
    Baseline3D {
        /// Resolved absolute error bound.
        abs_eb: f64,
        /// SZ rank-3 stream.
        stream: Vec<u8>,
    },
}

impl MethodBody {
    fn method(&self) -> Method {
        match self {
            MethodBody::Tac(..) => Method::Tac,
            MethodBody::Baseline1D(..) => Method::Baseline1D,
            MethodBody::ZMesh { .. } => Method::ZMesh,
            MethodBody::Baseline3D { .. } => Method::Baseline3D,
        }
    }
}

/// A compressed AMR dataset: structure metadata plus method payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedDataset {
    /// Dataset name.
    pub name: String,
    /// Side of the finest grid.
    pub finest_dim: usize,
    /// Per-level occupancy masks, fine to coarse.
    pub masks: Vec<BitMask>,
    /// Method payload.
    pub body: MethodBody,
}

impl CompressedDataset {
    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.masks.len()
    }

    /// The compression method.
    pub fn method(&self) -> Method {
        self.body.method()
    }

    /// Total present cells across levels.
    pub fn total_present(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones()).sum()
    }

    /// Per-level strategies (TAC payloads only).
    pub fn strategies(&self) -> Option<Vec<Strategy>> {
        match &self.body {
            MethodBody::Tac(levels) => Some(levels.iter().map(|l| l.strategy).collect()),
            _ => None,
        }
    }

    /// Bytes of the compressed field payload — the size the paper's
    /// compression ratios count.
    pub fn payload_bytes(&self) -> usize {
        match &self.body {
            MethodBody::Tac(levels) => levels.iter().map(|l| l.total_bytes()).sum(),
            MethodBody::Baseline1D(levels) => levels
                .iter()
                .map(|l| l.as_ref().map_or(1, |(_, s)| 9 + 8 + s.len()))
                .sum(),
            MethodBody::ZMesh { stream, .. } | MethodBody::Baseline3D { stream, .. } => {
                8 + 8 + stream.len()
            }
        }
    }

    /// Bytes of the packed grid-structure masks (shared by all methods;
    /// excluded from compression-ratio accounting, like AMReX box lists).
    pub fn structure_bytes(&self) -> usize {
        self.masks
            .iter()
            .map(|m| tac_sz::lossless::compress(&m.to_bytes()).len())
            .sum()
    }

    /// Compression accounting over the AMR representation (present cells
    /// only — the true storage the dataset needs before compression).
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::new(self.total_present(), self.payload_bytes())
    }

    /// Serializes the container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(MAGIC[0]);
        w.put_u8(MAGIC[1]);
        w.put_u8(MAGIC[2]);
        w.put_u8(MAGIC[3]);
        w.put_u8(VERSION);
        w.put_u8(self.method().tag());
        w.put_str(&self.name);
        w.put_u64(self.finest_dim as u64);
        w.put_u8(self.masks.len() as u8);
        for m in &self.masks {
            w.put_blob(&tac_sz::lossless::compress(&m.to_bytes()));
        }
        match &self.body {
            MethodBody::Tac(levels) => {
                for l in levels {
                    l.write(&mut w);
                }
            }
            MethodBody::Baseline1D(levels) => {
                for l in levels {
                    match l {
                        None => w.put_u8(0),
                        Some((eb, stream)) => {
                            w.put_u8(1);
                            w.put_f64(*eb);
                            w.put_blob(stream);
                        }
                    }
                }
            }
            MethodBody::ZMesh { abs_eb, stream } | MethodBody::Baseline3D { abs_eb, stream } => {
                w.put_f64(*abs_eb);
                w.put_blob(stream);
            }
        }
        w.into_bytes()
    }

    /// Parses a container written by [`CompressedDataset::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TacError> {
        let mut r = Reader::new(bytes);
        let magic = [r.get_u8()?, r.get_u8()?, r.get_u8()?, r.get_u8()?];
        if &magic != MAGIC {
            return Err(TacError::Corrupt(format!("bad magic {magic:02x?}")));
        }
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(TacError::Corrupt(format!(
                "unsupported container version {version}"
            )));
        }
        let method = Method::from_tag(r.get_u8()?)?;
        let name = r.get_str()?;
        let finest_dim = r.get_u64()? as usize;
        let num_levels = r.get_u8()? as usize;
        if num_levels == 0 || num_levels > 16 {
            return Err(TacError::Corrupt(format!(
                "{num_levels} levels is implausible"
            )));
        }
        let mut masks = Vec::with_capacity(num_levels);
        for l in 0..num_levels {
            let packed = r.get_blob()?;
            let raw = tac_sz::lossless::decompress(packed)?;
            let mask = BitMask::from_bytes(&raw)
                .ok_or_else(|| TacError::Corrupt(format!("level {l} mask malformed")))?;
            let dim = finest_dim >> l;
            if mask.len() != dim * dim * dim {
                return Err(TacError::Corrupt(format!(
                    "level {l} mask has {} bits, expected {}",
                    mask.len(),
                    dim * dim * dim
                )));
            }
            masks.push(mask);
        }
        let body = match method {
            Method::Tac => {
                let mut levels = Vec::with_capacity(num_levels);
                for _ in 0..num_levels {
                    levels.push(CompressedLevel::read(&mut r)?);
                }
                MethodBody::Tac(levels)
            }
            Method::Baseline1D => {
                let mut levels = Vec::with_capacity(num_levels);
                for _ in 0..num_levels {
                    levels.push(match r.get_u8()? {
                        0 => None,
                        1 => Some((r.get_f64()?, r.get_blob()?.to_vec())),
                        t => return Err(TacError::Corrupt(format!("unknown 1D level tag {t}"))),
                    });
                }
                MethodBody::Baseline1D(levels)
            }
            Method::ZMesh => MethodBody::ZMesh {
                abs_eb: r.get_f64()?,
                stream: r.get_blob()?.to_vec(),
            },
            Method::Baseline3D => MethodBody::Baseline3D {
                abs_eb: r.get_f64()?,
                stream: r.get_blob()?.to_vec(),
            },
        };
        if r.remaining() != 0 {
            return Err(TacError::Corrupt(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(CompressedDataset {
            name,
            finest_dim,
            masks,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_masks() -> Vec<BitMask> {
        let mut fine = BitMask::zeros(64); // 4^3
        for i in (0..64).step_by(2) {
            fine.set(i, true);
        }
        let mut coarse = BitMask::zeros(8); // 2^3
        coarse.set(0, true);
        vec![fine, coarse]
    }

    #[test]
    fn container_roundtrip_tac() {
        let cd = CompressedDataset {
            name: "Run1_Z10".into(),
            finest_dim: 4,
            masks: sample_masks(),
            body: MethodBody::Tac(vec![
                CompressedLevel {
                    strategy: Strategy::OpST,
                    dim: 4,
                    abs_eb: 1e-3,
                    payload: crate::stream::LevelPayload::Empty,
                },
                CompressedLevel {
                    strategy: Strategy::Gsp,
                    dim: 2,
                    abs_eb: 2e-3,
                    payload: crate::stream::LevelPayload::Whole(vec![1, 2, 3]),
                },
            ]),
        };
        let bytes = cd.to_bytes();
        let back = CompressedDataset::from_bytes(&bytes).unwrap();
        assert_eq!(back, cd);
        assert_eq!(back.method(), Method::Tac);
        assert_eq!(
            back.strategies().unwrap(),
            vec![Strategy::OpST, Strategy::Gsp]
        );
    }

    #[test]
    fn container_roundtrip_baselines() {
        for body in [
            MethodBody::Baseline1D(vec![Some((1e-3, vec![7, 8])), None]),
            MethodBody::ZMesh {
                abs_eb: 0.5,
                stream: vec![1; 20],
            },
            MethodBody::Baseline3D {
                abs_eb: 0.25,
                stream: vec![2; 10],
            },
        ] {
            let cd = CompressedDataset {
                name: "x".into(),
                finest_dim: 4,
                masks: sample_masks(),
                body,
            };
            let bytes = cd.to_bytes();
            let back = CompressedDataset::from_bytes(&bytes).unwrap();
            assert_eq!(back, cd);
            assert!(back.strategies().is_none());
        }
    }

    #[test]
    fn stats_count_present_cells() {
        let cd = CompressedDataset {
            name: "s".into(),
            finest_dim: 4,
            masks: sample_masks(),
            body: MethodBody::ZMesh {
                abs_eb: 1.0,
                stream: vec![0; 33],
            },
        };
        assert_eq!(cd.total_present(), 33);
        let stats = cd.stats();
        assert_eq!(stats.elements, 33);
        assert_eq!(stats.original_bytes, 33 * 8);
        assert!(cd.structure_bytes() > 0);
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let cd = CompressedDataset {
            name: "c".into(),
            finest_dim: 4,
            masks: sample_masks(),
            body: MethodBody::Baseline3D {
                abs_eb: 1.0,
                stream: vec![3; 5],
            },
        };
        let bytes = cd.to_bytes();
        assert!(CompressedDataset::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(CompressedDataset::from_bytes(&bytes[1..]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(CompressedDataset::from_bytes(&extra).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4] = 77;
        assert!(CompressedDataset::from_bytes(&bad_version).is_err());
    }
}
