//! Self-contained container for a compressed AMR dataset.
//!
//! The container records the compression *method* (TAC or one of the
//! paper's three baselines), the per-level occupancy masks (the AMR grid
//! structure — LZSS-packed, and accounted separately from the payload
//! because every method shares it, mirroring how AMReX stores box lists
//! outside the field data), and the method-specific payload.
//!
//! Three wire formats coexist behind the version byte:
//!
//! * **v1** — the original monolithic layout: payload streams inline,
//!   decodable only front to back. Still written by
//!   [`CompressedDataset::to_bytes_v1`] and always readable.
//! * **v2** — the chunked, seekable layout built for region-of-interest
//!   decoding (the AMRIC-style in-situ scenario): a fixed header
//!   (method metadata + masks), the payload as a flat run of
//!   independent chunks (one per whole-level stream or region group),
//!   a **chunk table** mapping each chunk to its level, byte range, and
//!   cell-coordinate bounding box, and a trailing table offset so file
//!   readers can seek straight to the table. See
//!   [`crate::roi::decompress_region`] for the selective decoder.
//! * **v3** — v2 plus a scalar-codec byte ([`CodecId`]) per level in
//!   the method metadata *and* per chunk-table row, so chunks are
//!   self-describing whichever backend wrote them.
//! * **v4** — v3 plus one element-type byte ([`TacDtype`]) in the
//!   header and per chunk-table row. Written only for non-`f64`
//!   datasets; an absent dtype byte always means `f64`, so every v1/v2/
//!   v3 container (and every golden fixture) decodes bit-exactly.
//!
//! [`CompressedDataset::to_bytes`] writes v2 when every stream uses the
//! default SZ codec — bit-compatible with pre-codec readers — promotes
//! to v3 as soon as any other backend is involved, and to v4 as soon as
//! the element type is not `f64`. v1 and v2 bytes produced before the
//! codec layer existed parse unchanged and default to [`CodecId::Sz`]
//! and [`TacDtype::F64`].

use crate::config::Strategy;
use crate::error::TacError;
use crate::stream::{CompressedLevel, LevelPayload, Reader, Writer};
use serde::{Deserialize, Serialize};
use tac_amr::{Aabb, BitMask};
use tac_codec::{sniff_codec, CodecId};
use tac_dtype::TacDtype;
use tac_sz::CompressionStats;

/// Container magic number.
const MAGIC: &[u8; 4] = b"TACD";
/// Original monolithic container format.
const VERSION_V1: u8 = 1;
/// Chunked random-access container format.
const VERSION_V2: u8 = 2;
/// Chunked format with per-level and per-chunk codec tags.
const VERSION_V3: u8 = 3;
/// Chunked format with a dataset dtype byte and per-chunk dtype tags.
pub(crate) const VERSION_V4: u8 = 4;
/// Serialized chunk-table row size in a v2 container: level `u8` +
/// offset `u64` + len `u64` + bbox `6 x u32`. The writer
/// ([`ChunkEntry::write`]), the reader ([`ChunkEntry::read`]), the
/// table-allocation bound in [`parse_v2`], and the ROI decoder's
/// tamper tests all share this value.
pub const CHUNK_ROW_BYTES_V2: usize = 41;
/// Serialized chunk-table row size in a v3 container: the v2 row plus
/// one codec byte.
pub const CHUNK_ROW_BYTES_V3: usize = 42;
/// Serialized chunk-table row size in a v4 container: the v3 row plus
/// one element-type ([`TacDtype`]) byte.
pub const CHUNK_ROW_BYTES_V4: usize = 43;
/// Size of the chunk table's `u32` row-count prefix.
pub const CHUNK_COUNT_PREFIX_BYTES: usize = 4;
/// Size of the trailing `u64` table-offset footer a v2/v3 container
/// ends with; seekable readers locate the chunk table through it.
pub const TABLE_FOOTER_BYTES: usize = 8;
/// Largest finest-grid side a container may declare (2^13 = 8192, i.e.
/// a 4 TiB uniform field — 8x the paper's largest run per axis). The
/// bound exists so `dim^3` arithmetic on wire-supplied dimensions can
/// never overflow and crafted headers cannot demand absurd allocations.
pub(crate) const MAX_FINEST_DIM: usize = 1 << 13;

/// Which compressor produced a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Level-wise 3D compression with per-level pre-processing (the
    /// paper's contribution).
    Tac,
    /// Each level compressed separately as a 1D array of its present
    /// values (the paper's "1D baseline").
    Baseline1D,
    /// All levels interleaved geometrically into one 1D stream (zMesh).
    ZMesh,
    /// Coarse levels up-sampled, merged to uniform resolution, compressed
    /// as one 3D array (the paper's "3D baseline").
    Baseline3D,
    /// Adaptive per-level/per-region selection (TAC+-style): a selection
    /// pass picks the concrete method and per-level codecs from trial
    /// encodes or subsampled rate estimates, then compresses with the
    /// winner. **Encoder-side only**: the container always records the
    /// concrete winning method (the body is never `Auto`), so every
    /// existing reader decodes Auto output unchanged.
    Auto,
}

impl Method {
    fn tag(self) -> u8 {
        match self {
            Method::Tac => 0,
            Method::Baseline1D => 1,
            Method::ZMesh => 2,
            Method::Baseline3D => 3,
            // Never serialized: the wire tag is derived from the body's
            // concrete method ([`MethodBody::method`] cannot return
            // `Auto`), and `from_tag` rejects this value, so a crafted
            // container cannot claim it either.
            Method::Auto => 255,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, TacError> {
        Ok(match tag {
            0 => Method::Tac,
            1 => Method::Baseline1D,
            2 => Method::ZMesh,
            3 => Method::Baseline3D,
            _ => return Err(TacError::Corrupt(format!("unknown method tag {tag}"))),
        })
    }

    /// Human-readable name used by the benchmark harnesses.
    pub fn label(self) -> &'static str {
        match self {
            Method::Tac => "TAC",
            Method::Baseline1D => "1D",
            Method::ZMesh => "zMesh",
            Method::Baseline3D => "3D",
            Method::Auto => "Auto",
        }
    }

    /// The fixed (non-adaptive) methods, in wire-tag order — the
    /// candidate set `Method::Auto` selects among, and the sweep axis of
    /// the benchmark and conformance harnesses.
    pub fn fixed() -> [Method; 4] {
        [
            Method::Tac,
            Method::Baseline1D,
            Method::ZMesh,
            Method::Baseline3D,
        ]
    }
}

/// One non-empty level of the 1D baseline: resolved absolute bound, the
/// scalar codec of the stream, and the rank-1 stream itself.
pub type Baseline1DLevel = (f64, CodecId, Vec<u8>);

/// Method-specific compressed payload.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodBody {
    /// One [`CompressedLevel`] per AMR level, fine to coarse.
    Tac(Vec<CompressedLevel>),
    /// Per level: `None` for empty levels, else a [`Baseline1DLevel`].
    Baseline1D(Vec<Option<Baseline1DLevel>>),
    /// One stream over the zMesh-ordered concatenation of all levels.
    ZMesh {
        /// Resolved absolute error bound.
        abs_eb: f64,
        /// Scalar codec of the stream.
        codec: CodecId,
        /// Rank-1 stream.
        stream: Vec<u8>,
    },
    /// One rank-3 stream over the merged uniform grid.
    Baseline3D {
        /// Resolved absolute error bound.
        abs_eb: f64,
        /// Scalar codec of the stream.
        codec: CodecId,
        /// Rank-3 stream.
        stream: Vec<u8>,
    },
}

impl MethodBody {
    fn method(&self) -> Method {
        match self {
            MethodBody::Tac(..) => Method::Tac,
            MethodBody::Baseline1D(..) => Method::Baseline1D,
            MethodBody::ZMesh { .. } => Method::ZMesh,
            MethodBody::Baseline3D { .. } => Method::Baseline3D,
        }
    }

    /// Whether every stream in the payload uses the default SZ codec —
    /// the condition under which the chunked writer stays on v2 bytes.
    fn codecs_all_default(&self) -> bool {
        match self {
            MethodBody::Tac(levels) => levels.iter().all(|l| l.codec == CodecId::Sz),
            MethodBody::Baseline1D(levels) => levels
                .iter()
                .all(|l| l.as_ref().map_or(true, |(_, c, _)| *c == CodecId::Sz)),
            MethodBody::ZMesh { codec, .. } | MethodBody::Baseline3D { codec, .. } => {
                *codec == CodecId::Sz
            }
        }
    }
}

/// A compressed AMR dataset: structure metadata plus method payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedDataset {
    /// Dataset name.
    pub name: String,
    /// Side of the finest grid.
    pub finest_dim: usize,
    /// Element type of every payload stream (`f64` for every container
    /// written before the dtype layer existed).
    pub dtype: TacDtype,
    /// Per-level occupancy masks, fine to coarse.
    pub masks: Vec<BitMask>,
    /// Method payload.
    pub body: MethodBody,
}

impl CompressedDataset {
    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.masks.len()
    }

    /// The compression method.
    pub fn method(&self) -> Method {
        self.body.method()
    }

    /// Total present cells across levels.
    pub fn total_present(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones()).sum()
    }

    /// Per-level strategies (TAC payloads only).
    pub fn strategies(&self) -> Option<Vec<Strategy>> {
        match &self.body {
            MethodBody::Tac(levels) => Some(levels.iter().map(|l| l.strategy).collect()),
            _ => None,
        }
    }

    /// Bytes of the compressed field payload — the size the paper's
    /// compression ratios count.
    // tac-lint: allow(arith) -- size accounting over in-memory streams already held in RAM; the sums cannot exceed what was allocated.
    pub fn payload_bytes(&self) -> usize {
        match &self.body {
            MethodBody::Tac(levels) => levels.iter().map(|l| l.total_bytes()).sum(),
            MethodBody::Baseline1D(levels) => levels
                .iter()
                .map(|l| {
                    l.as_ref().map_or(1, |(_, codec, s)| {
                        9 + usize::from(*codec != CodecId::Sz) + 8 + s.len()
                    })
                })
                .sum(),
            MethodBody::ZMesh { stream, .. } | MethodBody::Baseline3D { stream, .. } => {
                8 + 8 + stream.len()
            }
        }
    }

    /// Bytes of the packed grid-structure masks (shared by all methods;
    /// excluded from compression-ratio accounting, like AMReX box lists).
    pub fn structure_bytes(&self) -> usize {
        self.masks
            .iter()
            .map(|m| tac_sz::lossless::compress(&m.to_bytes()).len())
            .sum()
    }

    /// Compression accounting over the AMR representation (present cells
    /// only — the true storage the dataset needs before compression).
    /// Original bytes are counted at the container's element width, so
    /// `f32` datasets are not credited with `f64`-sized input.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::new_for(self.total_present(), self.payload_bytes(), self.dtype)
    }

    /// Serializes the container in the current chunked format: v2 bytes
    /// (bit-compatible with pre-codec readers) when every stream uses
    /// the default SZ codec over `f64`, v3 (codec-tagged) for other
    /// codecs, v4 (dtype-tagged) for other element types.
    pub fn to_bytes(&self) -> Vec<u8> {
        if self.dtype != TacDtype::F64 {
            self.to_bytes_chunked(VERSION_V4)
        } else if self.body.codecs_all_default() {
            self.to_bytes_chunked(VERSION_V2)
        } else {
            self.to_bytes_chunked(VERSION_V3)
        }
    }

    /// Serializes the legacy monolithic v1 container. Non-default codecs
    /// still fit: TAC level payloads carry an explicit codec tag, the 1D
    /// baseline uses an extended level tag, and the single-stream
    /// baselines are recovered by magic-number sniffing on read.
    // tac-lint: allow(arith) -- writer-side width reduction: the engine caps levels at 16, so `masks.len() as u8` cannot truncate.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(MAGIC);
        w.put_u8(VERSION_V1);
        w.put_u8(self.method().tag());
        w.put_str(&self.name);
        w.put_u64(self.finest_dim as u64);
        w.put_u8(self.masks.len() as u8);
        for m in &self.masks {
            w.put_blob(&tac_sz::lossless::compress(&m.to_bytes()));
        }
        match &self.body {
            MethodBody::Tac(levels) => {
                for l in levels {
                    l.write(&mut w);
                }
            }
            MethodBody::Baseline1D(levels) => {
                for l in levels {
                    match l {
                        None => w.put_u8(0),
                        // Tag 1 is the legacy (implicitly SZ) encoding;
                        // tag 2 appends the codec byte.
                        Some((eb, CodecId::Sz, stream)) => {
                            w.put_u8(1);
                            w.put_f64(*eb);
                            w.put_blob(stream);
                        }
                        Some((eb, codec, stream)) => {
                            w.put_u8(2);
                            w.put_u8(codec.tag());
                            w.put_f64(*eb);
                            w.put_blob(stream);
                        }
                    }
                }
            }
            MethodBody::ZMesh { abs_eb, stream, .. }
            | MethodBody::Baseline3D { abs_eb, stream, .. } => {
                w.put_f64(*abs_eb);
                w.put_blob(stream);
            }
        }
        w.into_bytes()
    }

    /// Serializes the chunked (v2/v3/v4) container. v3 additionally
    /// writes a codec byte per level in the method metadata and per
    /// chunk-table row; v4 adds a dataset dtype byte after the method
    /// tag and one per chunk-table row; v2 is byte-for-byte the
    /// pre-codec format.
    // tac-lint: allow(arith) -- writer-side width reduction: level, mask, and group counts come from validated in-memory datasets (<= 16 levels, group counts bounded by the grid volume).
    fn to_bytes_chunked(&self, version: u8) -> Vec<u8> {
        let tagged = version >= VERSION_V3;
        debug_assert!(
            tagged || self.body.codecs_all_default(),
            "v2 cannot represent non-default codecs"
        );
        debug_assert!(
            version >= VERSION_V4 || self.dtype == TacDtype::F64,
            "pre-v4 layouts cannot represent non-f64 elements"
        );
        let mut w = Writer::new();
        w.put_bytes(MAGIC);
        w.put_u8(version);
        w.put_u8(self.method().tag());
        if version >= VERSION_V4 {
            w.put_u8(self.dtype.tag());
        }
        w.put_str(&self.name);
        w.put_u64(self.finest_dim as u64);
        w.put_u8(self.masks.len() as u8);
        for m in &self.masks {
            w.put_blob(&tac_sz::lossless::compress(&m.to_bytes()));
        }

        // Method metadata (everything except the streams themselves).
        match &self.body {
            MethodBody::Tac(levels) => {
                for l in levels {
                    w.put_u8(l.strategy.tag());
                    w.put_u64(l.dim as u64);
                    w.put_f64(l.abs_eb);
                    match &l.payload {
                        LevelPayload::Empty => w.put_u8(0),
                        LevelPayload::Whole(_) => w.put_u8(1),
                        LevelPayload::Groups(groups) => {
                            w.put_u8(2);
                            w.put_u32(groups.len() as u32);
                        }
                    }
                    if tagged {
                        w.put_u8(l.codec.tag());
                    }
                }
            }
            MethodBody::Baseline1D(levels) => {
                for l in levels {
                    match l {
                        None => w.put_u8(0),
                        Some((eb, codec, _)) => {
                            w.put_u8(1);
                            w.put_f64(*eb);
                            if tagged {
                                w.put_u8(codec.tag());
                            }
                        }
                    }
                }
            }
            MethodBody::ZMesh { abs_eb, codec, .. }
            | MethodBody::Baseline3D { abs_eb, codec, .. } => {
                w.put_f64(*abs_eb);
                if tagged {
                    w.put_u8(codec.tag());
                }
            }
        }

        // Payload chunks + their table entries.
        let mut payload = Writer::new();
        let mut entries: Vec<ChunkEntry> = Vec::new();
        let push = |entries: &mut Vec<ChunkEntry>,
                    payload: &Writer,
                    level: usize,
                    len_before: usize,
                    codec: CodecId,
                    bbox: Aabb| {
            entries.push(ChunkEntry {
                level: level as u8,
                offset: len_before,
                len: payload.len() - len_before,
                codec,
                dtype: self.dtype,
                bbox,
            });
        };
        match &self.body {
            MethodBody::Tac(levels) => {
                for (l, cl) in levels.iter().enumerate() {
                    let level_bbox = self
                        .masks
                        .get(l)
                        .and_then(|m| m.bounding_box(cl.dim))
                        .unwrap_or_else(|| Aabb::whole(cl.dim));
                    match &cl.payload {
                        LevelPayload::Empty => {}
                        LevelPayload::Whole(stream) => {
                            let before = payload.len();
                            payload.put_bytes(stream);
                            push(&mut entries, &payload, l, before, cl.codec, level_bbox);
                        }
                        LevelPayload::Groups(groups) => {
                            for g in groups {
                                let before = payload.len();
                                g.write(&mut payload);
                                push(&mut entries, &payload, l, before, cl.codec, g.aabb());
                            }
                        }
                    }
                }
            }
            MethodBody::Baseline1D(levels) => {
                for (l, entry) in levels.iter().enumerate() {
                    if let Some((_, codec, stream)) = entry {
                        let dim = self.finest_dim >> l;
                        let bbox = self
                            .masks
                            .get(l)
                            .and_then(|m| m.bounding_box(dim))
                            .unwrap_or_else(|| Aabb::whole(dim));
                        let before = payload.len();
                        payload.put_bytes(stream);
                        push(&mut entries, &payload, l, before, *codec, bbox);
                    }
                }
            }
            MethodBody::ZMesh { codec, stream, .. }
            | MethodBody::Baseline3D { codec, stream, .. } => {
                let before = payload.len();
                payload.put_bytes(stream);
                push(
                    &mut entries,
                    &payload,
                    0,
                    before,
                    *codec,
                    Aabb::whole(self.finest_dim),
                );
            }
        }
        w.put_blob(&payload.into_bytes());

        // Chunk table, then its offset as the footer (a file reader can
        // seek to the last 8 bytes, then to the table, then to exactly
        // the chunks it needs).
        let table_pos = w.len();
        w.put_u32(entries.len() as u32);
        for e in &entries {
            e.write(&mut w, version);
        }
        w.put_u64(table_pos as u64);
        w.into_bytes()
    }

    /// Parses a container written by [`CompressedDataset::to_bytes`]
    /// (chunked) or [`CompressedDataset::to_bytes_v1`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TacError> {
        let mut r = Reader::new(bytes);
        let prelude = parse_prelude(&mut r)?;
        match prelude.version {
            VERSION_V1 => parse_v1_body(&mut r, prelude),
            VERSION_V2 | VERSION_V3 | VERSION_V4 => {
                let layout = parse_chunked_tail(&mut r, prelude)?;
                layout.assemble()
            }
            v => Err(TacError::Corrupt(format!(
                "unsupported container version {v}"
            ))),
        }
    }
}

/// Parsed shared front matter of every container version.
#[derive(Debug)]
pub(crate) struct Prelude {
    pub version: u8,
    pub method: Method,
    /// From the v4 header byte; `F64` for every earlier version (v1
    /// bodies may refine this from their self-describing payloads).
    pub dtype: TacDtype,
    pub name: String,
    pub finest_dim: usize,
    pub masks: Vec<BitMask>,
}

/// Shared front matter of every container version: magic, version byte,
/// method, dtype byte (v4), name, finest dim, packed masks.
fn parse_prelude(r: &mut Reader<'_>) -> Result<Prelude, TacError> {
    let magic = r.get_bytes(4)?;
    if magic != MAGIC {
        return Err(TacError::Corrupt(format!("bad magic {magic:02x?}")));
    }
    let version = r.get_u8()?;
    if !(VERSION_V1..=VERSION_V4).contains(&version) {
        return Err(TacError::Corrupt(format!(
            "unsupported container version {version}"
        )));
    }
    let method = Method::from_tag(r.get_u8()?)?;
    let dtype = if version >= VERSION_V4 {
        let tag = r.get_u8()?;
        TacDtype::from_tag(tag)
            .ok_or_else(|| TacError::Corrupt(format!("unknown element-type tag {tag}")))?
    } else {
        TacDtype::F64
    };
    let name = r.get_str()?;
    let finest_dim = r.get_u64()? as usize;
    // A crafted dimension must fail cleanly before any `dim^3` products:
    // unchecked, the multiplication overflows (a panic under debug
    // assertions) and the implied allocations are absurd anyway.
    if finest_dim == 0 || finest_dim > MAX_FINEST_DIM {
        return Err(TacError::Corrupt(format!(
            "finest dim {finest_dim} outside the supported 1..={MAX_FINEST_DIM}"
        )));
    }
    let num_levels = r.get_u8()? as usize;
    if num_levels == 0 || num_levels > 16 {
        return Err(TacError::Corrupt(format!(
            "{num_levels} levels is implausible"
        )));
    }
    let mut masks = Vec::with_capacity(num_levels);
    for l in 0..num_levels {
        let packed = r.get_blob()?;
        let raw = tac_sz::lossless::decompress(packed)?;
        let mask = BitMask::from_bytes(&raw)
            .ok_or_else(|| TacError::Corrupt(format!("level {l} mask malformed")))?;
        let dim = finest_dim >> l;
        if mask.len() != dim * dim * dim {
            return Err(TacError::Corrupt(format!(
                "level {l} mask has {} bits, expected {}",
                mask.len(),
                dim * dim * dim
            )));
        }
        masks.push(mask);
    }
    Ok(Prelude {
        version,
        method,
        dtype,
        name,
        finest_dim,
        masks,
    })
}

/// Parses the v1 (monolithic) body. v1 has no dtype byte; the element
/// type is recovered from the payload itself — TAC level tags are
/// self-describing, and the baselines' scalar streams carry a dtype
/// flag in their own headers.
fn parse_v1_body(r: &mut Reader<'_>, prelude: Prelude) -> Result<CompressedDataset, TacError> {
    let Prelude {
        method,
        name,
        finest_dim,
        masks,
        ..
    } = prelude;
    let num_levels = masks.len();
    let body = match method {
        Method::Tac => {
            let mut levels = Vec::with_capacity(num_levels);
            for _ in 0..num_levels {
                levels.push(CompressedLevel::read(r)?);
            }
            MethodBody::Tac(levels)
        }
        Method::Baseline1D => {
            let mut levels = Vec::with_capacity(num_levels);
            for _ in 0..num_levels {
                levels.push(match r.get_u8()? {
                    0 => None,
                    // Legacy tag: implicitly the SZ codec.
                    1 => Some((r.get_f64()?, CodecId::Sz, r.get_blob()?.to_vec())),
                    2 => {
                        let codec = CodecId::from_tag(r.get_u8()?).map_err(TacError::Codec)?;
                        Some((r.get_f64()?, codec, r.get_blob()?.to_vec()))
                    }
                    t => return Err(TacError::Corrupt(format!("unknown 1D level tag {t}"))),
                });
            }
            MethodBody::Baseline1D(levels)
        }
        // The single-stream baselines have no codec tag in v1; the
        // stream's own magic number says which backend wrote it (every
        // pre-codec container sniffs as SZ).
        Method::ZMesh => {
            let abs_eb = r.get_f64()?;
            let stream = r.get_blob()?.to_vec();
            MethodBody::ZMesh {
                abs_eb,
                codec: sniff_codec(&stream).unwrap_or_default(),
                stream,
            }
        }
        Method::Baseline3D => {
            let abs_eb = r.get_f64()?;
            let stream = r.get_blob()?.to_vec();
            MethodBody::Baseline3D {
                abs_eb,
                codec: sniff_codec(&stream).unwrap_or_default(),
                stream,
            }
        }
        // Unreachable by construction: `Method::from_tag` rejects the
        // Auto sentinel, so a parsed prelude never carries it. Kept as
        // a corruption error rather than a panic on the decode path.
        Method::Auto => {
            return Err(TacError::Corrupt(
                "Method::Auto is encoder-side only and never serializes".into(),
            ))
        }
    };
    if r.remaining() != 0 {
        return Err(TacError::Corrupt(format!(
            "{} trailing bytes",
            r.remaining()
        )));
    }
    let dtype = match &body {
        MethodBody::Tac(levels) => {
            let dtype = levels.first().map(|l| l.dtype).unwrap_or_default();
            if levels.iter().any(|l| l.dtype != dtype) {
                return Err(TacError::Corrupt(
                    "levels disagree on the element type".into(),
                ));
            }
            dtype
        }
        // The baselines' streams carry a dtype flag in their scalar-codec
        // headers; empty streams (all-empty datasets) default to f64.
        MethodBody::Baseline1D(levels) => levels
            .iter()
            .flatten()
            .find_map(|(_, _, s)| tac_codec::stream_dtype(s))
            .unwrap_or_default(),
        MethodBody::ZMesh { stream, .. } | MethodBody::Baseline3D { stream, .. } => {
            tac_codec::stream_dtype(stream).unwrap_or_default()
        }
    };
    Ok(CompressedDataset {
        name,
        finest_dim,
        dtype,
        masks,
        body,
    })
}

/// One chunk-table row: which level the chunk belongs to, where its
/// bytes live in the payload, which scalar codec wrote it (v3+; v2 rows
/// imply SZ), its element type (v4+; earlier rows imply `f64`), and the
/// cell-coordinate box it covers (level-local coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChunkEntry {
    pub level: u8,
    pub offset: usize,
    pub len: usize,
    pub codec: CodecId,
    pub dtype: TacDtype,
    pub bbox: Aabb,
}

/// Serialized chunk-table row size of the given container version.
pub(crate) fn chunk_entry_bytes(version: u8) -> usize {
    if version >= VERSION_V4 {
        CHUNK_ROW_BYTES_V4
    } else if version >= VERSION_V3 {
        CHUNK_ROW_BYTES_V3
    } else {
        CHUNK_ROW_BYTES_V2
    }
}

impl ChunkEntry {
    // tac-lint: allow(arith) -- writer-side width reduction: bbox coordinates are cell indices bounded by MAX_FINEST_DIM (2^13), far below u32::MAX.
    fn write(&self, w: &mut Writer, version: u8) {
        w.put_u8(self.level);
        w.put_u64(self.offset as u64);
        w.put_u64(self.len as u64);
        if version >= VERSION_V3 {
            w.put_u8(self.codec.tag());
        }
        if version >= VERSION_V4 {
            w.put_u8(self.dtype.tag());
        }
        let (x0, y0, z0) = self.bbox.min;
        let (x1, y1, z1) = self.bbox.max;
        for v in [x0, y0, z0, x1, y1, z1] {
            w.put_u32(v as u32);
        }
    }

    fn read(r: &mut Reader<'_>, version: u8) -> Result<Self, TacError> {
        let level = r.get_u8()?;
        let offset = r.get_u64()? as usize;
        let len = r.get_u64()? as usize;
        let codec = if version >= VERSION_V3 {
            CodecId::from_tag(r.get_u8()?).map_err(TacError::Codec)?
        } else {
            CodecId::Sz
        };
        let dtype = if version >= VERSION_V4 {
            let tag = r.get_u8()?;
            TacDtype::from_tag(tag)
                .ok_or_else(|| TacError::Corrupt(format!("unknown element-type tag {tag}")))?
        } else {
            TacDtype::F64
        };
        let x0 = r.get_u32()? as usize;
        let y0 = r.get_u32()? as usize;
        let z0 = r.get_u32()? as usize;
        let x1 = r.get_u32()? as usize;
        let y1 = r.get_u32()? as usize;
        let z1 = r.get_u32()? as usize;
        // The writer only ever records non-empty boxes; a degenerate one
        // here is corruption, and accepting it would make ROI decoding
        // silently skip a live chunk.
        if x1 <= x0 || y1 <= y0 || z1 <= z0 {
            return Err(TacError::Corrupt(format!(
                "chunk bbox [{:?}, {:?}) is empty",
                (x0, y0, z0),
                (x1, y1, z1)
            )));
        }
        Ok(ChunkEntry {
            level,
            offset,
            len,
            codec,
            dtype,
            bbox: Aabb::new((x0, y0, z0), (x1, y1, z1)),
        })
    }
}

/// Per-level metadata of a chunked (v2/v3) TAC payload.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TacLevelMeta {
    pub strategy: Strategy,
    pub dim: usize,
    pub abs_eb: f64,
    /// Scalar codec of the level's streams (v2: always SZ).
    pub codec: CodecId,
    /// 0 = empty, 1 = whole-grid stream, 2 = region groups.
    pub kind: u8,
    /// Number of group chunks (kind 2 only).
    pub group_count: usize,
}

impl TacLevelMeta {
    /// Chunks the table must list for this level — the single source of
    /// the kind -> count mapping.
    pub fn expected_chunks(&self) -> usize {
        match self.kind {
            0 => 0,
            1 => 1,
            _ => self.group_count,
        }
    }
}

/// Method metadata of a parsed chunked (v2/v3) container.
#[derive(Debug, Clone)]
pub(crate) enum V2Meta {
    Tac(Vec<TacLevelMeta>),
    /// Per level: the resolved bound and codec for present levels.
    Baseline1D(Vec<Option<(f64, CodecId)>>),
    ZMesh(f64, CodecId),
    Baseline3D(f64, CodecId),
}

/// A parsed chunked container with the payload still in serialized
/// form: chunks decode on demand (the whole point of the format).
#[derive(Debug)]
pub(crate) struct V2Layout<'a> {
    pub name: String,
    pub finest_dim: usize,
    pub dtype: TacDtype,
    pub masks: Vec<BitMask>,
    pub meta: V2Meta,
    pub payload: &'a [u8],
    pub entries: Vec<ChunkEntry>,
}

/// Parses a chunked (v2/v3/v4) container down to its layout without
/// decoding any chunk.
pub(crate) fn parse_v2(bytes: &[u8]) -> Result<V2Layout<'_>, TacError> {
    let mut r = Reader::new(bytes);
    let prelude = parse_prelude(&mut r)?;
    if prelude.version == VERSION_V1 {
        return Err(TacError::Corrupt(
            "chunk-table access needs a chunked (v2+) container (found v1)".into(),
        ));
    }
    parse_chunked_tail(&mut r, prelude)
}

/// Parses everything after the shared prelude of a chunked container.
fn parse_chunked_tail<'a>(r: &mut Reader<'a>, prelude: Prelude) -> Result<V2Layout<'a>, TacError> {
    let Prelude {
        version,
        method,
        dtype,
        name,
        finest_dim,
        masks,
    } = prelude;
    let tagged = version >= VERSION_V3;
    let read_codec = |r: &mut Reader<'_>| -> Result<CodecId, TacError> {
        if tagged {
            CodecId::from_tag(r.get_u8()?).map_err(TacError::Codec)
        } else {
            Ok(CodecId::Sz)
        }
    };
    let num_levels = masks.len();
    let meta = match method {
        Method::Tac => {
            let mut metas = Vec::with_capacity(num_levels);
            for _ in 0..num_levels {
                let strategy = Strategy::from_tag(r.get_u8()?)?;
                let dim = r.get_u64()? as usize;
                if dim == 0 || dim > MAX_FINEST_DIM {
                    return Err(TacError::Corrupt(format!(
                        "level dim {dim} outside the supported 1..={MAX_FINEST_DIM}"
                    )));
                }
                let abs_eb = r.get_f64()?;
                let kind = r.get_u8()?;
                let group_count = match kind {
                    0 | 1 => 0,
                    2 => r.get_u32()? as usize,
                    k => return Err(TacError::Corrupt(format!("unknown payload kind {k}"))),
                };
                let codec = read_codec(r)?;
                metas.push(TacLevelMeta {
                    strategy,
                    dim,
                    abs_eb,
                    codec,
                    kind,
                    group_count,
                });
            }
            V2Meta::Tac(metas)
        }
        Method::Baseline1D => {
            let mut ebs = Vec::with_capacity(num_levels);
            for _ in 0..num_levels {
                ebs.push(match r.get_u8()? {
                    0 => None,
                    1 => {
                        let eb = r.get_f64()?;
                        Some((eb, read_codec(r)?))
                    }
                    t => return Err(TacError::Corrupt(format!("unknown 1D level tag {t}"))),
                });
            }
            V2Meta::Baseline1D(ebs)
        }
        Method::ZMesh => {
            let eb = r.get_f64()?;
            V2Meta::ZMesh(eb, read_codec(r)?)
        }
        Method::Baseline3D => {
            let eb = r.get_f64()?;
            V2Meta::Baseline3D(eb, read_codec(r)?)
        }
        // Unreachable by construction: `Method::from_tag` rejects the
        // Auto sentinel, so a parsed prelude never carries it. Kept as
        // a corruption error rather than a panic on the decode path.
        Method::Auto => {
            return Err(TacError::Corrupt(
                "Method::Auto is encoder-side only and never serializes".into(),
            ))
        }
    };

    let payload = r.get_blob()?;
    let table_pos = r.position();
    let num_chunks = r.get_u32()? as usize;
    // Bound the allocation by what the buffer can hold (entries are
    // fixed-size: level u8 + offset/len u64 + codec byte on v3 + bbox
    // 6 x u32).
    let entry_bytes = chunk_entry_bytes(version);
    if num_chunks > r.remaining() / entry_bytes {
        return Err(TacError::Corrupt(format!(
            "table declares {num_chunks} chunks but only {} bytes remain",
            r.remaining()
        )));
    }
    let mut entries = Vec::with_capacity(num_chunks);
    for _ in 0..num_chunks {
        let e = ChunkEntry::read(r, version)?;
        // checked_add: a crafted offset near u64::MAX must fail cleanly,
        // not wrap past the bound and panic at slice time.
        let in_bounds = e
            .offset
            .checked_add(e.len)
            .is_some_and(|end| end <= payload.len());
        if !in_bounds {
            return Err(TacError::Corrupt(format!(
                "chunk at offset {} len {} exceeds payload of {} bytes",
                e.offset,
                e.len,
                payload.len()
            )));
        }
        if e.level as usize >= num_levels {
            return Err(TacError::Corrupt(format!(
                "chunk references level {} of {num_levels}",
                e.level
            )));
        }
        entries.push(e);
    }
    let stored_table_pos = r.get_u64()? as usize;
    if stored_table_pos != table_pos {
        return Err(TacError::Corrupt(format!(
            "table offset footer {stored_table_pos} does not match table at {table_pos}"
        )));
    }
    if r.remaining() != 0 {
        return Err(TacError::Corrupt(format!(
            "{} trailing bytes",
            r.remaining()
        )));
    }
    let layout = V2Layout {
        name,
        finest_dim,
        dtype,
        masks,
        meta,
        payload,
        entries,
    };
    // Enforce the table/metadata chunk-count invariants once here, so
    // every consumer (full assemble, ROI decode) agrees on what a valid
    // container is by construction.
    layout.validate_chunk_counts()?;
    Ok(layout)
}

impl V2Layout<'_> {
    /// Checks that the chunk table lists exactly the chunks the method
    /// metadata promises per level, each tagged with the level's codec.
    /// A codec disagreement between the table and the metadata means the
    /// container was tampered with — better to refuse than to hand the
    /// chunk to the wrong backend.
    fn validate_chunk_counts(&self) -> Result<(), TacError> {
        // Every chunk must agree with the container's element type; a
        // mismatch would hand f32 bytes to an f64 monomorphization.
        for e in &self.entries {
            if e.dtype != self.dtype {
                return Err(TacError::Corrupt(format!(
                    "chunk tagged {} but the container header says {}",
                    e.dtype, self.dtype
                )));
            }
        }
        let check = |level: usize, want: usize, codec: CodecId| -> Result<(), TacError> {
            let mut have = 0usize;
            for e in self.level_entries(level) {
                have += 1;
                if e.codec != codec {
                    return Err(TacError::Corrupt(format!(
                        "level {level}: chunk tagged {} but metadata says {}",
                        e.codec, codec
                    )));
                }
            }
            if have != want {
                return Err(TacError::Corrupt(format!(
                    "level {level}: expected {want} chunks, table lists {have}"
                )));
            }
            Ok(())
        };
        match &self.meta {
            V2Meta::Tac(metas) => {
                for (l, meta) in metas.iter().enumerate() {
                    check(l, meta.expected_chunks(), meta.codec)?;
                }
            }
            V2Meta::Baseline1D(ebs) => {
                for (l, eb) in ebs.iter().enumerate() {
                    let codec = eb.map(|(_, c)| c).unwrap_or_default();
                    check(l, usize::from(eb.is_some()), codec)?;
                }
            }
            V2Meta::ZMesh(_, codec) | V2Meta::Baseline3D(_, codec) => match self.entries.as_slice()
            {
                [single] => {
                    if single.codec != *codec {
                        return Err(TacError::Corrupt(format!(
                            "chunk tagged {} but metadata says {codec}",
                            single.codec
                        )));
                    }
                }
                rest => {
                    return Err(TacError::Corrupt(format!(
                        "expected exactly one chunk, table lists {}",
                        rest.len()
                    )));
                }
            },
        }
        Ok(())
    }
    /// Chunk-table rows belonging to `level`, in payload order.
    pub fn level_entries(&self, level: usize) -> impl Iterator<Item = &ChunkEntry> {
        self.entries
            .iter()
            .filter(move |e| e.level as usize == level)
    }

    /// The serialized bytes of one chunk. Every entry's byte range was
    /// bounds-checked against the payload at parse time; an entry that
    /// somehow escaped that check yields an empty slice, never a panic.
    pub fn chunk_bytes(&self, e: &ChunkEntry) -> &[u8] {
        e.offset
            .checked_add(e.len)
            .and_then(|end| self.payload.get(e.offset..end))
            .unwrap_or_default()
    }

    /// The bytes of the sole chunk of a single-stream (zMesh / 3D)
    /// container. Chunk-count validation already guarantees exactly one
    /// entry exists.
    fn single_chunk_bytes(&self) -> Result<&[u8], TacError> {
        self.entries
            .first()
            .map(|e| self.chunk_bytes(e))
            .ok_or_else(|| TacError::Corrupt("single-stream container has no chunk".into()))
    }

    /// Decodes every chunk, reassembling the full in-memory container
    /// (the v2 equivalent of the v1 front-to-back parse). Chunk counts
    /// were already validated against the metadata at parse time.
    /// Consumes the layout so the name and masks move instead of
    /// cloning.
    pub fn assemble(self) -> Result<CompressedDataset, TacError> {
        let body = match &self.meta {
            V2Meta::Tac(metas) => {
                let mut levels = Vec::with_capacity(metas.len());
                for (l, meta) in metas.iter().enumerate() {
                    let chunks: Vec<&ChunkEntry> = self.level_entries(l).collect();
                    let payload = match meta.kind {
                        0 => LevelPayload::Empty,
                        1 => {
                            let whole = chunks.first().ok_or_else(|| {
                                TacError::Corrupt(format!("level {l}: whole chunk missing"))
                            })?;
                            LevelPayload::Whole(self.chunk_bytes(whole).to_vec())
                        }
                        _ => {
                            let mut groups = Vec::with_capacity(chunks.len());
                            for c in &chunks {
                                groups.push(self.parse_group(c)?);
                            }
                            LevelPayload::Groups(groups)
                        }
                    };
                    levels.push(CompressedLevel {
                        strategy: meta.strategy,
                        dim: meta.dim,
                        abs_eb: meta.abs_eb,
                        codec: meta.codec,
                        dtype: self.dtype,
                        payload,
                    });
                }
                MethodBody::Tac(levels)
            }
            V2Meta::Baseline1D(ebs) => {
                let mut levels = Vec::with_capacity(ebs.len());
                for (l, eb) in ebs.iter().enumerate() {
                    levels.push(match eb {
                        None => None,
                        Some((eb, codec)) => {
                            let chunk = self.level_entries(l).next().ok_or_else(|| {
                                TacError::Corrupt(format!("level {l}: chunk missing"))
                            })?;
                            Some((*eb, *codec, self.chunk_bytes(chunk).to_vec()))
                        }
                    });
                }
                MethodBody::Baseline1D(levels)
            }
            V2Meta::ZMesh(abs_eb, codec) => MethodBody::ZMesh {
                abs_eb: *abs_eb,
                codec: *codec,
                stream: self.single_chunk_bytes()?.to_vec(),
            },
            V2Meta::Baseline3D(abs_eb, codec) => MethodBody::Baseline3D {
                abs_eb: *abs_eb,
                codec: *codec,
                stream: self.single_chunk_bytes()?.to_vec(),
            },
        };
        Ok(CompressedDataset {
            name: self.name,
            finest_dim: self.finest_dim,
            dtype: self.dtype,
            masks: self.masks,
            body,
        })
    }

    /// Parses a group chunk body (must consume the chunk exactly).
    pub fn parse_group(&self, e: &ChunkEntry) -> Result<crate::stream::BlockGroup, TacError> {
        let mut r = Reader::new(self.chunk_bytes(e));
        let g = crate::stream::BlockGroup::read(&mut r)?;
        if r.remaining() != 0 {
            return Err(TacError::Corrupt(format!(
                "{} trailing bytes in group chunk",
                r.remaining()
            )));
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_masks() -> Vec<BitMask> {
        let mut fine = BitMask::zeros(64); // 4^3
        for i in (0..64).step_by(2) {
            fine.set(i, true);
        }
        let mut coarse = BitMask::zeros(8); // 2^3
        coarse.set(0, true);
        vec![fine, coarse]
    }

    fn sample_tac_typed(codec: CodecId, dtype: TacDtype) -> CompressedDataset {
        CompressedDataset {
            name: "Run1_Z10".into(),
            finest_dim: 4,
            dtype,
            masks: sample_masks(),
            body: MethodBody::Tac(vec![
                CompressedLevel {
                    strategy: Strategy::OpST,
                    dim: 4,
                    abs_eb: 1e-3,
                    codec,
                    dtype,
                    payload: crate::stream::LevelPayload::Groups(vec![crate::stream::BlockGroup {
                        shape: (2, 2, 2),
                        origins: vec![(0, 0, 0), (2, 2, 2)],
                        stream: vec![4, 5, 6],
                    }]),
                },
                CompressedLevel {
                    strategy: Strategy::Gsp,
                    dim: 2,
                    abs_eb: 2e-3,
                    codec,
                    dtype,
                    payload: crate::stream::LevelPayload::Whole(vec![1, 2, 3]),
                },
            ]),
        }
    }

    fn sample_tac_with(codec: CodecId) -> CompressedDataset {
        sample_tac_typed(codec, TacDtype::F64)
    }

    fn sample_tac() -> CompressedDataset {
        sample_tac_with(CodecId::Sz)
    }

    #[test]
    fn auto_method_never_hits_the_wire() {
        // The sentinel tag is rejected on read, so no container —
        // written or crafted — can claim `Method::Auto`; only concrete
        // bodies serialize.
        assert!(Method::from_tag(Method::Auto.tag()).is_err());
        assert_eq!(Method::Auto.label(), "Auto");
        assert!(!Method::fixed().contains(&Method::Auto));
        for (i, m) in Method::fixed().into_iter().enumerate() {
            assert_eq!(m.tag() as usize, i, "fixed() must stay in tag order");
        }
    }

    #[test]
    fn container_roundtrip_tac_both_versions() {
        let cd = sample_tac();
        for bytes in [cd.to_bytes_v1(), cd.to_bytes()] {
            let back = CompressedDataset::from_bytes(&bytes).unwrap();
            assert_eq!(back, cd);
            assert_eq!(back.method(), Method::Tac);
            assert_eq!(
                back.strategies().unwrap(),
                vec![Strategy::OpST, Strategy::Gsp]
            );
        }
        // Default-codec serialization stays on v2 bytes.
        assert_eq!(cd.to_bytes()[4], VERSION_V2);
        assert_eq!(cd.to_bytes_v1()[4], VERSION_V1);
    }

    #[test]
    fn tagged_codec_promotes_to_v3_and_roundtrips() {
        let cd = sample_tac_with(CodecId::PcoLite);
        let chunked = cd.to_bytes();
        assert_eq!(chunked[4], VERSION_V3, "non-default codec must tag");
        let v1 = cd.to_bytes_v1();
        assert_eq!(v1[4], VERSION_V1);
        for bytes in [v1, chunked] {
            let back = CompressedDataset::from_bytes(&bytes).unwrap();
            assert_eq!(back, cd);
        }
        // A mixed container (any non-default level) also promotes.
        let mut mixed = sample_tac();
        if let MethodBody::Tac(levels) = &mut mixed.body {
            levels[1].codec = CodecId::PcoLite;
        }
        assert_eq!(mixed.to_bytes()[4], VERSION_V3);
        assert_eq!(
            CompressedDataset::from_bytes(&mixed.to_bytes()).unwrap(),
            mixed
        );
    }

    #[test]
    fn container_roundtrip_baselines_both_versions() {
        for codec in CodecId::all() {
            for body in [
                MethodBody::Baseline1D(vec![Some((1e-3, codec, vec![7, 8])), None]),
                MethodBody::ZMesh {
                    abs_eb: 0.5,
                    codec,
                    stream: vec![1; 20],
                },
                MethodBody::Baseline3D {
                    abs_eb: 0.25,
                    codec,
                    stream: vec![2; 10],
                },
            ] {
                let cd = CompressedDataset {
                    name: "x".into(),
                    finest_dim: 4,
                    dtype: TacDtype::F64,
                    masks: sample_masks(),
                    body,
                };
                // The single-stream baselines recover their codec from
                // the stream magic in v1, and `[1; 20]` / `[2; 10]` sniff
                // as nothing (=> Sz); skip those mismatched combinations.
                let v1_sniffs =
                    codec == CodecId::Sz || matches!(cd.body, MethodBody::Baseline1D(_));
                let mut variants = vec![cd.to_bytes()];
                if v1_sniffs {
                    variants.push(cd.to_bytes_v1());
                }
                for bytes in variants {
                    let back = CompressedDataset::from_bytes(&bytes).unwrap();
                    assert_eq!(back, cd);
                    assert!(back.strategies().is_none());
                }
            }
        }
    }

    #[test]
    fn v1_single_stream_baselines_sniff_their_codec() {
        // A real PcoLite stream round-trips through v1 because the codec
        // is recovered from the stream's own magic number.
        let stream = tac_codec::codec_for(CodecId::PcoLite)
            .compress(
                &[1.0; 33],
                tac_codec::Dims::D1(33),
                &tac_codec::CodecConfig::abs(0.5),
            )
            .unwrap();
        let cd = CompressedDataset {
            name: "sniffed".into(),
            finest_dim: 4,
            dtype: TacDtype::F64,
            masks: sample_masks(),
            body: MethodBody::ZMesh {
                abs_eb: 0.5,
                codec: CodecId::PcoLite,
                stream,
            },
        };
        let back = CompressedDataset::from_bytes(&cd.to_bytes_v1()).unwrap();
        assert_eq!(back, cd);
    }

    #[test]
    fn v2_chunk_table_maps_payload() {
        let cd = sample_tac();
        let bytes = cd.to_bytes();
        let layout = parse_v2(&bytes).unwrap();
        // One group chunk on the fine level, one whole chunk on the
        // coarse level.
        assert_eq!(layout.entries.len(), 2);
        assert_eq!(layout.level_entries(0).count(), 1);
        assert_eq!(layout.level_entries(1).count(), 1);
        let fine = layout.level_entries(0).next().unwrap();
        assert_eq!(fine.bbox, Aabb::new((0, 0, 0), (4, 4, 4)));
        let coarse = layout.level_entries(1).next().unwrap();
        // Coarse mask has a single present cell at the origin.
        assert_eq!(coarse.bbox, Aabb::new((0, 0, 0), (1, 1, 1)));
        assert_eq!(layout.chunk_bytes(coarse), &[1, 2, 3]);
        // v1 bytes have no chunk table.
        assert!(parse_v2(&cd.to_bytes_v1()).is_err());
    }

    #[test]
    fn stats_count_present_cells() {
        let cd = CompressedDataset {
            name: "s".into(),
            finest_dim: 4,
            dtype: TacDtype::F64,
            masks: sample_masks(),
            body: MethodBody::ZMesh {
                abs_eb: 1.0,
                codec: CodecId::Sz,
                stream: vec![0; 33],
            },
        };
        assert_eq!(cd.total_present(), 33);
        let stats = cd.stats();
        assert_eq!(stats.elements, 33);
        assert_eq!(stats.original_bytes, 33 * 8);
        assert!(cd.structure_bytes() > 0);
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let cd = CompressedDataset {
            name: "c".into(),
            finest_dim: 4,
            dtype: TacDtype::F64,
            masks: sample_masks(),
            body: MethodBody::Baseline3D {
                abs_eb: 1.0,
                codec: CodecId::Sz,
                stream: vec![3; 5],
            },
        };
        for bytes in [cd.to_bytes_v1(), cd.to_bytes()] {
            assert!(CompressedDataset::from_bytes(&bytes[..bytes.len() - 1]).is_err());
            assert!(CompressedDataset::from_bytes(&bytes[1..]).is_err());
            let mut extra = bytes.clone();
            extra.push(0);
            assert!(CompressedDataset::from_bytes(&extra).is_err());
            let mut bad_version = bytes.clone();
            bad_version[4] = 77;
            assert!(CompressedDataset::from_bytes(&bad_version).is_err());
        }
    }

    #[test]
    fn corrupt_chunk_bbox_is_rejected_not_skipped() {
        let cd = sample_tac();
        let mut bytes = cd.to_bytes();
        // Locate the first table entry via the footer; its bbox starts
        // count-prefix + 17 (level/offset/len) bytes into the table.
        // Write min.x > max.x: accepting this as an "empty" box would
        // make ROI decoding silently drop the chunk's data.
        let footer = &bytes[bytes.len() - TABLE_FOOTER_BYTES..];
        let table_pos = u64::from_le_bytes(footer.try_into().unwrap()) as usize;
        let bbox_at = table_pos + CHUNK_COUNT_PREFIX_BYTES + 17;
        bytes[bbox_at..bbox_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(CompressedDataset::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_v2_is_rejected_at_every_cut() {
        let cd = sample_tac();
        let bytes = cd.to_bytes();
        for cut in 5..bytes.len() {
            assert!(
                CompressedDataset::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
    }

    #[test]
    fn f32_dataset_promotes_to_v4_and_roundtrips() {
        for codec in CodecId::all() {
            let cd = sample_tac_typed(codec, TacDtype::F32);
            let bytes = cd.to_bytes();
            assert_eq!(bytes[4], VERSION_V4, "non-f64 must promote to v4");
            // The dtype byte sits right after the method tag.
            assert_eq!(bytes[6], TacDtype::F32.tag());
            assert_eq!(CompressedDataset::from_bytes(&bytes).unwrap(), cd);
            // v1 recovers the dtype from the self-describing level tags.
            let v1 = cd.to_bytes_v1();
            assert_eq!(v1[4], VERSION_V1);
            assert_eq!(CompressedDataset::from_bytes(&v1).unwrap(), cd);
        }
    }

    #[test]
    fn v4_chunk_rows_carry_the_dtype() {
        let cd = sample_tac_typed(CodecId::Sz, TacDtype::F32);
        let bytes = cd.to_bytes();
        let layout = parse_v2(&bytes).unwrap();
        assert_eq!(layout.dtype, TacDtype::F32);
        assert!(layout.entries.iter().all(|e| e.dtype == TacDtype::F32));
        // Table geometry: count prefix + fixed-size v4 rows, then footer.
        let footer = &bytes[bytes.len() - TABLE_FOOTER_BYTES..];
        let table_pos = u64::from_le_bytes(footer.try_into().unwrap()) as usize;
        let table_len = bytes.len() - TABLE_FOOTER_BYTES - table_pos;
        assert_eq!(
            table_len,
            CHUNK_COUNT_PREFIX_BYTES + layout.entries.len() * CHUNK_ROW_BYTES_V4
        );
    }

    #[test]
    fn v4_dtype_corruption_is_rejected() {
        let cd = sample_tac_typed(CodecId::Sz, TacDtype::F32);
        let bytes = cd.to_bytes();
        // Unknown header dtype tag.
        let mut bad = bytes.clone();
        bad[6] = 9;
        assert!(CompressedDataset::from_bytes(&bad).is_err());
        // A chunk row disagreeing with the header must be refused, not
        // silently reinterpreted: flip the first row's dtype byte (at
        // level + offset + len + codec = 18 bytes into the row) to f64.
        let footer = &bytes[bytes.len() - TABLE_FOOTER_BYTES..];
        let table_pos = u64::from_le_bytes(footer.try_into().unwrap()) as usize;
        let dtype_at = table_pos + CHUNK_COUNT_PREFIX_BYTES + 18;
        assert_eq!(bytes[dtype_at], TacDtype::F32.tag());
        let mut mismatched = bytes.clone();
        mismatched[dtype_at] = TacDtype::F64.tag();
        assert!(CompressedDataset::from_bytes(&mismatched).is_err());
    }

    #[test]
    fn v1_mixed_level_dtypes_are_rejected() {
        let mut cd = sample_tac_typed(CodecId::Sz, TacDtype::F32);
        if let MethodBody::Tac(levels) = &mut cd.body {
            levels[1].dtype = TacDtype::F64;
        }
        assert!(CompressedDataset::from_bytes(&cd.to_bytes_v1()).is_err());
    }

    #[test]
    fn truncated_v4_is_rejected_at_every_cut() {
        let bytes = sample_tac_typed(CodecId::PcoLite, TacDtype::F32).to_bytes();
        for cut in 5..bytes.len() {
            assert!(
                CompressedDataset::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
    }
}
