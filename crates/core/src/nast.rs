//! NaST — the naive sparse tensor method (paper Sec. 3.1, Fig. 5).
//!
//! Partition the level into unit blocks, drop the empty ones, batch the
//! survivors into a rank-4 array, and compress. Simple, but every
//! sub-block is small (one unit), so the fraction of boundary cells —
//! which Lorenzo predicts poorly — is high. OpST exists to fix exactly
//! that.

use crate::extract::Region;
use tac_amr::BlockGrid;

/// Plans NaST extraction: one region per non-empty unit block, in
/// row-major block order.
pub fn plan_nast(grid: &BlockGrid) -> Vec<Region> {
    let nb = grid.blocks_per_side();
    let unit = grid.unit();
    let mut regions = Vec::with_capacity(grid.num_nonempty());
    for bz in 0..nb {
        for by in 0..nb {
            for bx in 0..nb {
                if !grid.is_empty_block(bx, by, bz) {
                    regions.push(Region {
                        origin: (bx * unit, by * unit, bz * unit),
                        shape: (unit, unit, unit),
                    });
                }
            }
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac_amr::{AmrLevel, BlockGrid};

    #[test]
    fn plans_one_region_per_nonempty_block() {
        let mut lvl = AmrLevel::empty(8);
        // Populate two separated unit blocks (unit = 4).
        lvl.set_value(0, 0, 0, 1.0);
        lvl.set_value(5, 5, 5, 2.0);
        let grid = BlockGrid::build(&lvl, 4);
        let regions = plan_nast(&grid);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].origin, (0, 0, 0));
        assert_eq!(regions[1].origin, (4, 4, 4));
        assert!(regions.iter().all(|r| r.shape == (4, 4, 4)));
    }

    #[test]
    fn empty_level_plans_nothing() {
        let lvl = AmrLevel::<f64>::empty(8);
        let grid = BlockGrid::build(&lvl, 4);
        assert!(plan_nast(&grid).is_empty());
    }

    #[test]
    fn full_level_plans_every_block() {
        let lvl = AmrLevel::dense(8, vec![1.0; 512]);
        let grid = BlockGrid::build(&lvl, 2);
        assert_eq!(plan_nast(&grid).len(), 64);
    }
}
