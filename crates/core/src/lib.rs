#![forbid(unsafe_code)]

//! # tac-core
//!
//! **TAC** — error-bounded lossy compression optimized for 3D AMR data
//! (Wang et al., HPDC 2022). TAC compresses each refinement level of a
//! tree-based AMR dataset *in 3D* after a density-adaptive pre-process:
//!
//! * sparse levels (< 50%): **OpST** — a dynamic-programming sparse-tensor
//!   extraction that carves maximal non-empty cubes ([`plan_opst`]);
//! * medium levels (50-60%): **AKDTree** — an adaptive k-d tree whose
//!   splits maximize child occupancy difference ([`plan_akdtree`]);
//! * dense levels (>= 60%): **GSP** — ghost-shell padding that fills the
//!   few empty blocks with neighbour boundary averages
//!   ([`pad_ghost_shell`]).
//!
//! Level-wise compression also unlocks **per-level error bounds**
//! ([`TacConfig::level_eb_scale`]), the paper's Sec. 4.5 tuning for
//! power-spectrum and halo-finder fidelity.
//!
//! Three baselines from the paper ship alongside for every comparison:
//! the naive 1D per-level compressor, zMesh-style geometric reordering,
//! and the up-sample-and-merge 3D baseline ([`Method`]).
//!
//! Every payload stream compresses through a pluggable scalar-codec
//! backend ([`tac_codec::ScalarCodec`]), selected per run with
//! [`TacConfig::codec`]: the default SZ substrate ([`CodecId::Sz`]) or
//! the pcodec-style delta + bit-packing backend
//! ([`CodecId::PcoLite`]). Containers carry the codec tag on the wire,
//! and pre-codec containers parse unchanged.
//!
//! [`Method::Auto`] layers TAC+-style adaptive selection on top: a
//! deterministic selection pass ([`select_auto`]) scores every fixed
//! `(method, codec)` candidate — per level, for TAC — and compresses
//! with the winner, recorded in the method/codec tags the container
//! already carries. Decode needs no new wire format.
//!
//! ```
//! use tac_amr::{AmrDataset, AmrLevel};
//! use tac_core::{compress_dataset, decompress_dataset, Method, TacConfig};
//! use tac_sz::ErrorBound;
//!
//! let fine = AmrLevel::dense(8, (0..512).map(|i| i as f64).collect());
//! let ds = AmrDataset::new("demo", vec![fine]);
//! let cfg = TacConfig::with_error_bound(ErrorBound::Abs(0.5));
//! let compressed = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
//! let restored = decompress_dataset(&compressed).unwrap();
//! for (a, b) in ds.finest().data().iter().zip(restored.finest().data()) {
//!     assert!((a - b).abs() <= 0.5);
//! }
//! ```

#![warn(missing_docs)]

mod akdtree;
mod config;
mod container;
mod density;
mod engine;
mod error;
mod extract;
mod gsp;
mod nast;
mod opst;
mod pipeline;
mod roi;
mod select;
mod stream;
mod zmesh;

pub use akdtree::{plan_akdtree, AkdPlan};
pub use config::{AutoParams, Strategy, TacConfig};
pub use container::{
    Baseline1DLevel, CompressedDataset, Method, MethodBody, CHUNK_COUNT_PREFIX_BYTES,
    CHUNK_ROW_BYTES_V2, CHUNK_ROW_BYTES_V3, CHUNK_ROW_BYTES_V4, TABLE_FOOTER_BYTES,
};
pub use density::choose_strategy;
pub use error::TacError;
pub use extract::Region;
pub use gsp::pad_ghost_shell;
pub use nast::plan_nast;
pub use opst::{plan_opst, plan_opst_from_occupancy, OpstPlan};
pub use pipeline::{
    compress_dataset, compress_dataset_f32, compress_dataset_t, compress_level, compress_level_t,
    decompress_dataset, decompress_dataset_any, decompress_dataset_f32, decompress_dataset_par,
    decompress_dataset_par_t, decompress_dataset_t, decompress_level, decompress_level_t,
    resolve_level_eb, resolve_level_eb_for, select_method, AnyDataset,
};
pub use roi::{decompress_region, decompress_region_f32, decompress_region_t, RoiStats};
pub use select::{select_auto, AutoSelection, CandidateEstimate};
pub use stream::{BlockGroup, CompressedLevel, LevelPayload};
pub use zmesh::{gather, scatter, zmesh_order, ZmeshEntry};

// Re-exported so callers can set `TacConfig::parallelism` without a
// direct `tac-par` dependency.
pub use tac_par::Parallelism;

// Re-exported so callers can set `TacConfig::codec` — and register or
// inspect scalar-codec backends — without a direct `tac-codec`
// dependency. Every payload stream tac-core reads or writes dispatches
// through this backend layer.
pub use tac_codec::{
    codec_for, sniff_codec, stream_dtype, CodecConfig, CodecElement, CodecError, CodecId,
    ScalarCodec,
};

// Re-exported so dtype-generic callers (benchmarks, test harnesses) can
// name element types and dispatch over the wire tag without a direct
// `tac-dtype` dependency.
pub use tac_dtype::{dispatch_dtype, Element, TacDtype};
