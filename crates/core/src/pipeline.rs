//! Dataset-level compression pipelines: TAC and the three baselines.
//!
//! The per-level entry points ([`compress_level`] / [`decompress_level`])
//! are public because the paper's per-strategy experiments (Figs. 7,
//! 11-13) operate on single levels; the dataset entry points
//! ([`compress_dataset`] / [`decompress_dataset`]) implement the full
//! methods compared in Figs. 14-15 and Tables 2-3.

use crate::config::{Strategy, TacConfig};
use crate::container::{Baseline1DLevel, CompressedDataset, Method, MethodBody};
use crate::density::choose_strategy;
use crate::engine;
use crate::error::TacError;
use crate::extract::decompress_groups;
use crate::stream::{CompressedLevel, LevelPayload};
use crate::zmesh::{gather, scatter, zmesh_order};
use tac_amr::{to_uniform, AmrDataset, AmrLevel, BitMask};
use tac_codec::{codec_for, CodecElement, CodecError, Dims, ErrorBound};
use tac_dtype::{dispatch_dtype, Element, TacDtype};
use tac_par::Parallelism;

/// Resolves the configured error bound for one level: applies the
/// per-level multiplier, then converts relative bounds against the given
/// value range.
///
/// # Non-finite policy
/// Every codec backend stores NaN/±Inf inputs **verbatim** (bit-exact on
/// reconstruction) and treats `-0.0` as an ordinary finite value, so
/// absolute bounds accept non-finite data. A *relative* bound, however,
/// needs a finite range to resolve against: when the range itself is
/// NaN or infinite (the level's extremes are non-finite) this returns
/// [`TacError::NonFinite`] rather than propagating a meaningless bound.
///
/// # Errors
/// A relative bound with no value range (`range: None`, i.e. a level
/// with no present cells) cannot resolve: silently treating the range as
/// zero would yield a degenerate error bound, so this is an
/// [`TacError::InvalidDataset`] instead. Absolute bounds ignore the
/// range and accept `None`.
pub fn resolve_level_eb(
    eb: ErrorBound,
    scale: f64,
    range: Option<(f64, f64)>,
) -> Result<f64, TacError> {
    let scaled = match eb {
        ErrorBound::Abs(a) => ErrorBound::Abs(a * scale),
        ErrorBound::Rel(r) => ErrorBound::Rel(r * scale),
    };
    let (min, max) = match (scaled, range) {
        (_, Some(r)) => r,
        // An absolute bound never reads the range.
        (ErrorBound::Abs(_), None) => (0.0, 0.0),
        (ErrorBound::Rel(r), None) => {
            return Err(TacError::InvalidDataset(format!(
                "relative error bound {r} cannot resolve: the level has no \
                 value range (no present cells)"
            )))
        }
    };
    // Only non-finite *extremes* are the data's fault. A finite span
    // that overflows f64 (e.g. -1e308..1e308) stays on `resolve`'s
    // conservative MIN_POSITIVE fallback — effectively verbatim storage.
    if matches!(scaled, ErrorBound::Rel(_)) && !(min.is_finite() && max.is_finite()) {
        return Err(TacError::NonFinite(format!(
            "relative error bound cannot resolve against the non-finite \
             value range ({min}, {max})"
        )));
    }
    Ok(scaled.resolve(min, max)?)
}

/// [`resolve_level_eb`] with a narrowing check for the target element
/// type: a bound that is positive in `f64` working precision but rounds
/// to zero at `dtype` (e.g. a relative bound over a tiny dynamic range,
/// resolved for `f32`) would make the quantizer step degenerate — every
/// value would quantize to the same bin and the bound silently could not
/// hold. Such bounds are a [`TacError::DegenerateBound`] instead.
pub fn resolve_level_eb_for(
    dtype: TacDtype,
    eb: ErrorBound,
    scale: f64,
    range: Option<(f64, f64)>,
) -> Result<f64, TacError> {
    let abs_eb = resolve_level_eb(eb, scale, range)?;
    let degenerate = dispatch_dtype!(dtype, T => {
        abs_eb > 0.0 && T::from_f64(abs_eb).to_f64() == 0.0
    });
    if degenerate {
        return Err(TacError::DegenerateBound {
            abs_eb,
            dtype: dtype.label(),
        });
    }
    Ok(abs_eb)
}

/// Error bound recorded for a level with no payload (nothing was
/// quantized, so no bound applies).
const EMPTY_LEVEL_EB: f64 = 0.0;

/// Compresses a single AMR level with an explicit strategy and resolved
/// absolute error bound. Runs on the block-sharded engine: the level's
/// region groups compress concurrently under `cfg.parallelism`, and the
/// output is byte-identical for every worker count.
pub fn compress_level(
    level: &AmrLevel,
    strategy: Strategy,
    abs_eb: f64,
    cfg: &TacConfig,
) -> Result<CompressedLevel, TacError> {
    compress_level_t(level, strategy, abs_eb, cfg)
}

/// Element-generic [`compress_level`]. The element type is recorded in
/// the returned level, so it round-trips through every wire format.
pub fn compress_level_t<T: CodecElement>(
    level: &AmrLevel<T>,
    strategy: Strategy,
    abs_eb: f64,
    cfg: &TacConfig,
) -> Result<CompressedLevel, TacError> {
    cfg.validate()?;
    let plans = vec![engine::plan_level(level, strategy, abs_eb, cfg)?];
    let mut levels =
        engine::compress_plans(&plans, &[level.data()], cfg, cfg.parallelism.workers())?;
    Ok(levels.pop().expect("one planned level"))
}

/// Decompresses a level payload and applies the occupancy mask: absent
/// cells are zeroed (discarding GSP padding and region zeros alike).
pub fn decompress_level(cl: &CompressedLevel, mask: &BitMask) -> Result<AmrLevel, TacError> {
    decompress_level_t::<f64>(cl, mask)
}

/// Element-generic [`decompress_level`]. A payload whose recorded
/// element type disagrees with `T` is rejected up front with
/// [`CodecError::WrongDtype`] instead of being misinterpreted.
pub fn decompress_level_t<T: CodecElement>(
    cl: &CompressedLevel,
    mask: &BitMask,
) -> Result<AmrLevel<T>, TacError> {
    if cl.dtype != T::DTYPE {
        return Err(TacError::Codec(CodecError::WrongDtype {
            stream: cl.dtype.label(),
            requested: T::DTYPE.label(),
        }));
    }
    let dim = cl.dim;
    let n = dim
        .checked_mul(dim)
        .and_then(|s| s.checked_mul(dim))
        .ok_or_else(|| TacError::Corrupt(format!("level dim {dim} overflows dim^3")))?;
    if mask.len() != n {
        return Err(TacError::Corrupt(format!(
            "mask has {} bits for a {dim}^3 level",
            mask.len()
        )));
    }
    let mut data = match &cl.payload {
        LevelPayload::Empty => vec![T::ZERO; n],
        LevelPayload::Whole(stream) => {
            let (values, dims) = T::codec_decompress(codec_for(cl.codec), stream)?;
            if dims != Dims::D3(dim, dim, dim) {
                return Err(TacError::Corrupt(format!(
                    "whole-grid stream dims {dims:?} for a {dim}^3 level"
                )));
            }
            values
        }
        LevelPayload::Groups(groups) => decompress_groups::<T>(groups, dim, cl.codec)?,
    };
    for (i, v) in data.iter_mut().enumerate() {
        if !mask.get(i) {
            *v = T::ZERO;
        }
    }
    Ok(AmrLevel::new(dim, data, mask.clone()))
}

/// Implements the paper's Sec. 4.4 top-level selector: TAC when the
/// finest level is sparse, the 3D baseline when it is dense (>= `t2`).
pub fn select_method<T: Element>(ds: &AmrDataset<T>, cfg: &TacConfig) -> Method {
    if cfg.adaptive_3d_switch && ds.finest_density() >= cfg.t2 {
        Method::Baseline3D
    } else {
        Method::Tac
    }
}

/// Compresses a dataset with the given method.
pub fn compress_dataset(
    ds: &AmrDataset,
    cfg: &TacConfig,
    method: Method,
) -> Result<CompressedDataset, TacError> {
    compress_dataset_t(ds, cfg, method)
}

/// [`compress_dataset`] for `f32` data. The container records the
/// element type and serializes as a v4 stream.
pub fn compress_dataset_f32(
    ds: &AmrDataset<f32>,
    cfg: &TacConfig,
    method: Method,
) -> Result<CompressedDataset, TacError> {
    compress_dataset_t(ds, cfg, method)
}

/// Element-generic compression pipeline behind [`compress_dataset`].
/// Monomorphized once per element type: the hot quantize/predict loops
/// carry no per-value dtype branches.
pub fn compress_dataset_t<T: CodecElement>(
    ds: &AmrDataset<T>,
    cfg: &TacConfig,
    method: Method,
) -> Result<CompressedDataset, TacError> {
    cfg.validate()?;
    let _compress = tac_obs::span(tac_obs::Stage::Compress).arg("levels", ds.num_levels());
    let masks: Vec<BitMask> = ds.levels().iter().map(|l| l.mask().clone()).collect();
    let workers = cfg.parallelism.workers();
    let body = match method {
        Method::Tac => {
            // Plan every level serially (cheap partition planning), then
            // run all per-level / per-region compression tasks on the
            // work-stealing scheduler in one flattened batch.
            let mut plans = Vec::with_capacity(ds.num_levels());
            {
                let _plan = tac_obs::span(tac_obs::Stage::Plan);
                for (l, level) in ds.levels().iter().enumerate() {
                    let strategy = choose_strategy(level, cfg);
                    // An empty level compresses nothing, so no bound needs
                    // to resolve (a relative bound could not: there is no
                    // range).
                    let abs_eb = if strategy == Strategy::Empty {
                        EMPTY_LEVEL_EB
                    } else {
                        resolve_level_eb_for(
                            T::DTYPE,
                            cfg.error_bound,
                            cfg.level_scale(l),
                            level.value_range(),
                        )?
                    };
                    plans.push(engine::plan_level(level, strategy, abs_eb, cfg)?);
                }
            }
            let level_data: Vec<&[T]> = ds.levels().iter().map(|l| l.data()).collect();
            MethodBody::Tac(engine::compress_plans(&plans, &level_data, cfg, workers)?)
        }
        Method::Baseline1D => {
            // One 1D compression task per non-empty level. Tasks borrow
            // their level and gather present values inside the closure,
            // so at most `workers` gathered copies are alive at once.
            let mut jobs: Vec<Option<(f64, &AmrLevel<T>)>> = Vec::with_capacity(ds.num_levels());
            for (l, level) in ds.levels().iter().enumerate() {
                if level.num_present() == 0 {
                    jobs.push(None);
                    continue;
                }
                let abs_eb = resolve_level_eb_for(
                    T::DTYPE,
                    cfg.error_bound,
                    cfg.level_scale(l),
                    level.value_range(),
                )?;
                jobs.push(Some((abs_eb, level)));
            }
            let levels = tac_par::execute(
                workers,
                &jobs,
                |j| j.as_ref().map_or(0, |(_, lvl)| lvl.num_present() as u64),
                |j| -> Result<Option<Baseline1DLevel>, TacError> {
                    match j {
                        None => Ok(None),
                        Some((abs_eb, level)) => {
                            let _encode =
                                tac_obs::span(tac_obs::Stage::Encode).arg("codec", cfg.codec.tag());
                            let values = level.present_values();
                            let stream = T::codec_compress(
                                codec_for(cfg.codec),
                                &values,
                                Dims::D1(values.len()),
                                &cfg.codec_config(*abs_eb),
                            )?;
                            tac_obs::add(tac_obs::Counter::ChunksEncoded, 1);
                            tac_obs::add_bytes(tac_obs::Counter::PayloadBytesOut, stream.len());
                            Ok(Some((*abs_eb, cfg.codec, stream)))
                        }
                    }
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            MethodBody::Baseline1D(levels)
        }
        Method::ZMesh => {
            let mask_refs: Vec<&BitMask> = masks.iter().collect();
            let order = zmesh_order(&mask_refs, ds.finest_dim());
            let data_refs: Vec<&[T]> = ds.levels().iter().map(|l| l.data()).collect();
            let values = gather(&order, &data_refs);
            if values.is_empty() {
                return Err(TacError::InvalidDataset(
                    "dataset has no present cells".into(),
                ));
            }
            let (min, max) = values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v.to_f64()), hi.max(v.to_f64()))
                });
            let abs_eb = resolve_level_eb_for(T::DTYPE, cfg.error_bound, 1.0, Some((min, max)))?;
            let stream = {
                let _encode = tac_obs::span(tac_obs::Stage::Encode).arg("codec", cfg.codec.tag());
                T::codec_compress(
                    codec_for(cfg.codec),
                    &values,
                    Dims::D1(values.len()),
                    &cfg.codec_config(abs_eb),
                )?
            };
            tac_obs::add(tac_obs::Counter::ChunksEncoded, 1);
            tac_obs::add_bytes(tac_obs::Counter::PayloadBytesOut, stream.len());
            MethodBody::ZMesh {
                abs_eb,
                codec: cfg.codec,
                stream,
            }
        }
        Method::Auto => {
            // TAC+-style adaptive selection: score every fixed
            // `(method, codec)` candidate (and, for TAC, every per-level
            // codec) and compress with the winner. The selection pass is
            // serial and deterministic, so Auto output stays
            // byte-identical across worker counts like every fixed path.
            let selection = crate::select::select_auto(ds, cfg)?;
            if selection.method == Method::Tac {
                // Re-plan the levels and overwrite each plan's codec
                // with the selected per-level winner before execution.
                let mut plans = Vec::with_capacity(ds.num_levels());
                {
                    let _plan = tac_obs::span(tac_obs::Stage::Plan);
                    for (l, level) in ds.levels().iter().enumerate() {
                        let strategy = choose_strategy(level, cfg);
                        let abs_eb = if strategy == Strategy::Empty {
                            EMPTY_LEVEL_EB
                        } else {
                            resolve_level_eb_for(
                                T::DTYPE,
                                cfg.error_bound,
                                cfg.level_scale(l),
                                level.value_range(),
                            )?
                        };
                        let mut plan = engine::plan_level(level, strategy, abs_eb, cfg)?;
                        if let Some(&codec) = selection.level_codecs.get(l) {
                            plan.codec = codec;
                        }
                        plans.push(plan);
                    }
                }
                let level_data: Vec<&[T]> = ds.levels().iter().map(|l| l.data()).collect();
                MethodBody::Tac(engine::compress_plans(&plans, &level_data, cfg, workers)?)
            } else {
                // A single-codec winner: rerun the fixed pipeline with
                // the selected codec. The recursion terminates because
                // the selection never returns `Method::Auto`.
                let winner_cfg = TacConfig {
                    codec: selection.codec,
                    ..cfg.clone()
                };
                return compress_dataset_t(ds, &winner_cfg, selection.method);
            }
        }
        Method::Baseline3D => {
            let uniform = to_uniform(ds);
            let n = ds.finest_dim();
            let (min, max) = uniform
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v.to_f64()), hi.max(v.to_f64()))
                });
            let abs_eb = resolve_level_eb_for(T::DTYPE, cfg.error_bound, 1.0, Some((min, max)))?;
            let stream = {
                let _encode = tac_obs::span(tac_obs::Stage::Encode).arg("codec", cfg.codec.tag());
                T::codec_compress(
                    codec_for(cfg.codec),
                    &uniform,
                    Dims::D3(n, n, n),
                    &cfg.codec_config(abs_eb),
                )?
            };
            tac_obs::add(tac_obs::Counter::ChunksEncoded, 1);
            tac_obs::add_bytes(tac_obs::Counter::PayloadBytesOut, stream.len());
            MethodBody::Baseline3D {
                abs_eb,
                codec: cfg.codec,
                stream,
            }
        }
    };
    Ok(CompressedDataset {
        name: ds.name().to_string(),
        finest_dim: ds.finest_dim(),
        dtype: T::DTYPE,
        masks,
        body,
    })
}

/// Decompresses a container back into an AMR dataset (serial engine).
pub fn decompress_dataset(cd: &CompressedDataset) -> Result<AmrDataset, TacError> {
    decompress_dataset_par(cd, Parallelism::Serial)
}

/// Decompresses a container on the block-sharded engine: every level's
/// streams and region groups decode as independent work-stealing tasks.
/// The reconstruction is identical for every worker count.
pub fn decompress_dataset_par(
    cd: &CompressedDataset,
    parallelism: Parallelism,
) -> Result<AmrDataset, TacError> {
    decompress_dataset_par_t::<f64>(cd, parallelism)
}

/// [`decompress_dataset`] for `f32` containers (serial engine).
pub fn decompress_dataset_f32(cd: &CompressedDataset) -> Result<AmrDataset<f32>, TacError> {
    decompress_dataset_par_t::<f32>(cd, Parallelism::Serial)
}

/// Element-generic [`decompress_dataset`] (serial engine).
pub fn decompress_dataset_t<T: CodecElement>(
    cd: &CompressedDataset,
) -> Result<AmrDataset<T>, TacError> {
    decompress_dataset_par_t::<T>(cd, Parallelism::Serial)
}

/// A decompressed dataset of whichever element type the container
/// declared — the dtype-sniffing decode path for callers that handle
/// containers of unknown provenance.
#[derive(Debug, Clone)]
pub enum AnyDataset {
    /// The container held `f64` data.
    F64(AmrDataset),
    /// The container held `f32` data.
    F32(AmrDataset<f32>),
}

impl AnyDataset {
    /// The element type of the decoded data.
    pub fn dtype(&self) -> TacDtype {
        match self {
            AnyDataset::F64(_) => TacDtype::F64,
            AnyDataset::F32(_) => TacDtype::F32,
        }
    }

    /// Number of AMR levels, whatever the element type.
    pub fn num_levels(&self) -> usize {
        match self {
            AnyDataset::F64(ds) => ds.num_levels(),
            AnyDataset::F32(ds) => ds.num_levels(),
        }
    }
}

/// Decompresses a container of either element type, dispatching on the
/// dtype it declares (serial engine).
pub fn decompress_dataset_any(cd: &CompressedDataset) -> Result<AnyDataset, TacError> {
    match cd.dtype {
        TacDtype::F64 => decompress_dataset_t::<f64>(cd).map(AnyDataset::F64),
        TacDtype::F32 => decompress_dataset_t::<f32>(cd).map(AnyDataset::F32),
    }
}

/// Element-generic [`decompress_dataset_par`]. A container whose
/// declared element type disagrees with `T` is rejected up front with
/// [`CodecError::WrongDtype`].
pub fn decompress_dataset_par_t<T: CodecElement>(
    cd: &CompressedDataset,
    parallelism: Parallelism,
) -> Result<AmrDataset<T>, TacError> {
    if cd.dtype != T::DTYPE {
        return Err(TacError::Codec(CodecError::WrongDtype {
            stream: cd.dtype.label(),
            requested: T::DTYPE.label(),
        }));
    }
    let _decompress = tac_obs::span(tac_obs::Stage::Decompress).arg("levels", cd.masks.len());
    let workers = parallelism.workers();
    let finest_dim = cd.finest_dim;
    let levels: Vec<AmrLevel<T>> = match &cd.body {
        MethodBody::Tac(compressed) => {
            if compressed.len() != cd.masks.len() {
                return Err(TacError::Corrupt(format!(
                    "{} compressed levels for {} masks",
                    compressed.len(),
                    cd.masks.len()
                )));
            }
            engine::decompress_tac_levels(compressed, &cd.masks, workers)?
        }
        MethodBody::Baseline1D(streams) => {
            if streams.len() != cd.masks.len() {
                return Err(TacError::Corrupt("level count mismatch".into()));
            }
            type Job<'a> = (usize, &'a Option<Baseline1DLevel>, &'a BitMask);
            let jobs: Vec<Job<'_>> = streams
                .iter()
                .zip(&cd.masks)
                .enumerate()
                .map(|(l, (entry, mask))| (l, entry, mask))
                .collect();
            tac_par::execute(
                workers,
                &jobs,
                |(l, _, _)| {
                    let dim = finest_dim >> l;
                    (dim * dim * dim) as u64
                },
                |&(l, entry, mask)| -> Result<AmrLevel<T>, TacError> {
                    let dim = finest_dim >> l;
                    let mut data = vec![T::ZERO; dim * dim * dim];
                    if let Some((_, codec, stream)) = entry {
                        let _decode =
                            tac_obs::span(tac_obs::Stage::Decode).arg("codec", codec.tag());
                        tac_obs::add(tac_obs::Counter::ChunksDecoded, 1);
                        tac_obs::add_bytes(tac_obs::Counter::PayloadBytesIn, stream.len());
                        let (values, dims) = T::codec_decompress(codec_for(*codec), stream)?;
                        if dims != Dims::D1(mask.count_ones()) {
                            return Err(TacError::Corrupt(format!(
                                "level {l}: stream holds {dims:?}, mask has {} cells",
                                mask.count_ones()
                            )));
                        }
                        for (slot, v) in mask.iter_ones().zip(values) {
                            data[slot] = v;
                        }
                    } else if mask.count_ones() != 0 {
                        return Err(TacError::Corrupt(format!(
                            "level {l} marked empty but mask has {} cells",
                            mask.count_ones()
                        )));
                    }
                    Ok(AmrLevel::new(dim, data, mask.clone()))
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
        }
        MethodBody::ZMesh { stream, codec, .. } => {
            let mask_refs: Vec<&BitMask> = cd.masks.iter().collect();
            let order = zmesh_order(&mask_refs, finest_dim);
            tac_obs::add(tac_obs::Counter::ChunksDecoded, 1);
            tac_obs::add_bytes(tac_obs::Counter::PayloadBytesIn, stream.len());
            let (values, dims) = {
                let _decode = tac_obs::span(tac_obs::Stage::Decode).arg("codec", codec.tag());
                T::codec_decompress(codec_for(*codec), stream)?
            };
            if dims != Dims::D1(order.len()) {
                return Err(TacError::Corrupt(format!(
                    "zMesh stream holds {dims:?}, traversal has {} cells",
                    order.len()
                )));
            }
            let mut bufs: Vec<Vec<T>> = cd
                .masks
                .iter()
                .enumerate()
                .map(|(l, _)| {
                    let dim = finest_dim >> l;
                    vec![T::ZERO; dim * dim * dim]
                })
                .collect();
            scatter(&order, &values, &mut bufs);
            bufs.into_iter()
                .zip(&cd.masks)
                .enumerate()
                .map(|(l, (data, mask))| AmrLevel::new(finest_dim >> l, data, mask.clone()))
                .collect()
        }
        MethodBody::Baseline3D { stream, codec, .. } => {
            let n = finest_dim;
            tac_obs::add(tac_obs::Counter::ChunksDecoded, 1);
            tac_obs::add_bytes(tac_obs::Counter::PayloadBytesIn, stream.len());
            let (uniform, dims) = {
                let _decode = tac_obs::span(tac_obs::Stage::Decode).arg("codec", codec.tag());
                T::codec_decompress(codec_for(*codec), stream)?
            };
            if dims != Dims::D3(n, n, n) {
                return Err(TacError::Corrupt(format!(
                    "3D baseline stream dims {dims:?} for finest dim {n}"
                )));
            }
            cd.masks
                .iter()
                .enumerate()
                .map(|(l, mask)| {
                    let dim = n >> l;
                    let scale = 1usize << l;
                    let mut data = vec![T::ZERO; dim * dim * dim];
                    for idx in mask.iter_ones() {
                        let x = idx % dim;
                        let y = (idx / dim) % dim;
                        let z = idx / (dim * dim);
                        // Sample the first covered fine position (exact
                        // inverse of piecewise-constant up-sampling).
                        data[idx] = uniform[x * scale + n * (y * scale + n * (z * scale))];
                    }
                    AmrLevel::new(dim, data, mask.clone())
                })
                .collect()
        }
    };
    Ok(AmrDataset::new(cd.name.clone(), levels))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a two-level dataset with a blobby fine region (~30% fine
    /// density) and smooth values.
    fn blobby_dataset(fine_dim: usize) -> AmrDataset {
        let coarse_dim = fine_dim / 2;
        let mut fine = AmrLevel::empty(fine_dim);
        let mut coarse = AmrLevel::empty(coarse_dim);
        let c = fine_dim as f64 / 2.0;
        for z in 0..coarse_dim {
            for y in 0..coarse_dim {
                for x in 0..coarse_dim {
                    let (fx, fy, fz) = (2 * x, 2 * y, 2 * z);
                    let dist = ((fx as f64 - c).powi(2)
                        + (fy as f64 - c).powi(2)
                        + (fz as f64 - c).powi(2))
                    .sqrt();
                    if dist < fine_dim as f64 * 0.33 {
                        for dz in 0..2 {
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let (px, py, pz) = (fx + dx, fy + dy, fz + dz);
                                    let v = ((px as f64) * 0.3).sin()
                                        + ((py as f64) * 0.2).cos()
                                        + pz as f64 * 0.05
                                        + 5.0;
                                    fine.set_value(px, py, pz, v);
                                }
                            }
                        }
                    } else {
                        let v = ((x as f64) * 0.3).sin() + y as f64 * 0.01 + 3.0;
                        coarse.set_value(x, y, z, v);
                    }
                }
            }
        }
        let ds = AmrDataset::new("blobby", vec![fine, coarse]);
        ds.validate().unwrap();
        ds
    }

    fn check_level_bound(orig: &AmrLevel, recon: &AmrLevel, eb: f64) {
        assert_eq!(orig.dim(), recon.dim());
        for i in orig.mask().iter_ones() {
            let (a, b) = (orig.data()[i], recon.data()[i]);
            assert!((a - b).abs() <= eb * (1.0 + 1e-9), "cell {i}: {a} vs {b}");
        }
        // Absent cells reconstruct to exactly zero.
        for i in 0..orig.num_cells() {
            if !orig.mask().get(i) {
                assert_eq!(recon.data()[i], 0.0);
            }
        }
    }

    #[test]
    fn every_strategy_roundtrips_a_level() {
        let ds = blobby_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            parallelism: Parallelism::Threads(2),
            ..Default::default()
        };
        let eb = 1e-3;
        for strategy in [
            Strategy::ZeroFill,
            Strategy::NaST,
            Strategy::OpST,
            Strategy::AkdTree,
            Strategy::Gsp,
        ] {
            for level in ds.levels() {
                let cl = compress_level(level, strategy, eb, &cfg).unwrap();
                let out = decompress_level(&cl, level.mask()).unwrap();
                check_level_bound(level, &out, eb);
            }
        }
    }

    #[test]
    fn empty_level_roundtrips() {
        let level = AmrLevel::empty(8);
        let cfg = TacConfig::default();
        let cl = compress_level(&level, Strategy::Empty, 1.0, &cfg).unwrap();
        assert_eq!(cl.payload, LevelPayload::Empty);
        let out = decompress_level(&cl, level.mask()).unwrap();
        assert_eq!(out.num_present(), 0);
    }

    #[test]
    fn dataset_roundtrip_all_methods_and_codecs() {
        let ds = blobby_dataset(16);
        for codec in tac_codec::CodecId::all() {
            let cfg = TacConfig {
                unit: 4,
                error_bound: ErrorBound::Abs(1e-3),
                parallelism: Parallelism::Threads(2),
                codec,
                ..Default::default()
            };
            for method in [
                Method::Tac,
                Method::Baseline1D,
                Method::ZMesh,
                Method::Baseline3D,
            ] {
                let cd = compress_dataset(&ds, &cfg, method).unwrap();
                assert_eq!(cd.method(), method);
                for bytes in [cd.to_bytes(), cd.to_bytes_v1()] {
                    let parsed = CompressedDataset::from_bytes(&bytes).unwrap();
                    assert_eq!(parsed, cd, "{method:?}/{codec} reparse");
                    let out = decompress_dataset(&parsed).unwrap();
                    assert_eq!(out.num_levels(), ds.num_levels());
                    for (a, b) in ds.levels().iter().zip(out.levels()) {
                        check_level_bound(a, b, 1e-3);
                    }
                }
            }
        }
    }

    #[test]
    fn rel_bound_cannot_resolve_without_a_range() {
        // The historic bug: Rel + range None silently resolved against
        // (0.0, 0.0) and produced a degenerate bound. It must error now.
        let err = resolve_level_eb(ErrorBound::Rel(1e-3), 1.0, None).unwrap_err();
        assert!(matches!(err, TacError::InvalidDataset(_)), "{err}");
        // Absolute bounds never read the range.
        assert_eq!(
            resolve_level_eb(ErrorBound::Abs(0.5), 2.0, None).unwrap(),
            1.0
        );
    }

    #[test]
    fn empty_level_compresses_under_a_relative_bound() {
        // A dataset with an all-empty coarsest level must still compress
        // with Rel bounds: the Empty strategy skips bound resolution.
        let fine = AmrLevel::dense(8, (0..512).map(|i| i as f64).collect());
        let empty = AmrLevel::empty(4);
        let ds = AmrDataset::new("with-empty", vec![fine, empty]);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Rel(1e-3),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        if let MethodBody::Tac(levels) = &cd.body {
            assert_eq!(levels[1].strategy, Strategy::Empty);
            assert_eq!(levels[1].abs_eb, EMPTY_LEVEL_EB);
        } else {
            panic!("expected TAC body");
        }
        let out = decompress_dataset(&cd).unwrap();
        assert_eq!(out.levels()[1].num_present(), 0);
    }

    #[test]
    fn tac_picks_strategies_by_density() {
        let ds = blobby_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let strategies = cd.strategies().unwrap();
        // Fine level ~25% dense -> OpST; coarse level ~75% -> GSP.
        assert_eq!(
            strategies[0],
            Strategy::OpST,
            "fine density {}",
            ds.densities()[0]
        );
        assert_eq!(
            strategies[1],
            Strategy::Gsp,
            "coarse density {}",
            ds.densities()[1]
        );
    }

    #[test]
    fn per_level_error_bounds_scale() {
        let ds = blobby_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            level_eb_scale: vec![3.0, 1.0],
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        if let MethodBody::Tac(levels) = &cd.body {
            assert!((levels[0].abs_eb - 3e-3).abs() < 1e-12);
            assert!((levels[1].abs_eb - 1e-3).abs() < 1e-12);
        } else {
            panic!("expected TAC body");
        }
        // Bounds hold per level.
        let out = decompress_dataset(&cd).unwrap();
        check_level_bound(&ds.levels()[0], &out.levels()[0], 3e-3);
        check_level_bound(&ds.levels()[1], &out.levels()[1], 1e-3);
    }

    #[test]
    fn adaptive_switch_selects_3d_for_dense_finest() {
        let fine = AmrLevel::dense(8, vec![1.0; 512]);
        let ds = AmrDataset::new("dense", vec![fine]);
        let cfg = TacConfig::default().with_adaptive_3d_switch();
        assert_eq!(select_method(&ds, &cfg), Method::Baseline3D);
        let sparse = blobby_dataset(16);
        assert_eq!(select_method(&sparse, &cfg), Method::Tac);
        // Switch off: always TAC.
        let cfg_off = TacConfig::default();
        assert_eq!(select_method(&ds, &cfg_off), Method::Tac);
    }

    #[test]
    fn relative_bounds_resolve_per_level() {
        let ds = blobby_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Rel(1e-3),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        if let MethodBody::Tac(levels) = &cd.body {
            for (cl, lvl) in levels.iter().zip(ds.levels()) {
                let (min, max) = lvl.value_range().unwrap();
                assert!((cl.abs_eb - 1e-3 * (max - min)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn opst_beats_nast_on_sparse_data() {
        // Fig. 7's claim: merging unit blocks into maximal cubes (OpST)
        // costs no more than shipping every unit block separately (NaST) —
        // fewer origins, fewer boundary cells.
        let ds = blobby_dataset(32);
        let fine = &ds.levels()[0];
        let cfg = TacConfig {
            unit: 4,
            ..Default::default()
        };
        let eb = 1e-3;
        let nast = compress_level(fine, Strategy::NaST, eb, &cfg).unwrap();
        let opst = compress_level(fine, Strategy::OpST, eb, &cfg).unwrap();
        assert!(
            opst.total_bytes() <= nast.total_bytes(),
            "OpST {} vs NaST {}",
            opst.total_bytes(),
            nast.total_bytes()
        );
        // And OpST extracts strictly fewer regions.
        let count = |cl: &CompressedLevel| match &cl.payload {
            LevelPayload::Groups(gs) => gs.iter().map(|g| g.origins.len()).sum::<usize>(),
            _ => 0,
        };
        assert!(count(&opst) < count(&nast));
    }

    /// [`blobby_dataset`] narrowed to `f32` (all its values are exactly
    /// representable well within `f32` precision at the bounds we test).
    fn blobby_dataset_f32(fine_dim: usize) -> AmrDataset<f32> {
        let ds = blobby_dataset(fine_dim);
        let levels = ds
            .levels()
            .iter()
            .map(|l| {
                let data: Vec<f32> = l.data().iter().map(|&v| v as f32).collect();
                AmrLevel::new(l.dim(), data, l.mask().clone())
            })
            .collect();
        AmrDataset::new("blobby32", levels)
    }

    #[test]
    fn f32_dataset_roundtrip_all_methods_and_codecs() {
        let ds = blobby_dataset_f32(16);
        let eb = 1e-3f32;
        for codec in tac_codec::CodecId::all() {
            let cfg = TacConfig {
                unit: 4,
                error_bound: ErrorBound::Abs(1e-3),
                parallelism: Parallelism::Threads(2),
                codec,
                ..Default::default()
            };
            for method in [
                Method::Tac,
                Method::Baseline1D,
                Method::ZMesh,
                Method::Baseline3D,
            ] {
                let cd = compress_dataset_f32(&ds, &cfg, method).unwrap();
                assert_eq!(cd.dtype, TacDtype::F32);
                for bytes in [cd.to_bytes(), cd.to_bytes_v1()] {
                    let parsed = CompressedDataset::from_bytes(&bytes).unwrap();
                    assert_eq!(parsed, cd, "{method:?}/{codec} reparse");
                    let out = decompress_dataset_f32(&parsed).unwrap();
                    assert_eq!(out.num_levels(), ds.num_levels());
                    for (a, b) in ds.levels().iter().zip(out.levels()) {
                        for i in a.mask().iter_ones() {
                            let (x, y) = (a.data()[i], b.data()[i]);
                            assert!(
                                (x - y).abs() <= eb * (1.0 + 1e-5),
                                "{method:?}/{codec} cell {i}: {x} vs {y}"
                            );
                        }
                        for i in 0..a.num_cells() {
                            if !a.mask().get(i) {
                                assert_eq!(b.data()[i], 0.0);
                            }
                        }
                    }
                    // Decoding at the wrong width must be refused, not
                    // misinterpreted.
                    assert!(matches!(
                        decompress_dataset(&parsed),
                        Err(TacError::Codec(CodecError::WrongDtype { .. }))
                    ));
                    // The sniffing path picks the declared element type.
                    let any = decompress_dataset_any(&parsed).unwrap();
                    assert_eq!(any.dtype(), TacDtype::F32);
                    assert_eq!(any.num_levels(), ds.num_levels());
                }
            }
        }
    }

    #[test]
    fn f64_containers_refuse_f32_decode() {
        let ds = blobby_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        assert!(matches!(
            decompress_dataset_f32(&cd),
            Err(TacError::Codec(CodecError::WrongDtype { .. }))
        ));
        assert_eq!(decompress_dataset_any(&cd).unwrap().dtype(), TacDtype::F64);
    }

    #[test]
    fn f32_relative_bound_over_tiny_range_is_degenerate() {
        // Range 1e-30 wide at rel 1e-16 resolves to abs 1e-46: positive
        // in f64 working precision, but below f32's smallest subnormal —
        // the quantizer step would be zero and the bound a lie.
        let tiny = Some((0.0, 1e-30));
        let err =
            resolve_level_eb_for(TacDtype::F32, ErrorBound::Rel(1e-16), 1.0, tiny).unwrap_err();
        assert!(matches!(err, TacError::DegenerateBound { .. }), "{err}");
        assert!(err.to_string().contains("underflows f32"), "{err}");
        // The same bound is representable at f64...
        assert!(
            resolve_level_eb_for(TacDtype::F64, ErrorBound::Rel(1e-16), 1.0, tiny).unwrap() > 0.0
        );
        // ...and an ordinary bound is fine at f32.
        assert_eq!(
            resolve_level_eb_for(TacDtype::F32, ErrorBound::Abs(0.5), 2.0, None).unwrap(),
            1.0
        );
    }

    #[test]
    fn auto_roundtrips_and_reports_a_concrete_method() {
        let ds = blobby_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            parallelism: Parallelism::Threads(2),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Auto).unwrap();
        assert_ne!(cd.method(), Method::Auto, "Auto never hits the wire");
        for bytes in [cd.to_bytes(), cd.to_bytes_v1()] {
            let parsed = CompressedDataset::from_bytes(&bytes).unwrap();
            assert_eq!(parsed, cd);
            let out = decompress_dataset(&parsed).unwrap();
            for (a, b) in ds.levels().iter().zip(out.levels()) {
                check_level_bound(a, b, 1e-3);
            }
        }
        // Selection is deterministic and serial: Auto output is
        // byte-identical for every worker count.
        let reference = cd.to_bytes();
        for workers in [1usize, 2, 4, 8] {
            let cfg_w = TacConfig {
                parallelism: Parallelism::Threads(workers),
                ..cfg.clone()
            };
            let cd_w = compress_dataset(&ds, &cfg_w, Method::Auto).unwrap();
            assert_eq!(cd_w.to_bytes(), reference, "{workers} workers");
        }
    }

    #[test]
    fn f32_auto_roundtrips_through_the_v4_wire() {
        let ds = blobby_dataset_f32(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            ..Default::default()
        };
        let cd = compress_dataset_f32(&ds, &cfg, Method::Auto).unwrap();
        assert_eq!(cd.dtype, TacDtype::F32);
        assert_ne!(cd.method(), Method::Auto);
        let parsed = CompressedDataset::from_bytes(&cd.to_bytes()).unwrap();
        let out = decompress_dataset_f32(&parsed).unwrap();
        for (a, b) in ds.levels().iter().zip(out.levels()) {
            for i in a.mask().iter_ones() {
                let (x, y) = (a.data()[i], b.data()[i]);
                assert!((x - y).abs() <= 1e-3 * (1.0 + 1e-5), "cell {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn auto_on_an_empty_dataset_stores_nothing() {
        // Degenerate input: every level empty. zMesh cannot compress it;
        // the selection must fall back to a method that can.
        let ds = AmrDataset::new("void", vec![AmrLevel::empty(8), AmrLevel::empty(4)]);
        let cfg = TacConfig::default();
        let cd = compress_dataset(&ds, &cfg, Method::Auto).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        assert!(out.levels().iter().all(|l| l.num_present() == 0));
    }

    #[test]
    fn f32_pipeline_rejects_underflowing_relative_bounds() {
        // Values spanning ~5e-31: an f32-representable range whose
        // resolved rel-1e-16 bound underflows f32.
        let data: Vec<f32> = (0..512).map(|i| (i as f32) * 1e-33).collect();
        let ds = AmrDataset::new("tiny-range", vec![AmrLevel::dense(8, data)]);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Rel(1e-16),
            ..Default::default()
        };
        let err = compress_dataset_f32(&ds, &cfg, Method::Tac).unwrap_err();
        assert!(matches!(err, TacError::DegenerateBound { .. }), "{err}");
        // The identical f64 dataset compresses fine.
        let data64: Vec<f64> = (0..512).map(|i| (i as f64) * 1e-33).collect();
        let ds64 = AmrDataset::new("tiny-range", vec![AmrLevel::dense(8, data64)]);
        compress_dataset(&ds64, &cfg, Method::Tac).unwrap();
    }
}
