//! zMesh-style geometric reordering (baseline; paper Sec. 2.3.1 and
//! Fig. 16).
//!
//! zMesh places points that map to the same or adjacent geometric
//! coordinates next to each other in one 1D stream across all AMR levels.
//! For tree-based data the natural generalization is a depth-first octree
//! walk: visit every coarsest-level position; where a cell is present,
//! emit it; where it was refined, descend into its 2x2x2 children. This
//! interleaves the levels by geometry exactly as zMesh interleaves
//! patch-based data.
//!
//! The paper's finding — that this *hurts* tree-based data because level
//! transitions inject value jumps the per-level 1D baseline never sees —
//! is reproduced by the `fig16_reorder_demo` harness.

use tac_amr::BitMask;
use tac_dtype::Element;

/// One entry of the traversal: `(level, flat index within that level)`.
pub type ZmeshEntry = (usize, usize);

/// Computes the zMesh traversal order for a level stack described by its
/// occupancy masks (fine to coarse; level `l` has side `finest_dim >> l`).
///
/// Positions covered by no level (invalid datasets) are skipped silently;
/// for valid tree-based AMR the result enumerates every present cell
/// exactly once.
pub fn zmesh_order(masks: &[&BitMask], finest_dim: usize) -> Vec<ZmeshEntry> {
    let levels = masks.len();
    assert!(levels >= 1, "need at least one level");
    let coarsest = levels - 1;
    let cdim = finest_dim >> coarsest;
    let mut out = Vec::new();
    for z in 0..cdim {
        for y in 0..cdim {
            for x in 0..cdim {
                visit(masks, finest_dim, coarsest, x, y, z, &mut out);
            }
        }
    }
    out
}

/// A bounded window of the zMesh traversal: walks the same order as
/// [`zmesh_order`], but starts at the coarse-grid cell with flat
/// row-major index `skip_coarse` and stops once `max_entries` entries
/// are collected. The `Method::Auto` selection pass uses this to
/// trial-encode a contiguous slice of the stream without materializing
/// (or walking) the full traversal.
pub fn zmesh_order_window(
    masks: &[&BitMask],
    finest_dim: usize,
    skip_coarse: usize,
    max_entries: usize,
) -> Vec<ZmeshEntry> {
    let levels = masks.len();
    assert!(levels >= 1, "need at least one level");
    let coarsest = levels - 1;
    let cdim = finest_dim >> coarsest;
    let mut out = Vec::new();
    for c in skip_coarse..cdim * cdim * cdim {
        if out.len() >= max_entries {
            break;
        }
        let x = c % cdim;
        let y = (c / cdim) % cdim;
        let z = c / (cdim * cdim);
        visit(masks, finest_dim, coarsest, x, y, z, &mut out);
    }
    // The last visited subtree may overshoot the cap.
    out.truncate(max_entries);
    out
}

fn visit(
    masks: &[&BitMask],
    finest_dim: usize,
    l: usize,
    x: usize,
    y: usize,
    z: usize,
    out: &mut Vec<ZmeshEntry>,
) {
    let dim = finest_dim >> l;
    let idx = x + dim * (y + dim * z);
    if masks[l].get(idx) {
        out.push((l, idx));
        return;
    }
    if l == 0 {
        return;
    }
    for dz in 0..2 {
        for dy in 0..2 {
            for dx in 0..2 {
                visit(
                    masks,
                    finest_dim,
                    l - 1,
                    2 * x + dx,
                    2 * y + dy,
                    2 * z + dz,
                    out,
                );
            }
        }
    }
}

/// Gathers level data values into a 1D array following `order`.
pub fn gather<T: Element>(order: &[ZmeshEntry], level_data: &[&[T]]) -> Vec<T> {
    order.iter().map(|&(l, idx)| level_data[l][idx]).collect()
}

/// Scatters a 1D array back into per-level dense buffers following
/// `order`.
pub fn scatter<T: Element>(order: &[ZmeshEntry], values: &[T], level_data: &mut [Vec<T>]) {
    assert_eq!(order.len(), values.len(), "order/value length mismatch");
    for (&(l, idx), &v) in order.iter().zip(values) {
        level_data[l][idx] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac_amr::{AmrDataset, AmrLevel};

    /// 4^3 fine / 2^3 coarse: coarse cell (0,0,0) refined, rest coarse.
    fn corner_refined() -> AmrDataset {
        let mut fine = AmrLevel::empty(4);
        for z in 0..2 {
            for y in 0..2 {
                for x in 0..2 {
                    fine.set_value(x, y, z, (x + 10 * y + 100 * z) as f64);
                }
            }
        }
        let mut coarse = AmrLevel::empty(2);
        for z in 0..2 {
            for y in 0..2 {
                for x in 0..2 {
                    if (x, y, z) != (0, 0, 0) {
                        coarse.set_value(x, y, z, -((x + 10 * y + 100 * z) as f64));
                    }
                }
            }
        }
        AmrDataset::new("corner", vec![fine, coarse])
    }

    #[test]
    fn order_enumerates_every_present_cell_once() {
        let ds = corner_refined();
        ds.validate().unwrap();
        let masks: Vec<&BitMask> = ds.levels().iter().map(|l| l.mask()).collect();
        let order = zmesh_order(&masks, 4);
        assert_eq!(order.len(), ds.total_present());
        let mut seen = std::collections::HashSet::new();
        for &e in &order {
            assert!(seen.insert(e), "duplicate entry {e:?}");
        }
    }

    #[test]
    fn refined_children_come_at_the_parents_slot() {
        let ds = corner_refined();
        let masks: Vec<&BitMask> = ds.levels().iter().map(|l| l.mask()).collect();
        let order = zmesh_order(&masks, 4);
        // First coarse position (0,0,0) was refined: traversal starts with
        // its 8 fine children, then proceeds to coarse (1,0,0).
        assert_eq!(order[0], (0, 0));
        assert_eq!(order.iter().filter(|e| e.0 == 0).count(), 8);
        assert_eq!(order[8], (1, 1)); // coarse cell (1,0,0) at flat idx 1
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let ds = corner_refined();
        let masks: Vec<&BitMask> = ds.levels().iter().map(|l| l.mask()).collect();
        let order = zmesh_order(&masks, 4);
        let data: Vec<&[f64]> = ds.levels().iter().map(|l| l.data()).collect();
        let stream = gather(&order, &data);
        let mut bufs: Vec<Vec<f64>> = ds
            .levels()
            .iter()
            .map(|l| vec![0.0; l.num_cells()])
            .collect();
        scatter(&order, &stream, &mut bufs);
        for (lvl, buf) in ds.levels().iter().zip(&bufs) {
            for i in lvl.mask().iter_ones() {
                assert_eq!(buf[i], lvl.data()[i]);
            }
        }
    }

    #[test]
    fn single_level_order_is_row_major_present_cells() {
        let mut lvl = AmrLevel::empty(2);
        lvl.set_value(1, 0, 0, 5.0);
        lvl.set_value(0, 1, 1, 6.0);
        let masks = [lvl.mask()];
        let order = zmesh_order(&masks, 2);
        assert_eq!(order, vec![(0, 1), (0, 6)]);
    }
}
