//! The block-sharded parallel compression engine.
//!
//! TAC's pipeline splits naturally into three phases:
//!
//! 1. **Plan** (serial, cheap): per level, pick the strategy, resolve
//!    the error bound, run the partition planner (OpST / AKDTree / NaST
//!    region extraction, GSP padding), and group regions into
//!    compression jobs. This mirrors TAC+'s observation that the
//!    partitioning stage can be pre-planned before any compression
//!    runs.
//! 2. **Execute** (parallel): flatten every job across every level into
//!    one task list and run it on `tac-par`'s work-stealing scheduler,
//!    weighted by cell count. Each task is an independent scalar-codec
//!    compression (or decompression) of one whole-grid buffer or one
//!    region group, dispatched through the configured
//!    [`tac_codec::ScalarCodec`] backend.
//! 3. **Assemble** (serial, cheap): collect results back into per-level
//!    payloads in plan order.
//!
//! Because tasks are planned before execution and results are keyed by
//! task index, the assembled output is **byte-identical for every
//! worker count** — a serial run and an 8-thread run produce the same
//! container.

use crate::akdtree::plan_akdtree;
use crate::config::{Strategy, TacConfig};
use crate::error::TacError;
use crate::extract::{compress_group, decode_group, paste_group, plan_groups, GroupPlan};
use crate::gsp::pad_ghost_shell;
use crate::nast::plan_nast;
use crate::opst::plan_opst;
use crate::stream::{BlockGroup, CompressedLevel, LevelPayload};
use tac_amr::{AmrLevel, BitMask, BlockGrid};
use tac_codec::{codec_for, CodecConfig, CodecElement, CodecError, CodecId, Dims};
use tac_dtype::Element;

/// Effective unit-block size for a level: the configured unit, clamped
/// down to the level dimension when the level is smaller than one unit.
///
/// # Errors
/// Rejects a degenerate result of zero (dimension-0 level or zero unit)
/// instead of letting `BlockGrid::build` panic downstream.
pub(crate) fn unit_for(dim: usize, unit: usize) -> Result<usize, TacError> {
    let effective = unit.min(dim);
    if effective == 0 {
        return Err(TacError::InvalidConfig(format!(
            "unit block size resolves to 0 (unit {unit}, level dim {dim})"
        )));
    }
    Ok(effective)
}

/// Where a whole-grid compression task reads its input.
#[derive(Debug)]
pub(crate) enum WholeSource<T: Element> {
    /// The level's own flat array (ZeroFill).
    Level,
    /// An owned pre-processed buffer (GSP's padded grid).
    Owned(Vec<T>),
}

/// The planned work for one level.
#[derive(Debug)]
pub(crate) enum LevelWork<T: Element> {
    /// Nothing to compress.
    Empty,
    /// One whole-grid rank-3 stream.
    Whole(WholeSource<T>),
    /// Extracted region groups, each an independent task.
    Groups(Vec<GroupPlan>),
}

/// A fully planned level, ready for the execute phase.
#[derive(Debug)]
pub(crate) struct LevelPlan<T: Element> {
    pub strategy: Strategy,
    pub dim: usize,
    pub abs_eb: f64,
    /// Scalar codec every stream of this level compresses through.
    /// [`plan_level`] seeds it from the config; the `Method::Auto`
    /// selection pass may overwrite it per level before execution.
    pub codec: CodecId,
    pub work: LevelWork<T>,
}

/// Plans one level: partition planning and pre-processing, no
/// compression.
pub(crate) fn plan_level<T: Element>(
    level: &AmrLevel<T>,
    strategy: Strategy,
    abs_eb: f64,
    cfg: &TacConfig,
) -> Result<LevelPlan<T>, TacError> {
    let dim = level.dim();
    let work = match strategy {
        Strategy::Empty => LevelWork::Empty,
        Strategy::ZeroFill => LevelWork::Whole(WholeSource::Level),
        Strategy::Gsp => {
            let grid = BlockGrid::build(level, unit_for(dim, cfg.unit)?);
            let (padded, _) = pad_ghost_shell(level, &grid);
            LevelWork::Whole(WholeSource::Owned(padded))
        }
        Strategy::NaST => {
            let grid = BlockGrid::build(level, unit_for(dim, cfg.unit)?);
            let regions = plan_nast(&grid);
            LevelWork::Groups(plan_groups(&regions, cfg.roi_tile))
        }
        Strategy::OpST => {
            let unit = unit_for(dim, cfg.unit)?;
            let grid = BlockGrid::build(level, unit);
            let regions = plan_opst(&grid).regions(unit);
            LevelWork::Groups(plan_groups(&regions, cfg.roi_tile))
        }
        Strategy::AkdTree => {
            let unit = unit_for(dim, cfg.unit)?;
            let grid = BlockGrid::build(level, unit);
            let regions = plan_akdtree(&grid).regions(unit);
            LevelWork::Groups(plan_groups(&regions, cfg.roi_tile))
        }
    };
    Ok(LevelPlan {
        strategy,
        dim,
        abs_eb,
        codec: cfg.codec,
        work,
    })
}

/// One flattened compression task (borrowing the plan and level data).
struct CompressTask<'a, T: Element> {
    dim: usize,
    codec: CodecId,
    codec_cfg: CodecConfig,
    kind: CompressKind<'a, T>,
}

enum CompressKind<'a, T: Element> {
    Whole(&'a [T]),
    /// A region group plus the flat array of its owning level.
    Group(&'a GroupPlan, &'a [T]),
}

impl<T: Element> CompressTask<'_, T> {
    fn cost(&self) -> u64 {
        match &self.kind {
            CompressKind::Whole(_) => (self.dim * self.dim * self.dim) as u64,
            CompressKind::Group(p, _) => p.num_cells() as u64,
        }
    }
}

enum TaskOut {
    Stream(Vec<u8>),
    Group(BlockGroup),
}

/// Executes the planned levels on `workers` threads and assembles the
/// per-level compressed payloads in plan order. `level_data[i]` is the
/// flat array of the i-th planned level (read by ZeroFill tasks and
/// region-group tasks).
pub(crate) fn compress_plans<T: CodecElement>(
    plans: &[LevelPlan<T>],
    level_data: &[&[T]],
    cfg: &TacConfig,
    workers: usize,
) -> Result<Vec<CompressedLevel>, TacError> {
    assert_eq!(plans.len(), level_data.len());
    // Flatten: tasks are generated level-major, groups in plan order, so
    // task index order is deterministic.
    let mut tasks: Vec<CompressTask<'_, T>> = Vec::new();
    for (plan, &data) in plans.iter().zip(level_data) {
        let codec_cfg = cfg.codec_config(plan.abs_eb);
        match &plan.work {
            LevelWork::Empty => {}
            LevelWork::Whole(source) => tasks.push(CompressTask {
                dim: plan.dim,
                codec: plan.codec,
                codec_cfg,
                kind: CompressKind::Whole(match source {
                    WholeSource::Level => data,
                    WholeSource::Owned(buf) => buf,
                }),
            }),
            LevelWork::Groups(groups) => {
                for g in groups {
                    tasks.push(CompressTask {
                        dim: plan.dim,
                        codec: plan.codec,
                        codec_cfg,
                        kind: CompressKind::Group(g, data),
                    });
                }
            }
        }
    }

    let exec_span = tac_obs::span(tac_obs::Stage::Execute).arg("tasks", tasks.len());
    let results = tac_par::execute(
        workers,
        &tasks,
        CompressTask::cost,
        |t| -> Result<TaskOut, TacError> {
            let _encode = tac_obs::span(tac_obs::Stage::Encode)
                .arg("dim", t.dim)
                .arg("codec", t.codec.tag());
            let out = match &t.kind {
                CompressKind::Whole(data) => {
                    let stream = T::codec_compress(
                        codec_for(t.codec),
                        data,
                        Dims::D3(t.dim, t.dim, t.dim),
                        &t.codec_cfg,
                    )?;
                    TaskOut::Stream(stream)
                }
                CompressKind::Group(plan, data) => {
                    TaskOut::Group(compress_group(data, t.dim, plan, t.codec, &t.codec_cfg)?)
                }
            };
            if tac_obs::enabled() {
                let bytes = match &out {
                    TaskOut::Stream(stream) => stream.len(),
                    TaskOut::Group(group) => group.stream.len(),
                };
                tac_obs::add(tac_obs::Counter::ChunksEncoded, 1);
                tac_obs::add_bytes(tac_obs::Counter::PayloadBytesOut, bytes);
            }
            Ok(out)
        },
    );
    drop(exec_span);

    // Assemble in plan order, consuming results sequentially.
    let _assemble = tac_obs::span(tac_obs::Stage::Assemble);
    let mut out = Vec::with_capacity(plans.len());
    let mut next = results.into_iter();
    for plan in plans {
        let payload = match &plan.work {
            LevelWork::Empty => LevelPayload::Empty,
            LevelWork::Whole(_) => match next.next().expect("missing whole-grid result")? {
                TaskOut::Stream(stream) => LevelPayload::Whole(stream),
                TaskOut::Group(_) => unreachable!("whole task produced a group"),
            },
            LevelWork::Groups(groups) => {
                let mut collected = Vec::with_capacity(groups.len());
                for _ in groups {
                    match next.next().expect("missing group result")? {
                        TaskOut::Group(g) => collected.push(g),
                        TaskOut::Stream(_) => unreachable!("group task produced a stream"),
                    }
                }
                LevelPayload::Groups(collected)
            }
        };
        // Empty payloads hold no streams, so their codec is canonically
        // the default (the wire format does not tag them).
        let codec = match &payload {
            LevelPayload::Empty => CodecId::default(),
            _ => plan.codec,
        };
        out.push(CompressedLevel {
            strategy: plan.strategy,
            dim: plan.dim,
            abs_eb: plan.abs_eb,
            codec,
            dtype: T::DTYPE,
            payload,
        });
    }
    Ok(out)
}

/// One flattened decompression task.
struct DecompressTask<'a> {
    level: usize,
    dim: usize,
    codec: CodecId,
    kind: DecompressKind<'a>,
}

enum DecompressKind<'a> {
    Whole(&'a [u8]),
    Group(&'a BlockGroup),
}

impl DecompressTask<'_> {
    fn cost(&self) -> u64 {
        match &self.kind {
            DecompressKind::Whole(_) => (self.dim * self.dim * self.dim) as u64,
            DecompressKind::Group(g) => {
                (g.shape.0 * g.shape.1 * g.shape.2 * g.origins.len()) as u64
            }
        }
    }
}

/// Decompresses TAC per-level payloads on `workers` threads: every
/// whole-grid stream and every region group decodes as an independent
/// task; pasting and mask application stay serial.
pub(crate) fn decompress_tac_levels<T: CodecElement>(
    compressed: &[CompressedLevel],
    masks: &[BitMask],
    workers: usize,
) -> Result<Vec<AmrLevel<T>>, TacError> {
    // Validate masks up front (decode tasks do not see them). The
    // checked product guards in-memory callers handing over a crafted
    // dim (wire readers bound it already).
    for (l, (cl, mask)) in compressed.iter().zip(masks).enumerate() {
        if cl.dtype != T::DTYPE {
            return Err(TacError::Codec(CodecError::WrongDtype {
                stream: cl.dtype.label(),
                requested: T::DTYPE.label(),
            }));
        }
        let n = cl
            .dim
            .checked_mul(cl.dim)
            .and_then(|s| s.checked_mul(cl.dim))
            .ok_or_else(|| {
                TacError::Corrupt(format!("level {l}: dim {} overflows dim^3", cl.dim))
            })?;
        if mask.len() != n {
            return Err(TacError::Corrupt(format!(
                "level {l}: mask has {} bits for a {}^3 level",
                mask.len(),
                cl.dim
            )));
        }
    }
    let mut tasks: Vec<DecompressTask<'_>> = Vec::new();
    for (l, cl) in compressed.iter().enumerate() {
        match &cl.payload {
            LevelPayload::Empty => {}
            LevelPayload::Whole(stream) => tasks.push(DecompressTask {
                level: l,
                dim: cl.dim,
                codec: cl.codec,
                kind: DecompressKind::Whole(stream),
            }),
            LevelPayload::Groups(groups) => {
                for g in groups {
                    tasks.push(DecompressTask {
                        level: l,
                        dim: cl.dim,
                        codec: cl.codec,
                        kind: DecompressKind::Group(g),
                    });
                }
            }
        }
    }

    let exec_span = tac_obs::span(tac_obs::Stage::Execute).arg("tasks", tasks.len());
    let results = tac_par::execute(
        workers,
        &tasks,
        DecompressTask::cost,
        |t| -> Result<Vec<T>, TacError> {
            let _decode = tac_obs::span(tac_obs::Stage::Decode)
                .arg("dim", t.dim)
                .arg("codec", t.codec.tag());
            if tac_obs::enabled() {
                let bytes = match &t.kind {
                    DecompressKind::Whole(stream) => stream.len(),
                    DecompressKind::Group(g) => g.stream.len(),
                };
                tac_obs::add(tac_obs::Counter::ChunksDecoded, 1);
                tac_obs::add_bytes(tac_obs::Counter::PayloadBytesIn, bytes);
            }
            match &t.kind {
                DecompressKind::Whole(stream) => {
                    let (values, dims) = T::codec_decompress(codec_for(t.codec), stream)?;
                    if dims != Dims::D3(t.dim, t.dim, t.dim) {
                        return Err(TacError::Corrupt(format!(
                            "whole-grid stream dims {dims:?} for a {}^3 level",
                            t.dim
                        )));
                    }
                    Ok(values)
                }
                DecompressKind::Group(g) => decode_group::<T>(g, t.codec),
            }
        },
    );
    drop(exec_span);

    // Assemble: paste decoded buffers level by level, then mask.
    let _assemble = tac_obs::span(tac_obs::Stage::Assemble);
    let mut grids: Vec<Vec<T>> = compressed
        .iter()
        .map(|cl| vec![T::ZERO; cl.dim * cl.dim * cl.dim])
        .collect();
    for (task, result) in tasks.iter().zip(results) {
        let values = result?;
        match &task.kind {
            DecompressKind::Whole(_) => grids[task.level] = values,
            DecompressKind::Group(g) => paste_group(&mut grids[task.level], task.dim, g, &values)?,
        }
    }
    Ok(compressed
        .iter()
        .zip(grids)
        .zip(masks)
        .map(|((cl, mut data), mask)| {
            for (i, v) in data.iter_mut().enumerate() {
                if !mask.get(i) {
                    *v = T::ZERO;
                }
            }
            AmrLevel::new(cl.dim, data, mask.clone())
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_for_clamps_but_rejects_zero() {
        assert_eq!(unit_for(16, 4).unwrap(), 4);
        assert_eq!(unit_for(2, 8).unwrap(), 2);
        assert!(unit_for(0, 8).is_err());
        assert!(unit_for(16, 0).is_err());
    }
}
