//! Region-of-interest decompression over the chunked (v2) container.
//!
//! In-situ AMR workflows (AMRIC, SC'23) rarely need a whole snapshot
//! back: a halo finder inspects a subvolume, a visualisation pans
//! through a slab. The v2 chunk table records a bounding box per chunk,
//! so a decoder can seek to — and spend decode time on — only the
//! chunks whose boxes intersect the request, skipping the rest of the
//! payload entirely.
//!
//! Selectivity comes from TAC's own structure: each level chunk is
//! either one region group (OpST / AKDTree / NaST) or one whole-grid
//! stream (ZeroFill / GSP) whose box is the mask's bounding box. The
//! monolithic baselines (zMesh, 3D) have a single full-domain chunk and
//! degrade gracefully to a full decode.

use crate::container::{parse_v2, CompressedDataset, MethodBody, V2Layout, V2Meta};
use crate::error::TacError;
use crate::pipeline::decompress_dataset_t;
use crate::stream::{CompressedLevel, LevelPayload};
use tac_amr::{Aabb, AmrDataset};
use tac_codec::{CodecElement, CodecError};

/// Byte accounting of one [`decompress_region`] call. "Read" counts the
/// payload chunks actually sliced and decoded; the header, masks, and
/// chunk table are always read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoiStats {
    /// Chunks listed in the container's table.
    pub chunks_total: usize,
    /// Chunks intersecting the region of interest (decoded).
    pub chunks_read: usize,
    /// Payload bytes across all chunks.
    pub payload_bytes_total: usize,
    /// Payload bytes of the decoded chunks only.
    pub payload_bytes_read: usize,
}

impl RoiStats {
    /// Fraction of payload bytes skipped, in `[0, 1]`.
    pub fn skipped_fraction(&self) -> f64 {
        if self.payload_bytes_total == 0 {
            0.0
        } else {
            1.0 - self.payload_bytes_read as f64 / self.payload_bytes_total as f64
        }
    }
}

/// Decodes the part of a **v2** container intersecting `roi` (given in
/// finest-level cell coordinates, half-open).
///
/// Returns full-size levels in which every cell covered by a decoded
/// chunk carries its reconstructed value and every skipped cell is zero
/// — so within `roi`, the result matches a full decode exactly, and the
/// reported [`RoiStats`] show how much payload the request avoided.
///
/// v1 containers have no chunk table and are rejected; re-serialize
/// with [`CompressedDataset::to_bytes`] to upgrade.
pub fn decompress_region(bytes: &[u8], roi: Aabb) -> Result<(AmrDataset, RoiStats), TacError> {
    decompress_region_t::<f64>(bytes, roi)
}

/// [`decompress_region`] for `f32` containers.
pub fn decompress_region_f32(
    bytes: &[u8],
    roi: Aabb,
) -> Result<(AmrDataset<f32>, RoiStats), TacError> {
    decompress_region_t::<f32>(bytes, roi)
}

/// Mirrors a finished [`RoiStats`] into the observability counters, so
/// profiled runs report chunk selectivity without touching the API.
fn record_roi_stats(stats: &RoiStats) {
    if !tac_obs::enabled() {
        return;
    }
    tac_obs::add_bytes(tac_obs::Counter::RoiChunksTotal, stats.chunks_total);
    tac_obs::add_bytes(tac_obs::Counter::RoiChunksRead, stats.chunks_read);
    tac_obs::add_bytes(tac_obs::Counter::RoiBytesRead, stats.payload_bytes_read);
    tac_obs::add_bytes(
        tac_obs::Counter::RoiBytesSkipped,
        stats
            .payload_bytes_total
            .saturating_sub(stats.payload_bytes_read),
    );
}

/// Element-generic ROI decoder behind [`decompress_region`]. A container
/// whose element type disagrees with `T` is rejected up front, before
/// any chunk is sliced or decoded.
pub fn decompress_region_t<T: CodecElement>(
    bytes: &[u8],
    roi: Aabb,
) -> Result<(AmrDataset<T>, RoiStats), TacError> {
    let _roi_span = tac_obs::span(tac_obs::Stage::RoiDecode);
    let layout = parse_v2(bytes)?;
    if layout.dtype != T::DTYPE {
        return Err(TacError::Codec(CodecError::WrongDtype {
            stream: layout.dtype.label(),
            requested: T::DTYPE.label(),
        }));
    }
    let mut stats = RoiStats {
        chunks_total: layout.entries.len(),
        chunks_read: 0,
        payload_bytes_total: layout.entries.iter().map(|e| e.len).sum(),
        payload_bytes_read: 0,
    };

    // Chunk counts are validated against the method metadata by
    // `parse_v2` itself, so this decoder and the full parse agree on
    // what a valid container is by construction.
    let body = match &layout.meta {
        V2Meta::Tac(metas) => {
            let mut levels = Vec::with_capacity(metas.len());
            for (l, meta) in metas.iter().enumerate() {
                // The ROI is expressed on the finest grid; level l is
                // 2^l times coarser.
                let factor = (layout.finest_dim / meta.dim.max(1)).max(1);
                let roi_level = roi.coarsen(factor);
                let payload = match meta.kind {
                    0 => LevelPayload::Empty,
                    1 => {
                        let entry = layout.level_entries(l).next().ok_or_else(|| {
                            TacError::Corrupt(format!("level {l}: whole chunk missing"))
                        })?;
                        if entry.bbox.intersects(&roi_level) {
                            stats.chunks_read += 1;
                            stats.payload_bytes_read += entry.len;
                            LevelPayload::Whole(layout.chunk_bytes(entry).to_vec())
                        } else {
                            // Nothing of this level is wanted: decode as
                            // if empty (zeros everywhere).
                            LevelPayload::Empty
                        }
                    }
                    _ => {
                        let mut groups = Vec::new();
                        for entry in layout.level_entries(l) {
                            if entry.bbox.intersects(&roi_level) {
                                stats.chunks_read += 1;
                                stats.payload_bytes_read += entry.len;
                                groups.push(layout.parse_group(entry)?);
                            }
                        }
                        LevelPayload::Groups(groups)
                    }
                };
                levels.push(CompressedLevel {
                    strategy: meta.strategy,
                    dim: meta.dim,
                    abs_eb: meta.abs_eb,
                    codec: meta.codec,
                    dtype: layout.dtype,
                    payload,
                });
            }
            MethodBody::Tac(levels)
        }
        // The monolithic baselines cannot decode partially: every chunk
        // is read and the stats reflect it.
        _ => {
            stats.chunks_read = stats.chunks_total;
            stats.payload_bytes_read = stats.payload_bytes_total;
            record_roi_stats(&stats);
            return layout
                .assemble()
                .and_then(|cd| decompress_dataset_t::<T>(&cd))
                .map(|ds| (ds, stats));
        }
    };

    // Move the header fields out of the layout (the payload borrow is
    // done — `body` owns its chunk copies).
    let V2Layout {
        name,
        finest_dim,
        dtype,
        masks,
        ..
    } = layout;
    let cd = CompressedDataset {
        name,
        finest_dim,
        dtype,
        masks,
        body,
    };
    record_roi_stats(&stats);
    Ok((decompress_dataset_t::<T>(&cd)?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TacConfig;
    use crate::container::Method;
    use crate::pipeline::{compress_dataset, decompress_dataset};
    use tac_amr::{AmrDataset, AmrLevel};
    use tac_sz::ErrorBound;

    /// Two-level dataset whose fine cells sit in two far-apart corner
    /// blobs, so corner ROIs have real selectivity.
    fn corners_dataset(fine_dim: usize) -> AmrDataset {
        let coarse_dim = fine_dim / 2;
        let mut fine = AmrLevel::empty(fine_dim);
        let mut coarse = AmrLevel::empty(coarse_dim);
        let blob = fine_dim / 4;
        for z in 0..coarse_dim {
            for y in 0..coarse_dim {
                for x in 0..coarse_dim {
                    let (fx, fy, fz) = (2 * x, 2 * y, 2 * z);
                    let near_lo = fx < blob && fy < blob && fz < blob;
                    let near_hi =
                        fx >= fine_dim - blob && fy >= fine_dim - blob && fz >= fine_dim - blob;
                    if near_lo || near_hi {
                        for dz in 0..2 {
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let v = (fx + dx + fy + dy + fz + dz) as f64 * 0.1 + 1.0;
                                    fine.set_value(fx + dx, fy + dy, fz + dz, v);
                                }
                            }
                        }
                    } else {
                        coarse.set_value(x, y, z, (x + y + z) as f64 * 0.2 + 3.0);
                    }
                }
            }
        }
        let ds = AmrDataset::new("corners", vec![fine, coarse]);
        ds.validate().unwrap();
        ds
    }

    #[test]
    fn roi_decode_matches_full_decode_inside_roi() {
        let ds = corners_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            roi_tile: Some(8),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let bytes = cd.to_bytes();
        let full = decompress_dataset(&CompressedDataset::from_bytes(&bytes).unwrap()).unwrap();

        let roi = Aabb::new((0, 0, 0), (8, 8, 8)); // 1/8 of the fine volume
        let (partial, stats) = decompress_region(&bytes, roi).unwrap();
        assert_eq!(partial.num_levels(), full.num_levels());
        for (l, (p, f)) in partial.levels().iter().zip(full.levels()).enumerate() {
            let factor = 1 << l;
            let roi_level = roi.coarsen(factor);
            for z in roi_level.min.2..roi_level.max.2.min(p.dim()) {
                for y in roi_level.min.1..roi_level.max.1.min(p.dim()) {
                    for x in roi_level.min.0..roi_level.max.0.min(p.dim()) {
                        assert_eq!(
                            p.value(x, y, z),
                            f.value(x, y, z),
                            "level {l} cell ({x},{y},{z})"
                        );
                    }
                }
            }
        }
        // The far corner's chunks were skipped.
        assert!(stats.chunks_read < stats.chunks_total);
        assert!(stats.payload_bytes_read < stats.payload_bytes_total);
        assert!(stats.skipped_fraction() > 0.0);
    }

    #[test]
    fn roi_missing_everything_reads_no_tac_payload() {
        let ds = corners_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            roi_tile: Some(8),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let bytes = cd.to_bytes();
        // An empty ROI intersects nothing.
        let (out, stats) = decompress_region(&bytes, Aabb::new((5, 5, 5), (5, 5, 5))).unwrap();
        assert_eq!(stats.payload_bytes_read, 0);
        for level in out.levels() {
            assert!(level.data().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn baselines_fall_back_to_full_decode() {
        let ds = corners_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            ..Default::default()
        };
        for method in [Method::Baseline1D, Method::ZMesh, Method::Baseline3D] {
            let cd = compress_dataset(&ds, &cfg, method).unwrap();
            let bytes = cd.to_bytes();
            let (out, stats) = decompress_region(&bytes, Aabb::new((0, 0, 0), (4, 4, 4))).unwrap();
            assert_eq!(stats.payload_bytes_read, stats.payload_bytes_total);
            assert_eq!(out.num_levels(), ds.num_levels());
        }
    }

    #[test]
    fn roi_rejects_structurally_corrupt_tables_like_the_full_parse() {
        let ds = corners_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let bytes = cd.to_bytes();
        // Drop the last chunk-table entry, keeping the footer
        // consistent: the table now disagrees with the per-level
        // metadata, and both decoders must say so.
        let row = crate::container::CHUNK_ROW_BYTES_V2;
        let prefix = crate::container::CHUNK_COUNT_PREFIX_BYTES;
        let footer = &bytes[bytes.len() - crate::container::TABLE_FOOTER_BYTES..];
        let table_pos = u64::from_le_bytes(footer.try_into().unwrap()) as usize;
        let count =
            u32::from_le_bytes(bytes[table_pos..table_pos + prefix].try_into().unwrap()) as usize;
        assert!(count > 1);
        let mut tampered = bytes[..table_pos].to_vec();
        tampered.extend(((count - 1) as u32).to_le_bytes());
        tampered.extend(&bytes[table_pos + prefix..table_pos + prefix + row * (count - 1)]);
        tampered.extend((table_pos as u64).to_le_bytes());
        assert!(CompressedDataset::from_bytes(&tampered).is_err());
        assert!(decompress_region(&tampered, Aabb::whole(16)).is_err());
    }

    #[test]
    fn f32_roi_decode_matches_full_decode_and_f64_decode_refuses() {
        let ds = corners_dataset(16);
        let levels = ds
            .levels()
            .iter()
            .map(|l| {
                let data: Vec<f32> = l.data().iter().map(|&v| v as f32).collect();
                AmrLevel::new(l.dim(), data, l.mask().clone())
            })
            .collect();
        let ds32 = AmrDataset::new("corners32", levels);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            roi_tile: Some(8),
            ..Default::default()
        };
        let cd = crate::pipeline::compress_dataset_f32(&ds32, &cfg, Method::Tac).unwrap();
        let bytes = cd.to_bytes();
        let roi = Aabb::new((0, 0, 0), (8, 8, 8));
        let (partial, stats) = decompress_region_f32(&bytes, roi).unwrap();
        assert!(stats.chunks_read < stats.chunks_total);
        let full = crate::pipeline::decompress_dataset_f32(
            &CompressedDataset::from_bytes(&bytes).unwrap(),
        )
        .unwrap();
        for (l, (p, f)) in partial.levels().iter().zip(full.levels()).enumerate() {
            let roi_level = roi.coarsen(1 << l);
            for z in roi_level.min.2..roi_level.max.2.min(p.dim()) {
                for y in roi_level.min.1..roi_level.max.1.min(p.dim()) {
                    for x in roi_level.min.0..roi_level.max.0.min(p.dim()) {
                        assert_eq!(p.value(x, y, z), f.value(x, y, z));
                    }
                }
            }
        }
        // Decoding an f32 container at f64 width is refused up front.
        assert!(decompress_region(&bytes, roi).is_err());
    }

    #[test]
    fn v1_containers_are_rejected_for_roi() {
        let ds = corners_dataset(16);
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Abs(1e-3),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let err = decompress_region(&cd.to_bytes_v1(), Aabb::whole(16)).unwrap_err();
        assert!(err.to_string().contains("v2"), "{err}");
    }
}
