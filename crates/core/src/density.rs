//! The density filter (paper Sec. 3.4): picks a pre-process strategy per
//! level from its cell density.

use crate::config::{Strategy, TacConfig};
use tac_amr::AmrLevel;
use tac_dtype::Element;

/// Selects the strategy for `level` under `cfg`'s thresholds:
///
/// * empty level → [`Strategy::Empty`];
/// * fully dense level → [`Strategy::ZeroFill`] (nothing to remove or pad
///   — the grid goes straight to the 3D compressor);
/// * `d < t1` → [`Strategy::OpST`];
/// * `t1 <= d < t2` → [`Strategy::AkdTree`];
/// * `d >= t2` → [`Strategy::Gsp`].
///
/// A forced strategy in the config overrides density selection (except for
/// empty levels, which have nothing to compress).
pub fn choose_strategy<T: Element>(level: &AmrLevel<T>, cfg: &TacConfig) -> Strategy {
    let d = level.density();
    if d == 0.0 {
        return Strategy::Empty;
    }
    if let Some(forced) = cfg.forced_strategy {
        return forced;
    }
    if d >= 1.0 {
        return Strategy::ZeroFill;
    }
    if d < cfg.t1 {
        Strategy::OpST
    } else if d < cfg.t2 {
        Strategy::AkdTree
    } else {
        Strategy::Gsp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac_amr::AmrLevel;

    fn level_with_density(dim: usize, d: f64) -> AmrLevel {
        let mut lvl = AmrLevel::empty(dim);
        let total = dim * dim * dim;
        let k = (d * total as f64).round() as usize;
        for i in 0..k {
            let x = i % dim;
            let y = (i / dim) % dim;
            let z = i / (dim * dim);
            lvl.set_value(x, y, z, 1.0);
        }
        lvl
    }

    #[test]
    fn thresholds_partition_density_axis() {
        let cfg = TacConfig::default();
        assert_eq!(
            choose_strategy(&level_with_density(8, 0.0), &cfg),
            Strategy::Empty
        );
        assert_eq!(
            choose_strategy(&level_with_density(8, 0.23), &cfg),
            Strategy::OpST
        );
        assert_eq!(
            choose_strategy(&level_with_density(8, 0.49), &cfg),
            Strategy::OpST
        );
        assert_eq!(
            choose_strategy(&level_with_density(8, 0.55), &cfg),
            Strategy::AkdTree
        );
        assert_eq!(
            choose_strategy(&level_with_density(8, 0.63), &cfg),
            Strategy::Gsp
        );
        assert_eq!(
            choose_strategy(&level_with_density(8, 0.998), &cfg),
            Strategy::Gsp
        );
        assert_eq!(
            choose_strategy(&level_with_density(8, 1.0), &cfg),
            Strategy::ZeroFill
        );
    }

    #[test]
    fn forced_strategy_wins_except_for_empty() {
        let cfg = TacConfig::default().with_strategy(Strategy::Gsp);
        assert_eq!(
            choose_strategy(&level_with_density(8, 0.1), &cfg),
            Strategy::Gsp
        );
        assert_eq!(
            choose_strategy(&level_with_density(8, 0.0), &cfg),
            Strategy::Empty
        );
    }

    #[test]
    fn boundary_values_route_like_the_paper() {
        // Exactly 50% -> AKDTree (t1 inclusive upper), exactly 60% -> GSP.
        // dim 10 makes both fractions exact (1000 cells).
        let cfg = TacConfig::default();
        assert_eq!(
            choose_strategy(&level_with_density(10, 0.50), &cfg),
            Strategy::AkdTree
        );
        assert_eq!(
            choose_strategy(&level_with_density(10, 0.60), &cfg),
            Strategy::Gsp
        );
    }
}
