//! AKDTree — adaptive k-d tree extraction (paper Sec. 3.2, Algorithm 2).
//!
//! The block grid is split recursively. Unlike a classic k-d tree's fixed
//! axis rotation, each split picks the axis that **maximizes the
//! occupancy difference** between the two children — pushing one child
//! toward all-full and the other toward all-empty, which yields fewer,
//! larger full leaves. A node stops splitting when its region is entirely
//! empty or entirely full (at unit-block granularity).
//!
//! Node shapes cycle `cube -> flat (2:2:1) -> slim (2:1:1) -> cube`, so a
//! cube's eight octant counts are computed once and reused by the two
//! child generations — the paper's "counting every three levels" that
//! gives the `O(N/3 * log N)` bound. This implementation gets the same
//! counts from a 3D summed-area table (identical split decisions, O(1)
//! per query).

use crate::extract::Region;
use tac_amr::BlockGrid;

/// A full leaf as `(origin, shape)` in unit-block coordinates.
pub type LeafBox = ((usize, usize, usize), (usize, usize, usize));

/// The extraction plan produced by the k-d tree: full-leaf cuboids in
/// block coordinates, plus tree statistics.
#[derive(Debug, Clone)]
pub struct AkdPlan {
    /// Full leaves as `(origin, shape)` in unit-block coordinates.
    pub leaves: Vec<LeafBox>,
    /// Total nodes visited (tree size).
    pub nodes: usize,
    /// Number of empty leaves (pruned regions).
    pub empty_leaves: usize,
}

impl AkdPlan {
    /// Converts block-granular leaves into cell-granular regions.
    pub fn regions(&self, unit: usize) -> Vec<Region> {
        self.leaves
            .iter()
            .map(|&((bx, by, bz), (w, h, d))| Region {
                origin: (bx * unit, by * unit, bz * unit),
                shape: (w * unit, h * unit, d * unit),
            })
            .collect()
    }
}

/// Occupancy prefix sums over unit blocks: O(1) count of non-empty blocks
/// in any cuboid.
struct OccupancySat {
    nb: usize,
    /// `sat[x + (nb+1)*(y + (nb+1)*z)]` = count of non-empty blocks in
    /// `[0,x) x [0,y) x [0,z)`. Signed to keep the inclusion-exclusion
    /// arithmetic underflow-free.
    sat: Vec<i64>,
}

impl OccupancySat {
    fn build(grid: &BlockGrid) -> Self {
        let nb = grid.blocks_per_side();
        let n1 = nb + 1;
        let mut sat = vec![0i64; n1 * n1 * n1];
        for z in 0..nb {
            for y in 0..nb {
                for x in 0..nb {
                    let occ = !grid.is_empty_block(x, y, z) as i64;
                    // Inclusion-exclusion over the seven lower neighbours.
                    let at = |xx: usize, yy: usize, zz: usize| sat[xx + n1 * (yy + n1 * zz)];
                    let v = occ
                        + at(x, y + 1, z + 1)
                        + at(x + 1, y, z + 1)
                        + at(x + 1, y + 1, z)
                        + at(x, y, z)
                        - at(x, y, z + 1)
                        - at(x, y + 1, z)
                        - at(x + 1, y, z);
                    sat[(x + 1) + n1 * ((y + 1) + n1 * (z + 1))] = v;
                }
            }
        }
        OccupancySat { nb, sat }
    }

    /// Non-empty blocks in `[x0,x1) x [y0,y1) x [z0,z1)`.
    fn count(
        &self,
        (x0, y0, z0): (usize, usize, usize),
        (x1, y1, z1): (usize, usize, usize),
    ) -> u64 {
        let n1 = self.nb + 1;
        let at = |x: usize, y: usize, z: usize| self.sat[x + n1 * (y + n1 * z)];
        let v = at(x1, y1, z1) - at(x0, y1, z1) - at(x1, y0, z1) - at(x1, y1, z0)
            + at(x0, y0, z1)
            + at(x0, y1, z0)
            + at(x1, y0, z0)
            - at(x0, y0, z0);
        debug_assert!(v >= 0, "SAT query went negative: {v}");
        v as u64
    }
}

/// Runs the AKDTree planner.
///
/// # Panics
/// Panics if the block grid side is not a power of two (guaranteed for
/// power-of-two level dims and unit sizes).
pub fn plan_akdtree(grid: &BlockGrid) -> AkdPlan {
    let nb = grid.blocks_per_side();
    assert!(
        nb.is_power_of_two(),
        "block grid side {nb} must be a power of two"
    );
    let sat = OccupancySat::build(grid);
    let mut plan = AkdPlan {
        leaves: Vec::new(),
        nodes: 0,
        empty_leaves: 0,
    };
    split(&sat, (0, 0, 0), (nb, nb, nb), &mut plan);
    plan
}

/// Recursive adaptive split of the region `[o, o+s)`.
fn split(
    sat: &OccupancySat,
    o: (usize, usize, usize),
    s: (usize, usize, usize),
    plan: &mut AkdPlan,
) {
    plan.nodes += 1;
    let vol = (s.0 * s.1 * s.2) as u64;
    let count = sat.count(o, (o.0 + s.0, o.1 + s.1, o.2 + s.2));
    if count == 0 {
        plan.empty_leaves += 1;
        return;
    }
    if count == vol {
        plan.leaves.push((o, s));
        return;
    }
    // Choose the split axis: among the *longest* axes (splitting must keep
    // shapes in the cube/flat/slim family), pick the one maximizing the
    // difference in child occupancy (the paper's maxDiff).
    let max_dim = s.0.max(s.1).max(s.2);
    let mut best_axis = usize::MAX;
    let mut best_diff = -1i64;
    for axis in 0..3 {
        let len = [s.0, s.1, s.2][axis];
        if len != max_dim || len < 2 {
            continue;
        }
        let (c1, _c2, diff) = halves_count(sat, o, s, axis);
        let total = count as i64;
        let d = diff.abs();
        let _ = c1;
        if d > best_diff {
            best_diff = d;
            best_axis = axis;
        }
        let _ = total;
    }
    debug_assert_ne!(best_axis, usize::MAX, "non-leaf node must be splittable");
    let axis = best_axis;
    let half = [s.0, s.1, s.2][axis] / 2;
    let mut s1 = s;
    let mut o2 = o;
    let mut s2 = s;
    match axis {
        0 => {
            s1.0 = half;
            o2.0 += half;
            s2.0 -= half;
        }
        1 => {
            s1.1 = half;
            o2.1 += half;
            s2.1 -= half;
        }
        _ => {
            s1.2 = half;
            o2.2 += half;
            s2.2 -= half;
        }
    }
    split(sat, o, s1, plan);
    split(sat, o2, s2, plan);
}

/// Occupancy of the two halves of `region` split across `axis`, and their
/// signed difference.
fn halves_count(
    sat: &OccupancySat,
    o: (usize, usize, usize),
    s: (usize, usize, usize),
    axis: usize,
) -> (u64, u64, i64) {
    let half = [s.0, s.1, s.2][axis] / 2;
    let mut mid_hi = (o.0 + s.0, o.1 + s.1, o.2 + s.2);
    match axis {
        0 => mid_hi.0 = o.0 + half,
        1 => mid_hi.1 = o.1 + half,
        _ => mid_hi.2 = o.2 + half,
    }
    let c1 = sat.count(o, mid_hi);
    let total = sat.count(o, (o.0 + s.0, o.1 + s.1, o.2 + s.2));
    let c2 = total - c1;
    (c1, c2, c1 as i64 - c2 as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac_amr::{AmrLevel, BlockGrid};

    fn grid_from_occ(occ: &[bool], nb: usize, unit: usize) -> BlockGrid {
        let dim = nb * unit;
        let mut lvl = AmrLevel::empty(dim);
        for bz in 0..nb {
            for by in 0..nb {
                for bx in 0..nb {
                    if occ[bx + nb * (by + nb * bz)] {
                        // One present cell makes the block non-empty.
                        lvl.set_value(bx * unit, by * unit, bz * unit, 1.0);
                    }
                }
            }
        }
        BlockGrid::build(&lvl, unit)
    }

    fn check_partition(occ: &[bool], nb: usize, plan: &AkdPlan) {
        let mut covered = vec![0u32; nb * nb * nb];
        for &((x0, y0, z0), (w, h, d)) in &plan.leaves {
            for z in z0..z0 + d {
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        covered[x + nb * (y + nb * z)] += 1;
                    }
                }
            }
        }
        for i in 0..occ.len() {
            assert_eq!(covered[i], occ[i] as u32, "block {i}");
        }
    }

    #[test]
    fn full_grid_is_one_leaf() {
        let nb = 4;
        let occ = vec![true; nb * nb * nb];
        let plan = plan_akdtree(&grid_from_occ(&occ, nb, 2));
        assert_eq!(plan.leaves.len(), 1);
        assert_eq!(plan.leaves[0], ((0, 0, 0), (4, 4, 4)));
    }

    #[test]
    fn empty_grid_has_no_leaves() {
        let occ = vec![false; 64];
        let plan = plan_akdtree(&grid_from_occ(&occ, 4, 2));
        assert!(plan.leaves.is_empty());
        assert_eq!(plan.empty_leaves, 1);
    }

    #[test]
    fn half_full_grid_splits_once() {
        // +x half occupied: the adaptive split should find the clean cut
        // along x and produce exactly one full leaf.
        let nb = 4;
        let mut occ = vec![false; nb * nb * nb];
        for z in 0..nb {
            for y in 0..nb {
                for x in 2..nb {
                    occ[x + nb * (y + nb * z)] = true;
                }
            }
        }
        let plan = plan_akdtree(&grid_from_occ(&occ, nb, 2));
        assert_eq!(plan.leaves.len(), 1, "leaves: {:?}", plan.leaves);
        assert_eq!(plan.leaves[0], ((2, 0, 0), (2, 4, 4)));
        check_partition(&occ, nb, &plan);
    }

    #[test]
    fn adaptive_beats_fixed_split_on_off_axis_slab() {
        // Occupied slab on the +y side: fixed x-first splitting would
        // shred it; adaptive splitting cuts along y first.
        let nb = 8;
        let mut occ = vec![false; nb * nb * nb];
        for z in 0..nb {
            for y in 6..nb {
                for x in 0..nb {
                    occ[x + nb * (y + nb * z)] = true;
                }
            }
        }
        let plan = plan_akdtree(&grid_from_occ(&occ, nb, 2));
        check_partition(&occ, nb, &plan);
        // The first split goes along y (maxDiff) and prunes the empty
        // lower half immediately; the shape-family restriction (split only
        // the longest axes) then cuts the slab into at most 4 large
        // leaves. A fixed x->y->z rotation would produce 8+ smaller ones.
        assert!(plan.leaves.len() <= 4, "leaves: {:?}", plan.leaves);
        assert!(
            plan.leaves.iter().all(|&(_, (w, h, d))| w * h * d >= 32),
            "leaves too small: {:?}",
            plan.leaves
        );
    }

    #[test]
    fn random_occupancy_partitions() {
        for (seed, fill) in [(11u64, 0.3f64), (12, 0.55), (13, 0.9)] {
            let nb = 8;
            let mut state = seed;
            let occ: Vec<bool> = (0..nb * nb * nb)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) < fill
                })
                .collect();
            let plan = plan_akdtree(&grid_from_occ(&occ, nb, 2));
            check_partition(&occ, nb, &plan);
            // Leaves are all full by construction; verify leaf shapes stay
            // in the cube/flat/slim family (ratios within 2x).
            for &(_, (w, h, d)) in &plan.leaves {
                let max = w.max(h).max(d);
                let min = w.min(h).min(d);
                assert!(max / min <= 2 && max % min == 0, "shape {w}x{h}x{d}");
            }
        }
    }

    #[test]
    fn single_isolated_block() {
        let nb = 4;
        let mut occ = vec![false; nb * nb * nb];
        occ[1 + nb * (2 + nb * 3)] = true;
        let plan = plan_akdtree(&grid_from_occ(&occ, nb, 2));
        check_partition(&occ, nb, &plan);
        assert_eq!(plan.leaves.len(), 1);
        assert_eq!(plan.leaves[0], ((1, 2, 3), (1, 1, 1)));
    }

    #[test]
    fn sat_counts_match_brute_force() {
        let nb = 4;
        let mut occ = vec![false; nb * nb * nb];
        for i in (0..64).step_by(3) {
            occ[i] = true;
        }
        let grid = grid_from_occ(&occ, nb, 2);
        let sat = OccupancySat::build(&grid);
        for x0 in 0..nb {
            for x1 in x0 + 1..=nb {
                for y0 in 0..nb {
                    for y1 in y0 + 1..=nb {
                        let got = sat.count((x0, y0, 1), (x1, y1, 3));
                        let mut want = 0u64;
                        for z in 1..3 {
                            for y in y0..y1 {
                                for x in x0..x1 {
                                    want += occ[x + nb * (y + nb * z)] as u64;
                                }
                            }
                        }
                        assert_eq!(got, want);
                    }
                }
            }
        }
    }
}
