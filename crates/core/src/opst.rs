//! OpST — optimized sparse tensor representation (paper Sec. 3.1,
//! Algorithm 1).
//!
//! A 3D dynamic program computes, for every unit block, the side `BS` of
//! the largest all-non-empty cube whose upper corner (largest coordinates)
//! is that block:
//!
//! ```text
//! BS(x,y,z) = 0                                   if block empty
//!           = 1                                   if x, y or z == 0
//!           = 1 + min(7 lower-corner neighbours)  otherwise
//! ```
//!
//! Extraction then walks the block grid from the bottom-right-rear corner
//! toward the origin, carving out the `BS`-sized cube at every still-
//! occupied block, clearing occupancy, and *partially* recomputing `BS`
//! only inside the window of blocks whose value can have changed — the
//! window is bounded by `maxSide`, which is the optimization the paper
//! calls out (the cost grows with density, motivating AKDTree).

use crate::extract::Region;
use tac_amr::BlockGrid;

/// An extraction plan: disjoint cubes (in unit-block coordinates) that
/// exactly cover the non-empty blocks.
#[derive(Debug, Clone)]
pub struct OpstPlan {
    /// Cubes as `(bx, by, bz, side)` — lowest block corner + side in
    /// blocks.
    pub cubes: Vec<(usize, usize, usize, usize)>,
    /// Largest cube side encountered (the paper's `maxSide`).
    pub max_side: usize,
}

impl OpstPlan {
    /// Converts the block-granular plan into cell-granular regions.
    pub fn regions(&self, unit: usize) -> Vec<Region> {
        self.cubes
            .iter()
            .map(|&(bx, by, bz, s)| Region {
                origin: (bx * unit, by * unit, bz * unit),
                shape: (s * unit, s * unit, s * unit),
            })
            .collect()
    }
}

/// Runs the OpST planner over a block grid.
pub fn plan_opst(grid: &BlockGrid) -> OpstPlan {
    let nb = grid.blocks_per_side();
    let mut occ: Vec<bool> = Vec::with_capacity(nb * nb * nb);
    for bz in 0..nb {
        for by in 0..nb {
            for bx in 0..nb {
                occ.push(!grid.is_empty_block(bx, by, bz));
            }
        }
    }
    plan_opst_from_occupancy(&occ, nb)
}

/// OpST planner over a raw occupancy grid (exposed for tests and the
/// ablation benchmarks).
pub fn plan_opst_from_occupancy(occ: &[bool], nb: usize) -> OpstPlan {
    assert_eq!(occ.len(), nb * nb * nb);
    let mut occ = occ.to_vec();
    let mut bs = vec![0u32; nb * nb * nb];

    // Initial DP sweep (ascending order satisfies the dependency).
    let mut max_side = 0u32;
    for z in 0..nb {
        for y in 0..nb {
            for x in 0..nb {
                let v = bs_value(&occ, &bs, nb, x, y, z);
                bs[idx(nb, x, y, z)] = v;
                max_side = max_side.max(v);
            }
        }
    }
    let max_side = max_side as usize;

    let mut cubes = Vec::new();
    // Walk from the bottom-right-rear corner toward the origin.
    for z in (0..nb).rev() {
        for y in (0..nb).rev() {
            for x in (0..nb).rev() {
                let s = bs[idx(nb, x, y, z)] as usize;
                if s == 0 {
                    continue;
                }
                let (x0, y0, z0) = (x + 1 - s, y + 1 - s, z + 1 - s);
                cubes.push((x0, y0, z0, s));
                // Clear the extracted cube.
                for cz in z0..=z {
                    for cy in y0..=y {
                        for cx in x0..=x {
                            let i = idx(nb, cx, cy, cz);
                            occ[i] = false;
                            bs[i] = 0;
                        }
                    }
                }
                // Partial update: only blocks within `maxSide` beyond the
                // cleared cube can have a stale BS. Recompute in ascending
                // order (the DP dependency direction).
                let ux = (x + max_side).min(nb - 1);
                let uy = (y + max_side).min(nb - 1);
                let uz = (z + max_side).min(nb - 1);
                for cz in z0..=uz {
                    for cy in y0..=uy {
                        for cx in x0..=ux {
                            let i = idx(nb, cx, cy, cz);
                            bs[i] = bs_value(&occ, &bs, nb, cx, cy, cz);
                        }
                    }
                }
            }
        }
    }
    OpstPlan { cubes, max_side }
}

#[inline]
fn idx(nb: usize, x: usize, y: usize, z: usize) -> usize {
    x + nb * (y + nb * z)
}

#[inline]
fn bs_value(occ: &[bool], bs: &[u32], nb: usize, x: usize, y: usize, z: usize) -> u32 {
    if !occ[idx(nb, x, y, z)] {
        return 0;
    }
    if x == 0 || y == 0 || z == 0 {
        return 1;
    }
    let m = bs[idx(nb, x - 1, y, z)]
        .min(bs[idx(nb, x, y - 1, z)])
        .min(bs[idx(nb, x, y, z - 1)])
        .min(bs[idx(nb, x - 1, y - 1, z)])
        .min(bs[idx(nb, x, y - 1, z - 1)])
        .min(bs[idx(nb, x - 1, y, z - 1)])
        .min(bs[idx(nb, x - 1, y - 1, z - 1)]);
    m + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks that the plan's cubes are disjoint and cover exactly the
    /// occupied blocks.
    fn check_partition(occ: &[bool], nb: usize, plan: &OpstPlan) {
        let mut covered = vec![0u32; nb * nb * nb];
        for &(x0, y0, z0, s) in &plan.cubes {
            assert!(x0 + s <= nb && y0 + s <= nb && z0 + s <= nb, "cube oob");
            for z in z0..z0 + s {
                for y in y0..y0 + s {
                    for x in x0..x0 + s {
                        covered[idx(nb, x, y, z)] += 1;
                    }
                }
            }
        }
        for i in 0..occ.len() {
            let want = occ[i] as u32;
            assert_eq!(
                covered[i], want,
                "block {i}: covered {} want {want}",
                covered[i]
            );
        }
    }

    #[test]
    fn full_grid_extracts_one_cube() {
        let nb = 4;
        let occ = vec![true; nb * nb * nb];
        let plan = plan_opst_from_occupancy(&occ, nb);
        assert_eq!(plan.cubes, vec![(0, 0, 0, 4)]);
        assert_eq!(plan.max_side, 4);
        check_partition(&occ, nb, &plan);
    }

    #[test]
    fn empty_grid_extracts_nothing() {
        let occ = vec![false; 27];
        let plan = plan_opst_from_occupancy(&occ, 3);
        assert!(plan.cubes.is_empty());
    }

    #[test]
    fn single_block() {
        let mut occ = vec![false; 27];
        occ[idx(3, 1, 1, 1)] = true;
        let plan = plan_opst_from_occupancy(&occ, 3);
        assert_eq!(plan.cubes, vec![(1, 1, 1, 1)]);
        check_partition(&occ, 3, &plan);
    }

    #[test]
    fn l_shape_partitions_correctly() {
        // A 2x2x1 slab plus one extra block: no 2-cube fits everywhere.
        let nb = 4;
        let mut occ = vec![false; nb * nb * nb];
        for y in 0..2 {
            for x in 0..2 {
                occ[idx(nb, x, y, 0)] = true;
            }
        }
        occ[idx(nb, 2, 0, 0)] = true;
        let plan = plan_opst_from_occupancy(&occ, nb);
        check_partition(&occ, nb, &plan);
    }

    #[test]
    fn big_cube_is_preferred_over_units() {
        // An 8^3 grid fully occupied except one corner block: the plan
        // must still contain at least one cube of side >= 4 (the DP finds
        // large interiors).
        let nb = 8;
        let mut occ = vec![true; nb * nb * nb];
        occ[idx(nb, 0, 0, 0)] = false;
        let plan = plan_opst_from_occupancy(&occ, nb);
        check_partition(&occ, nb, &plan);
        let biggest = plan.cubes.iter().map(|c| c.3).max().unwrap();
        assert!(biggest >= 4, "biggest cube {biggest}");
        // One 7^3 interior cube + the three boundary faces as singles:
        // still far fewer cubes than occupied blocks.
        assert!(
            plan.cubes.len() < (nb * nb * nb - 1) / 2,
            "{} cubes",
            plan.cubes.len()
        );
    }

    #[test]
    fn random_occupancy_partitions() {
        // Deterministic pseudo-random occupancies at several densities.
        for (seed, fill) in [(1u64, 0.2f64), (2, 0.5), (3, 0.8)] {
            let nb = 6;
            let mut state = seed;
            let occ: Vec<bool> = (0..nb * nb * nb)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) < fill
                })
                .collect();
            let plan = plan_opst_from_occupancy(&occ, nb);
            check_partition(&occ, nb, &plan);
        }
    }

    #[test]
    fn regions_scale_by_unit() {
        let nb = 2;
        let occ = vec![true; 8];
        let plan = plan_opst_from_occupancy(&occ, nb);
        let regions = plan.regions(16);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].shape, (32, 32, 32));
    }
}
