//! Wire-format primitives and the per-level compressed payload types
//! shared by all strategies.

use crate::config::Strategy;
use crate::error::TacError;
use tac_codec::CodecId;
use tac_dtype::TacDtype;

// The little-endian wire primitives are shared with the SZ stream header
// (one implementation, one set of bounds checks). `SzError`s raised on
// truncated reads convert into `TacError::Sz` through `?`.
pub(crate) use tac_sz::wire::{ByteReader as Reader, ByteWriter as Writer};

/// A group of same-shape extracted sub-blocks compressed as one rank-4
/// scalar-codec stream (the paper's "merge sub-blocks with the same size
/// into the same array"). The codec is recorded on the owning
/// [`CompressedLevel`]; the stream's own magic number must agree.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockGroup {
    /// Sub-block extents in **cells** `(w, h, d)`.
    pub shape: (usize, usize, usize),
    /// Cell-coordinate origins of each sub-block, in batch order.
    pub origins: Vec<(u32, u32, u32)>,
    /// Scalar-codec stream of shape `D4(w, h, d, origins.len())`.
    pub stream: Vec<u8>,
}

impl BlockGroup {
    // tac-lint: allow(arith) -- writer-side width reduction: shapes and origin counts are cell quantities bounded by the validated grid dimension (<= 2^13).
    pub(crate) fn write(&self, w: &mut Writer) {
        w.put_u32(self.shape.0 as u32);
        w.put_u32(self.shape.1 as u32);
        w.put_u32(self.shape.2 as u32);
        w.put_u32(self.origins.len() as u32);
        for &(x, y, z) in &self.origins {
            w.put_u32(x);
            w.put_u32(y);
            w.put_u32(z);
        }
        w.put_blob(&self.stream);
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, TacError> {
        let shape = (
            r.get_u32()? as usize,
            r.get_u32()? as usize,
            r.get_u32()? as usize,
        );
        let count = r.get_u32()? as usize;
        // Origins are 12 bytes each; bound the allocation by what the
        // buffer can actually hold.
        if count.saturating_mul(12) > r.remaining() {
            return Err(TacError::Corrupt(format!(
                "group declares {count} origins but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut origins = Vec::with_capacity(count);
        for _ in 0..count {
            origins.push((r.get_u32()?, r.get_u32()?, r.get_u32()?));
        }
        let stream = r.get_blob()?.to_vec();
        Ok(BlockGroup {
            shape,
            origins,
            stream,
        })
    }

    /// Serialized metadata size (everything except the SZ stream) — the
    /// "metadata overhead" the paper quantifies at ~0.1%.
    // tac-lint: allow(arith) -- size accounting over an in-memory group; the origin list already fits in RAM, so 12 bytes per entry cannot overflow usize.
    pub fn metadata_bytes(&self) -> usize {
        16 + self.origins.len() * 12 + 8
    }

    /// Cell-coordinate bounding box of the group: the union over its
    /// batched sub-blocks. Recorded in the v2 chunk table so ROI
    /// decoding can skip the group wholesale.
    pub fn aabb(&self) -> tac_amr::Aabb {
        self.origins
            .iter()
            .map(|&(x, y, z)| {
                tac_amr::Aabb::of_region((x as usize, y as usize, z as usize), self.shape)
            })
            .fold(tac_amr::Aabb::new((0, 0, 0), (0, 0, 0)), |a, b| a.union(&b))
    }

    /// Total serialized size.
    // tac-lint: allow(arith) -- size accounting over buffers already held in RAM.
    pub fn total_bytes(&self) -> usize {
        self.metadata_bytes() + self.stream.len()
    }
}

/// Compressed payload of one AMR level.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelPayload {
    /// Level had no present cells.
    Empty,
    /// Whole-grid rank-3 SZ stream (ZeroFill and GSP).
    Whole(Vec<u8>),
    /// Extracted sub-block groups (NaST, OpST, AKDTree).
    Groups(Vec<BlockGroup>),
}

/// One compressed AMR level with its strategy, resolved error bound, and
/// the scalar codec its streams were produced with.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedLevel {
    /// Strategy that produced the payload.
    pub strategy: Strategy,
    /// Grid side length of the level.
    pub dim: usize,
    /// Resolved absolute error bound used for this level.
    pub abs_eb: f64,
    /// Scalar-codec backend of every stream in the payload.
    pub codec: CodecId,
    /// Element type of every stream in the payload (`f64` for every
    /// pre-dtype container).
    pub dtype: TacDtype,
    /// The compressed payload.
    pub payload: LevelPayload,
}

// Payload wire tags. 0/1/2 are the legacy (pre-codec) encodings and
// imply the SZ codec; 3/4 are followed by a codec byte. The writer emits
// legacy tags for SZ payloads, so default-codec containers stay
// bit-compatible with pre-codec readers (and the golden fixtures).
// 5/6/7 are the f32 encodings: nothing before the dtype layer ever
// wrote them, so an absent f32 tag always means f64 and every legacy
// container parses unchanged. f32 payloads are post-legacy by
// construction, so their non-empty tags always carry the codec byte
// (no untagged-SZ special case to preserve).
const TAG_EMPTY: u8 = 0;
const TAG_WHOLE_SZ: u8 = 1;
const TAG_GROUPS_SZ: u8 = 2;
const TAG_WHOLE_TAGGED: u8 = 3;
const TAG_GROUPS_TAGGED: u8 = 4;
const TAG_EMPTY_F32: u8 = 5;
const TAG_WHOLE_F32: u8 = 6;
const TAG_GROUPS_F32: u8 = 7;

impl CompressedLevel {
    // tac-lint: allow(arith) -- writer-side width reduction: group counts come from the in-memory plan and are bounded by the grid volume.
    pub(crate) fn write(&self, w: &mut Writer) {
        w.put_u8(self.strategy.tag());
        w.put_u64(self.dim as u64);
        w.put_f64(self.abs_eb);
        if self.dtype == TacDtype::F32 {
            match &self.payload {
                LevelPayload::Empty => w.put_u8(TAG_EMPTY_F32),
                LevelPayload::Whole(stream) => {
                    w.put_u8(TAG_WHOLE_F32);
                    w.put_u8(self.codec.tag());
                    w.put_blob(stream);
                }
                LevelPayload::Groups(groups) => {
                    w.put_u8(TAG_GROUPS_F32);
                    w.put_u8(self.codec.tag());
                    w.put_u32(groups.len() as u32);
                    for g in groups {
                        g.write(w);
                    }
                }
            }
            return;
        }
        let legacy = self.codec == CodecId::Sz;
        match &self.payload {
            LevelPayload::Empty => w.put_u8(TAG_EMPTY),
            LevelPayload::Whole(stream) => {
                if legacy {
                    w.put_u8(TAG_WHOLE_SZ);
                } else {
                    w.put_u8(TAG_WHOLE_TAGGED);
                    w.put_u8(self.codec.tag());
                }
                w.put_blob(stream);
            }
            LevelPayload::Groups(groups) => {
                if legacy {
                    w.put_u8(TAG_GROUPS_SZ);
                } else {
                    w.put_u8(TAG_GROUPS_TAGGED);
                    w.put_u8(self.codec.tag());
                }
                w.put_u32(groups.len() as u32);
                for g in groups {
                    g.write(w);
                }
            }
        }
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, TacError> {
        let strategy = Strategy::from_tag(r.get_u8()?)?;
        let dim = r.get_u64()? as usize;
        // Bound the dimension here so every downstream `dim^3` (mask
        // checks, reconstruction buffers) stays overflow-free.
        if dim == 0 || dim > crate::container::MAX_FINEST_DIM {
            return Err(TacError::Corrupt(format!(
                "level dim {dim} outside the supported 1..={}",
                crate::container::MAX_FINEST_DIM
            )));
        }
        let abs_eb = r.get_f64()?;
        let tag = r.get_u8()?;
        let dtype = match tag {
            TAG_EMPTY_F32 | TAG_WHOLE_F32 | TAG_GROUPS_F32 => TacDtype::F32,
            _ => TacDtype::F64,
        };
        let codec = match tag {
            TAG_EMPTY | TAG_WHOLE_SZ | TAG_GROUPS_SZ | TAG_EMPTY_F32 => CodecId::Sz,
            TAG_WHOLE_TAGGED | TAG_GROUPS_TAGGED | TAG_WHOLE_F32 | TAG_GROUPS_F32 => {
                CodecId::from_tag(r.get_u8()?).map_err(TacError::Codec)?
            }
            t => return Err(TacError::Corrupt(format!("unknown payload tag {t}"))),
        };
        let payload = match tag {
            TAG_EMPTY | TAG_EMPTY_F32 => LevelPayload::Empty,
            TAG_WHOLE_SZ | TAG_WHOLE_TAGGED | TAG_WHOLE_F32 => {
                LevelPayload::Whole(r.get_blob()?.to_vec())
            }
            _ => {
                let n = r.get_u32()? as usize;
                if n > r.remaining() {
                    return Err(TacError::Corrupt(format!("{n} groups is implausible")));
                }
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    groups.push(BlockGroup::read(r)?);
                }
                LevelPayload::Groups(groups)
            }
        };
        Ok(CompressedLevel {
            strategy,
            dim,
            abs_eb,
            codec,
            dtype,
            payload,
        })
    }

    /// Serialized size in bytes.
    // tac-lint: allow(arith) -- size accounting over buffers already held in RAM.
    pub fn total_bytes(&self) -> usize {
        let codec_byte = match &self.payload {
            LevelPayload::Empty => 0,
            _ if self.dtype == TacDtype::F64 && self.codec == CodecId::Sz => 0,
            _ => 1,
        };
        let body = match &self.payload {
            LevelPayload::Empty => 0,
            LevelPayload::Whole(s) => 8 + s.len(),
            LevelPayload::Groups(gs) => 4 + gs.iter().map(|g| g.total_bytes()).sum::<usize>(),
        };
        1 + 8 + 8 + 1 + codec_byte + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_group_roundtrip() {
        let g = BlockGroup {
            shape: (16, 16, 8),
            origins: vec![(0, 0, 0), (16, 32, 48)],
            stream: vec![1, 2, 3, 4],
        };
        let mut w = Writer::new();
        g.write(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), g.total_bytes());
        let mut r = Reader::new(&bytes);
        assert_eq!(BlockGroup::read(&mut r).unwrap(), g);
    }

    #[test]
    fn level_roundtrip_all_payloads_and_codecs() {
        for codec in CodecId::all() {
            for payload in [
                // Empty payloads hold no streams: the engine pins their
                // codec to the default, and the wire does not tag them.
                LevelPayload::Whole(vec![9, 9, 9]),
                LevelPayload::Groups(vec![BlockGroup {
                    shape: (8, 8, 8),
                    origins: vec![(8, 0, 0)],
                    stream: vec![5; 10],
                }]),
            ] {
                let lvl = CompressedLevel {
                    strategy: Strategy::OpST,
                    dim: 64,
                    abs_eb: 1e-3,
                    codec,
                    dtype: TacDtype::F64,
                    payload,
                };
                let mut w = Writer::new();
                lvl.write(&mut w);
                let bytes = w.into_bytes();
                assert_eq!(bytes.len(), lvl.total_bytes());
                let mut r = Reader::new(&bytes);
                assert_eq!(CompressedLevel::read(&mut r).unwrap(), lvl);
            }
        }
        // Empty payloads roundtrip with the canonical default codec.
        let empty = CompressedLevel {
            strategy: Strategy::Empty,
            dim: 8,
            abs_eb: 0.0,
            codec: CodecId::default(),
            dtype: TacDtype::F64,
            payload: LevelPayload::Empty,
        };
        let mut w = Writer::new();
        empty.write(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), empty.total_bytes());
        let mut r = Reader::new(&bytes);
        assert_eq!(CompressedLevel::read(&mut r).unwrap(), empty);
    }

    #[test]
    fn sz_levels_use_the_legacy_untagged_encoding() {
        // Byte 17 is the payload tag (strategy u8 + dim u64 + eb f64).
        let lvl = |codec| CompressedLevel {
            strategy: Strategy::Gsp,
            dim: 8,
            abs_eb: 1e-3,
            codec,
            dtype: TacDtype::F64,
            payload: LevelPayload::Whole(vec![1, 2, 3]),
        };
        let bytes_of = |l: &CompressedLevel| {
            let mut w = Writer::new();
            l.write(&mut w);
            w.into_bytes()
        };
        let sz = bytes_of(&lvl(CodecId::Sz));
        assert_eq!(sz[17], 1, "SZ payloads keep the pre-codec tag");
        let pco = bytes_of(&lvl(CodecId::PcoLite));
        assert_eq!(pco[17], 3, "tagged payloads use the extended tag");
        assert_eq!(pco[18], CodecId::PcoLite.tag());
        assert_eq!(pco.len(), sz.len() + 1);
    }

    #[test]
    fn f32_levels_use_their_own_tags_and_roundtrip() {
        for codec in CodecId::all() {
            for (payload, want_tag) in [
                (LevelPayload::Empty, TAG_EMPTY_F32),
                (LevelPayload::Whole(vec![9, 9]), TAG_WHOLE_F32),
                (
                    LevelPayload::Groups(vec![BlockGroup {
                        shape: (4, 4, 4),
                        origins: vec![(0, 0, 0)],
                        stream: vec![7; 6],
                    }]),
                    TAG_GROUPS_F32,
                ),
            ] {
                let lvl = CompressedLevel {
                    strategy: Strategy::OpST,
                    dim: 16,
                    abs_eb: 1e-2,
                    // Empty payloads pin the canonical default codec.
                    codec: if payload == LevelPayload::Empty {
                        CodecId::default()
                    } else {
                        codec
                    },
                    dtype: TacDtype::F32,
                    payload,
                };
                let mut w = Writer::new();
                lvl.write(&mut w);
                let bytes = w.into_bytes();
                assert_eq!(bytes.len(), lvl.total_bytes());
                // Byte 17 is the payload tag (strategy u8 + dim u64 + eb f64).
                assert_eq!(bytes[17], want_tag);
                if want_tag != TAG_EMPTY_F32 {
                    assert_eq!(bytes[18], lvl.codec.tag(), "f32 always tags its codec");
                }
                let mut r = Reader::new(&bytes);
                assert_eq!(CompressedLevel::read(&mut r).unwrap(), lvl);
            }
        }
    }

    #[test]
    fn unknown_codec_byte_is_rejected() {
        let lvl = CompressedLevel {
            strategy: Strategy::OpST,
            dim: 8,
            abs_eb: 1e-3,
            codec: CodecId::PcoLite,
            dtype: TacDtype::F64,
            payload: LevelPayload::Whole(vec![1, 2, 3]),
        };
        let mut w = Writer::new();
        lvl.write(&mut w);
        let mut bytes = w.into_bytes();
        bytes[18] = 200; // codec byte
        let mut r = Reader::new(&bytes);
        let err = CompressedLevel::read(&mut r).unwrap_err();
        assert!(matches!(err, TacError::Codec(_)), "{err}");
    }

    #[test]
    fn truncated_group_is_rejected() {
        let g = BlockGroup {
            shape: (4, 4, 4),
            origins: vec![(0, 0, 0)],
            stream: vec![1],
        };
        let mut w = Writer::new();
        g.write(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(BlockGroup::read(&mut r).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn absurd_origin_count_is_rejected_before_allocating() {
        let mut w = Writer::new();
        w.put_u32(4);
        w.put_u32(4);
        w.put_u32(4);
        w.put_u32(u32::MAX); // count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(BlockGroup::read(&mut r).is_err());
    }
}
