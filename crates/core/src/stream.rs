//! Wire-format primitives and the per-level compressed payload types
//! shared by all strategies.

use crate::config::Strategy;
use crate::error::TacError;
use bytes::{Buf, BufMut};

/// Little-endian byte writer over a growable buffer.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Length-prefixed byte blob.
    pub fn put_blob(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_blob(v.as_bytes());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.buf.len()
    }
}

/// Checked little-endian reader over a byte slice.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn need(&self, n: usize) -> Result<(), TacError> {
        if self.buf.remaining() < n {
            Err(TacError::Corrupt(format!(
                "need {n} bytes, {} remain",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    pub fn get_u8(&mut self) -> Result<u8, TacError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    pub fn get_u32(&mut self) -> Result<u32, TacError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    pub fn get_u64(&mut self) -> Result<u64, TacError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    pub fn get_f64(&mut self) -> Result<f64, TacError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads a length-prefixed blob (borrowed).
    pub fn get_blob(&mut self) -> Result<&'a [u8], TacError> {
        let len = self.get_u64()? as usize;
        self.need(len)?;
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, TacError> {
        let blob = self.get_blob()?;
        String::from_utf8(blob.to_vec())
            .map_err(|_| TacError::Corrupt("invalid UTF-8 string".into()))
    }

    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// A group of same-shape extracted sub-blocks compressed as one rank-4 SZ
/// stream (the paper's "merge sub-blocks with the same size into the same
/// array").
#[derive(Debug, Clone, PartialEq)]
pub struct BlockGroup {
    /// Sub-block extents in **cells** `(w, h, d)`.
    pub shape: (usize, usize, usize),
    /// Cell-coordinate origins of each sub-block, in batch order.
    pub origins: Vec<(u32, u32, u32)>,
    /// SZ stream of shape `D4(w, h, d, origins.len())`.
    pub stream: Vec<u8>,
}

impl BlockGroup {
    pub(crate) fn write(&self, w: &mut Writer) {
        w.put_u32(self.shape.0 as u32);
        w.put_u32(self.shape.1 as u32);
        w.put_u32(self.shape.2 as u32);
        w.put_u32(self.origins.len() as u32);
        for &(x, y, z) in &self.origins {
            w.put_u32(x);
            w.put_u32(y);
            w.put_u32(z);
        }
        w.put_blob(&self.stream);
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, TacError> {
        let shape = (
            r.get_u32()? as usize,
            r.get_u32()? as usize,
            r.get_u32()? as usize,
        );
        let count = r.get_u32()? as usize;
        // Origins are 12 bytes each; bound the allocation by what the
        // buffer can actually hold.
        if count.saturating_mul(12) > r.remaining() {
            return Err(TacError::Corrupt(format!(
                "group declares {count} origins but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut origins = Vec::with_capacity(count);
        for _ in 0..count {
            origins.push((r.get_u32()?, r.get_u32()?, r.get_u32()?));
        }
        let stream = r.get_blob()?.to_vec();
        Ok(BlockGroup {
            shape,
            origins,
            stream,
        })
    }

    /// Serialized metadata size (everything except the SZ stream) — the
    /// "metadata overhead" the paper quantifies at ~0.1%.
    pub fn metadata_bytes(&self) -> usize {
        16 + self.origins.len() * 12 + 8
    }

    /// Total serialized size.
    pub fn total_bytes(&self) -> usize {
        self.metadata_bytes() + self.stream.len()
    }
}

/// Compressed payload of one AMR level.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelPayload {
    /// Level had no present cells.
    Empty,
    /// Whole-grid rank-3 SZ stream (ZeroFill and GSP).
    Whole(Vec<u8>),
    /// Extracted sub-block groups (NaST, OpST, AKDTree).
    Groups(Vec<BlockGroup>),
}

/// One compressed AMR level with its strategy and resolved error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedLevel {
    /// Strategy that produced the payload.
    pub strategy: Strategy,
    /// Grid side length of the level.
    pub dim: usize,
    /// Resolved absolute error bound used for this level.
    pub abs_eb: f64,
    /// The compressed payload.
    pub payload: LevelPayload,
}

impl CompressedLevel {
    pub(crate) fn write(&self, w: &mut Writer) {
        w.put_u8(self.strategy.tag());
        w.put_u64(self.dim as u64);
        w.put_f64(self.abs_eb);
        match &self.payload {
            LevelPayload::Empty => w.put_u8(0),
            LevelPayload::Whole(stream) => {
                w.put_u8(1);
                w.put_blob(stream);
            }
            LevelPayload::Groups(groups) => {
                w.put_u8(2);
                w.put_u32(groups.len() as u32);
                for g in groups {
                    g.write(w);
                }
            }
        }
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, TacError> {
        let strategy = Strategy::from_tag(r.get_u8()?)?;
        let dim = r.get_u64()? as usize;
        let abs_eb = r.get_f64()?;
        let payload = match r.get_u8()? {
            0 => LevelPayload::Empty,
            1 => LevelPayload::Whole(r.get_blob()?.to_vec()),
            2 => {
                let n = r.get_u32()? as usize;
                if n > r.remaining() {
                    return Err(TacError::Corrupt(format!("{n} groups is implausible")));
                }
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    groups.push(BlockGroup::read(r)?);
                }
                LevelPayload::Groups(groups)
            }
            t => return Err(TacError::Corrupt(format!("unknown payload tag {t}"))),
        };
        Ok(CompressedLevel {
            strategy,
            dim,
            abs_eb,
            payload,
        })
    }

    /// Serialized size in bytes.
    pub fn total_bytes(&self) -> usize {
        let body = match &self.payload {
            LevelPayload::Empty => 0,
            LevelPayload::Whole(s) => 8 + s.len(),
            LevelPayload::Groups(gs) => 4 + gs.iter().map(|g| g.total_bytes()).sum::<usize>(),
        };
        1 + 8 + 8 + 1 + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD);
        w.put_u64(1 << 40);
        w.put_f64(-2.5);
        w.put_blob(b"hello");
        w.put_str("Run1_Z10");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap(), -2.5);
        assert_eq!(r.get_blob().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "Run1_Z10");
        assert_eq!(r.remaining(), 0);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn block_group_roundtrip() {
        let g = BlockGroup {
            shape: (16, 16, 8),
            origins: vec![(0, 0, 0), (16, 32, 48)],
            stream: vec![1, 2, 3, 4],
        };
        let mut w = Writer::new();
        g.write(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), g.total_bytes());
        let mut r = Reader::new(&bytes);
        assert_eq!(BlockGroup::read(&mut r).unwrap(), g);
    }

    #[test]
    fn level_roundtrip_all_payloads() {
        for payload in [
            LevelPayload::Empty,
            LevelPayload::Whole(vec![9, 9, 9]),
            LevelPayload::Groups(vec![BlockGroup {
                shape: (8, 8, 8),
                origins: vec![(8, 0, 0)],
                stream: vec![5; 10],
            }]),
        ] {
            let lvl = CompressedLevel {
                strategy: Strategy::OpST,
                dim: 64,
                abs_eb: 1e-3,
                payload,
            };
            let mut w = Writer::new();
            lvl.write(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), lvl.total_bytes());
            let mut r = Reader::new(&bytes);
            assert_eq!(CompressedLevel::read(&mut r).unwrap(), lvl);
        }
    }

    #[test]
    fn truncated_group_is_rejected() {
        let g = BlockGroup {
            shape: (4, 4, 4),
            origins: vec![(0, 0, 0)],
            stream: vec![1],
        };
        let mut w = Writer::new();
        g.write(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(BlockGroup::read(&mut r).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn absurd_origin_count_is_rejected_before_allocating() {
        let mut w = Writer::new();
        w.put_u32(4);
        w.put_u32(4);
        w.put_u32(4);
        w.put_u32(u32::MAX); // count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(BlockGroup::read(&mut r).is_err());
    }
}
