//! Error type for TAC compression pipelines.

use std::fmt;
use tac_codec::CodecError;
use tac_sz::SzError;

/// Errors surfaced by dataset-level compression and decompression.
#[derive(Debug, Clone, PartialEq)]
pub enum TacError {
    /// A scalar-codec backend failed.
    Codec(CodecError),
    /// The SZ wire layer failed (container headers, truncated reads).
    Sz(SzError),
    /// The compressed container is malformed.
    Corrupt(String),
    /// Configuration is invalid (thresholds, unit size, level scales).
    InvalidConfig(String),
    /// The dataset violates AMR invariants needed by the method.
    InvalidDataset(String),
    /// A relative error bound cannot resolve because the data it must
    /// resolve against contains NaN or infinite values (the range is not
    /// finite, so no meaningful absolute bound exists). Absolute bounds
    /// accept non-finite values and store them verbatim instead.
    NonFinite(String),
    /// The resolved absolute error bound is positive in `f64` working
    /// precision but underflows to zero at the target element type, so
    /// the quantizer step would silently degenerate (every value
    /// unpredictable, or worse, a zero-width bin). Raised instead of
    /// propagating the meaningless bound — e.g. a relative bound over a
    /// tiny dynamic range on an `f32` field.
    DegenerateBound {
        /// The resolved absolute bound in `f64` working precision.
        abs_eb: f64,
        /// Label of the element type it underflows (`"f32"`).
        dtype: &'static str,
    },
}

impl fmt::Display for TacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TacError::Codec(e) => write!(f, "scalar codec: {e}"),
            TacError::Sz(e) => write!(f, "sz codec: {e}"),
            TacError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            TacError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TacError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            TacError::NonFinite(msg) => write!(f, "non-finite data: {msg}"),
            TacError::DegenerateBound { abs_eb, dtype } => write!(
                f,
                "error bound {abs_eb} underflows {dtype}: the quantizer \
                 step would be zero at that precision"
            ),
        }
    }
}

impl std::error::Error for TacError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TacError::Codec(e) => Some(e),
            TacError::Sz(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SzError> for TacError {
    fn from(e: SzError) -> Self {
        TacError::Sz(e)
    }
}

impl From<CodecError> for TacError {
    fn from(e: CodecError) -> Self {
        TacError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TacError::from(SzError::ZeroDimension);
        assert!(e.to_string().contains("sz codec"));
        assert!(std::error::Error::source(&e).is_some());
        let c = TacError::Corrupt("bad".into());
        assert!(c.to_string().contains("bad"));
        assert!(std::error::Error::source(&c).is_none());
        let k = TacError::from(CodecError::UnknownCodec(9));
        assert!(k.to_string().contains("scalar codec"));
        assert!(std::error::Error::source(&k).is_some());
        let n = TacError::NonFinite("range is NaN".into());
        assert!(n.to_string().contains("non-finite"));
        assert!(std::error::Error::source(&n).is_none());
        let d = TacError::DegenerateBound {
            abs_eb: 1e-46,
            dtype: "f32",
        };
        assert!(d.to_string().contains("underflows f32"), "{d}");
        assert!(std::error::Error::source(&d).is_none());
    }
}
