//! Shared sub-block extraction machinery for the sparse strategies.
//!
//! NaST, OpST, and AKDTree all end the same way: a list of disjoint
//! cuboid regions covering every non-empty unit block. This module turns
//! such a plan into per-group compression jobs ([`GroupPlan`] — same-
//! shape regions merged into one rank-4 SZ stream, per the paper), runs
//! one job ([`compress_group`]), and reverses the process
//! ([`decode_group`] / [`paste_group`]). The parallel engine flattens
//! `GroupPlan`s across levels into its task list; serial callers just
//! run them in order.

use crate::error::TacError;
use crate::stream::BlockGroup;
use tac_amr::{copy_region, paste_region, Aabb};
use tac_codec::{codec_for, CodecConfig, CodecElement, CodecId, Dims};
use tac_dtype::Element;

/// A cuboid region of a level, in **cell** coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Lowest-coordinate corner.
    pub origin: (usize, usize, usize),
    /// Extents `(w, h, d)`.
    pub shape: (usize, usize, usize),
}

impl Region {
    /// Number of cells covered.
    pub fn num_cells(&self) -> usize {
        self.shape.0 * self.shape.1 * self.shape.2
    }

    /// Bounding box of the region.
    pub fn aabb(&self) -> Aabb {
        Aabb::of_region(self.origin, self.shape)
    }
}

/// One planned compression job: same-shape regions batched into a single
/// rank-4 SZ stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct GroupPlan {
    /// Sub-block extents in cells.
    pub shape: (usize, usize, usize),
    /// Cell-coordinate origins, in plan order.
    pub origins: Vec<(usize, usize, usize)>,
}

impl GroupPlan {
    /// Total cells the job will read (the scheduler's cost estimate).
    pub fn num_cells(&self) -> usize {
        self.shape.0 * self.shape.1 * self.shape.2 * self.origins.len()
    }
}

/// Groups a region plan into compression jobs. Regions sharing a shape
/// merge into one job (first-seen shape order, so the plan — and the
/// bytes assembled from it — is deterministic). With `tile = Some(t)`,
/// the grouping key additionally buckets region origins into `t`-cell
/// tiles: jobs then stay spatially local, which bounds chunk extents in
/// the v2 container and makes region-of-interest decoding selective, at
/// the cost of slightly smaller SZ batches.
pub(crate) fn plan_groups(regions: &[Region], tile: Option<usize>) -> Vec<GroupPlan> {
    type Key = ((usize, usize, usize), (usize, usize, usize));
    let key_of = |r: &Region| -> Key {
        let bucket = match tile {
            Some(t) => (r.origin.0 / t, r.origin.1 / t, r.origin.2 / t),
            None => (0, 0, 0),
        };
        (r.shape, bucket)
    };
    // Hash index for O(1) key lookup; the Vec keeps first-seen order so
    // the plan stays deterministic (this runs in the serial planning
    // phase, and tiling can make the key count scale with the regions).
    let mut index: std::collections::HashMap<Key, usize> = std::collections::HashMap::new();
    let mut plans: Vec<GroupPlan> = Vec::new();
    for r in regions {
        match index.entry(key_of(r)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // The index was recorded at insertion, so it is always in
                // bounds; `get_mut` keeps the planner panic-free anyway.
                if let Some(plan) = plans.get_mut(*e.get()) {
                    plan.origins.push(r.origin);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(plans.len());
                plans.push(GroupPlan {
                    shape: r.shape,
                    origins: vec![r.origin],
                });
            }
        }
    }
    plans
}

/// Runs one planned job: gathers the batched region data out of the
/// level's flat array and compresses it as one rank-4 stream through the
/// given scalar codec. Generic over the element type; the width resolves
/// once per stream through [`CodecElement`].
pub(crate) fn compress_group<T: CodecElement>(
    data: &[T],
    dim: usize,
    plan: &GroupPlan,
    codec: CodecId,
    cfg: &CodecConfig,
) -> Result<BlockGroup, TacError> {
    let (w, h, d) = plan.shape;
    let mut batch = Vec::with_capacity(plan.num_cells());
    let mut origins = Vec::with_capacity(plan.origins.len());
    for &origin in &plan.origins {
        batch.extend_from_slice(&copy_region(data, dim, origin, plan.shape));
        origins.push((origin.0 as u32, origin.1 as u32, origin.2 as u32));
    }
    let stream = T::codec_compress(
        codec_for(codec),
        &batch,
        Dims::D4(w, h, d, plan.origins.len()),
        cfg,
    )?;
    Ok(BlockGroup {
        shape: plan.shape,
        origins,
        stream,
    })
}

/// Decodes one group's stream through the given codec, validating the
/// declared dimensions. A stream written by a different codec than the
/// container's tag claims fails the backend's magic check here; a stream
/// of the wrong element width fails the backend's dtype check.
pub(crate) fn decode_group<T: CodecElement>(
    g: &BlockGroup,
    codec: CodecId,
) -> Result<Vec<T>, TacError> {
    let (w, h, d) = g.shape;
    let (values, dims) = T::codec_decompress(codec_for(codec), &g.stream)?;
    if dims != Dims::D4(w, h, d, g.origins.len()) {
        return Err(TacError::Corrupt(format!(
            "group stream dims {dims:?} do not match shape {:?} x {}",
            g.shape,
            g.origins.len()
        )));
    }
    Ok(values)
}

/// Pastes a decoded group back into a dense `dim^3` grid.
pub(crate) fn paste_group<T: Element>(
    out: &mut [T],
    dim: usize,
    g: &BlockGroup,
    values: &[T],
) -> Result<(), TacError> {
    let (w, h, d) = g.shape;
    let block = w * h * d;
    for (i, &(x, y, z)) in g.origins.iter().enumerate() {
        let (x, y, z) = (x as usize, y as usize, z as usize);
        if x + w > dim || y + h > dim || z + d > dim {
            return Err(TacError::Corrupt(format!(
                "region at ({x},{y},{z}) shape {:?} exceeds grid {dim}",
                g.shape
            )));
        }
        // `decode_group` validated the stream's declared dims, but the
        // values really come from a decoded payload: slice defensively.
        let slice = i
            .checked_mul(block)
            .and_then(|start| {
                start
                    .checked_add(block)
                    .and_then(|end| values.get(start..end))
            })
            .ok_or_else(|| {
                TacError::Corrupt(format!("group stream holds no data for sub-block {i}"))
            })?;
        paste_region(out, dim, (x, y, z), (w, h, d), slice);
    }
    Ok(())
}

/// Decompresses groups back into a dense `dim^3` grid (cells outside every
/// region are zero).
pub(crate) fn decompress_groups<T: CodecElement>(
    groups: &[BlockGroup],
    dim: usize,
    codec: CodecId,
) -> Result<Vec<T>, TacError> {
    let mut out = vec![T::ZERO; dim * dim * dim];
    for g in groups {
        let values = decode_group::<T>(g, codec)?;
        paste_group(&mut out, dim, g, &values)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compress_all(
        data: &[f64],
        dim: usize,
        regions: &[Region],
        codec: CodecId,
        cfg: &CodecConfig,
        tile: Option<usize>,
    ) -> Vec<BlockGroup> {
        plan_groups(regions, tile)
            .iter()
            .map(|p| compress_group(data, dim, p, codec, cfg).unwrap())
            .collect()
    }

    #[test]
    fn regions_roundtrip_within_bound_for_every_codec() {
        let dim = 16;
        let data: Vec<f64> = (0..dim * dim * dim)
            .map(|i| (i as f64 * 0.01).sin() * 10.0)
            .collect();
        let regions = vec![
            Region {
                origin: (0, 0, 0),
                shape: (8, 8, 8),
            },
            Region {
                origin: (8, 8, 8),
                shape: (8, 8, 8),
            },
            Region {
                origin: (0, 8, 0),
                shape: (4, 4, 4),
            },
        ];
        for codec in CodecId::all() {
            let groups = compress_all(&data, dim, &regions, codec, &CodecConfig::abs(1e-3), None);
            assert_eq!(groups.len(), 2, "two shapes -> two groups");
            let out = decompress_groups::<f64>(&groups, dim, codec).unwrap();
            for r in &regions {
                for z in 0..r.shape.2 {
                    for y in 0..r.shape.1 {
                        for x in 0..r.shape.0 {
                            let i = (r.origin.0 + x)
                                + dim * ((r.origin.1 + y) + dim * (r.origin.2 + z));
                            assert!((out[i] - data[i]).abs() <= 1e-3, "{codec}");
                        }
                    }
                }
            }
            // Uncovered cell (15, 0, 0) stays zero.
            assert_eq!(out[15], 0.0);
        }
    }

    #[test]
    fn codec_mismatch_is_rejected_at_decode() {
        let dim = 8;
        let data = vec![1.0; dim * dim * dim];
        let regions = vec![Region {
            origin: (0, 0, 0),
            shape: (4, 4, 4),
        }];
        let groups = compress_all(
            &data,
            dim,
            &regions,
            CodecId::Sz,
            &CodecConfig::abs(1e-6),
            None,
        );
        // The stream is SZ but the caller claims PcoLite: magic check fails.
        let err = decode_group::<f64>(&groups[0], CodecId::PcoLite).unwrap_err();
        assert!(matches!(err, TacError::Codec(_)), "{err}");
    }

    #[test]
    fn same_shape_regions_share_one_stream() {
        let dim = 8;
        let data = vec![1.0; dim * dim * dim];
        let regions: Vec<Region> = (0..4)
            .map(|i| Region {
                origin: (0, 0, 2 * i),
                shape: (8, 8, 2),
            })
            .collect();
        let groups = compress_all(
            &data,
            dim,
            &regions,
            CodecId::Sz,
            &CodecConfig::abs(1e-6),
            None,
        );
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].origins.len(), 4);
    }

    #[test]
    fn tiling_splits_groups_spatially() {
        let dim = 8;
        let data = vec![1.0; dim * dim * dim];
        let regions: Vec<Region> = (0..4)
            .map(|i| Region {
                origin: (0, 0, 2 * i),
                shape: (8, 8, 2),
            })
            .collect();
        // A 4-cell tile buckets origins z=0,2 and z=4,6 separately.
        let plans = plan_groups(&regions, Some(4));
        assert_eq!(plans.len(), 2);
        let groups = compress_all(
            &data,
            dim,
            &regions,
            CodecId::Sz,
            &CodecConfig::abs(1e-6),
            Some(4),
        );
        assert_eq!(groups[0].aabb(), Aabb::new((0, 0, 0), (8, 8, 4)));
        assert_eq!(groups[1].aabb(), Aabb::new((0, 0, 4), (8, 8, 8)));
        // Roundtrip still exact.
        let out = decompress_groups::<f64>(&groups, dim, CodecId::Sz).unwrap();
        assert!(out.iter().all(|&v| (v - 1.0).abs() <= 1e-6));
    }

    #[test]
    fn group_plan_reports_cost_and_bbox() {
        let regions = vec![
            Region {
                origin: (0, 0, 0),
                shape: (4, 4, 4),
            },
            Region {
                origin: (12, 8, 4),
                shape: (4, 4, 4),
            },
        ];
        let plans = plan_groups(&regions, None);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].num_cells(), 128);
        assert_eq!(regions[0].aabb(), Aabb::new((0, 0, 0), (4, 4, 4)));
    }

    #[test]
    fn corrupt_origin_rejected() {
        let dim = 8;
        let data = vec![1.0; dim * dim * dim];
        let regions = vec![Region {
            origin: (0, 0, 0),
            shape: (4, 4, 4),
        }];
        let mut groups = compress_all(
            &data,
            dim,
            &regions,
            CodecId::Sz,
            &CodecConfig::abs(1e-6),
            None,
        );
        groups[0].origins[0] = (6, 0, 0); // 6 + 4 > 8
        assert!(decompress_groups::<f64>(&groups, dim, CodecId::Sz).is_err());
    }

    #[test]
    fn mismatched_stream_dims_rejected() {
        let dim = 8;
        let data = vec![1.0; dim * dim * dim];
        let regions = vec![Region {
            origin: (0, 0, 0),
            shape: (4, 4, 4),
        }];
        let mut groups = compress_all(
            &data,
            dim,
            &regions,
            CodecId::Sz,
            &CodecConfig::abs(1e-6),
            None,
        );
        groups[0].shape = (2, 2, 2);
        assert!(decompress_groups::<f64>(&groups, dim, CodecId::Sz).is_err());
    }
}
