//! Shared sub-block extraction machinery for the sparse strategies.
//!
//! NaST, OpST, and AKDTree all end the same way: a list of disjoint
//! cuboid regions covering every non-empty unit block. This module turns
//! such a plan into compressed [`BlockGroup`]s (same-shape regions merged
//! into one rank-4 SZ stream, per the paper) and back.

use crate::error::TacError;
use crate::stream::BlockGroup;
use crate::util::par_map;
use tac_amr::{copy_region, paste_region};
use tac_sz::{Dims, SzConfig};

/// A cuboid region of a level, in **cell** coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Lowest-coordinate corner.
    pub origin: (usize, usize, usize),
    /// Extents `(w, h, d)`.
    pub shape: (usize, usize, usize),
}

impl Region {
    /// Number of cells covered.
    pub fn num_cells(&self) -> usize {
        self.shape.0 * self.shape.1 * self.shape.2
    }
}

/// Compresses a region plan: groups regions by shape, batches each group
/// into a rank-4 array, and runs the SZ substrate per group (in parallel).
pub(crate) fn compress_regions(
    data: &[f64],
    dim: usize,
    regions: &[Region],
    sz_cfg: &SzConfig,
    threads: usize,
) -> Result<Vec<BlockGroup>, TacError> {
    // Group by shape, preserving first-seen shape order for determinism.
    let mut shapes: Vec<(usize, usize, usize)> = Vec::new();
    let mut grouped: Vec<Vec<&Region>> = Vec::new();
    for r in regions {
        match shapes.iter().position(|&s| s == r.shape) {
            Some(i) => grouped[i].push(r),
            None => {
                shapes.push(r.shape);
                grouped.push(vec![r]);
            }
        }
    }
    let jobs: Vec<(usize, Vec<&Region>)> = grouped.into_iter().enumerate().collect();
    let results = par_map(threads, &jobs, |(shape_idx, group)| {
        let (w, h, d) = shapes[*shape_idx];
        let mut batch = Vec::with_capacity(w * h * d * group.len());
        let mut origins = Vec::with_capacity(group.len());
        for r in group {
            batch.extend_from_slice(&copy_region(data, dim, r.origin, r.shape));
            origins.push((r.origin.0 as u32, r.origin.1 as u32, r.origin.2 as u32));
        }
        let stream = tac_sz::compress(&batch, Dims::D4(w, h, d, group.len()), sz_cfg)?;
        Ok::<BlockGroup, TacError>(BlockGroup {
            shape: (w, h, d),
            origins,
            stream,
        })
    });
    results.into_iter().collect()
}

/// Decompresses groups back into a dense `dim^3` grid (cells outside every
/// region are zero).
pub(crate) fn decompress_groups(groups: &[BlockGroup], dim: usize) -> Result<Vec<f64>, TacError> {
    let mut out = vec![0.0f64; dim * dim * dim];
    for g in groups {
        let (w, h, d) = g.shape;
        let (values, dims) = tac_sz::decompress(&g.stream)?;
        if dims != Dims::D4(w, h, d, g.origins.len()) {
            return Err(TacError::Corrupt(format!(
                "group stream dims {dims:?} do not match shape {:?} x {}",
                g.shape,
                g.origins.len()
            )));
        }
        let block = w * h * d;
        for (i, &(x, y, z)) in g.origins.iter().enumerate() {
            let (x, y, z) = (x as usize, y as usize, z as usize);
            if x + w > dim || y + h > dim || z + d > dim {
                return Err(TacError::Corrupt(format!(
                    "region at ({x},{y},{z}) shape {:?} exceeds grid {dim}",
                    g.shape
                )));
            }
            paste_region(
                &mut out,
                dim,
                (x, y, z),
                (w, h, d),
                &values[i * block..(i + 1) * block],
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac_sz::ErrorBound;

    fn sz_cfg(eb: f64) -> SzConfig {
        SzConfig {
            error_bound: ErrorBound::Abs(eb),
            ..SzConfig::default()
        }
    }

    #[test]
    fn regions_roundtrip_within_bound() {
        let dim = 16;
        let data: Vec<f64> = (0..dim * dim * dim)
            .map(|i| (i as f64 * 0.01).sin() * 10.0)
            .collect();
        let regions = vec![
            Region {
                origin: (0, 0, 0),
                shape: (8, 8, 8),
            },
            Region {
                origin: (8, 8, 8),
                shape: (8, 8, 8),
            },
            Region {
                origin: (0, 8, 0),
                shape: (4, 4, 4),
            },
        ];
        let groups = compress_regions(&data, dim, &regions, &sz_cfg(1e-3), 2).unwrap();
        assert_eq!(groups.len(), 2, "two shapes -> two groups");
        let out = decompress_groups(&groups, dim).unwrap();
        for r in &regions {
            for z in 0..r.shape.2 {
                for y in 0..r.shape.1 {
                    for x in 0..r.shape.0 {
                        let i =
                            (r.origin.0 + x) + dim * ((r.origin.1 + y) + dim * (r.origin.2 + z));
                        assert!((out[i] - data[i]).abs() <= 1e-3);
                    }
                }
            }
        }
        // Uncovered cell (15, 0, 0) stays zero.
        assert_eq!(out[15], 0.0);
    }

    #[test]
    fn same_shape_regions_share_one_stream() {
        let dim = 8;
        let data = vec![1.0; dim * dim * dim];
        let regions: Vec<Region> = (0..4)
            .map(|i| Region {
                origin: (0, 0, 2 * i),
                shape: (8, 8, 2),
            })
            .collect();
        let groups = compress_regions(&data, dim, &regions, &sz_cfg(1e-6), 1).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].origins.len(), 4);
    }

    #[test]
    fn corrupt_origin_rejected() {
        let dim = 8;
        let data = vec![1.0; dim * dim * dim];
        let regions = vec![Region {
            origin: (0, 0, 0),
            shape: (4, 4, 4),
        }];
        let mut groups = compress_regions(&data, dim, &regions, &sz_cfg(1e-6), 1).unwrap();
        groups[0].origins[0] = (6, 0, 0); // 6 + 4 > 8
        assert!(decompress_groups(&groups, dim).is_err());
    }

    #[test]
    fn mismatched_stream_dims_rejected() {
        let dim = 8;
        let data = vec![1.0; dim * dim * dim];
        let regions = vec![Region {
            origin: (0, 0, 0),
            shape: (4, 4, 4),
        }];
        let mut groups = compress_regions(&data, dim, &regions, &sz_cfg(1e-6), 1).unwrap();
        groups[0].shape = (2, 2, 2);
        assert!(decompress_groups(&groups, dim).is_err());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let dim = 16;
        let data: Vec<f64> = (0..dim * dim * dim).map(|i| (i % 97) as f64).collect();
        let regions: Vec<Region> = (0..8)
            .map(|i| Region {
                origin: ((i % 2) * 8, ((i / 2) % 2) * 8, (i / 4) * 8),
                shape: (8, 8, 8),
            })
            .collect();
        let a = compress_regions(&data, dim, &regions, &sz_cfg(1e-4), 1).unwrap();
        let b = compress_regions(&data, dim, &regions, &sz_cfg(1e-4), 4).unwrap();
        assert_eq!(a, b);
    }
}
