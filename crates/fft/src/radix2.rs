//! In-place iterative radix-2 Cooley–Tukey FFT.
//!
//! The transform is unnormalized in the forward direction; the inverse
//! applies the `1/n` factor, so `ifft(fft(x)) == x`. Twiddle factors for a
//! given length are precomputed once in an [`FftPlan`] and reused across
//! calls — the planner pattern keeps the hot loop free of `sin`/`cos`.

use crate::complex::Complex;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward transform, `X_k = sum_j x_j e^{-2 pi i jk/n}` (unnormalized).
    Forward,
    /// Inverse transform, normalized by `1/n`.
    Inverse,
}

/// A reusable FFT plan for a fixed power-of-two length.
///
/// Construction precomputes the bit-reversal permutation and the per-stage
/// twiddle factors. `process` then runs in `O(n log n)` with no allocation.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index for each position (identity for n <= 2).
    bitrev: Vec<u32>,
    /// Forward twiddles, laid out stage by stage: for stage length `m`
    /// (2, 4, .., n) the `m/2` factors `e^{-2 pi i k/m}`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        assert!(
            n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let bits = n.trailing_zeros();
        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        // Total twiddle count: 1 + 2 + 4 + ... + n/2 = n - 1.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut m = 2usize;
        while m <= n {
            let half = m / 2;
            let step = -2.0 * std::f64::consts::PI / m as f64;
            for k in 0..half {
                twiddles.push(Complex::cis(step * k as f64));
            }
            m <<= 1;
        }
        FftPlan {
            n,
            bitrev,
            twiddles,
        }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is 1 (the degenerate transform).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Runs the transform in place on `data`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn process(&self, data: &mut [Complex], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length must match plan length");
        let n = self.n;
        if n == 1 {
            return;
        }
        // For the inverse transform we use the conjugation identity:
        // ifft(x) = conj(fft(conj(x))) / n, reusing forward twiddles.
        if dir == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterfly stages.
        let mut m = 2usize;
        let mut tw_base = 0usize;
        while m <= n {
            let half = m / 2;
            let tw = &self.twiddles[tw_base..tw_base + half];
            let mut start = 0usize;
            while start < n {
                for k in 0..half {
                    let even = data[start + k];
                    let odd = data[start + k + half] * tw[k];
                    data[start + k] = even + odd;
                    data[start + k + half] = even - odd;
                }
                start += m;
            }
            tw_base += half;
            m <<= 1;
        }
        if dir == Direction::Inverse {
            let inv_n = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z = z.conj() * inv_n;
            }
        }
    }
}

/// One-shot forward FFT of `data` (length must be a power of two).
pub fn fft(data: &mut [Complex]) {
    FftPlan::new(data.len()).process(data, Direction::Forward);
}

/// One-shot inverse FFT of `data` (length must be a power of two).
pub fn ifft(data: &mut [Complex]) {
    FftPlan::new(data.len()).process(data, Direction::Inverse);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} != {y:?}"
            );
        }
    }

    /// O(n^2) reference DFT.
    fn dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in data.iter().enumerate() {
                    let theta = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    acc += x * Complex::cis(theta);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let want = dft(&data);
            let mut got = data.clone();
            fft(&mut got);
            assert_close(&got, &want, 1e-9 * n as f64);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 256;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sqrt(), (i % 7) as f64 - 3.0))
            .collect();
        let mut buf = data.clone();
        fft(&mut buf);
        ifft(&mut buf);
        assert_close(&buf, &data, 1e-10);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let mut buf = vec![Complex::ZERO; n];
        buf[0] = Complex::ONE;
        fft(&mut buf);
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 32;
        let mut buf = vec![Complex::ONE; n];
        fft(&mut buf);
        assert!((buf[0].re - n as f64).abs() < 1e-10);
        for z in &buf[1..] {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((i * i) % 13) as f64, ((i * 7) % 5) as f64))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = data;
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn plan_is_reusable() {
        let plan = FftPlan::new(64);
        for seed in 0..4 {
            let data: Vec<Complex> = (0..64)
                .map(|i| Complex::new(((i + seed) as f64 * 0.9).sin(), 0.0))
                .collect();
            let mut buf = data.clone();
            plan.process(&mut buf, Direction::Forward);
            plan.process(&mut buf, Direction::Inverse);
            for (a, b) in buf.iter().zip(&data) {
                assert!((a.re - b.re).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "must match plan length")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.process(&mut buf, Direction::Forward);
    }
}
