//! Minimal complex-number arithmetic used by the FFT kernels.
//!
//! A dedicated type (rather than `(f64, f64)` tuples) keeps the butterfly
//! code readable and lets the compiler keep values in registers.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{i theta}` — a unit complex number at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|^2` (avoids the square root of [`Complex::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_manual_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 0.5);
        // (2+3i)(-1+0.5i) = -2 + 1i - 3i + 1.5 i^2 = -3.5 - 2i
        assert!(close(a * b, Complex::new(-3.5, -2.0)));
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex::new(1.0, 2.0);
        assert!(close(z.conj(), Complex::new(1.0, -2.0)));
        // z * conj(z) == |z|^2
        assert!(close(z * z.conj(), Complex::from_real(z.norm_sqr())));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn scale_and_div() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z * 2.0, Complex::new(6.0, -8.0)));
        assert!(close(z / 2.0, Complex::new(1.5, -2.0)));
    }
}
