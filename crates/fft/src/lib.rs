#![forbid(unsafe_code)]

//! # tac-fft
//!
//! A small, dependency-light FFT library used by the TAC reproduction for
//! two jobs:
//!
//! 1. synthesizing Gaussian random fields in `tac-nyx` (inverse 3D FFT of a
//!    random spectrum), and
//! 2. measuring the matter power spectrum in `tac-analysis` (forward 3D FFT
//!    of the density contrast).
//!
//! The implementation is an iterative radix-2 Cooley–Tukey transform with a
//! precomputed [`FftPlan`] (twiddles + bit-reversal), plus a separable 3D
//! driver [`Fft3Plan`] that parallelizes independent lines across scoped
//! threads.
//!
//! ```
//! use tac_fft::{Complex, fft, ifft};
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::from_real(i as f64)).collect();
//! let original = data.clone();
//! fft(&mut data);
//! ifft(&mut data);
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! ```

#![warn(missing_docs)]

mod complex;
mod dim3;
mod radix2;

pub use complex::Complex;
pub use dim3::{fft3_real, ifft3_to_real, Fft3Plan};
pub use radix2::{fft, ifft, Direction, FftPlan};
