//! 3D FFT over cubic (and rectangular power-of-two) grids.
//!
//! The 3D transform is separable: apply the 1D transform along x, then y,
//! then z. Lines along each axis are independent, so they are distributed
//! over std scoped threads (the fork–join idiom the hpc-parallel guides
//! recommend; rayon is outside the allowed crate set).

use crate::complex::Complex;
use crate::radix2::{Direction, FftPlan};

/// A plan for 3D transforms of shape `(nx, ny, nz)`, each a power of two.
///
/// Data layout is row-major with `x` fastest: index `(x, y, z)` maps to
/// `x + nx * (y + ny * z)`.
#[derive(Debug, Clone)]
pub struct Fft3Plan {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
    /// Number of worker threads used for the batched line transforms.
    threads: usize,
}

impl Fft3Plan {
    /// Creates a plan for a cubic grid of side `n`.
    pub fn cubic(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Creates a plan for an `(nx, ny, nz)` grid; each extent must be a
    /// power of two.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(16);
        Fft3Plan {
            nx,
            ny,
            nz,
            plan_x: FftPlan::new(nx),
            plan_y: FftPlan::new(ny),
            plan_z: FftPlan::new(nz),
            threads,
        }
    }

    /// Overrides the worker-thread count (1 forces sequential execution).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Whether the grid is empty (never true for valid plans).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid shape `(nx, ny, nz)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Runs the 3D transform in place.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny * nz`.
    pub fn process(&self, data: &mut [Complex], dir: Direction) {
        assert_eq!(
            data.len(),
            self.len(),
            "buffer length must be nx*ny*nz = {}",
            self.len()
        );
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);

        // Pass 1: lines along x are contiguous; each (y,z) pair is one line.
        self.for_each_chunk(data, nx, |line| {
            self.plan_x.process(line, dir);
        });

        // Pass 2: lines along y (stride nx). Gather into a scratch buffer,
        // transform, scatter back. Parallelized over z-slabs: each z-slab
        // of size nx*ny is independent.
        let slab = nx * ny;
        self.for_each_chunk(data, slab, |zslab| {
            let mut scratch = vec![Complex::ZERO; ny];
            for x in 0..nx {
                for (y, s) in scratch.iter_mut().enumerate() {
                    *s = zslab[x + nx * y];
                }
                self.plan_y.process(&mut scratch, dir);
                for (y, s) in scratch.iter().enumerate() {
                    zslab[x + nx * y] = *s;
                }
            }
        });

        // Pass 3: lines along z (stride nx*ny). Parallelized over y-rows:
        // for a fixed y, the sub-array {(x, y, z) : all x, z} touches
        // disjoint memory for different y.
        if nz > 1 {
            self.for_each_row_z(data, dir);
        }
    }

    /// Splits `data` into equally sized `chunk` pieces and applies `f` to
    /// each, using scoped threads when the piece count is large enough.
    fn for_each_chunk<F>(&self, data: &mut [Complex], chunk: usize, f: F)
    where
        F: Fn(&mut [Complex]) + Sync,
    {
        self.for_each_chunk_indexed(data, chunk, |_, piece| f(piece));
    }

    /// Like [`Self::for_each_chunk`], but passes each piece's index (its
    /// position in `data.chunks_exact(chunk)` order) alongside the piece.
    fn for_each_chunk_indexed<F>(&self, data: &mut [Complex], chunk: usize, f: F)
    where
        F: Fn(usize, &mut [Complex]) + Sync,
    {
        let pieces = data.len() / chunk;
        if self.threads <= 1 || pieces < 2 {
            for (i, piece) in data.chunks_exact_mut(chunk).enumerate() {
                f(i, piece);
            }
            return;
        }
        let per_worker = pieces.div_ceil(self.threads);
        std::thread::scope(|scope| {
            for (w, worker_slice) in data.chunks_mut(per_worker * chunk).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    for (i, piece) in worker_slice.chunks_exact_mut(chunk).enumerate() {
                        f(w * per_worker + i, piece);
                    }
                });
            }
        });
    }

    /// Transforms along z. Lines along z interleave in memory (stride
    /// nx*ny), so the mutable grid cannot be split into disjoint
    /// per-thread slices directly. Instead: gather every z-line into a
    /// z-fastest transpose (whose lines ARE contiguous, so they chunk
    /// disjointly), transform there, and scatter back slab by slab. Each
    /// phase mutates only contiguous chunks of one array while reading
    /// the other shared — borrow-checked parallelism, no `unsafe` — at
    /// the cost of one extra nx*ny*nz scratch buffer.
    fn for_each_row_z(&self, data: &mut [Complex], dir: Direction) {
        let (nx, nz) = (self.nx, self.nz);
        let slab = nx * self.ny;
        let mut lines = vec![Complex::ZERO; data.len()];
        {
            let src: &[Complex] = data;
            // Chunk i of `lines` is the z-line through (x, y) with
            // i = x + nx*y, i.e. source offset i within each z-slab.
            self.for_each_chunk_indexed(&mut lines, nz, |i, line| {
                for (z, s) in line.iter_mut().enumerate() {
                    *s = src[i + slab * z];
                }
                self.plan_z.process(line, dir);
            });
        }
        let lines = &lines;
        self.for_each_chunk_indexed(data, slab, |z, zslab| {
            for (i, d) in zslab.iter_mut().enumerate() {
                *d = lines[nz * i + z];
            }
        });
    }
}

/// Forward 3D FFT of a real scalar field; returns the complex spectrum.
///
/// Layout matches [`Fft3Plan`]: `x` fastest.
pub fn fft3_real(field: &[f64], nx: usize, ny: usize, nz: usize) -> Vec<Complex> {
    assert_eq!(field.len(), nx * ny * nz);
    let mut buf: Vec<Complex> = field.iter().map(|&v| Complex::from_real(v)).collect();
    Fft3Plan::new(nx, ny, nz).process(&mut buf, Direction::Forward);
    buf
}

/// Inverse 3D FFT returning only the real part (imaginary parts are
/// discarded; for Hermitian spectra they are numerically ~0).
pub fn ifft3_to_real(spectrum: &mut [Complex], nx: usize, ny: usize, nz: usize) -> Vec<f64> {
    assert_eq!(spectrum.len(), nx * ny * nz);
    Fft3Plan::new(nx, ny, nz).process(spectrum, Direction::Inverse);
    spectrum.iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_3d() {
        let (nx, ny, nz) = (8, 4, 16);
        let field: Vec<f64> = (0..nx * ny * nz)
            .map(|i| ((i * 37) % 101) as f64 * 0.01 - 0.5)
            .collect();
        let mut buf: Vec<Complex> = field.iter().map(|&v| Complex::from_real(v)).collect();
        let plan = Fft3Plan::new(nx, ny, nz);
        plan.process(&mut buf, Direction::Forward);
        plan.process(&mut buf, Direction::Inverse);
        for (z, &want) in buf.iter().zip(&field) {
            assert!((z.re - want).abs() < 1e-10 && z.im.abs() < 1e-10);
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let n = 16;
        let field: Vec<f64> = (0..n * n * n).map(|i| (i as f64 * 0.013).sin()).collect();
        let mut par: Vec<Complex> = field.iter().map(|&v| Complex::from_real(v)).collect();
        let mut seq = par.clone();
        Fft3Plan::cubic(n).process(&mut par, Direction::Forward);
        Fft3Plan::cubic(n)
            .with_threads(1)
            .process(&mut seq, Direction::Forward);
        for (a, b) in par.iter().zip(&seq) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn single_mode_has_energy_at_expected_bin() {
        // f(x,y,z) = cos(2 pi * 3x / nx) puts power at kx = 3 (and nx-3).
        let n = 16;
        let mut field = vec![0.0f64; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    field[x + n * (y + n * z)] =
                        (2.0 * std::f64::consts::PI * 3.0 * x as f64 / n as f64).cos();
                }
            }
        }
        let spec = fft3_real(&field, n, n, n);
        let total: f64 = spec.iter().map(|z| z.norm_sqr()).sum();
        let at_k3 = spec[3].norm_sqr() + spec[n - 3].norm_sqr();
        assert!(at_k3 / total > 0.999, "energy leaked: {at_k3} of {total}");
    }

    #[test]
    fn real_field_spectrum_is_hermitian() {
        let n = 8;
        let field: Vec<f64> = (0..n * n * n)
            .map(|i| ((i * 7919) % 65536) as f64)
            .collect();
        let spec = fft3_real(&field, n, n, n);
        // X(-k) == conj(X(k)) where -k is modular.
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let a = spec[x + n * (y + n * z)];
                    let b = spec[(n - x) % n + n * ((n - y) % n + n * ((n - z) % n))];
                    assert!((a.re - b.re).abs() < 1e-6 * (1.0 + a.re.abs()));
                    assert!((a.im + b.im).abs() < 1e-6 * (1.0 + a.im.abs()));
                }
            }
        }
    }

    #[test]
    fn dc_bin_is_the_sum() {
        let n = 8;
        let field: Vec<f64> = (0..n * n * n).map(|i| (i % 10) as f64).collect();
        let sum: f64 = field.iter().sum();
        let spec = fft3_real(&field, n, n, n);
        assert!((spec[0].re - sum).abs() < 1e-8 * sum);
        assert!(spec[0].im.abs() < 1e-8 * sum.max(1.0));
    }
}
