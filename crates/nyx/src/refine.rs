//! Refinement-mask construction: turns a uniform field into a tree-based
//! AMR dataset whose per-level densities match a target specification.
//!
//! Real AMR codes refine a region when its value (or gradient) exceeds a
//! threshold. To reproduce the *exact* density geometry of the paper's
//! Table 1 datasets we invert that: rank regions by their refinement score
//! (block maximum of the field — the `max value > threshold` criterion)
//! and refine precisely enough of the highest-scoring regions to hit each
//! level's target density. The resulting masks are spatially coherent —
//! refined regions cluster around the field's peaks, as in the paper's
//! Fig. 4 — and the densities land within integer rounding of the spec.

use tac_amr::{AmrDataset, AmrLevel};

/// Target per-level densities, **fine to coarse** (Table 1 ordering).
///
/// For a valid tree-based dataset the densities must satisfy
/// `sum_l d_l = 1` (each level's density equals the fraction of the
/// domain volume it covers). Specs that sum to slightly less than 1 (the
/// paper's Run2_T4 row) are repaired by assigning the slack to the
/// coarsest level.
#[derive(Debug, Clone)]
pub struct RefinementSpec {
    densities: Vec<f64>,
}

impl RefinementSpec {
    /// Creates a spec; densities are fine-to-coarse fractions in [0, 1].
    ///
    /// # Panics
    /// Panics if empty, if any density is outside [0, 1], or if the sum
    /// exceeds 1 by more than 1%.
    pub fn new(densities: Vec<f64>) -> Self {
        assert!(!densities.is_empty(), "need at least one level");
        assert!(
            densities.iter().all(|&d| (0.0..=1.0).contains(&d)),
            "densities must be fractions in [0, 1]"
        );
        let sum: f64 = densities.iter().sum();
        assert!(sum <= 1.01, "densities sum to {sum} > 1");
        RefinementSpec { densities }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.densities.len()
    }

    /// Target densities, fine to coarse.
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }
}

/// Builds an AMR dataset from `uniform` (an `n^3` grid, x fastest) with
/// level densities matching `spec`.
///
/// Present coarse cells store the **mean** of the fine values they cover
/// (the restriction operator); finest-level cells store exact values.
///
/// # Panics
/// Panics if `n` is not divisible by `2^(levels-1)` or the data length is
/// wrong.
pub fn build_amr(
    name: impl Into<String>,
    uniform: &[f64],
    n: usize,
    spec: &RefinementSpec,
) -> AmrDataset {
    assert_eq!(uniform.len(), n * n * n, "uniform grid size mismatch");
    let levels = spec.num_levels();
    assert!(
        n % (1 << (levels - 1)) == 0,
        "grid side {n} not divisible by 2^{}",
        levels - 1
    );

    // Per-level score pyramids (block maxima) and mean pyramids
    // (restriction values), finest first. The score is the field value
    // times a deterministic jitter factor: real refinement criteria
    // (gradient norms, per-patch thresholds) do not rank-order the domain
    // strictly by value, so moderate-value regions stay coarse too. The
    // jitter reproduces that value mixing while keeping densities exact.
    let mut score_pyramid: Vec<Vec<f64>> = Vec::with_capacity(levels);
    let mut mean_pyramid: Vec<Vec<f64>> = Vec::with_capacity(levels);
    // Jitter is constant across 4^3-cell patches: AMReX refines whole
    // rectangular patches (blocking factor >= 4), so refinement masks are
    // blocky, never cell-speckled. Patch-granular jitter preserves that.
    let jittered: Vec<f64> = uniform
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let x = (i % n) >> 3;
            let y = ((i / n) % n) >> 3;
            let z = (i / (n * n)) >> 3;
            let patch = (x + n * (y + n * z)) as u64;
            // splitmix64 of the patch id -> uniform in [-1, 1).
            let mut h = patch.wrapping_add(0x9E37_79B9_7F4A_7C15);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            let u = (h >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
            v * (0.6 * u).exp()
        })
        .collect();
    score_pyramid.push(jittered);
    mean_pyramid.push(uniform.to_vec());
    for l in 1..levels {
        let fine_dim = n >> (l - 1);
        let dim = n >> l;
        let finer_score = &score_pyramid[l - 1];
        let finer_mean = &mean_pyramid[l - 1];
        let mut score = vec![f64::MIN; dim * dim * dim];
        let mut mean = vec![0.0f64; dim * dim * dim];
        for z in 0..fine_dim {
            for y in 0..fine_dim {
                for x in 0..fine_dim {
                    let src = x + fine_dim * (y + fine_dim * z);
                    let dst = (x / 2) + dim * ((y / 2) + dim * (z / 2));
                    score[dst] = score[dst].max(finer_score[src]);
                    mean[dst] += finer_mean[src] * 0.125;
                }
            }
        }
        score_pyramid.push(score);
        mean_pyramid.push(mean);
    }

    // Integer targets per level (how many cells stay *present*). The
    // finest level absorbs all remaining coverage.
    let mut targets: Vec<usize> = (0..levels)
        .map(|l| {
            let dim = n >> l;
            (spec.densities[l] * (dim * dim * dim) as f64).round() as usize
        })
        .collect();

    // Top-down assignment, coarsest first. `candidates` holds flat cell
    // indices of the current level still unassigned.
    let mut amr_levels: Vec<AmrLevel> = (0..levels).map(|l| AmrLevel::empty(n >> l)).collect();
    let coarsest = levels - 1;
    let coarsest_dim = n >> coarsest;
    let mut candidates: Vec<usize> = (0..coarsest_dim * coarsest_dim * coarsest_dim).collect();

    for l in (0..levels).rev() {
        let dim = n >> l;
        if l == 0 {
            // Finest level keeps everything still on the table.
            targets[0] = candidates.len();
        }
        let keep = targets[l].min(candidates.len());
        // Highest score refines; keep the lowest-score cells here. Sorting
        // by (score, index) makes the construction deterministic.
        let scores = &score_pyramid[l];
        candidates.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let means = &mean_pyramid[l];
        for &cell in candidates.iter().take(keep) {
            let x = cell % dim;
            let y = (cell / dim) % dim;
            let z = cell / (dim * dim);
            amr_levels[l].set_value(x, y, z, means[cell]);
        }
        if l == 0 {
            break;
        }
        // Refined cells spawn 8 children as next-level candidates.
        let child_dim = dim * 2;
        let mut next = Vec::with_capacity((candidates.len() - keep) * 8);
        for &cell in candidates.iter().skip(keep) {
            let x = cell % dim;
            let y = (cell / dim) % dim;
            let z = cell / (dim * dim);
            for dz in 0..2 {
                for dy in 0..2 {
                    for dx in 0..2 {
                        next.push(
                            (2 * x + dx) + child_dim * ((2 * y + dy) + child_dim * (2 * z + dz)),
                        );
                    }
                }
            }
        }
        candidates = next;
    }

    AmrDataset::new(name, amr_levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grf::{gaussian_random_field, SpectrumModel};

    fn test_field(n: usize, seed: u64) -> Vec<f64> {
        gaussian_random_field(n, &SpectrumModel::default(), seed)
    }

    #[test]
    fn two_level_densities_hit_target() {
        let n = 32;
        let field = test_field(n, 1);
        let spec = RefinementSpec::new(vec![0.23, 0.77]);
        let ds = build_amr("z10ish", &field, n, &spec);
        ds.validate().unwrap();
        let d = ds.densities();
        assert!((d[0] - 0.23).abs() < 0.02, "fine density {}", d[0]);
        assert!((d[1] - 0.77).abs() < 0.02, "coarse density {}", d[1]);
    }

    #[test]
    fn four_level_dataset_is_valid() {
        let n = 64;
        let field = test_field(n, 2);
        let spec = RefinementSpec::new(vec![3e-5, 0.0002, 0.022, 0.977]);
        let ds = build_amr("t4ish", &field, n, &spec);
        ds.validate().unwrap();
        assert_eq!(ds.num_levels(), 4);
        // Coarsest density close to target.
        let d = ds.densities();
        assert!((d[3] - 0.977).abs() < 0.03, "coarsest density {}", d[3]);
    }

    #[test]
    fn refinement_follows_peaks() {
        // Plant one huge peak; the finest level must be present there.
        let n = 16;
        let mut field = vec![0.0f64; n * n * n];
        field[5 + n * (6 + n * 7)] = 100.0;
        let spec = RefinementSpec::new(vec![0.1, 0.9]);
        let ds = build_amr("peak", &field, n, &spec);
        ds.validate().unwrap();
        assert!(ds.finest().present(5, 6, 7), "peak cell must be refined");
    }

    #[test]
    fn coarse_values_are_block_means() {
        let n = 8;
        let field: Vec<f64> = (0..n * n * n).map(|i| i as f64).collect();
        let spec = RefinementSpec::new(vec![0.0, 1.0]); // nothing refined
        let ds = build_amr("means", &field, n, &spec);
        ds.validate().unwrap();
        let coarse = &ds.levels()[1];
        // Cell (0,0,0) covers fine block [0,2)^3: mean of those indices.
        let mut want = 0.0;
        for z in 0..2 {
            for y in 0..2 {
                for x in 0..2 {
                    want += (x + n * (y + n * z)) as f64 / 8.0;
                }
            }
        }
        assert!((coarse.value(0, 0, 0) - want).abs() < 1e-9);
    }

    #[test]
    fn single_level_spec_keeps_everything() {
        let n = 8;
        let field = test_field(n, 3);
        let spec = RefinementSpec::new(vec![1.0]);
        let ds = build_amr("uni", &field, n, &spec);
        ds.validate().unwrap();
        assert_eq!(ds.finest_density(), 1.0);
        assert_eq!(ds.finest().data(), &field[..]);
    }

    #[test]
    fn construction_is_deterministic() {
        let n = 16;
        let field = test_field(n, 4);
        let spec = RefinementSpec::new(vec![0.3, 0.7]);
        let a = build_amr("a", &field, n, &spec);
        let b = build_amr("b", &field, n, &spec);
        for (x, y) in a.levels().iter().zip(b.levels()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn oversubscribed_spec_panics() {
        RefinementSpec::new(vec![0.8, 0.8]);
    }
}
