#![forbid(unsafe_code)]

//! # tac-nyx
//!
//! Synthetic **Nyx-like cosmology AMR datasets**. The paper evaluates TAC
//! on seven snapshots from two Nyx simulation runs (Table 1); those LANL
//! datasets are not redistributable, so this crate regenerates stand-ins
//! that preserve the properties TAC's behaviour depends on:
//!
//! * **value distribution** — lognormal baryon density with halo peaks
//!   (mean ~1e9, tail ~1e12), matching the scale of the paper's absolute
//!   error bounds (1e8..1e10);
//! * **smoothness** — Gaussian random fields with a red, cosmology-like
//!   power spectrum (what prediction-based compression exploits);
//! * **refinement geometry** — per-level densities matched to Table 1
//!   exactly, with refinement clustered around density peaks (Fig. 4).
//!
//! ```
//! use tac_nyx::{entry, FieldKind};
//!
//! let ds = entry("Run1_Z10").unwrap().generate(FieldKind::BaryonDensity, 32, 42);
//! ds.validate().unwrap();
//! assert_eq!(ds.num_levels(), 2);
//! ```

#![warn(missing_docs)]

mod catalog;
mod field;
mod grf;
mod halos;
mod refine;

pub use catalog::{entry, CatalogEntry, CATALOG};
pub use field::{synthesize, synthesize_with, FieldKind};
pub use grf::{gaussian_random_field, normalize, SpectrumModel};
pub use halos::{inject_halos, HaloPopulation, InjectedHalo};
pub use refine::{build_amr, RefinementSpec};
