//! The seven evaluation datasets of the paper's Table 1, regenerated
//! synthetically at a configurable scale.

use crate::field::{synthesize, FieldKind};
use crate::refine::{build_amr, RefinementSpec};
use tac_amr::AmrDataset;

/// Catalog row: name, level geometry, per-level target densities.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Dataset name as in Table 1 (e.g. `Run1_Z10`).
    pub name: &'static str,
    /// Finest-grid side in the paper (512, 256, or 1024).
    pub paper_fine_dim: usize,
    /// Per-level densities, fine to coarse, as fractions.
    pub densities: &'static [f64],
}

impl CatalogEntry {
    /// Number of AMR levels.
    pub fn num_levels(&self) -> usize {
        self.densities.len()
    }

    /// Finest-grid side after applying `scale` (a divisor of the paper's
    /// size: scale 4 maps 512 -> 128).
    pub fn scaled_fine_dim(&self, scale: usize) -> usize {
        (self.paper_fine_dim / scale).max(1 << (self.num_levels() - 1))
    }

    /// Generates this dataset for one field at reduced scale.
    ///
    /// `scale` divides the paper's grid (use 4 for laptop-sized runs);
    /// `seed` controls the underlying random field.
    pub fn generate(&self, kind: FieldKind, scale: usize, seed: u64) -> AmrDataset {
        let n = self.scaled_fine_dim(scale);
        let uniform = synthesize(kind, n, seed ^ fxhash(self.name));
        build_amr(self.name, &uniform, n, &self.spec())
    }

    /// The entry's refinement spec (Table 1 densities) as a reusable
    /// [`RefinementSpec`] — external generators can pair the paper's
    /// level geometry with their own uniform fields via
    /// [`build_amr`](crate::build_amr).
    pub fn spec(&self) -> RefinementSpec {
        RefinementSpec::new(self.densities.to_vec())
    }
}

/// Tiny deterministic string hash (datasets get distinct random fields).
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Table 1, Run 1: two-level 512/256 snapshots at redshifts 10, 5, 3, 2.
/// Run 2: deep refinement hierarchies with very sparse finest levels.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        name: "Run1_Z10",
        paper_fine_dim: 512,
        densities: &[0.23, 0.77],
    },
    CatalogEntry {
        name: "Run1_Z5",
        paper_fine_dim: 512,
        densities: &[0.58, 0.42],
    },
    CatalogEntry {
        name: "Run1_Z3",
        paper_fine_dim: 512,
        densities: &[0.64, 0.36],
    },
    CatalogEntry {
        name: "Run1_Z2",
        paper_fine_dim: 512,
        densities: &[0.63, 0.37],
    },
    CatalogEntry {
        name: "Run2_T2",
        paper_fine_dim: 256,
        densities: &[0.002, 0.998],
    },
    CatalogEntry {
        name: "Run2_T3",
        paper_fine_dim: 512,
        densities: &[0.0002, 0.0056, 0.9942],
    },
    CatalogEntry {
        name: "Run2_T4",
        paper_fine_dim: 1024,
        densities: &[3e-5, 0.0002, 0.022, 0.977],
    },
];

/// Looks up a catalog entry by name.
pub fn entry(name: &str) -> Option<&'static CatalogEntry> {
    CATALOG.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table1_shape() {
        assert_eq!(CATALOG.len(), 7);
        assert_eq!(entry("Run1_Z10").unwrap().num_levels(), 2);
        assert_eq!(entry("Run2_T3").unwrap().num_levels(), 3);
        assert_eq!(entry("Run2_T4").unwrap().num_levels(), 4);
        assert!(entry("Run9_X").is_none());
        for e in CATALOG {
            let sum: f64 = e.densities.iter().sum();
            assert!((sum - 1.0).abs() < 0.01, "{}: densities sum {sum}", e.name);
        }
    }

    #[test]
    fn generate_z10_at_small_scale() {
        let e = entry("Run1_Z10").unwrap();
        let ds = e.generate(FieldKind::BaryonDensity, 16, 1); // fine dim 32
        ds.validate().unwrap();
        assert_eq!(ds.finest_dim(), 32);
        let d = ds.densities();
        assert!((d[0] - 0.23).abs() < 0.05, "fine density {}", d[0]);
    }

    #[test]
    fn generate_deep_hierarchy() {
        let e = entry("Run2_T4").unwrap();
        let ds = e.generate(FieldKind::BaryonDensity, 16, 1); // fine dim 64
        ds.validate().unwrap();
        assert_eq!(ds.num_levels(), 4);
        // Finest is *extremely* sparse.
        assert!(ds.finest_density() < 0.01);
    }

    #[test]
    fn scaled_dim_respects_level_floor() {
        let e = entry("Run2_T4").unwrap();
        // Absurd scale cannot shrink below 2^(levels-1).
        assert!(e.scaled_fine_dim(100_000) >= 8);
    }

    #[test]
    fn different_datasets_get_different_fields() {
        let a = entry("Run1_Z3")
            .unwrap()
            .generate(FieldKind::BaryonDensity, 32, 1);
        let b = entry("Run1_Z2")
            .unwrap()
            .generate(FieldKind::BaryonDensity, 32, 1);
        assert_ne!(a.finest().data(), b.finest().data());
    }
}
