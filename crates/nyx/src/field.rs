//! Physical field synthesis: turns normalized Gaussian random fields into
//! the six Nyx output fields with realistic value distributions.

use crate::grf::{gaussian_random_field, SpectrumModel};
use crate::halos::{inject_halos, HaloPopulation};

/// The six fields a Nyx snapshot contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// Baryon (gas) density, strictly positive, lognormal with halo peaks.
    /// Mean ~1e9, tail reaching ~1e12 (the units the paper's absolute
    /// error bounds 1e8..1e10 refer to).
    BaryonDensity,
    /// Dark-matter density, like baryon density but clumpier.
    DarkMatterDensity,
    /// Gas temperature in K, lognormal around ~1e4.
    Temperature,
    /// Velocity components, zero-mean Gaussian, ~1e7 cm/s dispersion.
    VelocityX,
    /// See [`FieldKind::VelocityX`].
    VelocityY,
    /// See [`FieldKind::VelocityX`].
    VelocityZ,
}

impl FieldKind {
    /// Canonical field name as it appears in Nyx plotfiles.
    pub fn name(&self) -> &'static str {
        match self {
            FieldKind::BaryonDensity => "baryon_density",
            FieldKind::DarkMatterDensity => "dark_matter_density",
            FieldKind::Temperature => "temperature",
            FieldKind::VelocityX => "velocity_x",
            FieldKind::VelocityY => "velocity_y",
            FieldKind::VelocityZ => "velocity_z",
        }
    }

    /// All six fields.
    pub fn all() -> [FieldKind; 6] {
        [
            FieldKind::BaryonDensity,
            FieldKind::DarkMatterDensity,
            FieldKind::Temperature,
            FieldKind::VelocityX,
            FieldKind::VelocityY,
            FieldKind::VelocityZ,
        ]
    }

    /// Seed offset so fields of one snapshot are decorrelated but
    /// reproducible.
    fn seed_salt(&self) -> u64 {
        match self {
            FieldKind::BaryonDensity => 0x01,
            FieldKind::DarkMatterDensity => 0x02,
            FieldKind::Temperature => 0x03,
            FieldKind::VelocityX => 0x04,
            FieldKind::VelocityY => 0x05,
            FieldKind::VelocityZ => 0x06,
        }
    }
}

/// Synthesizes one field on an `n^3` uniform grid with the default
/// cosmology-like spectrum.
pub fn synthesize(kind: FieldKind, n: usize, seed: u64) -> Vec<f64> {
    synthesize_with(kind, n, seed, &SpectrumModel::default())
}

/// Like [`synthesize`] but colours the underlying Gaussian random field
/// with a caller-supplied [`SpectrumModel`] — the hook external scenario
/// generators (e.g. `tac-testkit`) use to produce rougher or smoother
/// variants of each physical field while keeping the value-distribution
/// transforms (lognormal scaling, halo injection) identical.
pub fn synthesize_with(kind: FieldKind, n: usize, seed: u64, model: &SpectrumModel) -> Vec<f64> {
    let base_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ kind.seed_salt();
    let mut g = gaussian_random_field(n, model, base_seed);
    match kind {
        FieldKind::BaryonDensity => {
            inject_halos(&mut g, n, &HaloPopulation::default(), base_seed);
            lognormal(&mut g, 1.0e9, 1.2);
            g
        }
        FieldKind::DarkMatterDensity => {
            inject_halos(
                &mut g,
                n,
                &HaloPopulation {
                    count: 40,
                    peak_amplitude: 8.0,
                    ..Default::default()
                },
                base_seed,
            );
            lognormal(&mut g, 3.0e9, 1.9);
            g
        }
        FieldKind::Temperature => {
            lognormal(&mut g, 1.0e4, 0.8);
            g
        }
        FieldKind::VelocityX | FieldKind::VelocityY | FieldKind::VelocityZ => {
            for v in g.iter_mut() {
                *v *= 1.0e7;
            }
            g
        }
    }
}

/// Maps a roughly unit-variance field through `exp(sigma * g)` and then
/// rescales so the sample mean is exactly `mean`. (The analytic
/// `exp(-sigma^2/2)` correction would only hold for a pure standard
/// normal; injected halo peaks break that, so the empirical rescale keeps
/// the value scale pinned to Nyx's ~1e9 regardless.)
fn lognormal(g: &mut [f64], mean: f64, sigma: f64) {
    for v in g.iter_mut() {
        *v = (sigma * *v).exp();
    }
    let actual = g.iter().sum::<f64>() / g.len() as f64;
    let scale = mean / actual.max(f64::MIN_POSITIVE);
    for v in g.iter_mut() {
        *v *= scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baryon_density_has_nyx_like_scale() {
        let f = synthesize(FieldKind::BaryonDensity, 32, 1);
        let mean = f.iter().sum::<f64>() / f.len() as f64;
        let max = f.iter().cloned().fold(f64::MIN, f64::max);
        let min = f.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 0.0, "density must be positive");
        assert!(mean > 1e8 && mean < 1e10, "mean {mean:.3e}");
        assert!(
            max > 20.0 * mean,
            "needs a heavy tail, max/mean = {}",
            max / mean
        );
    }

    #[test]
    fn velocity_is_zero_mean_signed() {
        let f = synthesize(FieldKind::VelocityX, 16, 2);
        let mean = f.iter().sum::<f64>() / f.len() as f64;
        let has_neg = f.iter().any(|&v| v < 0.0);
        let has_pos = f.iter().any(|&v| v > 0.0);
        assert!(has_neg && has_pos);
        let sd = (f.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / f.len() as f64).sqrt();
        assert!(sd > 1e6 && sd < 1e8, "sd {sd:.3e}");
    }

    #[test]
    fn fields_are_decorrelated() {
        let a = synthesize(FieldKind::VelocityX, 16, 3);
        let b = synthesize(FieldKind::VelocityY, 16, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn snapshots_are_reproducible() {
        let a = synthesize(FieldKind::Temperature, 16, 4);
        let b = synthesize(FieldKind::Temperature, 16, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn all_six_fields_synthesize() {
        for kind in FieldKind::all() {
            let f = synthesize(kind, 8, 5);
            assert_eq!(f.len(), 512);
            assert!(f.iter().all(|v| v.is_finite()), "{:?}", kind);
        }
    }
}
