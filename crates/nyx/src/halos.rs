//! Halo injection: adds compact over-densities to a base field.
//!
//! Nyx baryon-density snapshots are dominated by a population of halos —
//! localized peaks reaching 3-4 orders of magnitude above the mean. The
//! halo finder (Table 3) and the refinement geometry both key off these
//! peaks, so the synthetic fields must contain them. Profiles follow a
//! truncated NFW-like shape `A / ((r/rs)(1 + r/rs)^2)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for a synthetic halo population.
#[derive(Debug, Clone, Copy)]
pub struct HaloPopulation {
    /// Number of halos to inject.
    pub count: usize,
    /// Scale radius in grid cells.
    pub scale_radius: f64,
    /// Peak amplitude as a multiple of the field's standard deviation.
    pub peak_amplitude: f64,
    /// Truncation radius in units of `scale_radius`.
    pub truncate: f64,
}

impl Default for HaloPopulation {
    fn default() -> Self {
        HaloPopulation {
            count: 16,
            scale_radius: 2.5,
            peak_amplitude: 5.0,
            truncate: 4.0,
        }
    }
}

/// One injected halo (centre and profile), returned for ground truth in
/// tests and for seeding the halo-finder experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedHalo {
    /// Centre in grid coordinates.
    pub center: (usize, usize, usize),
    /// Peak amplitude actually added at the centre.
    pub amplitude: f64,
}

/// Adds `pop.count` halos at density-weighted random positions: candidate
/// centres are sampled uniformly, then accepted with probability
/// proportional to their rank of the underlying field value — halos form
/// where matter already clusters.
pub fn inject_halos(
    field: &mut [f64],
    n: usize,
    pop: &HaloPopulation,
    seed: u64,
) -> Vec<InjectedHalo> {
    assert_eq!(field.len(), n * n * n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x48_41_4c_4f);
    let sd = {
        let mean = field.iter().sum::<f64>() / field.len() as f64;
        (field.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / field.len() as f64).sqrt()
    };
    // Constant fields have no scale of their own; fall back to unit bumps.
    let amp = pop.peak_amplitude * if sd > 1e-12 { sd } else { 1.0 };
    let r_trunc = pop.truncate * pop.scale_radius;
    let reach = r_trunc.ceil() as isize;

    let mut halos = Vec::with_capacity(pop.count);
    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < pop.count && attempts < pop.count * 64 {
        attempts += 1;
        let cx = rng.gen_range(0..n);
        let cy = rng.gen_range(0..n);
        let cz = rng.gen_range(0..n);
        // Rejection sample toward over-dense sites: accept if the site is
        // above the running median-ish threshold or with small probability
        // anywhere (keeps progress on flat fields).
        let v = field[cx + n * (cy + n * cz)];
        if v < 0.0 && rng.gen_range(0.0..1.0) > 0.15 {
            continue;
        }
        // NFW-like additive bump, periodic wrap (the simulation box is
        // periodic).
        for dz in -reach..=reach {
            for dy in -reach..=reach {
                for dx in -reach..=reach {
                    let r = ((dx * dx + dy * dy + dz * dz) as f64).sqrt();
                    if r > r_trunc {
                        continue;
                    }
                    let x = (cx as isize + dx).rem_euclid(n as isize) as usize;
                    let y = (cy as isize + dy).rem_euclid(n as isize) as usize;
                    let z = (cz as isize + dz).rem_euclid(n as isize) as usize;
                    let rr = (r / pop.scale_radius).max(0.35);
                    let profile = 1.0 / (rr * (1.0 + rr) * (1.0 + rr));
                    // Normalize so the centre adds exactly `amp`.
                    let centre_profile = 1.0 / (0.35 * 1.35 * 1.35);
                    field[x + n * (y + n * z)] += amp * profile / centre_profile;
                }
            }
        }
        halos.push(InjectedHalo {
            center: (cx, cy, cz),
            amplitude: amp,
        });
        placed += 1;
    }
    halos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halos_raise_peaks() {
        let n = 32;
        let mut field = vec![0.0f64; n * n * n];
        // Seed a tiny positive plateau so rejection sampling accepts sites.
        for v in field.iter_mut() {
            *v = 0.01;
        }
        let before_max = 0.01f64;
        let halos = inject_halos(&mut field, n, &HaloPopulation::default(), 3);
        assert!(!halos.is_empty());
        let after_max = field.iter().cloned().fold(f64::MIN, f64::max);
        assert!(after_max > before_max * 10.0 || after_max > 0.05);
        // Centre of the first halo is a local peak.
        let (cx, cy, cz) = halos[0].center;
        let centre = field[cx + n * (cy + n * cz)];
        let neighbour = field[(cx + 3) % n + n * (cy + n * cz)];
        assert!(centre > neighbour);
    }

    #[test]
    fn injection_is_deterministic() {
        let n = 16;
        let mut a = vec![0.1f64; n * n * n];
        let mut b = vec![0.1f64; n * n * n];
        let ha = inject_halos(&mut a, n, &HaloPopulation::default(), 9);
        let hb = inject_halos(&mut b, n, &HaloPopulation::default(), 9);
        assert_eq!(ha, hb);
        assert_eq!(a, b);
    }

    #[test]
    fn truncation_limits_footprint() {
        let n = 32;
        let mut field = vec![1.0f64; n * n * n];
        let pop = HaloPopulation {
            count: 1,
            scale_radius: 1.5,
            peak_amplitude: 5.0,
            truncate: 2.0,
        };
        let halos = inject_halos(&mut field, n, &pop, 1);
        let (cx, cy, cz) = halos[0].center;
        // 8 cells away nothing changed.
        let far = field[(cx + 8) % n + n * ((cy + 8) % n + n * cz)];
        assert_eq!(far, 1.0);
    }
}
