//! Gaussian random fields with cosmology-like power spectra.
//!
//! Real Nyx snapshots are unavailable, so the generator synthesizes fields
//! with the two properties TAC's behaviour actually depends on: spatial
//! smoothness at a controllable correlation length (what prediction-based
//! compressors exploit) and a heavy-tailed amplitude distribution whose
//! peaks drive refinement (what produces the paper's per-level density
//! geometry).
//!
//! Method: draw white Gaussian noise on the grid, colour it in Fourier
//! space with `sqrt(P(k))`, transform back. Colouring a *real* field keeps
//! the spectrum Hermitian, so the inverse transform is real by
//! construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tac_fft::{Complex, Direction, Fft3Plan};

/// Isotropic power-spectrum model `P(k) ~ k^index * exp(-(k/cutoff)^2)`.
///
/// A negative `index` concentrates power at large scales (smooth, blobby
/// fields — the matter-like regime); the Gaussian cutoff suppresses grid-
/// scale noise.
#[derive(Debug, Clone, Copy)]
pub struct SpectrumModel {
    /// Spectral index (e.g. -2.5 for a matter-like red spectrum).
    pub index: f64,
    /// Cutoff wavenumber in grid units (modes above this are damped).
    pub cutoff: f64,
}

impl Default for SpectrumModel {
    fn default() -> Self {
        // Strongly red with a firm grid-scale cutoff: cell-to-cell
        // residuals must sit well below typical error bounds for the
        // prediction stage to matter, as on the paper's 512^3 Nyx data
        // (where SZ reaches CRs of 100-250). Benchmark grids are 8x
        // smaller per axis, so the cutoff is correspondingly lower.
        SpectrumModel {
            index: -3.0,
            cutoff: 0.08,
        }
    }
}

impl SpectrumModel {
    /// `sqrt(P(k))` amplitude filter for wavenumber magnitude `k` (grid
    /// units, `k > 0`).
    fn amplitude(&self, k: f64) -> f64 {
        (k.powf(self.index) * (-(k / self.cutoff) * (k / self.cutoff)).exp()).sqrt()
    }
}

/// Generates a zero-mean, unit-variance Gaussian random field on an `n^3`
/// grid (n must be a power of two).
pub fn gaussian_random_field(n: usize, model: &SpectrumModel, seed: u64) -> Vec<f64> {
    assert!(n.is_power_of_two(), "grid side must be a power of two");
    let mut rng = StdRng::seed_from_u64(seed);
    // Box-Muller white noise (avoids needing rand_distr).
    let total = n * n * n;
    let mut buf: Vec<Complex> = Vec::with_capacity(total);
    while buf.len() < total {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        buf.push(Complex::from_real(r * theta.cos()));
        if buf.len() < total {
            buf.push(Complex::from_real(r * theta.sin()));
        }
    }

    let plan = Fft3Plan::cubic(n);
    plan.process(&mut buf, Direction::Forward);

    // Colour with sqrt(P(k)); zero the DC mode (the mean is set later by
    // the field transforms).
    let half = n / 2;
    for kz in 0..n {
        let fz = signed_freq(kz, half);
        for ky in 0..n {
            let fy = signed_freq(ky, half);
            for kx in 0..n {
                let fx = signed_freq(kx, half);
                let idx = kx + n * (ky + n * kz);
                let k2 = fx * fx + fy * fy + fz * fz;
                if k2 == 0.0 {
                    buf[idx] = Complex::ZERO;
                } else {
                    let k = k2.sqrt() / n as f64; // normalized to ~[0, sqrt(3)/2]
                    buf[idx] = buf[idx] * model.amplitude(k);
                }
            }
        }
    }
    plan.process(&mut buf, Direction::Inverse);
    let mut field: Vec<f64> = buf.into_iter().map(|z| z.re).collect();
    normalize(&mut field);
    field
}

#[inline]
fn signed_freq(k: usize, half: usize) -> f64 {
    if k <= half {
        k as f64
    } else {
        k as f64 - 2.0 * half as f64
    }
}

/// Rescales a field in place to zero mean and unit variance.
pub fn normalize(field: &mut [f64]) {
    let n = field.len() as f64;
    let mean = field.iter().sum::<f64>() / n;
    let var = field.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let inv_sd = if var > 0.0 { 1.0 / var.sqrt() } else { 1.0 };
    for v in field.iter_mut() {
        *v = (*v - mean) * inv_sd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grf_is_normalized() {
        let f = gaussian_random_field(16, &SpectrumModel::default(), 7);
        let n = f.len() as f64;
        let mean = f.iter().sum::<f64>() / n;
        let var = f.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-10, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-10, "var {var}");
    }

    #[test]
    fn grf_is_deterministic_per_seed() {
        let a = gaussian_random_field(8, &SpectrumModel::default(), 42);
        let b = gaussian_random_field(8, &SpectrumModel::default(), 42);
        assert_eq!(a, b);
        let c = gaussian_random_field(8, &SpectrumModel::default(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn red_spectrum_is_smoother_than_white() {
        // Mean squared neighbour difference should be much smaller for a
        // red (index -3) field than for a flat (index 0) one.
        let n = 32;
        let red = gaussian_random_field(
            n,
            &SpectrumModel {
                index: -3.0,
                cutoff: 1.0,
            },
            5,
        );
        let white = gaussian_random_field(
            n,
            &SpectrumModel {
                index: 0.0,
                cutoff: 10.0,
            },
            5,
        );
        let roughness = |f: &[f64]| {
            let mut acc = 0.0;
            for i in 1..f.len() {
                acc += (f[i] - f[i - 1]) * (f[i] - f[i - 1]);
            }
            acc / (f.len() - 1) as f64
        };
        assert!(
            roughness(&red) < roughness(&white) * 0.5,
            "red {} vs white {}",
            roughness(&red),
            roughness(&white)
        );
    }

    #[test]
    fn values_are_finite() {
        let f = gaussian_random_field(16, &SpectrumModel::default(), 11);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
