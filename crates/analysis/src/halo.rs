//! Halo finder — the second cosmology post-analysis metric (Sec. 4.2,
//! metric 6; Table 3).
//!
//! Following the paper's description of the Davis et al. style
//! cell-based finder: a cell is a *halo candidate* when its mass (density)
//! exceeds `threshold_factor x` the dataset mean (81.66 in the paper);
//! candidates are clustered by face connectivity (6-neighbour union),
//! and clusters with at least `min_cells` candidates form halos. Each
//! halo reports position (densest cell), cell count, and total mass.

/// Halo-finder parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloFinderConfig {
    /// Candidate threshold as a multiple of the mean (paper: 81.66).
    pub threshold_factor: f64,
    /// Minimum candidate cells per halo (criterion 2 of the paper).
    pub min_cells: usize,
}

impl Default for HaloFinderConfig {
    fn default() -> Self {
        HaloFinderConfig {
            threshold_factor: 81.66,
            min_cells: 8,
        }
    }
}

/// One identified halo.
#[derive(Debug, Clone, PartialEq)]
pub struct Halo {
    /// Grid coordinates of the densest member cell.
    pub position: (usize, usize, usize),
    /// Number of member cells.
    pub num_cells: usize,
    /// Sum of member cell values.
    pub mass: f64,
}

/// Result of a halo-finder run.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloCatalog {
    /// Halos sorted by descending mass.
    pub halos: Vec<Halo>,
    /// The absolute candidate threshold that was applied.
    pub threshold: f64,
    /// Mean of the input field.
    pub mean: f64,
}

impl HaloCatalog {
    /// The most massive halo, if any.
    pub fn biggest(&self) -> Option<&Halo> {
        self.halos.first()
    }

    /// Total mass across halos.
    pub fn total_mass(&self) -> f64 {
        self.halos.iter().map(|h| h.mass).sum()
    }
}

/// Runs the halo finder over a uniform `n^3` density grid.
///
/// # Panics
/// Panics if `field.len() != n^3`.
pub fn find_halos(field: &[f64], n: usize, cfg: &HaloFinderConfig) -> HaloCatalog {
    assert_eq!(field.len(), n * n * n, "field must be n^3");
    let mean = field.iter().sum::<f64>() / field.len() as f64;
    let threshold = cfg.threshold_factor * mean;

    // Union-find over candidate cells (flat indices).
    let mut parent: Vec<u32> = (0..field.len() as u32).collect();
    fn find(parent: &mut [u32], mut i: u32) -> u32 {
        while parent[i as usize] != i {
            parent[i as usize] = parent[parent[i as usize] as usize];
            i = parent[i as usize];
        }
        i
    }
    let is_candidate = |i: usize| field[i] > threshold;

    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let i = x + n * (y + n * z);
                if !is_candidate(i) {
                    continue;
                }
                // Union with the negative-direction neighbours (periodic
                // boundaries, matching the simulation box).
                let neighbours = [
                    ((x + n - 1) % n) + n * (y + n * z),
                    x + n * (((y + n - 1) % n) + n * z),
                    x + n * (y + n * ((z + n - 1) % n)),
                ];
                for &j in &neighbours {
                    if is_candidate(j) {
                        let (a, b) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                        if a != b {
                            parent[a as usize] = b;
                        }
                    }
                }
            }
        }
    }

    // Aggregate clusters.
    use std::collections::HashMap;
    struct Agg {
        count: usize,
        mass: f64,
        best: (usize, f64),
    }
    let mut clusters: HashMap<u32, Agg> = HashMap::new();
    for (i, &v) in field.iter().enumerate() {
        if !is_candidate(i) {
            continue;
        }
        let root = find(&mut parent, i as u32);
        let e = clusters.entry(root).or_insert(Agg {
            count: 0,
            mass: 0.0,
            best: (i, f64::NEG_INFINITY),
        });
        e.count += 1;
        e.mass += v;
        if v > e.best.1 {
            e.best = (i, v);
        }
    }

    let mut halos: Vec<Halo> = clusters
        .into_values()
        .filter(|a| a.count >= cfg.min_cells)
        .map(|a| {
            let i = a.best.0;
            Halo {
                position: (i % n, (i / n) % n, i / (n * n)),
                num_cells: a.count,
                mass: a.mass,
            }
        })
        .collect();
    halos.sort_by(|a, b| {
        b.mass
            .partial_cmp(&a.mass)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    HaloCatalog {
        halos,
        threshold,
        mean,
    }
}

/// Table 3's comparison quantities for the most massive halo: relative
/// mass difference and cell-count difference between the original and
/// decompressed data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloComparison {
    /// `|m' - m| / m` of the biggest halo.
    pub rel_mass_diff: f64,
    /// `|cells' - cells|` of the biggest halo.
    pub cell_count_diff: usize,
    /// Halo-count difference across the whole catalog.
    pub halo_count_diff: usize,
}

/// Compares two halo catalogs (original first).
///
/// # Panics
/// Panics if the original catalog has no halos.
pub fn compare_catalogs(original: &HaloCatalog, decompressed: &HaloCatalog) -> HaloComparison {
    let big_o = original.biggest().expect("original catalog has no halos");
    // Match the decompressed halo nearest to the original's biggest
    // (positions can shift by a cell or two under compression).
    let big_d = decompressed
        .halos
        .iter()
        .min_by_key(|h| {
            let dx = h.position.0.abs_diff(big_o.position.0);
            let dy = h.position.1.abs_diff(big_o.position.1);
            let dz = h.position.2.abs_diff(big_o.position.2);
            dx * dx + dy * dy + dz * dz
        })
        .unwrap_or(big_o);
    HaloComparison {
        rel_mass_diff: (big_d.mass - big_o.mass).abs() / big_o.mass,
        cell_count_diff: big_d.num_cells.abs_diff(big_o.num_cells),
        halo_count_diff: original.halos.len().abs_diff(decompressed.halos.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Background 1.0 with a dense cube of the given side at `origin`.
    fn field_with_blob(
        n: usize,
        origin: (usize, usize, usize),
        side: usize,
        value: f64,
    ) -> Vec<f64> {
        let mut f = vec![1.0; n * n * n];
        for dz in 0..side {
            for dy in 0..side {
                for dx in 0..side {
                    f[(origin.0 + dx) + n * ((origin.1 + dy) + n * (origin.2 + dz))] = value;
                }
            }
        }
        f
    }

    fn cfg(min_cells: usize) -> HaloFinderConfig {
        HaloFinderConfig {
            threshold_factor: 10.0,
            min_cells,
        }
    }

    #[test]
    fn finds_a_single_blob() {
        let n = 16;
        let f = field_with_blob(n, (4, 4, 4), 3, 1000.0);
        let cat = find_halos(&f, n, &cfg(8));
        assert_eq!(cat.halos.len(), 1);
        let h = &cat.halos[0];
        assert_eq!(h.num_cells, 27);
        assert!((h.mass - 27.0 * 1000.0).abs() < 1e-6);
        // Peak position inside the blob.
        assert!(h.position.0 >= 4 && h.position.0 < 7);
    }

    #[test]
    fn min_cells_filters_small_clusters() {
        let n = 16;
        let mut f = field_with_blob(n, (2, 2, 2), 3, 1000.0);
        // A second, tiny 2-cell cluster.
        f[10 + n * (10 + n * 10)] = 1000.0;
        f[11 + n * (10 + n * 10)] = 1000.0;
        let cat = find_halos(&f, n, &cfg(8));
        assert_eq!(cat.halos.len(), 1);
        let cat2 = find_halos(&f, n, &cfg(2));
        assert_eq!(cat2.halos.len(), 2);
    }

    #[test]
    fn two_blobs_sorted_by_mass() {
        let n = 24;
        let mut f = field_with_blob(n, (2, 2, 2), 2, 500.0);
        let g = field_with_blob(n, (12, 12, 12), 3, 800.0);
        for (a, b) in f.iter_mut().zip(&g) {
            if *b > *a {
                *a = *b;
            }
        }
        let cat = find_halos(&f, n, &cfg(4));
        assert_eq!(cat.halos.len(), 2);
        assert!(cat.halos[0].mass > cat.halos[1].mass);
        assert_eq!(cat.halos[0].num_cells, 27);
    }

    #[test]
    fn periodic_wraparound_merges_clusters() {
        let n = 8;
        let mut f = vec![1.0; n * n * n];
        // Candidates straddling the x boundary: x = 7 and x = 0, at z = 0.
        for y in 0..2 {
            f[7 + n * y] = 1000.0;
            f[n * y] = 1000.0;
        }
        let cat = find_halos(&f, n, &cfg(4));
        assert_eq!(cat.halos.len(), 1);
        assert_eq!(cat.halos[0].num_cells, 4);
    }

    #[test]
    fn comparison_measures_biggest_halo_drift() {
        let n = 16;
        let f = field_with_blob(n, (4, 4, 4), 3, 1000.0);
        // Decompressed: one blob cell dropped below threshold.
        let mut g = f.clone();
        g[4 + n * (4 + n * 4)] = 1.0;
        let c_orig = find_halos(&f, n, &cfg(8));
        let c_dec = find_halos(&g, n, &cfg(8));
        let cmp = compare_catalogs(&c_orig, &c_dec);
        assert_eq!(cmp.cell_count_diff, 1);
        // The dropped cell removes its full 1000 from the cluster mass.
        assert!((cmp.rel_mass_diff - 1000.0 / 27000.0).abs() < 1e-6);
    }

    #[test]
    fn no_halos_in_flat_field() {
        let n = 8;
        let cat = find_halos(&vec![1.0; n * n * n], n, &cfg(1));
        assert!(cat.halos.is_empty());
    }
}
