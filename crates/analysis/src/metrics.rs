//! Generic distortion metrics: PSNR, NRMSE, maximum error.

/// Distortion summary between an original and a reconstructed array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distortion {
    /// Peak signal-to-noise ratio in dB (infinite for exact match).
    pub psnr: f64,
    /// Root-mean-square error normalized by the value range.
    pub nrmse: f64,
    /// Largest absolute point-wise error.
    pub max_abs_error: f64,
    /// Value range of the original data (`max - min`).
    pub value_range: f64,
}

/// Computes distortion metrics; non-finite originals are skipped (they
/// round-trip bit-exactly through the codec and carry no distortion).
///
/// PSNR follows the paper's definition:
/// `20*log10(R) - 10*log10(mse)` with `R` the value range of the
/// original.
///
/// # Panics
/// Panics if lengths differ or no finite points exist.
pub fn distortion(original: &[f64], reconstructed: &[f64]) -> Distortion {
    assert_eq!(
        original.len(),
        reconstructed.len(),
        "arrays must have equal length"
    );
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum_sq = 0.0f64;
    let mut max_err = 0.0f64;
    let mut count = 0usize;
    for (&a, &b) in original.iter().zip(reconstructed) {
        if !a.is_finite() {
            continue;
        }
        min = min.min(a);
        max = max.max(a);
        let e = a - b;
        sum_sq += e * e;
        max_err = max_err.max(e.abs());
        count += 1;
    }
    assert!(count > 0, "no finite points to compare");
    let range = max - min;
    let mse = sum_sq / count as f64;
    let psnr = if mse == 0.0 {
        f64::INFINITY
    } else {
        20.0 * range.log10() - 10.0 * mse.log10()
    };
    let nrmse = if range > 0.0 {
        mse.sqrt() / range
    } else {
        mse.sqrt()
    };
    Distortion {
        psnr,
        nrmse,
        max_abs_error: max_err,
        value_range: range,
    }
}

/// PSNR over the present cells of corresponding AMR levels — the
/// distortion number the rate-distortion figures plot. The value range is
/// the *global* range over all levels (one field, one range).
pub fn amr_distortion(
    original: &tac_amr::AmrDataset,
    reconstructed: &tac_amr::AmrDataset,
) -> Distortion {
    assert_eq!(
        original.num_levels(),
        reconstructed.num_levels(),
        "level count mismatch"
    );
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum_sq = 0.0f64;
    let mut max_err = 0.0f64;
    let mut count = 0usize;
    for (lo, lr) in original.levels().iter().zip(reconstructed.levels()) {
        assert_eq!(lo.dim(), lr.dim(), "level dim mismatch");
        for i in lo.mask().iter_ones() {
            let a = lo.data()[i];
            let b = lr.data()[i];
            if !a.is_finite() {
                continue;
            }
            min = min.min(a);
            max = max.max(a);
            let e = a - b;
            sum_sq += e * e;
            max_err = max_err.max(e.abs());
            count += 1;
        }
    }
    assert!(count > 0, "no present finite cells");
    let range = max - min;
    let mse = sum_sq / count as f64;
    let psnr = if mse == 0.0 {
        f64::INFINITY
    } else {
        20.0 * range.log10() - 10.0 * mse.log10()
    };
    Distortion {
        psnr,
        nrmse: if range > 0.0 {
            mse.sqrt() / range
        } else {
            mse.sqrt()
        },
        max_abs_error: max_err,
        value_range: range,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_infinite_psnr() {
        let a = vec![1.0, 2.0, 3.0];
        let d = distortion(&a, &a);
        assert!(d.psnr.is_infinite());
        assert_eq!(d.max_abs_error, 0.0);
        assert_eq!(d.nrmse, 0.0);
    }

    #[test]
    fn known_error_gives_expected_psnr() {
        // Range 1, constant error 0.1 -> mse = 0.01 -> psnr = 20 dB.
        let a = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        let b: Vec<f64> = a.iter().map(|v| v + 0.1).collect();
        let d = distortion(&a, &b);
        assert!((d.psnr - 20.0).abs() < 1e-9, "psnr {}", d.psnr);
        assert!((d.max_abs_error - 0.1).abs() < 1e-12);
        assert!((d.nrmse - 0.1).abs() < 1e-12);
    }

    #[test]
    fn psnr_improves_with_smaller_error() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let small: Vec<f64> = a.iter().map(|v| v + 0.01).collect();
        let big: Vec<f64> = a.iter().map(|v| v + 1.0).collect();
        assert!(distortion(&a, &small).psnr > distortion(&a, &big).psnr);
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let a = vec![f64::NAN, 1.0, 2.0];
        let b = vec![f64::NAN, 1.0, 2.5];
        let d = distortion(&a, &b);
        assert!((d.max_abs_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amr_distortion_counts_present_cells_only() {
        use tac_amr::{AmrDataset, AmrLevel};
        let mut fine = AmrLevel::empty(4);
        for z in 0..4 {
            for y in 0..4 {
                for x in 2..4 {
                    fine.set_value(x, y, z, (x + y + z) as f64);
                }
            }
        }
        let mut coarse = AmrLevel::empty(2);
        for z in 0..2 {
            for y in 0..2 {
                coarse.set_value(0, y, z, 1.0);
            }
        }
        let ds = AmrDataset::new("t", vec![fine.clone(), coarse.clone()]);
        // Perturb one present fine cell by 0.5; absent cells perturbed
        // arbitrarily must not count.
        let mut fine2 = fine.clone();
        fine2.set_value(2, 0, 0, fine.value(2, 0, 0) + 0.5);
        let mut data = fine2.data().to_vec();
        data[0] = 999.0; // absent cell — ignored
        let fine2 = AmrLevel::new(4, data, {
            let mut m = fine.mask().clone();
            m.set(0, false); // keep (0,0,0) absent as before
            m
        });
        let ds2 = AmrDataset::new("t", vec![fine2, coarse]);
        let d = amr_distortion(&ds, &ds2);
        assert!((d.max_abs_error - 0.5).abs() < 1e-12);
    }
}
