//! Rate-distortion sweeps: the (bit-rate, PSNR) curves of Figs. 11, 14,
//! and 15.

use crate::metrics::{amr_distortion, Distortion};
use serde::Serialize;

/// One point of a rate-distortion curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RdPoint {
    /// Error bound that produced the point (relative or absolute,
    /// caller's convention).
    pub error_bound: f64,
    /// Bits per value of the compressed representation.
    pub bit_rate: f64,
    /// Compression ratio.
    pub ratio: f64,
    /// PSNR in dB.
    pub psnr: f64,
}

/// A labelled rate-distortion curve.
#[derive(Debug, Clone, Serialize)]
pub struct RdCurve {
    /// Method label (e.g. "TAC", "3D", "zMesh").
    pub label: String,
    /// Sweep points, one per error bound.
    pub points: Vec<RdPoint>,
}

impl RdCurve {
    /// Creates an empty curve.
    pub fn new(label: impl Into<String>) -> Self {
        RdCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Records one sweep point.
    pub fn push(&mut self, error_bound: f64, bit_rate: f64, ratio: f64, psnr: f64) {
        self.points.push(RdPoint {
            error_bound,
            bit_rate,
            ratio,
            psnr,
        });
    }

    /// PSNR linearly interpolated at a given bit-rate; `None` outside the
    /// sweep range. Used to compare methods "under the same bit-rate".
    pub fn psnr_at_bit_rate(&self, bit_rate: f64) -> Option<f64> {
        let mut pts: Vec<(f64, f64)> = self.points.iter().map(|p| (p.bit_rate, p.psnr)).collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        if pts.len() < 2 || bit_rate < pts[0].0 || bit_rate > pts[pts.len() - 1].0 {
            return None;
        }
        for w in pts.windows(2) {
            let ((b0, p0), (b1, p1)) = (w[0], w[1]);
            if bit_rate >= b0 && bit_rate <= b1 {
                if b1 == b0 {
                    return Some(p0.max(p1));
                }
                let t = (bit_rate - b0) / (b1 - b0);
                return Some(p0 + t * (p1 - p0));
            }
        }
        None
    }
}

/// Runs one compression + decompression round for an AMR dataset and
/// produces the RD point ingredients `(bit_rate, ratio, psnr)`.
pub fn measure_amr_rd(
    ds: &tac_amr::AmrDataset,
    compressed_payload_bytes: usize,
    reconstructed: &tac_amr::AmrDataset,
) -> (f64, f64, Distortion) {
    let elements = ds.total_present();
    let bit_rate = compressed_payload_bytes as f64 * 8.0 / elements.max(1) as f64;
    let ratio = (elements * 8) as f64 / compressed_payload_bytes.max(1) as f64;
    let d = amr_distortion(ds, reconstructed);
    (bit_rate, ratio, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_between_points() {
        let mut c = RdCurve::new("x");
        c.push(1e-3, 2.0, 32.0, 60.0);
        c.push(1e-4, 4.0, 16.0, 80.0);
        let p = c.psnr_at_bit_rate(3.0).unwrap();
        assert!((p - 70.0).abs() < 1e-9);
        assert!(c.psnr_at_bit_rate(1.0).is_none());
        assert!(c.psnr_at_bit_rate(5.0).is_none());
    }

    #[test]
    fn unsorted_points_still_interpolate() {
        let mut c = RdCurve::new("x");
        c.push(1e-4, 4.0, 16.0, 80.0);
        c.push(1e-2, 1.0, 64.0, 40.0);
        c.push(1e-3, 2.0, 32.0, 60.0);
        let p = c.psnr_at_bit_rate(1.5).unwrap();
        assert!((p - 50.0).abs() < 1e-9);
    }

    #[test]
    fn measure_amr_rd_consistency() {
        use tac_amr::{AmrDataset, AmrLevel};
        let lvl = AmrLevel::dense(4, (0..64).map(|i| i as f64).collect());
        let ds = AmrDataset::new("t", vec![lvl.clone()]);
        let recon = AmrDataset::new("t", vec![lvl]);
        let (bit_rate, ratio, d) = measure_amr_rd(&ds, 64, &recon);
        assert!((bit_rate - 8.0).abs() < 1e-12);
        assert!((ratio - 8.0).abs() < 1e-12);
        assert!(d.psnr.is_infinite());
    }
}
