#![forbid(unsafe_code)]

//! # tac-analysis
//!
//! Post-analysis metrics for evaluating lossy compression of cosmology
//! AMR data, reproducing the paper's evaluation toolkit:
//!
//! * **generic distortion** — PSNR / NRMSE / max error over arrays or
//!   over the present cells of an AMR dataset ([`distortion`],
//!   [`amr_distortion`]);
//! * **matter power spectrum** — the Gimlet-style P(k) with the 1%
//!   relative-error acceptance criterion ([`power_spectrum`],
//!   [`spectrum_acceptable`]);
//! * **halo finder** — threshold + connected-components clustering with
//!   the 81.66x-mean candidate criterion, and Table 3's biggest-halo
//!   comparison ([`find_halos`], [`compare_catalogs`]);
//! * **rate-distortion bookkeeping** — labelled (bit-rate, PSNR) curves
//!   with interpolation for same-bit-rate comparisons ([`RdCurve`]).

#![warn(missing_docs)]

mod halo;
mod metrics;
mod power_spectrum;
mod rate_distortion;

pub use halo::{compare_catalogs, find_halos, Halo, HaloCatalog, HaloComparison, HaloFinderConfig};
pub use metrics::{amr_distortion, distortion, Distortion};
pub use power_spectrum::{power_spectrum, relative_error, spectrum_acceptable, PowerSpectrum};
pub use rate_distortion::{measure_amr_rd, RdCurve, RdPoint};
