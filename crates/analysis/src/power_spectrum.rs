//! Matter power spectrum P(k) — the cosmology post-analysis metric the
//! paper runs with Gimlet (Sec. 4.2, metric 5; Fig. 19).
//!
//! The spectrum is the radially binned squared magnitude of the Fourier
//! transform of the density contrast `delta = rho / <rho> - 1`. The
//! acceptance criterion from the paper: the relative error of the
//! decompressed spectrum must stay within 1% for all wavenumbers below a
//! cutoff.

use tac_fft::{fft3_real, Complex};

/// A binned power spectrum.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpectrum {
    /// Mean wavenumber of each bin (grid units: 1 = fundamental mode).
    pub k: Vec<f64>,
    /// Mean power in each bin.
    pub power: Vec<f64>,
    /// Modes per bin.
    pub counts: Vec<usize>,
}

impl PowerSpectrum {
    /// Number of bins.
    pub fn len(&self) -> usize {
        self.k.len()
    }

    /// Whether the spectrum has no bins.
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }
}

/// Computes the power spectrum of a density field on an `n^3` grid.
///
/// Bins are unit-width shells in integer wavenumber magnitude, from 1 to
/// the Nyquist frequency `n/2`.
///
/// # Panics
/// Panics if `field.len() != n^3` or the field mean is not positive when
/// `contrast` is requested.
pub fn power_spectrum(field: &[f64], n: usize) -> PowerSpectrum {
    assert_eq!(field.len(), n * n * n, "field must be n^3");
    let mean = field.iter().sum::<f64>() / field.len() as f64;
    assert!(
        mean != 0.0 && mean.is_finite(),
        "density contrast needs a finite non-zero mean, got {mean}"
    );
    let delta: Vec<f64> = field.iter().map(|&v| v / mean - 1.0).collect();
    let spec = fft3_real(&delta, n, n, n);
    bin_spectrum(&spec, n)
}

fn bin_spectrum(spec: &[Complex], n: usize) -> PowerSpectrum {
    let half = n / 2;
    let nbins = half.max(1);
    let mut k_sum = vec![0.0f64; nbins + 1];
    let mut p_sum = vec![0.0f64; nbins + 1];
    let mut counts = vec![0usize; nbins + 1];
    let norm = 1.0 / (n as f64 * n as f64 * n as f64);
    let freq = |i: usize| -> f64 {
        if i <= half {
            i as f64
        } else {
            i as f64 - n as f64
        }
    };
    for kz in 0..n {
        let fz = freq(kz);
        for ky in 0..n {
            let fy = freq(ky);
            for kx in 0..n {
                let fx = freq(kx);
                let kmag = (fx * fx + fy * fy + fz * fz).sqrt();
                let bin = kmag.round() as usize;
                if bin == 0 || bin > nbins {
                    continue;
                }
                let p = spec[kx + n * (ky + n * kz)].norm_sqr() * norm * norm;
                k_sum[bin] += kmag;
                p_sum[bin] += p;
                counts[bin] += 1;
            }
        }
    }
    let mut out = PowerSpectrum {
        k: Vec::with_capacity(nbins),
        power: Vec::with_capacity(nbins),
        counts: Vec::with_capacity(nbins),
    };
    for bin in 1..=nbins {
        if counts[bin] == 0 {
            continue;
        }
        out.k.push(k_sum[bin] / counts[bin] as f64);
        out.power.push(p_sum[bin] / counts[bin] as f64);
        out.counts.push(counts[bin]);
    }
    out
}

/// Per-bin relative error `|p'(k) - p(k)| / p(k)` between a reference and
/// a decompressed spectrum (bins with zero reference power report 0).
pub fn relative_error(reference: &PowerSpectrum, other: &PowerSpectrum) -> Vec<f64> {
    assert_eq!(reference.len(), other.len(), "spectra must share binning");
    reference
        .power
        .iter()
        .zip(&other.power)
        .map(|(&p, &q)| if p > 0.0 { (q - p).abs() / p } else { 0.0 })
        .collect()
}

/// The paper's acceptance check: max relative error over bins with
/// `k < k_limit` must be below `tolerance` (1% in the paper).
pub fn spectrum_acceptable(
    reference: &PowerSpectrum,
    other: &PowerSpectrum,
    k_limit: f64,
    tolerance: f64,
) -> bool {
    relative_error(reference, other)
        .iter()
        .zip(&reference.k)
        .filter(|(_, &k)| k < k_limit)
        .all(|(&e, _)| e <= tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine_field(n: usize, mode: usize, amp: f64) -> Vec<f64> {
        let mut f = vec![0.0; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    f[x + n * (y + n * z)] = 1.0
                        + amp
                            * (2.0 * std::f64::consts::PI * mode as f64 * x as f64 / n as f64)
                                .cos();
                }
            }
        }
        f
    }

    #[test]
    fn single_mode_peaks_at_its_bin() {
        let n = 32;
        let ps = power_spectrum(&cosine_field(n, 4, 0.5), n);
        // Bin with k ~= 4 must hold essentially all power.
        let total: f64 = ps
            .power
            .iter()
            .zip(&ps.counts)
            .map(|(p, &c)| p * c as f64)
            .sum();
        let at4: f64 =
            ps.k.iter()
                .zip(ps.power.iter().zip(&ps.counts))
                .filter(|(&k, _)| (k - 4.0).abs() < 0.5)
                .map(|(_, (p, &c))| p * c as f64)
                .sum();
        assert!(at4 / total > 0.999, "power at k=4: {at4} of {total}");
    }

    #[test]
    fn amplitude_scales_quadratically() {
        let n = 16;
        let ps1 = power_spectrum(&cosine_field(n, 3, 0.1), n);
        let ps2 = power_spectrum(&cosine_field(n, 3, 0.2), n);
        let bin = ps1.k.iter().position(|&k| (k - 3.0).abs() < 0.5).unwrap();
        let ratio = ps2.power[bin] / ps1.power[bin];
        assert!((ratio - 4.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn constant_field_has_zero_power() {
        let n = 16;
        let ps = power_spectrum(&vec![5.0; n * n * n], n);
        assert!(ps.power.iter().all(|&p| p < 1e-20));
    }

    #[test]
    fn relative_error_and_acceptance() {
        let n = 16;
        let a = power_spectrum(&cosine_field(n, 2, 0.3), n);
        let mut b = a.clone();
        // 0.5% error in-band, 5% out of band.
        let lim = 5.0;
        for (i, k) in a.k.iter().enumerate() {
            b.power[i] *= if *k < lim { 1.005 } else { 1.05 };
        }
        let err = relative_error(&a, &b);
        assert!(err.iter().any(|&e| e > 0.04));
        assert!(spectrum_acceptable(&a, &b, lim, 0.01));
        assert!(!spectrum_acceptable(&a, &b, lim + 2.0, 0.01));
    }

    #[test]
    fn bins_cover_up_to_nyquist() {
        let n = 16;
        let ps = power_spectrum(&cosine_field(n, 1, 0.1), n);
        let kmax = ps.k.last().copied().unwrap();
        assert!(kmax <= (n / 2) as f64 + 0.5);
        assert!(ps.k.first().copied().unwrap() >= 0.5);
    }
}
