//! Pre-planned shard assignment: longest-processing-time (LPT) list
//! scheduling.
//!
//! TAC+ observes that the partitioning stage can be planned up front:
//! per-task costs (cell counts) are known before any compression runs,
//! so a static heaviest-first assignment already lands within 4/3 of the
//! optimal makespan. Work stealing (see [`crate::executor`]) then mops
//! up the estimate error at runtime.

/// Assigns task indices `0..weights.len()` to `workers` shards with the
/// LPT heuristic: tasks are visited heaviest first (ties broken by lower
/// index), each going to the currently least-loaded shard (ties broken
/// by lower shard id). Both tie-breaks make the plan fully
/// deterministic.
///
/// Each returned shard lists its task indices heaviest first.
pub fn lpt_assign(weights: &[u64], workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut loads = vec![0u64; workers];
    for i in order {
        let lightest = (0..workers).min_by_key(|&w| (loads[w], w)).expect(">= 1");
        shards[lightest].push(i);
        loads[lightest] += weights[i];
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_assigned_exactly_once() {
        let weights: Vec<u64> = (0..37).map(|i| (i * 7919) % 100 + 1).collect();
        let shards = lpt_assign(&weights, 4);
        assert_eq!(shards.len(), 4);
        let mut seen = vec![false; weights.len()];
        for shard in &shards {
            for &i in shard {
                assert!(!seen[i], "task {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn heavy_tasks_spread_across_workers() {
        // Four heavy tasks + noise must land on four distinct workers.
        let mut weights = vec![1000u64, 1000, 1000, 1000];
        weights.extend([1u64; 20]);
        let shards = lpt_assign(&weights, 4);
        for (w, shard) in shards.iter().enumerate() {
            let heavies = shard.iter().filter(|&&i| i < 4).count();
            assert_eq!(heavies, 1, "worker {w} got {heavies} heavy tasks");
        }
    }

    #[test]
    fn balanced_loads_within_lpt_bound() {
        let weights: Vec<u64> = (1..=64).collect();
        let shards = lpt_assign(&weights, 8);
        let loads: Vec<u64> = shards
            .iter()
            .map(|s| s.iter().map(|&i| weights[i]).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let total: u64 = weights.iter().sum();
        // LPT guarantee: makespan <= 4/3 * optimal (here optimal = total/8).
        assert!(max as f64 <= (total as f64 / 8.0) * (4.0 / 3.0) + 64.0);
    }

    #[test]
    fn deterministic_under_ties() {
        let weights = vec![5u64; 16];
        assert_eq!(lpt_assign(&weights, 3), lpt_assign(&weights, 3));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(lpt_assign(&[], 4), vec![Vec::<usize>::new(); 4]);
        let one = lpt_assign(&[9], 1);
        assert_eq!(one, vec![vec![0]]);
        // workers = 0 is clamped to 1.
        assert_eq!(lpt_assign(&[1, 2], 0).len(), 1);
    }
}
