//! Work-stealing executor over [`std::thread::scope`].
//!
//! Each worker owns a deque seeded by the LPT pre-plan
//! ([`crate::shard::lpt_assign`]). Workers pop their own deque from the
//! front (heaviest first); a worker whose deque runs dry steals the
//! *back* half of the fullest victim's deque, so the cheap tail tasks —
//! where cost estimates are least reliable — are the ones that migrate.
//!
//! Results land in per-task slots, making the output order independent
//! of scheduling: callers that assemble byte streams from the results
//! get bit-identical output for every worker count.

use crate::shard::lpt_assign;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counters describing one [`execute_with_stats`] run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Worker threads actually spawned (0 on the inline serial path).
    pub workers: usize,
    /// Successful steal operations (batches moved, not single tasks).
    pub steals: usize,
    /// Tasks completed by each worker.
    pub tasks_per_worker: Vec<usize>,
}

/// Runs `f` over every task on `workers` threads and returns the results
/// in task order. `weight` estimates relative task cost (any monotone
/// proxy works; TAC uses cell counts) and drives the LPT pre-plan.
///
/// Falls back to a plain sequential loop when `workers <= 1` or there
/// are fewer than two tasks.
pub fn execute<T, R, W, F>(workers: usize, tasks: &[T], weight: W, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(&T) -> u64,
    F: Fn(&T) -> R + Sync,
{
    execute_with_stats(workers, tasks, weight, f).0
}

/// [`execute`] variant that also reports scheduling counters, for tests
/// and benchmark harnesses that assert stealing actually happens.
pub fn execute_with_stats<T, R, W, F>(
    workers: usize,
    tasks: &[T],
    weight: W,
    f: F,
) -> (Vec<R>, ExecStats)
where
    T: Sync,
    R: Send,
    W: Fn(&T) -> u64,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 || tasks.len() <= 1 {
        return (tasks.iter().map(&f).collect(), ExecStats::default());
    }
    let nw = workers.min(tasks.len());
    let weights: Vec<u64> = tasks.iter().map(&weight).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> = lpt_assign(&weights, nw)
        .into_iter()
        .map(|shard| Mutex::new(shard.into()))
        .collect();

    let mut out: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
    let slots = Mutex::new(&mut out);
    let steals = AtomicUsize::new(0);
    let done_counts: Vec<AtomicUsize> = (0..nw).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|scope| {
        for (me, done) in done_counts.iter().enumerate() {
            let deques = &deques;
            let slots = &slots;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || {
                let _worker = tac_obs::span(tac_obs::Stage::Worker).arg("worker", me);
                loop {
                    // The own-deque pop is effectively instant, so the
                    // time spent in `pop_or_steal` is scan/steal/idle
                    // overhead. Timed only in obs builds (the branch
                    // folds away on `enabled()`, a const).
                    let next = if tac_obs::enabled() {
                        let waiting = std::time::Instant::now();
                        let next = pop_or_steal(deques, me, steals);
                        tac_obs::add(
                            tac_obs::Counter::ExecIdleNs,
                            waiting.elapsed().as_nanos() as u64,
                        );
                        next
                    } else {
                        pop_or_steal(deques, me, steals)
                    };
                    match next {
                        Some(i) => {
                            tac_obs::add(tac_obs::Counter::ExecTasks, 1);
                            let r = f(&tasks[i]);
                            slots.lock().expect("result mutex poisoned")[i] = Some(r);
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                }
            });
        }
    });

    let stats = ExecStats {
        workers: nw,
        steals: steals.load(Ordering::Relaxed),
        tasks_per_worker: done_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
    };
    let results = out
        .into_iter()
        .map(|r| r.expect("scheduler dropped a task"))
        .collect();
    (results, stats)
}

/// Takes the next task index for worker `me`: front of its own deque,
/// else the back half of the fullest other deque. `None` when every
/// deque looks empty (a second pass guards against batches caught
/// mid-migration).
fn pop_or_steal(
    deques: &[Mutex<VecDeque<usize>>],
    me: usize,
    steals: &AtomicUsize,
) -> Option<usize> {
    if let Some(i) = deques[me].lock().expect("deque poisoned").pop_front() {
        return Some(i);
    }
    // Two scan passes: a batch being moved between deques is invisible
    // to a single scan, and exiting early only costs parallelism at the
    // very tail, but the second look is free.
    for _pass in 0..2 {
        // Pick the victim with the most queued work.
        let victim = (0..deques.len())
            .filter(|&v| v != me)
            .max_by_key(|&v| deques[v].lock().expect("deque poisoned").len())?;
        let mut stolen: VecDeque<usize> = {
            let mut vq = deques[victim].lock().expect("deque poisoned");
            let keep = vq.len().div_ceil(2);
            vq.split_off(keep)
        };
        if let Some(first) = stolen.pop_front() {
            if !stolen.is_empty() {
                let mut mine = deques[me].lock().expect("deque poisoned");
                mine.extend(stolen);
            }
            steals.fetch_add(1, Ordering::Relaxed);
            tac_obs::add(tac_obs::Counter::ExecSteals, 1);
            return Some(first);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_task_order() {
        let tasks: Vec<usize> = (0..200).collect();
        let out = execute(4, &tasks, |_| 1, |&t| t * 3);
        assert_eq!(out, (0..200).map(|t| t * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let tasks: Vec<u64> = (0..64).map(|i| (i * 31) % 17).collect();
        let serial = execute(1, &tasks, |&w| w, |&t| t * t);
        for workers in [2, 4, 8] {
            assert_eq!(execute(workers, &tasks, |&w| w, |&t| t * t), serial);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let tasks: Vec<usize> = (0..500).collect();
        let out = execute(
            8,
            &tasks,
            |_| 1,
            |&t| {
                counter.fetch_add(1, Ordering::Relaxed);
                t
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn stealing_rebalances_bad_estimates() {
        // Lie about weights: claim uniform cost but make worker 0's
        // initial shard heavy. With stealing, everyone still finishes.
        let tasks: Vec<u64> = (0..64).collect();
        let (out, stats) = execute_with_stats(
            4,
            &tasks,
            |_| 1,
            |&t| {
                // Early (heavy-shard) tasks spin longer.
                let spins = if t < 16 { 200_000 } else { 10 };
                let mut acc = 0u64;
                for i in 0..spins {
                    acc = acc.wrapping_add(std::hint::black_box(i ^ t));
                }
                acc
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 64);
    }

    #[test]
    fn workers_capped_by_task_count() {
        let tasks = vec![1u64, 2];
        let (out, stats) = execute_with_stats(16, &tasks, |&w| w, |&t| t + 1);
        assert_eq!(out, vec![2, 3]);
        assert!(stats.workers <= 2);
    }

    #[test]
    fn empty_and_single_task_paths() {
        let empty: Vec<u8> = Vec::new();
        assert!(execute(8, &empty, |_| 1, |&t| t).is_empty());
        assert_eq!(execute(8, &[7u8], |_| 1, |&t| t * 2), vec![14]);
    }

    #[test]
    fn tasks_may_borrow_caller_state() {
        // The executor must accept closures borrowing the caller's stack
        // (std::thread::scope, not 'static threads).
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let tasks: Vec<usize> = (0..8).collect();
        let sums = execute(
            4,
            &tasks,
            |_| 1,
            |&t| data[t * 4..(t + 1) * 4].iter().sum::<f64>(),
        );
        assert_eq!(sums.len(), 8);
        assert_eq!(sums[0], 0.0 + 1.0 + 2.0 + 3.0);
    }
}
