#![forbid(unsafe_code)]

//! # tac-par
//!
//! Work-stealing block scheduler behind TAC's parallel compression
//! engine. TAC's level-wise design is embarrassingly parallel — each
//! refinement level, and within a level each extracted region group, is
//! an independent compression unit — so the engine reduces to a generic
//! problem: run `n` independent, unevenly-sized tasks on `w` workers and
//! return the results in task order.
//!
//! The crate is deliberately dataset-agnostic (it knows nothing about
//! AMR levels or SZ streams; `tac-core` builds the task lists), has no
//! dependencies beyond `std`, and uses [`std::thread::scope`] so tasks
//! may borrow from the caller's stack.
//!
//! Scheduling is two-phase:
//! 1. [`shard::lpt_assign`] pre-plans the shards: tasks are placed
//!    heaviest-first onto the least-loaded worker (longest-processing-
//!    time heuristic), so the initial distribution is already balanced
//!    when cost estimates are accurate;
//! 2. [`executor::execute`] runs the shards with work stealing: a worker
//!    that drains its own deque steals the back half of the fullest
//!    victim's deque, absorbing estimate error without a central queue.
//!
//! Results are written into per-task slots, so the output order — and
//! therefore any byte stream assembled from it — is **identical for
//! every worker count**, including fully serial execution.
//!
//! ```
//! use tac_par::{execute, Parallelism};
//!
//! let tasks: Vec<u64> = (0..100).collect();
//! let out = execute(
//!     Parallelism::Threads(4).workers(),
//!     &tasks,
//!     |&t| t, // cost estimate
//!     |&t| t * 2,
//! );
//! assert_eq!(out, (0..100).map(|t| t * 2).collect::<Vec<_>>());
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod shard;

pub use executor::{execute, execute_with_stats, ExecStats};
pub use shard::lpt_assign;

/// How much parallelism a pipeline stage may use.
///
/// Carried by `TacConfig`; the compression engine resolves it to a
/// worker count once per dataset with [`Parallelism::workers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded execution on the calling thread.
    Serial,
    /// Exactly this many worker threads (clamped to at least 1 at
    /// resolution time; 0 is rejected by config validation).
    Threads(usize),
    /// One worker per available hardware thread, capped at 16.
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete worker count (always >= 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(16),
        }
    }

    /// Whether the scheduler would spawn worker threads at all.
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::Auto`].
    fn default() -> Self {
        Parallelism::Auto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_resolution() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        let auto = Parallelism::Auto.workers();
        assert!((1..=16).contains(&auto));
        assert!(!Parallelism::Serial.is_parallel());
        assert!(Parallelism::Threads(8).is_parallel());
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }
}
