//! The collected data model shared by the recorder and the exporters.
//! Compiled regardless of the `enabled` feature so reports can be
//! rebuilt from archived data without the recording machinery.

use crate::{Counter, HistKind, Stage, HIST_BUCKETS};

/// One closed span, as recorded by the thread that ran it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Small dense id of the recording thread (0 = first thread seen).
    pub tid: u32,
    /// Stage the span is attributed to.
    pub stage: Stage,
    /// Start, nanoseconds since the session epoch.
    pub start_ns: u64,
    /// Total duration in nanoseconds.
    pub dur_ns: u64,
    /// Self time: duration minus the duration of direct child spans.
    /// Summing `self_ns` over every span equals summing `dur_ns` over
    /// depth-0 spans, which is what makes per-stage fractions add up.
    pub self_ns: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u16,
    /// Key/value arguments attached via [`crate::SpanGuard::arg`].
    pub args: Vec<(&'static str, u64)>,
}

/// One merged histogram: `counts[v]` observations of value `v` (values
/// clamped to [`HIST_BUCKETS`]` - 1` at record time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Which histogram this is.
    pub kind: HistKind,
    /// Per-value observation counts, indexed by value.
    pub counts: Vec<u64>,
}

impl HistSnapshot {
    /// An empty histogram for `kind`.
    pub fn empty(kind: HistKind) -> Self {
        HistSnapshot {
            kind,
            counts: vec![0; HIST_BUCKETS],
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Mean observed value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| (v as f64) * (c as f64))
            .sum();
        Some(weighted / total as f64)
    }
}

/// Everything one collect produced: all shards merged.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Every closed span from every thread, in per-thread close order.
    pub spans: Vec<SpanEvent>,
    /// Merged counter totals, indexed by [`Counter::index`].
    pub counters: Vec<u64>,
    /// Merged histograms, one per [`HistKind`], in `HistKind::ALL` order.
    pub hists: Vec<HistSnapshot>,
}

impl Snapshot {
    /// An empty snapshot with zeroed counters and histograms.
    pub fn new() -> Self {
        Snapshot {
            spans: Vec::new(),
            counters: vec![0; Counter::COUNT],
            hists: HistKind::ALL
                .iter()
                .map(|&h| HistSnapshot::empty(h))
                .collect(),
        }
    }

    /// Merged total for one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.index()).copied().unwrap_or(0)
    }

    /// Merged histogram for one kind.
    pub fn histogram(&self, h: HistKind) -> Option<&HistSnapshot> {
        self.hists.iter().find(|s| s.kind == h)
    }

    /// Fold another snapshot into this one (spans appended, counters and
    /// histogram buckets added).
    pub fn merge(&mut self, other: Snapshot) {
        self.spans.extend(other.spans);
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        for (mine, theirs) in self.hists.iter_mut().zip(other.hists.iter()) {
            for (m, t) in mine.counts.iter_mut().zip(theirs.counts.iter()) {
                *m = m.saturating_add(*t);
            }
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.iter().all(|&c| c == 0)
            && self.hists.iter().all(|h| h.total() == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = Snapshot::new();
        let mut b = Snapshot::new();
        if let Some(slot) = a.counters.get_mut(Counter::ChunksEncoded.index()) {
            *slot = 3;
        }
        if let Some(slot) = b.counters.get_mut(Counter::ChunksEncoded.index()) {
            *slot = 4;
        }
        if let Some(h) = b.hists.get_mut(0) {
            if let Some(slot) = h.counts.get_mut(12) {
                *slot = 5;
            }
        }
        a.merge(b);
        assert_eq!(a.counter(Counter::ChunksEncoded), 7);
        let h = a.histogram(HistKind::PcoPageBits).unwrap();
        assert_eq!(h.total(), 5);
        assert_eq!(h.mean(), Some(12.0));
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        assert!(Snapshot::new().is_empty());
    }
}
