//! Structured observability for the TAC stack.
//!
//! The crate follows the `log`-crate model: every other crate calls the
//! free functions [`span`], [`add`] and [`hist`] unconditionally, and a
//! static [`Recorder`] decides what happens to the data. Without the
//! `enabled` cargo feature the whole API compiles to zero-sized inline
//! no-ops — [`SpanGuard`] is a unit struct and every call body is empty,
//! so the default build carries no recorder branches in hot loops (see
//! the `disabled_guard_is_zero_sized` test). With `enabled`, spans keep
//! a thread-local stack with monotonic timestamps, and counters and
//! histograms land in per-thread shards that are merged only on collect,
//! so hot loops never touch shared atomics.
//!
//! Two exporters live in [`export`]: a chrome://tracing-compatible event
//! stream and a compact per-stage text/JSON report. [`meta`] captures
//! run metadata (git commit, seed, workers, cores, timestamp) so the
//! JSON artifacts written by the bench harness are self-describing.

#![forbid(unsafe_code)]

pub mod export;
pub mod meta;
mod snapshot;

pub use snapshot::{HistSnapshot, Snapshot, SpanEvent};

#[cfg(feature = "enabled")]
mod registry;
#[cfg(feature = "enabled")]
pub use registry::{install, session, set_recorder, ObsSession, Recorder, SpanGuard};

/// Whether the recording machinery is compiled in. `const`, so
/// `if tac_obs::enabled() { .. }` folds away entirely in default builds.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Pipeline stages a span can be attributed to. The names are wire- and
/// report-stable: they appear in `TRACE_*.json` and the `stages` object
/// of `BENCH_codec.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Whole-dataset compression entry point.
    Compress,
    /// Whole-dataset decompression entry point.
    Decompress,
    /// Engine planning (task construction).
    Plan,
    /// `Method::Auto` selection pass (candidate trial encodes and
    /// rate estimates).
    Select,
    /// Engine task execution (the parallel region).
    Execute,
    /// Engine result assembly into the container.
    Assemble,
    /// One codec encode task (a level, group, or baseline stream).
    Encode,
    /// One codec decode task.
    Decode,
    /// Codec quantization (SZ prediction+quantization, PcoLite q+delta).
    Quantize,
    /// PcoLite adaptive bit packing.
    Pack,
    /// PcoAns per-page bin planning + rANS table build (both sides).
    AnsTable,
    /// SZ entropy stage (Huffman).
    Entropy,
    /// Final lossless stage (LZSS) of either codec.
    Lossless,
    /// ROI region decode.
    RoiDecode,
    /// Lifetime of one executor worker thread.
    Worker,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: &'static [Stage] = &[
        Stage::Compress,
        Stage::Decompress,
        Stage::Plan,
        Stage::Select,
        Stage::Execute,
        Stage::Assemble,
        Stage::Encode,
        Stage::Decode,
        Stage::Quantize,
        Stage::Pack,
        Stage::AnsTable,
        Stage::Entropy,
        Stage::Lossless,
        Stage::RoiDecode,
        Stage::Worker,
    ];

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Compress => "compress",
            Stage::Decompress => "decompress",
            Stage::Plan => "plan",
            Stage::Select => "select",
            Stage::Execute => "execute",
            Stage::Assemble => "assemble",
            Stage::Encode => "encode",
            Stage::Decode => "decode",
            Stage::Quantize => "quantize",
            Stage::Pack => "pack",
            Stage::AnsTable => "ans_table",
            Stage::Entropy => "entropy",
            Stage::Lossless => "lossless",
            Stage::RoiDecode => "roi_decode",
            Stage::Worker => "worker",
        }
    }
}

/// Typed counters. Each lives in every per-thread shard; [`Snapshot`]
/// holds the merged totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Codec streams encoded (levels, groups, baseline streams).
    ChunksEncoded,
    /// Codec streams decoded.
    ChunksDecoded,
    /// Compressed payload bytes produced by codec encodes.
    PayloadBytesOut,
    /// Compressed payload bytes consumed by codec decodes.
    PayloadBytesIn,
    /// Chunks considered by an ROI decode.
    RoiChunksTotal,
    /// Chunks actually read by an ROI decode.
    RoiChunksRead,
    /// Payload bytes read by an ROI decode.
    RoiBytesRead,
    /// Payload bytes skipped by an ROI decode.
    RoiBytesSkipped,
    /// Tasks executed by the work-stealing executor.
    ExecTasks,
    /// Tasks obtained by stealing from another worker's deque.
    ExecSteals,
    /// Nanoseconds executor workers spent failing to find work.
    ExecIdleNs,
    /// SZ quantizer predictions within the error bound.
    SzQuantHits,
    /// SZ quantizer misses (stored raw).
    SzQuantMisses,
    /// SZ blocks predicted with the Lorenzo predictor.
    SzBlocksLorenzo,
    /// SZ blocks predicted with the regression predictor.
    SzBlocksRegression,
    /// PcoLite pages emitted.
    PcoPages,
    /// PcoLite in-page patched outliers.
    PcoOutliers,
    /// PcoLite out-of-page exception values.
    PcoExceptions,
    /// PcoAns pages emitted or decoded.
    AnsPages,
    /// PcoAns decoder state renormalizations (16-bit word refills).
    AnsRenorms,
    /// `(method, codec)` candidates evaluated by a `Method::Auto`
    /// selection pass.
    SelectCandidates,
    /// Values trial-encoded by a selection pass (exhaustive trials and
    /// subsampled estimates alike).
    SelectSampledValues,
    /// Estimated payload bytes of the winning selection candidate.
    SelectWinnerBytes,
}

impl Counter {
    /// Number of counters (shard array size).
    pub const COUNT: usize = Counter::ALL.len();

    /// Every counter, in display order.
    pub const ALL: &'static [Counter] = &[
        Counter::ChunksEncoded,
        Counter::ChunksDecoded,
        Counter::PayloadBytesOut,
        Counter::PayloadBytesIn,
        Counter::RoiChunksTotal,
        Counter::RoiChunksRead,
        Counter::RoiBytesRead,
        Counter::RoiBytesSkipped,
        Counter::ExecTasks,
        Counter::ExecSteals,
        Counter::ExecIdleNs,
        Counter::SzQuantHits,
        Counter::SzQuantMisses,
        Counter::SzBlocksLorenzo,
        Counter::SzBlocksRegression,
        Counter::PcoPages,
        Counter::PcoOutliers,
        Counter::PcoExceptions,
        Counter::AnsPages,
        Counter::AnsRenorms,
        Counter::SelectCandidates,
        Counter::SelectSampledValues,
        Counter::SelectWinnerBytes,
    ];

    /// Index into a shard's counter array.
    #[inline(always)]
    pub fn index(self) -> usize {
        Counter::ALL.iter().position(|&c| c == self).unwrap_or(0)
    }

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ChunksEncoded => "chunks_encoded",
            Counter::ChunksDecoded => "chunks_decoded",
            Counter::PayloadBytesOut => "payload_bytes_out",
            Counter::PayloadBytesIn => "payload_bytes_in",
            Counter::RoiChunksTotal => "roi_chunks_total",
            Counter::RoiChunksRead => "roi_chunks_read",
            Counter::RoiBytesRead => "roi_bytes_read",
            Counter::RoiBytesSkipped => "roi_bytes_skipped",
            Counter::ExecTasks => "exec_tasks",
            Counter::ExecSteals => "exec_steals",
            Counter::ExecIdleNs => "exec_idle_ns",
            Counter::SzQuantHits => "sz_quant_hits",
            Counter::SzQuantMisses => "sz_quant_misses",
            Counter::SzBlocksLorenzo => "sz_blocks_lorenzo",
            Counter::SzBlocksRegression => "sz_blocks_regression",
            Counter::PcoPages => "pco_pages",
            Counter::PcoOutliers => "pco_outliers",
            Counter::PcoExceptions => "pco_exceptions",
            Counter::AnsPages => "ans_pages",
            Counter::AnsRenorms => "ans_renorms",
            Counter::SelectCandidates => "select_candidates",
            Counter::SelectSampledValues => "select_sampled_values",
            Counter::SelectWinnerBytes => "select_winner_bytes",
        }
    }
}

/// Typed histograms. Buckets are direct small-integer values, clamped to
/// [`HIST_BUCKETS`]` - 1` — exactly right for bit widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistKind {
    /// Bit width chosen per PcoLite page (0..=64).
    PcoPageBits,
    /// Bin count chosen per PcoAns page (1..=65, clamped to the bucket
    /// range).
    AnsPageBins,
}

/// Bucket count per histogram: values 0..=64 — right for bit widths,
/// and PcoAns bin counts (1..=65) land in it with the top value
/// clamped.
pub const HIST_BUCKETS: usize = 65;

impl HistKind {
    /// Number of histogram kinds (shard array size).
    pub const COUNT: usize = HistKind::ALL.len();

    /// Every histogram kind.
    pub const ALL: &'static [HistKind] = &[HistKind::PcoPageBits, HistKind::AnsPageBins];

    /// Index into a shard's histogram array.
    #[inline(always)]
    pub fn index(self) -> usize {
        HistKind::ALL.iter().position(|&h| h == self).unwrap_or(0)
    }

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::PcoPageBits => "pco_page_bits",
            HistKind::AnsPageBins => "ans_page_bins",
        }
    }
}

/// Values accepted by [`SpanGuard::arg`] — the small unsigned integers
/// instrumentation sites actually have on hand. Taking the conversion
/// here keeps `as` casts out of wire-audited call sites.
pub trait ObsValue {
    /// Widen into the u64 the span event stores.
    fn into_u64(self) -> u64;
}

macro_rules! obs_value {
    ($($t:ty),*) => {$(
        impl ObsValue for $t {
            #[inline(always)]
            fn into_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}
obs_value!(u8, u16, u32, u64, usize);

impl ObsValue for bool {
    #[inline(always)]
    fn into_u64(self) -> u64 {
        u64::from(self)
    }
}

// ---------------------------------------------------------------------
// Disabled path: the entire API is zero-sized inline no-ops.
// ---------------------------------------------------------------------

/// RAII guard for an open span (no-op flavour). Zero-sized; dropping it
/// does nothing.
#[cfg(not(feature = "enabled"))]
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing"]
pub struct SpanGuard {
    _priv: (),
}

#[cfg(not(feature = "enabled"))]
impl SpanGuard {
    /// Attach a key/value argument to the span (no-op flavour).
    #[inline(always)]
    pub fn arg(self, _key: &'static str, _value: impl ObsValue) -> Self {
        self
    }
}

/// Open a span for `stage`; it closes when the guard drops (no-op
/// flavour: nothing is recorded).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn span(_stage: Stage) -> SpanGuard {
    SpanGuard { _priv: () }
}

/// Add `delta` to a counter (no-op flavour).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn add(_counter: Counter, _delta: u64) {}

/// Add a `usize` quantity (typically a buffer length) to a counter
/// (no-op flavour).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn add_bytes(_counter: Counter, _n: usize) {}

/// Record one histogram observation (no-op flavour).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hist(_kind: HistKind, _value: usize) {}

// ---------------------------------------------------------------------
// Enabled path: thin wrappers over the registry.
// ---------------------------------------------------------------------

/// Open a span for `stage`; it closes (and is recorded) when the guard
/// drops.
#[cfg(feature = "enabled")]
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    registry::begin(stage)
}

/// Add `delta` to a counter in the calling thread's shard.
#[cfg(feature = "enabled")]
#[inline]
pub fn add(counter: Counter, delta: u64) {
    registry::add(counter, delta)
}

/// Add a `usize` quantity (typically a buffer length) to a counter.
#[cfg(feature = "enabled")]
#[inline]
pub fn add_bytes(counter: Counter, n: usize) {
    registry::add(counter, n as u64)
}

/// Record one histogram observation in the calling thread's shard.
#[cfg(feature = "enabled")]
#[inline]
pub fn hist(kind: HistKind, value: usize) {
    registry::hist(kind, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_counter_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn counter_indices_are_dense() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in HistKind::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }

    /// The acceptance criterion for the default build: the disabled API
    /// is zero-sized, so there is nothing for a hot loop to branch on.
    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        let g = span(Stage::Encode).arg("level", 3usize).arg("ok", true);
        drop(g);
        add(Counter::ChunksEncoded, 1);
        add_bytes(Counter::PayloadBytesOut, 128);
        hist(HistKind::PcoPageBits, 12);
    }
}
