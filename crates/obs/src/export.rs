//! Exporters over a collected [`Snapshot`]: a chrome://tracing-
//! compatible event stream (load `TRACE_*.json` in `chrome://tracing`
//! or Perfetto) and a compact per-stage text/JSON report in the
//! `EXPERIMENTS.md` table style.

use std::fmt::Write as _;

use crate::snapshot::{HistSnapshot, Snapshot};
use crate::{Counter, Stage};

fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

/// Render every span as a chrome-trace complete (`"ph":"X"`) event.
/// Timestamps are microseconds since the session epoch.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for ev in &snap.spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"tac\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3}",
            ev.stage.name(),
            ev.tid,
            ns_to_us(ev.start_ns),
            ns_to_us(ev.dur_ns),
        );
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            let mut first_arg = true;
            for (key, value) in &ev.args {
                if !first_arg {
                    out.push(',');
                }
                first_arg = false;
                let _ = write!(out, "\"{key}\":{value}");
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Aggregated time for one stage.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// The stage.
    pub stage: Stage,
    /// Number of spans recorded for it.
    pub spans: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Self (exclusive) nanoseconds: total minus direct children.
    pub self_ns: u64,
}

/// Per-stage breakdown plus the non-zero counters and histograms.
///
/// Accounting: every span's `self_ns` excludes its direct children, so
/// within one thread self times telescope exactly. Across threads, the
/// executor's [`Stage::Worker`] spans overlap the engine's
/// [`Stage::Execute`] span on the driver thread; to avoid double
/// counting, worker lifetimes are excluded from the rows and the wall,
/// and the duration of worker-side top-level task spans is re-parented
/// under the `execute` row (subtracted from its self time). With that,
/// the self times across all rows sum to [`StageReport::wall_ns`] — the
/// end-to-end instrumented time — and fractions add up to 1, serial or
/// parallel. Worker idle time is still visible via the `exec_idle_ns`
/// counter and the worker timelines in the chrome trace.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// One row per stage that recorded at least one span, by descending
    /// self time ([`Stage::Worker`] excluded, see above).
    pub rows: Vec<StageRow>,
    /// Sum of depth-0 span durations (worker lifetimes excluded).
    pub wall_ns: u64,
    /// Non-zero counters, in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
    /// Histograms with at least one observation.
    pub hists: Vec<HistSnapshot>,
}

impl StageReport {
    /// Aggregate a snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> StageReport {
        let worker_tids: std::collections::HashSet<u32> = snap
            .spans
            .iter()
            .filter(|ev| ev.depth == 0 && ev.stage == Stage::Worker)
            .map(|ev| ev.tid)
            .collect();
        let mut rows: Vec<StageRow> = Vec::new();
        let mut wall_ns = 0u64;
        // Worker-side top-level task spans: children of `execute` in
        // spirit, recorded on another thread in practice.
        let mut adopted_ns = 0u64;
        for ev in &snap.spans {
            if ev.stage == Stage::Worker {
                continue;
            }
            if ev.depth == 0 {
                wall_ns = wall_ns.saturating_add(ev.dur_ns);
            }
            if ev.depth == 1 && worker_tids.contains(&ev.tid) {
                adopted_ns = adopted_ns.saturating_add(ev.dur_ns);
            }
            match rows.iter_mut().find(|r| r.stage == ev.stage) {
                Some(row) => {
                    row.spans = row.spans.saturating_add(1);
                    row.total_ns = row.total_ns.saturating_add(ev.dur_ns);
                    row.self_ns = row.self_ns.saturating_add(ev.self_ns);
                }
                None => rows.push(StageRow {
                    stage: ev.stage,
                    spans: 1,
                    total_ns: ev.dur_ns,
                    self_ns: ev.self_ns,
                }),
            }
        }
        if adopted_ns > 0 {
            if let Some(row) = rows.iter_mut().find(|r| r.stage == Stage::Execute) {
                row.self_ns = row.self_ns.saturating_sub(adopted_ns);
            }
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.self_ns));
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c, snap.counter(c)))
            .filter(|&(_, v)| v != 0)
            .collect();
        let hists = snap
            .hists
            .iter()
            .filter(|h| h.total() != 0)
            .cloned()
            .collect();
        StageReport {
            rows,
            wall_ns,
            counters,
            hists,
        }
    }

    /// Fraction of wall time a row's self time accounts for (0 when no
    /// top-level span was recorded).
    pub fn fraction(&self, row: &StageRow) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            row.self_ns as f64 / self.wall_ns as f64
        }
    }

    /// `EXPERIMENTS.md`-style text table: stages, then counters, then
    /// histograms.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>12} {:>8}",
            "stage", "spans", "total ms", "self ms", "self %"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>12.3} {:>12.3} {:>7.1}%",
                row.stage.name(),
                row.spans,
                ns_to_ms(row.total_ns),
                ns_to_ms(row.self_ns),
                self.fraction(row) * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>12.3} {:>7.1}%",
            "(wall)",
            "",
            "",
            ns_to_ms(self.wall_ns),
            100.0
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (c, v) in &self.counters {
                let _ = writeln!(out, "  {:<22} {v}", c.name());
            }
        }
        for h in &self.hists {
            let mean = h.mean().unwrap_or(0.0);
            let hi = h
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c != 0)
                .map(|(v, _)| v)
                .next_back()
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "hist {}: {} observations, mean {:.2}, max {}",
                h.kind.name(),
                h.total(),
                mean,
                hi
            );
        }
        out
    }

    /// The `stages` JSON object for `BENCH_codec.json` rows: self-time
    /// fraction per stage plus the wall-clock the fractions refer to.
    pub fn stages_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"wall_ms\": {:.3}", ns_to_ms(self.wall_ns));
        for row in &self.rows {
            let _ = write!(out, ", \"{}\": {:.4}", row.stage.name(), self.fraction(row));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SpanEvent;
    use crate::HistKind;

    fn ev(stage: Stage, start: u64, dur: u64, self_ns: u64, depth: u16) -> SpanEvent {
        SpanEvent {
            tid: 0,
            stage,
            start_ns: start,
            dur_ns: dur,
            self_ns,
            depth,
            args: vec![("level", 1)],
        }
    }

    fn sample() -> Snapshot {
        let mut snap = Snapshot::new();
        snap.spans = vec![
            ev(Stage::Compress, 0, 1_000_000, 200_000, 0),
            ev(Stage::Encode, 100_000, 800_000, 500_000, 1),
            ev(Stage::Quantize, 150_000, 300_000, 300_000, 2),
        ];
        if let Some(slot) = snap.counters.get_mut(Counter::ChunksEncoded.index()) {
            *slot = 9;
        }
        if let Some(h) = snap.hists.get_mut(0) {
            if let Some(slot) = h.counts.get_mut(12) {
                *slot = 4;
            }
        }
        snap
    }

    #[test]
    fn fractions_sum_to_one() {
        let report = StageReport::from_snapshot(&sample());
        assert_eq!(report.wall_ns, 1_000_000);
        let sum: f64 = report.rows.iter().map(|r| report.fraction(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
    }

    /// A parallel-shaped snapshot: the driver's `execute` span overlaps
    /// two worker lifetimes whose task spans must be re-parented under
    /// it, not double-counted.
    #[test]
    fn worker_task_time_is_reparented_under_execute() {
        let mut snap = Snapshot::new();
        let mk = |tid: u32, stage, start: u64, dur: u64, self_ns: u64, depth: u16| SpanEvent {
            tid,
            stage,
            start_ns: start,
            dur_ns: dur,
            self_ns,
            depth,
            args: Vec::new(),
        };
        snap.spans = vec![
            // Driver: compress{ execute } — execute blocks on workers.
            mk(0, Stage::Compress, 0, 1_000_000, 200_000, 0),
            mk(0, Stage::Execute, 100_000, 800_000, 800_000, 1),
            // Worker 1: worker{ encode{ quantize } }.
            mk(1, Stage::Worker, 100_000, 800_000, 100_000, 0),
            mk(1, Stage::Encode, 150_000, 700_000, 400_000, 1),
            mk(1, Stage::Quantize, 200_000, 300_000, 300_000, 2),
            // Worker 2: worker{ encode }.
            mk(2, Stage::Worker, 100_000, 800_000, 700_000, 0),
            mk(2, Stage::Encode, 150_000, 100_000, 100_000, 1),
        ];
        let report = StageReport::from_snapshot(&snap);
        // Wall: driver top-level only; worker lifetimes excluded.
        assert_eq!(report.wall_ns, 1_000_000);
        assert!(report.rows.iter().all(|r| r.stage != Stage::Worker));
        // Execute self: 800k minus the 800k of adopted worker task
        // spans (700k + 100k) == 0.
        let exec = report
            .rows
            .iter()
            .find(|r| r.stage == Stage::Execute)
            .expect("execute row");
        assert_eq!(exec.self_ns, 0);
        let sum: f64 = report.rows.iter().map(|r| report.fraction(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
    }

    #[test]
    fn chrome_trace_is_structurally_valid_json() {
        let trace = chrome_trace_json(&sample());
        assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"quantize\""));
        assert!(trace.contains("\"args\":{\"level\":1}"));
        // Balanced braces/brackets outside strings (all our strings are
        // bare identifiers, so a raw scan is exact here).
        let open = trace.matches(['{', '[']).count();
        let close = trace.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn report_renders_counters_and_hists() {
        let text = StageReport::from_snapshot(&sample()).render_text();
        assert!(text.contains("encode"), "{text}");
        assert!(text.contains("chunks_encoded"), "{text}");
        assert!(text.contains("pco_page_bits"), "{text}");
        let _ = HistKind::PcoPageBits;
    }

    #[test]
    fn stages_json_has_wall_and_fractions() {
        let json = StageReport::from_snapshot(&sample()).stages_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"wall_ms\": 1.000"), "{json}");
        assert!(json.contains("\"encode\": 0.5000"), "{json}");
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let snap = Snapshot::new();
        let report = StageReport::from_snapshot(&snap);
        assert_eq!(report.wall_ns, 0);
        let _ = report.render_text();
        let _ = report.stages_json();
        let _ = chrome_trace_json(&snap);
    }
}
