//! Run metadata for self-describing artifacts: `BENCH_*.json` and
//! `CONFORMANCE.json` embed a [`RunMeta`] header so an archived report
//! pins the commit, seed, and machine shape that produced it. Compiled
//! regardless of the `enabled` feature — metadata costs nothing per hot
//! loop.

use std::time::{SystemTime, UNIX_EPOCH};

/// Everything needed to reproduce (or at least attribute) a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// `git rev-parse --short=12 HEAD`, or `"unknown"` outside a work
    /// tree.
    pub git_commit: String,
    /// The run's top-level RNG seed.
    pub seed: u64,
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// Host logical core count.
    pub cores: usize,
    /// ISO-8601 UTC timestamp (`2026-08-08T12:34:56Z`).
    pub timestamp: String,
}

impl RunMeta {
    /// Capture the current environment.
    pub fn capture(seed: u64, workers: usize) -> RunMeta {
        RunMeta {
            git_commit: git_commit(),
            seed,
            workers,
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            timestamp: iso8601_utc(SystemTime::now()),
        }
    }

    /// One-line JSON object (no trailing newline), suitable as a `meta`
    /// header value.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"git_commit\": \"{}\", \"seed\": {}, \"workers\": {}, \"cores\": {}, \
             \"timestamp\": \"{}\"}}",
            escape_json(&self.git_commit),
            self.seed,
            self.workers,
            self.cores,
            escape_json(&self.timestamp),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn git_commit() -> String {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output();
    match out {
        Ok(o) if o.status.success() => {
            let text = String::from_utf8_lossy(&o.stdout).trim().to_string();
            if text.is_empty() {
                "unknown".to_string()
            } else {
                text
            }
        }
        _ => "unknown".to_string(),
    }
}

/// Render a `SystemTime` as ISO-8601 UTC, seconds precision. Times
/// before the epoch clamp to the epoch.
pub fn iso8601_utc(t: SystemTime) -> String {
    let secs = t
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

/// Days-since-epoch to (year, month, day) — Howard Hinnant's
/// `civil_from_days`, valid across the whole i64 day range we can see.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn epoch_renders_as_1970() {
        assert_eq!(iso8601_utc(UNIX_EPOCH), "1970-01-01T00:00:00Z");
    }

    #[test]
    fn known_timestamps_render_correctly() {
        // 2026-08-08T00:00:00Z == 1786147200.
        let t = UNIX_EPOCH + Duration::from_secs(1_786_147_200);
        assert_eq!(iso8601_utc(t), "2026-08-08T00:00:00Z");
        // Leap-year day: 2024-02-29T12:30:45Z == 1709209845.
        let t = UNIX_EPOCH + Duration::from_secs(1_709_209_845);
        assert_eq!(iso8601_utc(t), "2024-02-29T12:30:45Z");
    }

    #[test]
    fn capture_produces_valid_json() {
        let meta = RunMeta::capture(42, 8);
        assert!(meta.cores >= 1);
        let json = meta.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"seed\": 42"), "{json}");
        assert!(json.contains("\"workers\": 8"), "{json}");
        assert!(json.contains("\"timestamp\": \""), "{json}");
        assert!(json.contains("\"git_commit\": \""), "{json}");
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
