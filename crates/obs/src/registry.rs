//! The recording machinery behind the `enabled` feature: a static
//! [`Recorder`] hook (à la `log`), the thread-local span stack, and the
//! built-in sharded [`ObsSession`] recorder.
//!
//! Hot-path discipline: a span open/close touches only thread-local
//! state plus the calling thread's own shard (relaxed atomics nobody
//! else writes); counters and histograms go straight to the shard.
//! Shared state is touched only on first use per thread (shard
//! registration) and on [`ObsSession::snapshot`]/[`ObsSession::reset`],
//! which the caller runs after worker threads have been joined.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::snapshot::{Snapshot, SpanEvent};
use crate::{Counter, HistKind, ObsValue, Stage, HIST_BUCKETS};

/// Sink for completed spans, counter increments, and histogram
/// observations. Install one with [`set_recorder`] or use the built-in
/// [`ObsSession`] via [`install`].
pub trait Recorder: Sync {
    /// A span closed.
    fn record_span(&self, ev: SpanEvent);
    /// Add `delta` to a counter.
    fn add(&self, counter: Counter, delta: u64);
    /// Record one histogram observation.
    fn hist(&self, kind: HistKind, value: usize);
}

static RECORDER: OnceLock<&'static dyn Recorder> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SESSION: OnceLock<ObsSession> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static SHARD: RefCell<Option<Arc<Shard>>> = const { RefCell::new(None) };
}

/// Nanoseconds since the session epoch (first call wins the epoch).
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Small dense id of the calling thread.
fn current_tid() -> u32 {
    TID.with(|t| *t)
}

/// Install a custom recorder. First caller wins; returns whether this
/// call installed it.
pub fn set_recorder(r: &'static dyn Recorder) -> bool {
    RECORDER.set(r).is_ok()
}

/// The global [`ObsSession`] (created on first use, recording nothing
/// until [`install`]ed as the recorder).
pub fn session() -> &'static ObsSession {
    SESSION.get_or_init(ObsSession::new)
}

/// Install the global [`ObsSession`] as the recorder and return it.
/// Idempotent; also pins the timestamp epoch.
pub fn install() -> &'static ObsSession {
    let s = session();
    let _ = now_ns();
    let _ = RECORDER.set(s);
    s
}

fn recorder() -> Option<&'static dyn Recorder> {
    RECORDER.get().copied()
}

/// One open span on the thread-local stack.
struct Frame {
    stage: Stage,
    start_ns: u64,
    /// Accumulated duration of already-closed direct children.
    child_ns: u64,
    args: Vec<(&'static str, u64)>,
}

/// RAII guard for an open span: the span covers the guard's lifetime.
/// Spans on one thread must nest (guards drop in LIFO order), which
/// scope-based `let _span = span(..)` usage gives for free.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing"]
pub struct SpanGuard {
    active: bool,
}

/// Open a span. Inert (records nothing on drop) until a recorder is
/// installed.
pub(crate) fn begin(stage: Stage) -> SpanGuard {
    if recorder().is_none() {
        return SpanGuard { active: false };
    }
    let start_ns = now_ns();
    STACK.with(|cell| {
        cell.borrow_mut().push(Frame {
            stage,
            start_ns,
            child_ns: 0,
            args: Vec::new(),
        })
    });
    SpanGuard { active: true }
}

impl SpanGuard {
    /// Attach a key/value argument to the span.
    pub fn arg(self, key: &'static str, value: impl ObsValue) -> Self {
        if self.active {
            STACK.with(|cell| {
                if let Some(frame) = cell.borrow_mut().last_mut() {
                    frame.args.push((key, value.into_u64()));
                }
            });
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let closed_at = now_ns();
        let Some(r) = recorder() else { return };
        let ev = STACK.with(|cell| {
            let mut stack = cell.borrow_mut();
            let frame = stack.pop()?;
            let dur_ns = closed_at.saturating_sub(frame.start_ns);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(dur_ns);
            }
            Some(SpanEvent {
                tid: current_tid(),
                stage: frame.stage,
                start_ns: frame.start_ns,
                dur_ns,
                self_ns: dur_ns.saturating_sub(frame.child_ns),
                depth: u16::try_from(stack.len()).unwrap_or(u16::MAX),
                args: frame.args,
            })
        });
        if let Some(ev) = ev {
            r.record_span(ev);
        }
    }
}

/// Counter increment (free-function flavour used by `tac_obs::add`).
pub(crate) fn add(counter: Counter, delta: u64) {
    if let Some(r) = recorder() {
        r.add(counter, delta);
    }
}

/// Histogram observation (free-function flavour used by
/// `tac_obs::hist`).
pub(crate) fn hist(kind: HistKind, value: usize) {
    if let Some(r) = recorder() {
        r.hist(kind, value);
    }
}

/// Per-thread storage. Only the owning thread writes; collect reads the
/// relaxed atomics after workers are joined.
struct Shard {
    tid: u32,
    counters: Vec<AtomicU64>,
    /// Flat `[kind][bucket]` histogram buckets.
    hist_buckets: Vec<AtomicU64>,
    spans: Mutex<Vec<SpanEvent>>,
}

impl Shard {
    fn new(tid: u32) -> Self {
        let counters = (0..Counter::COUNT).map(|_| AtomicU64::new(0)).collect();
        let flat_len = HistKind::COUNT.saturating_mul(HIST_BUCKETS);
        let hist_buckets = (0..flat_len).map(|_| AtomicU64::new(0)).collect();
        Shard {
            tid,
            counters,
            hist_buckets,
            spans: Mutex::new(Vec::new()),
        }
    }
}

/// The built-in sharded recorder: one shard per recording thread,
/// registered on first use and kept alive (via `Arc`) after the thread
/// exits so its data survives until collect.
pub struct ObsSession {
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl ObsSession {
    fn new() -> Self {
        ObsSession {
            shards: Mutex::new(Vec::new()),
        }
    }

    /// The calling thread's shard, created and registered on first use.
    fn shard(&self) -> Option<Arc<Shard>> {
        SHARD.with(|cell| {
            let mut slot = cell.borrow_mut();
            if slot.is_none() {
                let shard = Arc::new(Shard::new(current_tid()));
                if let Ok(mut all) = self.shards.lock() {
                    all.push(Arc::clone(&shard));
                }
                *slot = Some(shard);
            }
            slot.clone()
        })
    }

    fn all_shards(&self) -> Vec<Arc<Shard>> {
        match self.shards.lock() {
            Ok(guard) => guard.clone(),
            Err(_) => Vec::new(),
        }
    }

    /// Merge every shard into one [`Snapshot`]. Call after worker
    /// threads are joined; concurrent recorders would be missed only in
    /// the torn sense of "increment not yet visible", never corrupt.
    pub fn snapshot(&self) -> Snapshot {
        let mut out = Snapshot::new();
        for shard in self.all_shards() {
            for (total, slot) in out.counters.iter_mut().zip(shard.counters.iter()) {
                *total = total.saturating_add(slot.load(Ordering::Relaxed));
            }
            for (kind_pos, merged) in out.hists.iter_mut().enumerate() {
                let base = kind_pos.saturating_mul(HIST_BUCKETS);
                for (bucket_pos, total) in merged.counts.iter_mut().enumerate() {
                    let flat = base.saturating_add(bucket_pos);
                    if let Some(slot) = shard.hist_buckets.get(flat) {
                        *total = total.saturating_add(slot.load(Ordering::Relaxed));
                    }
                }
            }
            if let Ok(spans) = shard.spans.lock() {
                out.spans.extend(spans.iter().cloned());
            }
        }
        out.spans.sort_by_key(|s| (s.tid, s.start_ns));
        out
    }

    /// Zero every counter and histogram bucket and drop recorded spans,
    /// in every shard (including shards of threads that have exited).
    pub fn reset(&self) {
        for shard in self.all_shards() {
            let _ = shard.tid;
            for slot in shard.counters.iter() {
                slot.store(0, Ordering::Relaxed);
            }
            for slot in shard.hist_buckets.iter() {
                slot.store(0, Ordering::Relaxed);
            }
            if let Ok(mut spans) = shard.spans.lock() {
                spans.clear();
            }
        }
    }

    /// [`Self::snapshot`] followed by [`Self::reset`].
    pub fn take(&self) -> Snapshot {
        let snap = self.snapshot();
        self.reset();
        snap
    }
}

impl Recorder for ObsSession {
    fn record_span(&self, ev: SpanEvent) {
        if let Some(shard) = self.shard() {
            if let Ok(mut spans) = shard.spans.lock() {
                spans.push(ev);
            }
        }
    }

    fn add(&self, counter: Counter, delta: u64) {
        if let Some(shard) = self.shard() {
            if let Some(slot) = shard.counters.get(counter.index()) {
                slot.fetch_add(delta, Ordering::Relaxed);
            }
        }
    }

    fn hist(&self, kind: HistKind, value: usize) {
        if let Some(shard) = self.shard() {
            let bucket = value.min(HIST_BUCKETS.saturating_sub(1));
            let flat = kind
                .index()
                .saturating_mul(HIST_BUCKETS)
                .saturating_add(bucket);
            if let Some(slot) = shard.hist_buckets.get(flat) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> &'static ObsSession {
        let s = install();
        s.reset();
        s
    }

    #[test]
    fn nested_spans_account_self_time_exactly() {
        let s = setup();
        {
            let _outer = crate::span(Stage::Compress).arg("level", 2usize);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span(Stage::Encode);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = s.take();
        let outer = snap
            .spans
            .iter()
            .find(|e| e.stage == Stage::Compress)
            .expect("outer span recorded");
        let inner = snap
            .spans
            .iter()
            .find(|e| e.stage == Stage::Encode)
            .expect("inner span recorded");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.args, vec![("level", 2u64)]);
        // Self-time identity: outer.self + inner.dur == outer.dur.
        assert_eq!(outer.self_ns + inner.dur_ns, outer.dur_ns);
        assert!(inner.dur_ns > 0);
        // Sum of self over all spans == sum of dur over depth-0 spans.
        let self_sum: u64 = snap.spans.iter().map(|e| e.self_ns).sum();
        let top_sum: u64 = snap
            .spans
            .iter()
            .filter(|e| e.depth == 0)
            .map(|e| e.dur_ns)
            .sum();
        assert_eq!(self_sum, top_sum);
    }

    #[test]
    fn counters_merge_across_threads() {
        let s = setup();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        crate::add(Counter::ChunksEncoded, 1);
                        crate::add_bytes(Counter::PayloadBytesOut, 10);
                    }
                });
            }
        });
        crate::add(Counter::ChunksEncoded, 1);
        let snap = s.take();
        assert_eq!(snap.counter(Counter::ChunksEncoded), 401);
        assert_eq!(snap.counter(Counter::PayloadBytesOut), 4000);
    }

    #[test]
    fn histogram_observations_clamp_and_merge() {
        let s = setup();
        crate::hist(HistKind::PcoPageBits, 12);
        crate::hist(HistKind::PcoPageBits, 12);
        crate::hist(HistKind::PcoPageBits, 1000); // clamps to last bucket
        let snap = s.take();
        let h = snap.histogram(HistKind::PcoPageBits).expect("histogram");
        assert_eq!(h.counts.get(12), Some(&2));
        assert_eq!(h.counts.get(HIST_BUCKETS - 1), Some(&1));
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn reset_clears_all_shards() {
        let s = setup();
        crate::add(Counter::ExecTasks, 7);
        {
            let _g = crate::span(Stage::Plan);
        }
        s.reset();
        assert!(s.snapshot().is_empty());
    }
}
