//! Criterion benchmarks for the block-sharded parallel engine: full
//! TAC dataset compression serial vs N worker threads (the fig14-scale
//! Run1_Z10 snapshot), parallel decompression, and ROI decode vs full
//! decode through the v2 chunk table.
//!
//! Quick mode (`TAC_BENCH_QUICK=1`) additionally writes a
//! machine-readable `BENCH_par.json` (threads -> end-to-end throughput
//! in MB/s) to the current directory so CI can archive the numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tac_amr::Aabb;
use tac_bench::experiments::par_speedup::{bench_config, measure_sweep, THREAD_SWEEP};
use tac_bench::obs_support;
use tac_bench::{default_scale, load_dataset};
use tac_core::{
    compress_dataset, decompress_dataset_par, decompress_region, CompressedDataset, Method,
    TacConfig,
};

fn fig14_scale_setup() -> (tac_amr::AmrDataset, TacConfig) {
    let scale = default_scale();
    let unit = tac_bench::support::default_unit(scale);
    let ds = load_dataset("Run1_Z10", scale, 14);
    let cfg = bench_config(unit, ds.finest_dim(), 1);
    (ds, cfg)
}

fn bench_parallel_compress(c: &mut Criterion) {
    let (ds, base_cfg) = fig14_scale_setup();
    let bytes = (ds.total_present() * 8) as u64;

    let mut group = c.benchmark_group("par_compress");
    group.sample_size(10).throughput(Throughput::Bytes(bytes));
    for &threads in THREAD_SWEEP {
        let cfg = TacConfig {
            parallelism: tac_core::Parallelism::Threads(threads),
            ..base_cfg.clone()
        };
        group.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| compress_dataset(black_box(&ds), &cfg, Method::Tac).unwrap())
        });
    }
    group.finish();

    let cd = compress_dataset(&ds, &base_cfg, Method::Tac).unwrap();
    let mut group = c.benchmark_group("par_decompress");
    group.sample_size(10).throughput(Throughput::Bytes(bytes));
    for &threads in THREAD_SWEEP {
        let par = tac_core::Parallelism::Threads(threads);
        group.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| decompress_dataset_par(black_box(&cd), par).unwrap())
        });
    }
    group.finish();
}

fn bench_roi_decode(c: &mut Criterion) {
    let (ds, cfg) = fig14_scale_setup();
    let container = compress_dataset(&ds, &cfg, Method::Tac).unwrap().to_bytes();
    let half = ds.finest_dim() / 2;
    let roi = Aabb::new((0, 0, 0), (half, half, half));

    let mut group = c.benchmark_group("roi_decode");
    group.sample_size(10);
    group.bench_function("full", |b| {
        b.iter(|| {
            let cd = CompressedDataset::from_bytes(black_box(&container)).unwrap();
            decompress_dataset_par(&cd, tac_core::Parallelism::Serial).unwrap()
        })
    });
    group.bench_function("corner_eighth", |b| {
        b.iter(|| decompress_region(black_box(&container), roi).unwrap())
    });
    group.finish();
}

/// Quick mode drops a `BENCH_par.json` next to the bench run: a small
/// `{threads: [...], throughput_mb_s: [...], bit_identical: bool}`
/// object CI archives to catch throughput/bit-identity regressions.
fn emit_quick_json() {
    if std::env::var("TAC_BENCH_QUICK").is_err() {
        return;
    }
    let (ds, cfg) = fig14_scale_setup();
    let (rows, identical) = measure_sweep(&ds, cfg.unit, 2);
    let threads: Vec<String> = rows.iter().map(|r| r.threads.to_string()).collect();
    let tp: Vec<String> = rows
        .iter()
        .map(|r| format!("{:.3}", r.throughput_mb_s))
        .collect();
    let max_threads = THREAD_SWEEP.iter().copied().max().unwrap_or(1);
    let json = format!(
        "{{\n  \"meta\": {},\n  \"dataset\": \"Run1_Z10\",\n  \"finest_dim\": {},\n  \"threads\": [{}],\n  \"throughput_mb_s\": [{}],\n  \"bit_identical\": {}\n}}\n",
        obs_support::meta_json(14, max_threads),
        ds.finest_dim(),
        threads.join(", "),
        tp.join(", "),
        identical
    );
    // Anchor at the workspace root regardless of the bench's cwd.
    let path = obs_support::workspace_path("BENCH_par.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    // With --obs, profile one compress+decompress at the sweep's widest
    // thread count: per-worker task timelines land in TRACE_par.json.
    if obs_support::obs_active() {
        let _ = obs_support::obs_take();
        let cfg_wide = tac_core::TacConfig {
            parallelism: tac_core::Parallelism::Threads(max_threads),
            ..cfg
        };
        let cd = compress_dataset(&ds, &cfg_wide, Method::Tac).unwrap();
        decompress_dataset_par(&cd, cfg_wide.parallelism).unwrap();
        if let Some(snap) = obs_support::obs_take() {
            eprintln!("{}", obs_support::write_trace_and_report("par", &snap));
        }
    }
}

fn bench_all(c: &mut Criterion) {
    obs_support::obs_install();
    bench_parallel_compress(c);
    bench_roi_decode(c);
    emit_quick_json();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
