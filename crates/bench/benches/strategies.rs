//! Criterion microbenchmarks for TAC's pre-process planners and the full
//! per-level pipelines (the components behind Fig. 13's timing story).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tac_amr::BlockGrid;
use tac_core::{
    compress_level, pad_ghost_shell, plan_akdtree, plan_nast, plan_opst, Strategy, TacConfig,
};
use tac_nyx::{entry, FieldKind};

fn bench_planners(c: &mut Criterion) {
    let ds = entry("Run1_Z10")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 8, 7);
    let fine = &ds.levels()[0]; // 23% density
    let coarse = &ds.levels()[1]; // 77% density
    let grid_fine = BlockGrid::build(fine, 4);
    let grid_coarse = BlockGrid::build(coarse, 2);

    let mut group = c.benchmark_group("planners");
    group.bench_function("opst/sparse23", |b| {
        b.iter(|| plan_opst(black_box(&grid_fine)))
    });
    group.bench_function("opst/dense77", |b| {
        b.iter(|| plan_opst(black_box(&grid_coarse)))
    });
    group.bench_function("akdtree/sparse23", |b| {
        b.iter(|| plan_akdtree(black_box(&grid_fine)))
    });
    group.bench_function("akdtree/dense77", |b| {
        b.iter(|| plan_akdtree(black_box(&grid_coarse)))
    });
    group.bench_function("nast/sparse23", |b| {
        b.iter(|| plan_nast(black_box(&grid_fine)))
    });
    group.bench_function("gsp_pad/dense77", |b| {
        b.iter(|| pad_ghost_shell(black_box(coarse), black_box(&grid_coarse)))
    });
    group.finish();

    let cfg = TacConfig {
        unit: 4,
        ..Default::default()
    };
    let mut group = c.benchmark_group("level_pipeline");
    group.sample_size(10);
    for strategy in [Strategy::OpST, Strategy::AkdTree, Strategy::Gsp] {
        group.bench_function(format!("{strategy:?}/fine"), |b| {
            b.iter(|| compress_level(black_box(fine), strategy, 1e7, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planners);
criterion_main!(benches);
