//! Criterion benchmarks for the scalar-codec backend layer: full TAC
//! dataset compression and decompression under each registered codec,
//! plus raw per-stream codec throughput on a representative level.
//!
//! Quick mode (`TAC_BENCH_QUICK=1`) additionally writes a
//! machine-readable `BENCH_codec.json` (method x codec x dtype ->
//! ratio and end-to-end MB/s) to the workspace root so CI can archive
//! the numbers and catch ratio/throughput regressions per backend.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tac_bench::experiments::codec_comparison::{bench_config, measure_matrix, measure_matrix_f32};
use tac_bench::obs_support;
use tac_bench::support::{measure, measure_f32, narrow_dataset_f32};
use tac_bench::{default_scale, load_dataset};
use tac_core::{
    codec_for, compress_dataset, compress_dataset_f32, decompress_dataset_f32,
    decompress_dataset_par, CodecConfig, CodecId, Method, Parallelism,
};
use tac_obs::export::StageReport;
use tac_obs::Snapshot;

fn setup() -> (tac_amr::AmrDataset, usize) {
    let scale = default_scale();
    let unit = tac_bench::support::default_unit(scale);
    (load_dataset("Run1_Z10", scale, 14), unit)
}

fn bench_dataset_by_codec(c: &mut Criterion) {
    let (ds, unit) = setup();
    let bytes = (ds.total_present() * 8) as u64;

    let mut group = c.benchmark_group("codec_compress");
    group.sample_size(10).throughput(Throughput::Bytes(bytes));
    for codec in CodecId::all() {
        let cfg = bench_config(unit, codec);
        group.bench_function(codec.label(), |b| {
            b.iter(|| compress_dataset(black_box(&ds), &cfg, Method::Tac).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("codec_decompress");
    group.sample_size(10).throughput(Throughput::Bytes(bytes));
    for codec in CodecId::all() {
        let cfg = bench_config(unit, codec);
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        group.bench_function(codec.label(), |b| {
            b.iter(|| decompress_dataset_par(black_box(&cd), Parallelism::Serial).unwrap())
        });
    }
    group.finish();
}

/// The same dataset sweep at `f32` storage, through the monomorphized
/// single-precision pipeline and the dtype-tagged v4 wire.
fn bench_dataset_by_codec_f32(c: &mut Criterion) {
    let (ds, unit) = setup();
    let ds32 = narrow_dataset_f32(&ds);
    let bytes = (ds.total_present() * 4) as u64;

    let mut group = c.benchmark_group("codec_compress_f32");
    group.sample_size(10).throughput(Throughput::Bytes(bytes));
    for codec in CodecId::all() {
        let cfg = bench_config(unit, codec);
        group.bench_function(codec.label(), |b| {
            b.iter(|| compress_dataset_f32(black_box(&ds32), &cfg, Method::Tac).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("codec_decompress_f32");
    group.sample_size(10).throughput(Throughput::Bytes(bytes));
    for codec in CodecId::all() {
        let cfg = bench_config(unit, codec);
        let cd = compress_dataset_f32(&ds32, &cfg, Method::Tac).unwrap();
        group.bench_function(codec.label(), |b| {
            b.iter(|| decompress_dataset_f32(black_box(&cd)).unwrap())
        });
    }
    group.finish();
}

/// Raw per-stream throughput: one whole coarse level as a rank-3 array
/// through each backend, no TAC machinery in the loop.
fn bench_raw_streams(c: &mut Criterion) {
    let (ds, _) = setup();
    let coarse = ds.levels().last().expect("at least one level");
    let n = coarse.dim();
    let data = coarse.data().to_vec();
    let shape = tac_sz::Dims::D3(n, n, n);
    let cfg = CodecConfig::abs(1e-3);

    let mut group = c.benchmark_group("codec_raw_stream");
    group
        .sample_size(10)
        .throughput(Throughput::Bytes((data.len() * 8) as u64));
    for codec in CodecId::all() {
        let backend = codec_for(codec);
        let stream = backend.compress(&data, shape, &cfg).unwrap();
        group.bench_function(format!("compress/{}", codec.label()), |b| {
            b.iter(|| backend.compress(black_box(&data), shape, &cfg).unwrap())
        });
        group.bench_function(format!("decompress/{}", codec.label()), |b| {
            b.iter(|| backend.decompress(black_box(&stream)).unwrap())
        });
    }
    group.finish();
}

/// One instrumented compress+decompress rep per matrix cell, in the
/// exact row order `measure_matrix` + `measure_matrix_f32` emit: one
/// `stages` JSON object per row, plus the merged snapshot for the
/// whole-run `TRACE_codec.json`. `None` unless `--obs` is live.
fn obs_stage_objects(ds: &tac_amr::AmrDataset, unit: usize) -> Option<(Vec<String>, Snapshot)> {
    if !obs_support::obs_active() {
        return None;
    }
    // Drain whatever the criterion warm-up recorded: each cell's report
    // must cover exactly its own rep.
    let _ = obs_support::obs_take();
    let ds32 = narrow_dataset_f32(ds);
    let mut objs = Vec::new();
    let mut merged = Snapshot::new();
    for dtype in ["f64", "f32"] {
        for method in [
            Method::Tac,
            Method::Baseline1D,
            Method::ZMesh,
            Method::Baseline3D,
        ] {
            for codec in CodecId::all() {
                let cfg = bench_config(unit, codec);
                match dtype {
                    "f64" => drop(measure(ds, &cfg, method, 1e-3)),
                    _ => drop(measure_f32(&ds32, &cfg, method, 1e-3)),
                }
                let snap = obs_support::obs_take().unwrap_or_default();
                objs.push(StageReport::from_snapshot(&snap).stages_json());
                merged.merge(snap);
            }
        }
    }
    Some((objs, merged))
}

/// Per-codec raw-stream rows for the quick JSON: one dense coarse
/// level as a rank-3 array straight through each backend, no container
/// machinery — the regime where the entropy stages differ most (the
/// CI perf smoke checks the same comparison independently).
fn raw_stream_json_rows(ds: &tac_amr::AmrDataset) -> Vec<String> {
    let coarse = ds.levels().last().expect("at least one level");
    let n = coarse.dim();
    let data = coarse.data().to_vec();
    let shape = tac_sz::Dims::D3(n, n, n);
    let cfg = CodecConfig::abs(1e-3);
    let bytes = (data.len() * 8) as f64;
    let best = |reps: usize, f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = std::time::Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    CodecId::all()
        .iter()
        .map(|&codec| {
            let backend = codec_for(codec);
            let stream = backend.compress(&data, shape, &cfg).unwrap();
            let c = best(3, &mut || {
                black_box(backend.compress(black_box(&data), shape, &cfg).unwrap());
            });
            let d = best(3, &mut || {
                black_box(backend.decompress(black_box(&stream)).unwrap());
            });
            format!(
                "    {{\"codec\": \"{}\", \"dim\": {n}, \"ratio\": {:.3}, \"compress_mb_s\": {:.3}, \"decompress_mb_s\": {:.3}}}",
                codec.label(),
                bytes / stream.len().max(1) as f64,
                bytes / 1e6 / c,
                bytes / 1e6 / d,
            )
        })
        .collect()
}

/// Quick mode drops `BENCH_codec.json` next to `BENCH_par.json`: the
/// method x codec matrix with ratio and throughput per cell, under a
/// run-metadata header, plus a `raw_stream` section (per-codec dense
/// single-stream throughput). With `--obs` each row also carries a
/// `stages` object (per-stage wall fractions) and the run's chrome
/// trace lands in `TRACE_codec.json`.
fn emit_quick_json() {
    if std::env::var("TAC_BENCH_QUICK").is_err() {
        return;
    }
    let (ds, unit) = setup();
    let mut rows = measure_matrix(&ds, unit, 2);
    rows.extend(measure_matrix_f32(&ds, unit, 2));
    let stages = obs_stage_objects(&ds, unit);
    let cells: Vec<String> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let stage_field = match &stages {
                Some((objs, _)) => objs
                    .get(i)
                    .map(|o| format!(", \"stages\": {o}"))
                    .unwrap_or_default(),
                None => String::new(),
            };
            format!(
                "    {{\"method\": \"{}\", \"codec\": \"{}\", \"dtype\": \"{}\", \"ratio\": {:.3}, \"compress_mb_s\": {:.3}, \"decompress_mb_s\": {:.3}, \"psnr_db\": {:.2}{}}}",
                r.method, r.codec, r.dtype, r.ratio, r.compress_mb_s, r.decompress_mb_s, r.psnr, stage_field
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"dataset\": \"Run1_Z10\",\n  \"finest_dim\": {},\n  \"rel_eb\": 1e-3,\n  \"rows\": [\n{}\n  ],\n  \"raw_stream\": [\n{}\n  ]\n}}\n",
        obs_support::meta_json(14, 1),
        ds.finest_dim(),
        cells.join(",\n"),
        raw_stream_json_rows(&ds).join(",\n")
    );
    // Anchor at the workspace root regardless of the bench's cwd.
    let path = obs_support::workspace_path("BENCH_codec.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    if let Some((_, merged)) = stages {
        eprintln!("{}", obs_support::write_trace_and_report("codec", &merged));
    }
}

fn bench_all(c: &mut Criterion) {
    obs_support::obs_install();
    bench_dataset_by_codec(c);
    bench_dataset_by_codec_f32(c);
    bench_raw_streams(c);
    emit_quick_json();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
