//! Criterion microbenchmarks for the FFT substrate (power-spectrum and
//! GRF generation cost driver).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tac_fft::{Complex, Direction, Fft3Plan, FftPlan};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [1024usize, 16384] {
        let plan = FftPlan::new(n);
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("fft1d/{n}"), |b| {
            b.iter_batched(
                || data.clone(),
                |mut buf| plan.process(black_box(&mut buf), Direction::Forward),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    let n = 64;
    let plan3 = Fft3Plan::cubic(n);
    let field: Vec<Complex> = (0..n * n * n)
        .map(|i| Complex::from_real((i as f64 * 0.001).cos()))
        .collect();
    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.sample_size(20);
    group.bench_function("fft3d/64_parallel", |b| {
        b.iter_batched(
            || field.clone(),
            |mut buf| plan3.process(black_box(&mut buf), Direction::Forward),
            criterion::BatchSize::LargeInput,
        )
    });
    let plan3_seq = Fft3Plan::cubic(n).with_threads(1);
    group.bench_function("fft3d/64_sequential", |b| {
        b.iter_batched(
            || field.clone(),
            |mut buf| plan3_seq.process(black_box(&mut buf), Direction::Forward),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
