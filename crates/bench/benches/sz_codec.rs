//! Criterion microbenchmarks for the SZ substrate: compression and
//! decompression throughput on a smooth 64^3 field (the regime the
//! paper's Table 2 throughput numbers live in).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tac_nyx::{synthesize, FieldKind};
use tac_sz::{compress, decompress, Dims, SzConfig};

fn bench_sz(c: &mut Criterion) {
    let n = 64;
    let data = synthesize(FieldKind::BaryonDensity, n, 42);
    let dims = Dims::D3(n, n, n);
    let bytes = (n * n * n * 8) as u64;

    let mut group = c.benchmark_group("sz_codec");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);

    for (label, cfg) in [
        ("compress/rel1e-3", SzConfig::rel(1e-3)),
        ("compress/rel1e-5", SzConfig::rel(1e-5)),
        (
            "compress/no_regression",
            SzConfig::rel(1e-3).without_regression(),
        ),
        (
            "compress/no_lossless",
            SzConfig::rel(1e-3).without_lossless(),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| compress(black_box(&data), dims, &cfg).unwrap())
        });
    }

    let stream = compress(&data, dims, &SzConfig::rel(1e-3)).unwrap();
    group.bench_function("decompress/rel1e-3", |b| {
        b.iter(|| decompress(black_box(&stream)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sz);
criterion_main!(benches);
