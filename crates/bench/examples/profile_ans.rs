//! Ad-hoc decode profiler for the 1D-method container row: separates
//! the scalar-codec kernel time from the container/scatter overhead so
//! PcoAns decode tuning chases the right term.
//!
//! Run with `cargo run --release -p tac-bench --example profile_ans`.

use std::time::Instant;
use tac_bench::support::{default_unit, load_dataset};
use tac_bench::{default_scale, experiments::codec_comparison::bench_config};
use tac_core::{codec_for, compress_dataset, decompress_dataset, CodecId, Method, MethodBody};

fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let scale = default_scale();
    let unit = default_unit(scale);
    let ds = load_dataset("Run1_Z10", scale, 14);
    let bytes = ds.total_present() * 8;
    println!(
        "dataset Run1_Z10 scale {scale}: finest {}^3, {} present cells ({:.2} MB)",
        ds.finest_dim(),
        ds.total_present(),
        bytes as f64 / 1e6
    );

    for codec in CodecId::all() {
        let cfg = bench_config(unit, codec);
        let cd = compress_dataset(&ds, &cfg, Method::Baseline1D).expect("compress");
        let wall = best_secs(9, || {
            decompress_dataset(&cd).expect("decompress");
        });
        // Codec-only: decode each level's stream, no mask scatter.
        let backend = codec_for(codec);
        let streams: Vec<&[u8]> = match &cd.body {
            MethodBody::Baseline1D(levels) => levels
                .iter()
                .flatten()
                .map(|(_, _, s)| s.as_slice())
                .collect(),
            _ => unreachable!(),
        };
        let kernel = best_secs(9, || {
            for s in &streams {
                backend.decompress(s).expect("stream decode");
            }
        });
        println!(
            "{:<9} 1D decompress {:7.1} MB/s ({:.3} ms) | codec-only {:7.1} MB/s ({:.3} ms) | overhead {:.3} ms",
            codec.label(),
            bytes as f64 / 1e6 / wall,
            wall * 1e3,
            bytes as f64 / 1e6 / kernel,
            kernel * 1e3,
            (wall - kernel) * 1e3,
        );
    }
}
