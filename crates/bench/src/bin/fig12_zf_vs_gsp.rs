//! Harness binary for fig12 — see `tac_bench::experiments::fig12`.

fn main() {
    print!("{}", tac_bench::experiments::fig12::report());
}
