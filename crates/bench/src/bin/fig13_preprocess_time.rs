//! Harness binary for fig13 — see `tac_bench::experiments::fig13`.

fn main() {
    print!("{}", tac_bench::experiments::fig13::report());
}
