//! Harness binary for fig07 — see `tac_bench::experiments::fig07`.

fn main() {
    print!("{}", tac_bench::experiments::fig07::report());
}
