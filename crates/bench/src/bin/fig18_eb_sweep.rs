//! Harness binary for fig18 — see `tac_bench::experiments::fig18`.

fn main() {
    print!("{}", tac_bench::experiments::fig18::report());
}
