//! Harness binary for fig15 — see `tac_bench::experiments::fig15`.

fn main() {
    print!("{}", tac_bench::experiments::fig15::report());
}
