//! Runs every table/figure harness in sequence — the full reproduction
//! of the paper's evaluation section plus the parallel-engine section.
//! Expect several minutes at the default scale; set `TAC_BENCH_SCALE=16`
//! or `TAC_BENCH_QUICK=1` for a faster pass.
//!
//! Flags:
//!   --only <substr>   run only sections whose name contains <substr>
//!                     (case-insensitive; e.g. `--only par`, `--only table`)
//!   --list            print section names and exit
//!   --obs             record spans/counters across every section and
//!                     finish with a per-stage breakdown plus a
//!                     chrome://tracing `TRACE_repro.json` (requires the
//!                     `obs` cargo feature; ignored otherwise)

use tac_bench::experiments as ex;
use tac_bench::obs_support;

type Section = (&'static str, fn() -> String);

fn main() {
    let sections: Vec<Section> = vec![
        ("Fig. 7", ex::fig07::report),
        ("Fig. 11", ex::fig11::report),
        ("Fig. 12", ex::fig12::report),
        ("Fig. 13", ex::fig13::report),
        ("Fig. 14", ex::fig14::report),
        ("Fig. 15", ex::fig15::report),
        ("Fig. 16", ex::fig16::report),
        ("Fig. 18", ex::fig18::report),
        ("Fig. 19", ex::fig19::report),
        ("Table 2", ex::table2::report),
        ("Table 3", ex::table3::report),
        ("Parallel + ROI", ex::par_speedup::report),
        ("Codec comparison", ex::codec_comparison::report),
    ];

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (name, _) in &sections {
            println!("{name}");
        }
        return;
    }
    let only = match args.iter().position(|a| a == "--only") {
        Some(i) => match args.get(i + 1) {
            Some(pat) => Some(pat.to_lowercase()),
            None => {
                eprintln!("--only requires a section name substring (try --list)");
                std::process::exit(2);
            }
        },
        None => None,
    };

    obs_support::obs_install();
    let mut ran = 0;
    for (name, f) in sections {
        if let Some(pat) = &only {
            if !name.to_lowercase().contains(pat) {
                continue;
            }
        }
        ran += 1;
        let t0 = std::time::Instant::now();
        println!("==================== {name} ====================");
        print!("{}", f());
        println!("  [{name} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
    if ran == 0 {
        eprintln!("no section matched the --only filter (try --list)");
        std::process::exit(2);
    }
    if let Some(snap) = obs_support::obs_take() {
        println!("==================== Profile (--obs) ====================");
        println!("{}", obs_support::write_trace_and_report("repro", &snap));
    }
}
