//! Harness binary for fig16 — see `tac_bench::experiments::fig16`.

fn main() {
    print!("{}", tac_bench::experiments::fig16::report());
}
