//! Harness binary for fig11 — see `tac_bench::experiments::fig11`.

fn main() {
    print!("{}", tac_bench::experiments::fig11::report());
}
