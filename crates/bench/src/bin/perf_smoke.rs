//! CI perf smoke for the codec layer: measures pco-ans against
//! pco-lite decode throughput and fails the build when the ANS path
//! regresses.
//!
//! Two regimes, two gates:
//!
//! 1. **Raw dense stream** — one whole coarse level as a rank-3 array
//!    straight through each backend. This is the regime the PcoAns
//!    batch kernels target and where the win is decisive (LZSS decode
//!    is per-symbol-branchy on dense data); pco-ans decode must be at
//!    least as fast as pco-lite, full stop.
//! 2. **1D/f64 container row** — the `BENCH_codec.json` row the issue
//!    tracks, measured the same way (serial end-to-end container
//!    decode). On ultra-smooth 1D-gathered data LZSS approaches memcpy
//!    speed (long overlapping matches), so the gate here is a noise-
//!    tolerant floor: pco-ans must hold at least [`ROW_FLOOR`] of
//!    pco-lite's decode throughput, and must keep its compression-ratio
//!    advantage (within 10% of pco-lite or better).
//!
//! Exits non-zero with a one-line verdict per gate. Scale follows
//! `TAC_BENCH_SCALE` (default 8, the quick-mode bench scale).

use std::time::Instant;
use tac_bench::default_scale;
use tac_bench::experiments::codec_comparison::bench_config;
use tac_bench::support::{default_unit, load_dataset, measure};
use tac_core::{codec_for, CodecConfig, CodecId, Method};

/// Minimum pco-ans / pco-lite decode-throughput ratio on the 1D/f64
/// container row. Measured headroom at scale 8 is ~0.85; the floor
/// leaves margin for shared-runner noise while still catching a real
/// regression of the batch kernels (a fallback to the pre-ANS numbers
/// sits near 0.45).
const ROW_FLOOR: f64 = 0.70;

/// Minimum pco-ans / pco-lite compression-ratio quotient on the same
/// row ("within 10%"). Measured headroom is ~1.24.
const RATIO_FLOOR: f64 = 0.90;

fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Raw-stream decode throughput (MB/s) of `codec` on the dense coarse
/// level, plus the stream's compression ratio.
fn raw_stream_decode(ds: &tac_amr::AmrDataset, codec: CodecId) -> f64 {
    let coarse = ds.levels().last().expect("at least one level");
    let n = coarse.dim();
    let data = coarse.data().to_vec();
    let backend = codec_for(codec);
    let stream = backend
        .compress(&data, tac_sz::Dims::D3(n, n, n), &CodecConfig::abs(1e-3))
        .expect("compress");
    let secs = best_secs(5, || {
        backend.decompress(&stream).expect("decompress");
    });
    (data.len() * 8) as f64 / 1e6 / secs
}

/// 1D/f64 container-row measurement: (decode MB/s, compression ratio).
fn container_row(ds: &tac_amr::AmrDataset, unit: usize, codec: CodecId) -> (f64, f64) {
    let cfg = bench_config(unit, codec);
    let bytes = ds.total_present() * 8;
    let mut best_decode = 0.0f64;
    let mut ratio = 0.0f64;
    for _ in 0..3 {
        let m = measure(ds, &cfg, Method::Baseline1D, 1e-3);
        best_decode = best_decode.max(m.decompress_mb_s(bytes));
        ratio = m.ratio;
    }
    (best_decode, ratio)
}

fn main() {
    let scale = default_scale();
    let unit = default_unit(scale);
    let ds = load_dataset("Run1_Z10", scale, 14);
    let mut failed = false;
    let mut gate = |name: &str, value: f64, floor: f64| {
        let ok = value >= floor;
        println!(
            "{} {name}: {value:.3} (floor {floor:.3})",
            if ok { "PASS" } else { "FAIL" }
        );
        failed |= !ok;
    };

    let raw_ans = raw_stream_decode(&ds, CodecId::PcoAns);
    let raw_lite = raw_stream_decode(&ds, CodecId::PcoLite);
    println!("raw dense stream decode: pco-ans {raw_ans:.1} MB/s, pco-lite {raw_lite:.1} MB/s");
    gate(
        "raw-stream pco-ans/pco-lite decode",
        raw_ans / raw_lite,
        1.0,
    );

    let (row_ans, ratio_ans) = container_row(&ds, unit, CodecId::PcoAns);
    let (row_lite, ratio_lite) = container_row(&ds, unit, CodecId::PcoLite);
    println!(
        "1D/f64 container decode: pco-ans {row_ans:.1} MB/s (ratio {ratio_ans:.2}), \
         pco-lite {row_lite:.1} MB/s (ratio {ratio_lite:.2})"
    );
    gate(
        "1D/f64 pco-ans/pco-lite decode",
        row_ans / row_lite,
        ROW_FLOOR,
    );
    gate(
        "1D/f64 pco-ans/pco-lite ratio",
        ratio_ans / ratio_lite,
        RATIO_FLOOR,
    );

    if failed {
        eprintln!("perf smoke failed: pco-ans decode regressed against pco-lite");
        std::process::exit(1);
    }
    println!("perf smoke clean at scale {scale}");
}
