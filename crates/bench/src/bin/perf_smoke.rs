//! CI perf smoke for the codec layer: measures pco-ans against
//! pco-lite decode throughput and fails the build when the ANS path
//! regresses.
//!
//! Two regimes, two gates:
//!
//! 1. **Raw dense stream** — one whole coarse level as a rank-3 array
//!    straight through each backend. This is the regime the PcoAns
//!    batch kernels target and where the win is decisive (LZSS decode
//!    is per-symbol-branchy on dense data); pco-ans decode must be at
//!    least as fast as pco-lite, full stop.
//! 2. **1D/f64 container row** — the `BENCH_codec.json` row the issue
//!    tracks, measured the same way (serial end-to-end container
//!    decode). On ultra-smooth 1D-gathered data LZSS approaches memcpy
//!    speed (long overlapping matches), so the gate here is a noise-
//!    tolerant floor: pco-ans must hold at least [`ROW_FLOOR`] of
//!    pco-lite's decode throughput, and must keep its compression-ratio
//!    advantage (within 10% of pco-lite or better).
//!
//! A third family of gates covers the adaptive selection
//! (`Method::Auto`, the TAC+ pass): on every registered testkit
//! scenario, Auto's serialized container must reach at least
//! [`AUTO_FLOOR`] of the best fixed `(method, codec)` pair's bytes at
//! the same error bound. The per-scenario winners and margins are
//! written to `SELECTION_auto.json`, archived by CI next to
//! `BENCH_codec.json`.
//!
//! Exits non-zero with a one-line verdict per gate. Scale follows
//! `TAC_BENCH_SCALE` (default 8, the quick-mode bench scale).

use std::time::Instant;
use tac_bench::default_scale;
use tac_bench::experiments::codec_comparison::bench_config;
use tac_bench::support::{default_unit, load_dataset, measure};
use tac_core::{codec_for, select_auto, CodecConfig, CodecId, Method, TacConfig};

/// Minimum pco-ans / pco-lite decode-throughput ratio on the 1D/f64
/// container row. Measured headroom at scale 8 is ~0.85; the floor
/// leaves margin for shared-runner noise while still catching a real
/// regression of the batch kernels (a fallback to the pre-ANS numbers
/// sits near 0.45).
const ROW_FLOOR: f64 = 0.70;

/// Minimum pco-ans / pco-lite compression-ratio quotient on the same
/// row ("within 10%"). Measured headroom is ~1.24.
const RATIO_FLOOR: f64 = 0.90;

/// Minimum best-fixed / Auto serialized-bytes quotient per scenario
/// (equal error bound, so byte dominance is ratio dominance). The
/// selection's tie-break discounts are bounded at ~3%, well inside
/// this floor; the testkit scenarios sit in the exhaustive regime, so
/// the margin is structural, not statistical.
const AUTO_FLOOR: f64 = 0.95;

fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Raw-stream decode throughput (MB/s) of `codec` on the dense coarse
/// level, plus the stream's compression ratio.
fn raw_stream_decode(ds: &tac_amr::AmrDataset, codec: CodecId) -> f64 {
    let coarse = ds.levels().last().expect("at least one level");
    let n = coarse.dim();
    let data = coarse.data().to_vec();
    let backend = codec_for(codec);
    let stream = backend
        .compress(&data, tac_sz::Dims::D3(n, n, n), &CodecConfig::abs(1e-3))
        .expect("compress");
    let secs = best_secs(5, || {
        backend.decompress(&stream).expect("decompress");
    });
    (data.len() * 8) as f64 / 1e6 / secs
}

/// 1D/f64 container-row measurement: (decode MB/s, compression ratio).
fn container_row(ds: &tac_amr::AmrDataset, unit: usize, codec: CodecId) -> (f64, f64) {
    let cfg = bench_config(unit, codec);
    let bytes = ds.total_present() * 8;
    let mut best_decode = 0.0f64;
    let mut ratio = 0.0f64;
    for _ in 0..3 {
        let m = measure(ds, &cfg, Method::Baseline1D, 1e-3);
        best_decode = best_decode.max(m.decompress_mb_s(bytes));
        ratio = m.ratio;
    }
    (best_decode, ratio)
}

fn main() {
    let scale = default_scale();
    let unit = default_unit(scale);
    let ds = load_dataset("Run1_Z10", scale, 14);
    let mut failed = false;
    let mut gate = |name: &str, value: f64, floor: f64| {
        let ok = value >= floor;
        println!(
            "{} {name}: {value:.3} (floor {floor:.3})",
            if ok { "PASS" } else { "FAIL" }
        );
        failed |= !ok;
    };

    let raw_ans = raw_stream_decode(&ds, CodecId::PcoAns);
    let raw_lite = raw_stream_decode(&ds, CodecId::PcoLite);
    println!("raw dense stream decode: pco-ans {raw_ans:.1} MB/s, pco-lite {raw_lite:.1} MB/s");
    gate(
        "raw-stream pco-ans/pco-lite decode",
        raw_ans / raw_lite,
        1.0,
    );

    let (row_ans, ratio_ans) = container_row(&ds, unit, CodecId::PcoAns);
    let (row_lite, ratio_lite) = container_row(&ds, unit, CodecId::PcoLite);
    println!(
        "1D/f64 container decode: pco-ans {row_ans:.1} MB/s (ratio {ratio_ans:.2}), \
         pco-lite {row_lite:.1} MB/s (ratio {ratio_lite:.2})"
    );
    gate(
        "1D/f64 pco-ans/pco-lite decode",
        row_ans / row_lite,
        ROW_FLOOR,
    );
    gate(
        "1D/f64 pco-ans/pco-lite ratio",
        ratio_ans / ratio_lite,
        RATIO_FLOOR,
    );

    // Adaptive-selection gates (`auto_vs_fixed` rows), one per testkit
    // scenario, plus the archived selection report.
    let mut rows = String::new();
    for spec in tac_testkit::scenarios() {
        let sds = spec.build(7);
        let cfg = spec.config();
        let sel = select_auto(&sds, &cfg).expect("selection");
        let auto_bytes = tac_core::compress_dataset(&sds, &cfg, Method::Auto)
            .expect("auto compress")
            .to_bytes()
            .len();
        let mut best: Option<(usize, Method, CodecId)> = None;
        for method in Method::fixed() {
            for codec in CodecId::all() {
                let fixed_cfg = TacConfig {
                    codec,
                    ..cfg.clone()
                };
                let Ok(cd) = tac_core::compress_dataset(&sds, &fixed_cfg, method) else {
                    continue; // pairs the fixed pipeline rejects cannot be "best"
                };
                let bytes = cd.to_bytes().len();
                if best.map_or(true, |(b, ..)| bytes < b) {
                    best = Some((bytes, method, codec));
                }
            }
        }
        let (best_bytes, best_method, best_codec) = best.expect("no fixed pair compresses");
        let quotient = best_bytes as f64 / auto_bytes as f64;
        gate(
            &format!("auto_vs_fixed {}", spec.name),
            quotient,
            AUTO_FLOOR,
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"winner_method\": \"{}\", \"winner_codec\": \"{}\", \
             \"exhaustive\": {}, \"candidates\": {}, \"auto_bytes\": {}, \
             \"best_fixed_method\": \"{}\", \"best_fixed_codec\": \"{}\", \
             \"best_fixed_bytes\": {}, \"quotient\": {:.4}}}",
            spec.name,
            sel.method.label(),
            sel.codec.label(),
            sel.exhaustive,
            sel.candidates.len(),
            auto_bytes,
            best_method.label(),
            best_codec.label(),
            best_bytes,
            quotient,
        ));
    }
    let report = format!(
        "{{\n  \"report\": \"auto_vs_fixed\",\n  \"floor\": {AUTO_FLOOR},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write("SELECTION_auto.json", report).expect("write SELECTION_auto.json");
    println!("wrote SELECTION_auto.json");

    if failed {
        eprintln!("perf smoke failed: a codec or selection gate broke its floor");
        std::process::exit(1);
    }
    println!("perf smoke clean at scale {scale}");
}
