//! The conformance runner: sweeps the full error-bound matrix (every
//! registered scenario x {TAC, 1D, zMesh, 3D} x {sz, pco-lite} x
//! {memory, v1, v2/v3} x {1, 2, 4, 8} workers), writes the
//! machine-readable `CONFORMANCE.json` artifact, then runs the bounded
//! container-fuzz smoke. Exits non-zero if any matrix cell fails or the
//! fuzzer observes a panic/incoherent decode.
//!
//! Flags:
//!   --seed <u64>        scenario generation seed (default 7)
//!   --fuzz-iters <n>    fuzz smoke iterations (default 2000; 0 skips)
//!   --fuzz-seed <u64>   fuzz mutation seed (default the CI seed)
//!   --out <path>        report path (default `<repo root>/CONFORMANCE.json`)

use tac_testkit::{fuzz_containers, run_conformance, FuzzConfig};

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = flag(&args, "--seed", 7);
    let fuzz_iters: usize = flag(&args, "--fuzz-iters", FuzzConfig::default().iterations);
    let fuzz_seed: u64 = flag(&args, "--fuzz-seed", FuzzConfig::default().seed);
    let out: String = flag(
        &args,
        "--out",
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../CONFORMANCE.json")
            .to_string_lossy()
            .into_owned(),
    );

    let t0 = std::time::Instant::now();
    let report = run_conformance(seed);
    print!("{}", report.summary());
    println!("matrix swept in {:.1?}", t0.elapsed());
    match std::fs::write(&out, report.to_json()) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(2);
        }
    }

    let mut clean = report.all_pass();
    if fuzz_iters > 0 {
        let t1 = std::time::Instant::now();
        let outcome = fuzz_containers(&FuzzConfig {
            iterations: fuzz_iters,
            seed: fuzz_seed,
        });
        println!("{} in {:.1?}", outcome.summary(), t1.elapsed());
        for case in outcome.panics.iter().chain(outcome.incoherent.iter()) {
            println!("CASE iter={} desc={}", case.iteration, case.description);
            println!("BYTES {:?}", case.bytes);
        }
        clean &= outcome.clean();
    }
    std::process::exit(i32::from(!clean));
}
