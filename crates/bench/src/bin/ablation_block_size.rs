//! Ablation: unit-block size sweep for OpST / AKDTree / NaST on the
//! Run1_Z10 fine level — the design-choice study DESIGN.md calls out
//! (the paper fixes 16^3 on 512^3 grids; this shows the trade-off).

use tac_bench::{default_scale, load_dataset};
use tac_core::{compress_level, decompress_level, resolve_level_eb, Strategy, TacConfig};
use tac_sz::ErrorBound;

fn main() {
    let ds = load_dataset("Run1_Z10", default_scale(), 10);
    let fine = &ds.levels()[0];
    let eb = resolve_level_eb(ErrorBound::Rel(1e-4), 1.0, fine.value_range()).unwrap();
    println!(
        "Ablation: unit block size, Run1_Z10 fine level ({}^3, {:.0}% dense)",
        fine.dim(),
        fine.density() * 100.0
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "unit", "strategy", "CR", "PSNR (dB)", "prep+comp s"
    );
    for unit in [2usize, 4, 8, 16] {
        if fine.dim() % unit != 0 || unit > fine.dim() {
            continue;
        }
        for strategy in [Strategy::NaST, Strategy::OpST, Strategy::AkdTree] {
            let cfg = TacConfig {
                unit,
                ..Default::default()
            };
            let t0 = std::time::Instant::now();
            let cl = compress_level(fine, strategy, eb, &cfg).unwrap();
            let secs = t0.elapsed().as_secs_f64();
            let rec = decompress_level(&cl, fine.mask()).unwrap();
            let mut sum_sq = 0.0;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for i in fine.mask().iter_ones() {
                let e = fine.data()[i] - rec.data()[i];
                sum_sq += e * e;
                lo = lo.min(fine.data()[i]);
                hi = hi.max(fine.data()[i]);
            }
            let mse = sum_sq / fine.num_present() as f64;
            let psnr = 20.0 * (hi - lo).log10() - 10.0 * mse.log10();
            let cr = (fine.num_present() * 8) as f64 / cl.total_bytes() as f64;
            println!(
                "{unit:>6} {:>10} {cr:>12.1} {psnr:>12.2} {secs:>12.3}",
                format!("{strategy:?}")
            );
        }
    }
    println!("\nSmaller units remove empty space more exactly but multiply boundary\ncells and metadata; larger units keep prediction context but leave\nzeros inside blocks — the paper's 16^3-on-512^3 sits at ~1/32 of the dim.");
}
