//! Harness binary for fig14 — see `tac_bench::experiments::fig14`.

fn main() {
    print!("{}", tac_bench::experiments::fig14::report());
}
