//! Harness binary for fig19 — see `tac_bench::experiments::fig19`.

fn main() {
    print!("{}", tac_bench::experiments::fig19::report());
}
