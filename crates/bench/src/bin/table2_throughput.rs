//! Harness binary for table2 — see `tac_bench::experiments::table2`.

fn main() {
    print!("{}", tac_bench::experiments::table2::report());
}
