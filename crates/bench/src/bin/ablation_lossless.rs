//! Ablation: the SZ backend stages. Huffman-only vs Huffman+LZSS, and
//! pure-Lorenzo (SZ 1.4-style) vs Lorenzo+regression (SZ 2-style), on
//! one dense smooth field — quantifying what each stage buys.

use tac_nyx::{synthesize, FieldKind};
use tac_sz::{compress, Dims, SzConfig};

fn main() {
    let n = 64;
    let data = synthesize(FieldKind::BaryonDensity, n, 42);
    let dims = Dims::D3(n, n, n);
    println!("Ablation: codec stages on a {n}^3 baryon-density field");
    println!("{:<34} {:>12} {:>8}", "configuration", "bytes", "CR");
    for rel in [1e-3, 1e-4, 1e-5] {
        for (label, cfg) in [
            ("full (regression + LZSS)", SzConfig::rel(rel)),
            ("no LZSS", SzConfig::rel(rel).without_lossless()),
            (
                "no regression (SZ1.4-style)",
                SzConfig::rel(rel).without_regression(),
            ),
            (
                "neither",
                SzConfig::rel(rel).without_lossless().without_regression(),
            ),
        ] {
            let bytes = compress(&data, dims, &cfg).unwrap();
            println!(
                "rel {rel:.0e} {label:<26} {:>12} {:>8.1}",
                bytes.len(),
                (n * n * n * 8) as f64 / bytes.len() as f64
            );
        }
        println!();
    }
    println!("The regression stage is what lifts smooth-data CRs past the Lorenzo\nfeedback floor (~1.5 bits/value); LZSS then squeezes the skewed\nHuffman stream. Both are needed for paper-regime ratios.");
}
