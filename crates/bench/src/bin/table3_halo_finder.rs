//! Harness binary for table3 — see `tac_bench::experiments::table3`.

fn main() {
    print!("{}", tac_bench::experiments::table3::report());
}
