#![forbid(unsafe_code)]

//! # tac-bench
//!
//! Benchmark harnesses that regenerate **every table and figure** of the
//! TAC paper's evaluation (Sec. 4) on the synthetic Nyx catalog. Each
//! `fig*`/`table*` module produces the same rows/series the paper
//! reports; the binaries under `src/bin/` are thin wrappers, and
//! `repro_all` runs the lot.
//!
//! Absolute numbers differ from the paper (smaller grids, synthetic data,
//! reimplemented SZ, different hardware); the *shapes* — who wins, by
//! roughly what factor, where the crossovers sit — are the reproduction
//! targets. See `EXPERIMENTS.md` at the repo root for paper-vs-measured
//! notes per experiment.

pub mod experiments;
pub mod obs_support;
pub mod support;

pub use support::{calibrate_to_cr, default_scale, load_dataset, spectrum_error, Measured};
