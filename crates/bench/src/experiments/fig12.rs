//! Figure 12 — zero filling (ZF) vs ghost-shell padding (GSP) on the
//! Run1_Z10 coarse level (77% density), relative bound 6.7e-3: GSP must
//! match-or-beat ZF on CR while reducing the boundary error bloom
//! (higher PSNR).

use crate::experiments::measure_level;
use crate::support::{default_scale, default_unit, load_dataset};
use tac_core::{resolve_level_eb, Strategy};
use tac_sz::ErrorBound;

/// Runs the comparison.
pub fn report() -> String {
    let scale = default_scale();
    // Half the default unit: scaled-down coarse grids only contain
    // fully-empty blocks at finer block granularity (the paper's 16^3
    // units on 256^3 levels correspond to 2^3 on 32^3).
    let unit = (default_unit(scale) / 2).max(2);
    let ds = load_dataset("Run1_Z10", scale, 10);
    let coarse = &ds.levels()[1];
    let abs_eb = resolve_level_eb(ErrorBound::Rel(6.7e-3), 1.0, coarse.value_range())
        .expect("bound resolution");

    let mut out = String::new();
    out.push_str("Figure 12: ZF vs GSP, Nyx baryon density, z10 coarse level\n");
    out.push_str(&format!(
        "  grid {}^3, density {:.1}%, rel eb 6.7e-3 (abs {:.3e}), unit {}^3\n",
        coarse.dim(),
        coarse.density() * 100.0,
        abs_eb,
        unit
    ));
    out.push_str(&format!(
        "  {:<9} {:>10} {:>12}\n",
        "method", "CR", "PSNR (dB)"
    ));
    let zf = measure_level(coarse, Strategy::ZeroFill, abs_eb, unit);
    let gsp = measure_level(coarse, Strategy::Gsp, abs_eb, unit);
    out.push_str(&format!(
        "  {:<9} {:>10.1} {:>12.2}\n",
        "ZF", zf.ratio, zf.psnr
    ));
    out.push_str(&format!(
        "  {:<9} {:>10.1} {:>12.2}\n",
        "GSP", gsp.ratio, gsp.psnr
    ));
    out.push_str(&format!(
        "  paper: ZF CR 156.7 / 32.8 dB, GSP CR 161.3 / 33.5 dB (GSP wins both)\n  here : GSP/ZF CR ratio {:.3}, PSNR delta {:+.2} dB\n",
        gsp.ratio / zf.ratio,
        gsp.psnr - zf.psnr
    ));
    out
}
