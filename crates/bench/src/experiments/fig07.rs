//! Figure 7 — NaST vs OpST on the Run1_Z10 fine level (23% density),
//! relative error bound 4.8e-4: OpST must deliver *both* a higher
//! compression ratio and an equal-or-higher PSNR (larger sub-blocks mean
//! fewer poorly predicted boundary cells).

use crate::experiments::measure_level;
use crate::support::{default_scale, load_dataset};
use tac_core::{resolve_level_eb, Strategy};
use tac_sz::ErrorBound;

/// Runs the experiment and renders the paper-style comparison.
pub fn report() -> String {
    let scale = default_scale();
    let unit = crate::support::default_unit(scale);
    let ds = load_dataset("Run1_Z10", scale, 10);
    let fine = &ds.levels()[0];
    let abs_eb = resolve_level_eb(ErrorBound::Rel(4.8e-4), 1.0, fine.value_range())
        .expect("bound resolution");

    let mut out = String::new();
    out.push_str("Figure 7: NaST vs OpST, Nyx baryon density, z10 fine level\n");
    out.push_str(&format!(
        "  grid {}^3, density {:.1}%, rel eb 4.8e-4 (abs {:.3e}), unit {}^3\n",
        fine.dim(),
        fine.density() * 100.0,
        abs_eb,
        unit
    ));
    out.push_str(&format!(
        "  {:<8} {:>10} {:>12}\n",
        "method", "CR", "PSNR (dB)"
    ));
    let mut rows = Vec::new();
    for strategy in [Strategy::NaST, Strategy::OpST] {
        let m = measure_level(fine, strategy, abs_eb, unit);
        out.push_str(&format!(
            "  {:<8} {:>10.1} {:>12.2}\n",
            format!("{strategy:?}"),
            m.ratio,
            m.psnr
        ));
        rows.push(m);
    }
    out.push_str(&format!(
        "  paper: NaST CR 233.8 / 76.9 dB, OpST CR 241.1 / 77.8 dB (OpST wins both)\n  here : OpST/NaST CR ratio {:.3}, PSNR delta {:+.2} dB\n",
        rows[1].ratio / rows[0].ratio,
        rows[1].psnr - rows[0].psnr
    ));
    out
}
