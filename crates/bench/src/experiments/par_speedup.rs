//! Parallel compression speedup and ROI decode latency — beyond the
//! paper's own evaluation, following its successors: TAC+ (TPDS'23)
//! motivates pre-planned parallel partitions, AMRIC (SC'23) chunked
//! seekable output for in-situ I/O.
//!
//! Two tables:
//! 1. end-to-end TAC compress/decompress wall time and throughput at
//!    1/2/4/8 worker threads (same dataset and bounds as Fig. 14's
//!    Run1_Z10 panel), with a bit-identity check across thread counts;
//! 2. full decode vs region-of-interest decode of a 1/8-volume corner
//!    through the v2 chunk table, with payload-byte accounting.
//!
//! Expected shapes: near-linear compression speedup while physical
//! cores last (the per-group tasks dominate and the scheduler keeps
//! workers busy); ROI decode reads a fraction of the payload bytes and
//! finishes proportionally faster. On a single-core host both collapse
//! to ~1x — the table says what the hardware allowed.

use crate::support::{default_scale, default_unit, load_dataset, quick_mode};
use tac_amr::Aabb;
use tac_core::{
    compress_dataset, decompress_dataset_par, decompress_region, CompressedDataset, Method,
    Parallelism, TacConfig,
};
use tac_sz::ErrorBound;

/// Thread counts the speedup table sweeps.
pub const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// One row of the speedup table.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupRow {
    /// Worker threads used.
    pub threads: usize,
    /// Compression wall time (seconds, best of reps).
    pub compress_s: f64,
    /// Decompression wall time (seconds, best of reps).
    pub decompress_s: f64,
    /// End-to-end throughput in MB/s over present-cell bytes.
    pub throughput_mb_s: f64,
}

/// The benchmark configuration shared by the table, the criterion
/// bench, and `BENCH_par.json`.
pub fn bench_config(unit: usize, fine_dim: usize, threads: usize) -> TacConfig {
    TacConfig {
        unit,
        error_bound: ErrorBound::Rel(1e-3),
        parallelism: Parallelism::Threads(threads),
        roi_tile: Some((fine_dim / 2).max(unit)),
        ..Default::default()
    }
}

/// Measures the thread sweep on a dataset, returning one row per thread
/// count plus whether every thread count produced identical container
/// bytes.
pub fn measure_sweep(
    ds: &tac_amr::AmrDataset,
    unit: usize,
    reps: usize,
) -> (Vec<SpeedupRow>, bool) {
    let original_bytes = ds.total_present() * 8;
    let mut rows = Vec::new();
    let mut reference: Option<Vec<u8>> = None;
    let mut identical = true;
    for &threads in THREAD_SWEEP {
        let cfg = bench_config(unit, ds.finest_dim(), threads);
        let mut best_c = f64::INFINITY;
        let mut best_d = f64::INFINITY;
        let mut bytes = Vec::new();
        for _ in 0..reps.max(1) {
            let t0 = std::time::Instant::now();
            let cd = compress_dataset(ds, &cfg, Method::Tac).expect("compress");
            best_c = best_c.min(t0.elapsed().as_secs_f64());
            let t1 = std::time::Instant::now();
            decompress_dataset_par(&cd, cfg.parallelism).expect("decompress");
            best_d = best_d.min(t1.elapsed().as_secs_f64());
            bytes = cd.to_bytes();
        }
        match &reference {
            None => reference = Some(bytes),
            Some(r) => identical &= *r == bytes,
        }
        rows.push(SpeedupRow {
            threads,
            compress_s: best_c,
            decompress_s: best_d,
            throughput_mb_s: original_bytes as f64 / 1e6 / (best_c + best_d),
        });
    }
    (rows, identical)
}

/// Runs the speedup + ROI report.
pub fn report() -> String {
    let scale = default_scale();
    let unit = default_unit(scale);
    let reps = if quick_mode() { 1 } else { 3 };
    let ds = load_dataset("Run1_Z10", scale, 14);

    let mut out = String::new();
    out.push_str("Parallel engine: TAC compress/decompress at 1/2/4/8 worker threads\n");
    out.push_str(&format!(
        "  dataset Run1_Z10, finest {}^3, {} present cells, hardware threads: {}\n",
        ds.finest_dim(),
        ds.total_present(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    ));
    out.push_str(&format!(
        "  {:<8} {:>12} {:>12} {:>12} {:>10}\n",
        "threads", "compress s", "decomp s", "MB/s", "speedup"
    ));
    let (rows, identical) = measure_sweep(&ds, unit, reps);
    let serial = rows[0].compress_s + rows[0].decompress_s;
    for r in &rows {
        out.push_str(&format!(
            "  {:<8} {:>12.4} {:>12.4} {:>12.2} {:>9.2}x\n",
            r.threads,
            r.compress_s,
            r.decompress_s,
            r.throughput_mb_s,
            serial / (r.compress_s + r.decompress_s)
        ));
    }
    out.push_str(&format!(
        "  container bytes identical across thread counts: {}\n",
        if identical { "yes" } else { "NO (bug!)" }
    ));

    // ROI decode: a 1/8-volume corner against the full decode.
    let cfg = bench_config(unit, ds.finest_dim(), 1);
    let cd = compress_dataset(&ds, &cfg, Method::Tac).expect("compress");
    let bytes = cd.to_bytes();
    let half = ds.finest_dim() / 2;
    let roi = Aabb::new((0, 0, 0), (half, half, half));

    let t0 = std::time::Instant::now();
    let parsed = CompressedDataset::from_bytes(&bytes).expect("parse");
    decompress_dataset_par(&parsed, cfg.parallelism).expect("full decode");
    let full_s = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let (_, stats) = decompress_region(&bytes, roi).expect("roi decode");
    let roi_s = t1.elapsed().as_secs_f64();

    out.push_str("\nROI decode (v2 chunk table), 1/8-volume corner:\n");
    out.push_str(&format!(
        "  full decode {:.4}s reading {} payload bytes; ROI decode {:.4}s reading {} ({:.0}% skipped, {}/{} chunks)\n",
        full_s,
        stats.payload_bytes_total,
        roi_s,
        stats.payload_bytes_read,
        stats.skipped_fraction() * 100.0,
        stats.chunks_read,
        stats.chunks_total,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_bit_identical_and_positive() {
        crate::support::set_bench_overrides(32, true);
        let ds = load_dataset("Run1_Z10", 32, 3);
        let (rows, identical) = measure_sweep(&ds, 2, 1);
        assert!(identical, "thread count changed container bytes");
        assert_eq!(rows.len(), THREAD_SWEEP.len());
        for r in rows {
            assert!(r.compress_s > 0.0 && r.throughput_mb_s > 0.0);
        }
    }
}
