//! One module per paper table/figure. Every module exposes
//! `report() -> String` printing the same rows/series the paper shows.

pub mod codec_comparison;
pub mod fig07;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig18;
pub mod fig19;
pub mod par_speedup;
pub mod table2;
pub mod table3;

use tac_amr::AmrLevel;
use tac_core::{compress_level, decompress_level, Strategy, TacConfig};

/// Per-level measurement used by the per-strategy figures (7, 11, 12):
/// compression ratio and PSNR over present cells at a given absolute
/// bound, plus the wall time of the pre-process+compress step.
pub(crate) fn measure_level(
    level: &AmrLevel,
    strategy: Strategy,
    abs_eb: f64,
    unit: usize,
) -> LevelMeasurement {
    let cfg = TacConfig {
        unit,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let cl = compress_level(level, strategy, abs_eb, &cfg).expect("level compression");
    let compress_s = t0.elapsed().as_secs_f64();
    let recon = decompress_level(&cl, level.mask()).expect("level decompression");

    let present = level.num_present();
    let bytes = cl.total_bytes();
    let mut sum_sq = 0.0;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in level.mask().iter_ones() {
        let e = level.data()[i] - recon.data()[i];
        sum_sq += e * e;
        lo = lo.min(level.data()[i]);
        hi = hi.max(level.data()[i]);
    }
    let mse = sum_sq / present.max(1) as f64;
    let psnr = if mse == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (hi - lo).log10() - 10.0 * mse.log10()
    };
    LevelMeasurement {
        ratio: (present * 8) as f64 / bytes.max(1) as f64,
        bit_rate: bytes as f64 * 8.0 / present.max(1) as f64,
        psnr,
        compress_s,
    }
}

/// Result of [`measure_level`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct LevelMeasurement {
    pub ratio: f64,
    pub bit_rate: f64,
    pub psnr: f64,
    /// Pre-process + compress wall time (read by tests; the figure
    /// harnesses time the planners directly).
    #[allow(dead_code)]
    pub compress_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::load_dataset;

    #[test]
    fn level_measurement_is_sane() {
        let ds = load_dataset("Run1_Z10", 32, 1);
        let m = measure_level(&ds.levels()[0], Strategy::OpST, 1e7, 2);
        assert!(m.ratio > 1.0);
        assert!(m.psnr > 20.0);
        assert!(m.compress_s > 0.0);
        assert!((m.ratio * m.bit_rate - 64.0).abs() < 1e-6);
    }

    /// Smoke-runs one report at a tiny scale so the harness behind each
    /// bench binary stays compiling AND running (guards against drift in
    /// the library APIs). One test per module keeps slow harnesses
    /// visible and lets the runner parallelize them. The scale/quick
    /// knobs are set through the atomic overrides, not `set_var` — env
    /// mutation races with `getenv` under the parallel test runner.
    fn smoke(name: &str, report: fn() -> String) {
        crate::support::set_bench_overrides(32, true);
        let out = report();
        assert!(out.lines().count() > 3, "{name} report too short:\n{out}");
    }

    macro_rules! smoke_tests {
        ($($module:ident),+ $(,)?) => {
            $(
                #[test]
                fn $module() {
                    smoke(stringify!($module), super::$module::report);
                }
            )+
        };
    }

    mod smoke_reports {
        use super::smoke;

        smoke_tests!(
            codec_comparison,
            fig07,
            fig11,
            fig12,
            fig13,
            fig14,
            fig15,
            fig16,
            fig18,
            fig19,
            par_speedup,
            table2,
            table3,
        );
    }
}
