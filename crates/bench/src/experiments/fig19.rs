//! Figure 19 — power-spectrum relative error of the 3D baseline, TAC with
//! a uniform error bound, and TAC with the adaptive per-level bound, all
//! calibrated to (almost) the same compression ratio on Run1_Z2's baryon
//! density.
//!
//! Expected shape (the paper's headline for Sec. 4.5): TAC(uniform) is
//! about level with the 3D baseline; TAC with the tuned fine:coarse
//! ratio (3:1 in the paper) pushes the spectrum error well below both.

use crate::support::{calibrate_to_cr, default_scale, default_unit, load_dataset};
use tac_amr::to_uniform;
use tac_analysis::{power_spectrum, relative_error};
use tac_core::{compress_dataset, decompress_dataset, Method, TacConfig};
use tac_sz::ErrorBound;

/// Matched compression ratio all methods are calibrated to.
const TARGET_CR: f64 = 20.0;

/// Runs the matched-CR comparison.
pub fn report() -> String {
    let scale = default_scale();
    let unit = default_unit(scale);
    let ds = load_dataset("Run1_Z2", scale, 77);
    let n = ds.finest_dim();
    let reference = power_spectrum(&to_uniform(&ds), n);

    let mut out = String::new();
    out.push_str("Figure 19: power-spectrum error at matched CR, Run1_Z2 baryon density\n");
    out.push_str(&format!("  target CR {TARGET_CR}, finest grid {n}^3\n\n"));
    out.push_str(&format!(
        "  {:<16} {:>8} {:>10} {:>22}\n",
        "method", "CR", "base eb", "max relerr k<10 (%)"
    ));

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let cases: [(&str, Method, Vec<f64>); 4] = [
        ("3D baseline", Method::Baseline3D, vec![]),
        ("TAC 1:1", Method::Tac, vec![1.0, 1.0]),
        ("TAC 2:1", Method::Tac, vec![2.0, 1.0]),
        ("TAC 3:1", Method::Tac, vec![3.0, 1.0]),
    ];
    for (label, method, scales) in cases {
        let (base_eb, measured) = calibrate_to_cr(&ds, method, scales.clone(), TARGET_CR, unit);
        let cfg = TacConfig {
            unit,
            error_bound: ErrorBound::Abs(base_eb),
            level_eb_scale: scales,
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, method).expect("compress");
        let recon = decompress_dataset(&cd).expect("decompress");
        let ps = power_spectrum(&to_uniform(&recon), n);
        let errs = relative_error(&reference, &ps);
        let max_low_k = errs
            .iter()
            .zip(&reference.k)
            .filter(|(_, &k)| k < 10.0)
            .map(|(e, _)| *e)
            .fold(0.0f64, f64::max);
        out.push_str(&format!(
            "  {:<16} {:>8.1} {:>10.2e} {:>21.2}%\n",
            label,
            measured.ratio,
            base_eb,
            max_low_k * 100.0
        ));
        rows.push((label.to_string(), errs));
    }

    // Per-k error table for the curve shape (the paper's x-axis).
    out.push_str("\n  per-bin relative error (%):\n");
    out.push_str(&format!("  {:>6}", "k"));
    for (label, _) in &rows {
        out.push_str(&format!(" {:>12}", label));
    }
    out.push('\n');
    for (i, k) in reference.k.iter().enumerate().take(10) {
        out.push_str(&format!("  {k:>6.2}"));
        for (_, errs) in &rows {
            out.push_str(&format!(" {:>11.2}%", errs[i] * 100.0));
        }
        out.push('\n');
    }
    out.push_str(
        "\n  paper shape: TAC(1:1) ~ 3D baseline; the tuned ratio cuts the error\n  \
         well below both at the same CR (red dashed 1% line in the paper).\n",
    );
    out
}
