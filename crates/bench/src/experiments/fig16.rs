//! Figure 16 — why zMesh does not help tree-based AMR data.
//!
//! Recreates the paper's 2-level toy example in 3D: a smooth field where
//! refined (fine) cells hold high values and coarse cells low values.
//! For each ordering — per-level 1D baseline, zMesh geometric
//! interleaving — count the "significant value changes" (jumps larger
//! than half the value range) a 1D compressor would have to absorb.
//! On tree-based data zMesh *adds* jumps at every level transition.

use tac_amr::{AmrDataset, AmrLevel, BitMask};
use tac_core::{gather, zmesh_order};

/// Builds the toy dataset: fine cells near the domain centre (values
/// ~8-9), coarse cells elsewhere (values ~1-2) — the value split of the
/// paper's example.
fn toy() -> AmrDataset {
    let fine_dim = 8;
    let coarse_dim = 4;
    let mut fine = AmrLevel::empty(fine_dim);
    let mut coarse = AmrLevel::empty(coarse_dim);
    for z in 0..coarse_dim {
        for y in 0..coarse_dim {
            for x in 0..coarse_dim {
                let centre =
                    (x as f64 - 1.5).abs() + (y as f64 - 1.5).abs() + (z as f64 - 1.5).abs();
                if centre <= 1.5 {
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let v =
                                    8.0 + ((2 * x + dx + 2 * y + dy + 2 * z + dz) as f64) * 0.05;
                                fine.set_value(2 * x + dx, 2 * y + dy, 2 * z + dz, v);
                            }
                        }
                    }
                } else {
                    coarse.set_value(x, y, z, 1.0 + (x + y + z) as f64 * 0.1);
                }
            }
        }
    }
    AmrDataset::new("toy", vec![fine, coarse])
}

/// Jumps larger than half the global range.
fn significant_changes(seq: &[f64]) -> usize {
    let (lo, hi) = seq
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
    let cut = (hi - lo) * 0.5;
    seq.windows(2).filter(|w| (w[1] - w[0]).abs() > cut).count()
}

/// Runs the demonstration.
pub fn report() -> String {
    let ds = toy();
    ds.validate().expect("toy dataset is valid");

    // 1D baseline: each level separately, concatenated for counting (the
    // jump at the single concatenation point is not charged).
    let fine_vals = ds.levels()[0].present_values();
    let coarse_vals = ds.levels()[1].present_values();
    let jumps_1d = significant_changes(&fine_vals) + significant_changes(&coarse_vals);

    // zMesh: one geometric interleaving of both levels.
    let masks: Vec<&BitMask> = ds.levels().iter().map(|l| l.mask()).collect();
    let order = zmesh_order(&masks, ds.finest_dim());
    let data: Vec<&[f64]> = ds.levels().iter().map(|l| l.data()).collect();
    let zmesh_vals = gather(&order, &data);
    let jumps_zmesh = significant_changes(&zmesh_vals);

    let mut out = String::new();
    out.push_str("Figure 16: reordering on tree-based AMR (no redundant cells)\n");
    out.push_str(&format!(
        "  toy dataset: fine {}^3 (values ~8-9, centre), coarse {}^3 (values ~1-2)\n",
        ds.levels()[0].dim(),
        ds.levels()[1].dim()
    ));
    out.push_str(&format!(
        "  present cells: fine {} / coarse {}\n\n",
        ds.levels()[0].num_present(),
        ds.levels()[1].num_present()
    ));
    out.push_str(&format!(
        "  {:<28} {:>20}\n",
        "ordering", "significant jumps"
    ));
    out.push_str(&format!(
        "  {:<28} {:>20}\n",
        "1D baseline (per level)", jumps_1d
    ));
    out.push_str(&format!(
        "  {:<28} {:>20}\n",
        "zMesh (geometric interleave)", jumps_zmesh
    ));
    out.push_str(&format!(
        "\n  paper's point: without redundancy, every fine<->coarse transition in the\n  \
         zMesh stream is a value cliff; the per-level 1D baseline never sees them.\n  \
         zMesh/1D jump ratio here: {:.1}x\n",
        jumps_zmesh as f64 / jumps_1d.max(1) as f64
    ));
    out
}
