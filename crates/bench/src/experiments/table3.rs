//! Table 3 — halo-finder fidelity at matched compression ratio on
//! Run1_Z2: the 3D baseline, TAC with uniform bounds, and TAC with the
//! halo-tuned 2:1 (fine:coarse) ratio. Reports the relative mass
//! difference and the cell-count difference of the biggest halo.
//!
//! Expected shape: at the same CR, TAC(1:1) already beats the 3D
//! baseline slightly, and TAC(2:1) gives the smallest differences (the
//! paper's 6.66e-4 -> 4.97e-4 -> 4.49e-4 mass-drift progression).

use crate::support::{calibrate_to_cr, default_scale, default_unit, load_dataset};
use tac_amr::to_uniform;
use tac_analysis::{compare_catalogs, find_halos, HaloFinderConfig};
use tac_core::{compress_dataset, decompress_dataset, Method, TacConfig};
use tac_sz::ErrorBound;

/// Matched compression ratio (the paper's Table 3 sits at CR ~198.5 on
/// 512^3 data; scaled data saturates earlier, so a smaller CR keeps all
/// three methods in their informative regime).
const TARGET_CR: f64 = 20.0;

/// Runs the comparison.
pub fn report() -> String {
    let scale = default_scale();
    let unit = default_unit(scale);
    let ds = load_dataset("Run1_Z2", scale, 33);
    let n = ds.finest_dim();
    let uniform = to_uniform(&ds);
    let hf = HaloFinderConfig {
        threshold_factor: 20.0,
        min_cells: 4,
    };
    let reference = find_halos(&uniform, n, &hf);

    let mut out = String::new();
    out.push_str("Table 3: halo finder at matched CR, Run1_Z2 baryon density\n");
    out.push_str(&format!(
        "  target CR {TARGET_CR}; halos in original: {} (threshold {:.1}x mean, min {} cells)\n\n",
        reference.halos.len(),
        hf.threshold_factor,
        hf.min_cells
    ));
    out.push_str(&format!(
        "  {:<14} {:>8} {:>16} {:>16} {:>12}\n",
        "method", "CR", "rel mass diff", "cell num diff", "halo # diff"
    ));
    let cases: [(&str, Method, Vec<f64>); 3] = [
        ("3D baseline", Method::Baseline3D, vec![]),
        ("TAC (1:1)", Method::Tac, vec![1.0, 1.0]),
        ("TAC (2:1)", Method::Tac, vec![2.0, 1.0]),
    ];
    for (label, method, scales) in cases {
        let (base_eb, measured) = calibrate_to_cr(&ds, method, scales.clone(), TARGET_CR, unit);
        let cfg = TacConfig {
            unit,
            error_bound: ErrorBound::Abs(base_eb),
            level_eb_scale: scales,
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, method).expect("compress");
        let recon = decompress_dataset(&cd).expect("decompress");
        let cat = find_halos(&to_uniform(&recon), n, &hf);
        let cmp = compare_catalogs(&reference, &cat);
        out.push_str(&format!(
            "  {:<14} {:>8.1} {:>16.3e} {:>16} {:>12}\n",
            label, measured.ratio, cmp.rel_mass_diff, cmp.cell_count_diff, cmp.halo_count_diff
        ));
    }
    out.push_str(
        "\n  paper: 3D 6.66e-4 / 39 cells; TAC 1:1 4.97e-4 / 28; TAC 2:1 4.49e-4 / 25\n  \
         (adaptive per-level bounds give the most faithful halo catalog).\n",
    );
    out
}
