//! Figure 11 — rate-distortion (bit-rate vs PSNR) of GSP, OpST, and
//! AKDTree on six single levels spanning densities 23% … 99.9%.
//!
//! Expected shapes: OpST and AKDTree nearly identical everywhere (the
//! paper's justification for switching on *time*, not quality); GSP worse
//! at low density, overtaking around ~60% (the T2 threshold).

use crate::experiments::measure_level;
use crate::support::{default_scale, default_unit, load_dataset};
use tac_core::{resolve_level_eb, Strategy};
use tac_sz::ErrorBound;

/// The six density cases: (label, dataset, level index). Densities match
/// the paper's panels a-f.
const CASES: &[(&str, &str, usize)] = &[
    ("z10 (d=23%)", "Run1_Z10", 0),
    ("z5  (d=58%)", "Run1_Z5", 0),
    ("z2  (d=63%)", "Run1_Z2", 0),
    ("z3  (d=64%)", "Run1_Z3", 0),
    ("T2  (d=99.8%)", "Run2_T2", 1),
    ("T3  (d=99.4%)", "Run2_T3", 2),
];

/// Relative error bounds swept per curve.
const EBS: &[f64] = &[1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5];

/// Runs the sweep and renders the six panels.
pub fn report() -> String {
    let scale = default_scale();
    let unit = default_unit(scale);
    let quick = crate::support::quick_mode();
    let ebs: &[f64] = if quick { &EBS[..3] } else { EBS };

    let mut out = String::new();
    out.push_str("Figure 11: rate-distortion of GSP vs OpST vs AKDTree at six densities\n");
    for &(label, dataset, level_idx) in CASES {
        let ds = load_dataset(dataset, scale, 11);
        let level = &ds.levels()[level_idx];
        out.push_str(&format!(
            "\n  panel {label}: level {}^3, density {:.2}%\n",
            level.dim(),
            level.density() * 100.0
        ));
        out.push_str(&format!(
            "  {:<9} {:>9} {:>11} {:>9} {:>11} {:>9} {:>11}\n",
            "rel eb", "GSP b/v", "GSP dB", "OpST b/v", "OpST dB", "AKD b/v", "AKD dB"
        ));
        for &eb in ebs {
            let abs_eb =
                resolve_level_eb(ErrorBound::Rel(eb), 1.0, level.value_range()).expect("eb");
            let gsp = measure_level(level, Strategy::Gsp, abs_eb, unit);
            let opst = measure_level(level, Strategy::OpST, abs_eb, unit);
            let akd = measure_level(level, Strategy::AkdTree, abs_eb, unit);
            out.push_str(&format!(
                "  {:<9.0e} {:>9.3} {:>11.2} {:>9.3} {:>11.2} {:>9.3} {:>11.2}\n",
                eb, gsp.bit_rate, gsp.psnr, opst.bit_rate, opst.psnr, akd.bit_rate, akd.psnr
            ));
        }
    }
    out.push_str(
        "\n  paper shape: OpST ~= AKDTree on all panels; GSP behind at low density,\n  \
         level with them by ~60% and ahead at 99.8/99.9%.\n",
    );
    out
}
