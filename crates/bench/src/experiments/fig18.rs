//! Figure 18 — bit-rate vs absolute error bound for the fine and coarse
//! levels of Run1_Z2, compressed separately (TAC's level-wise view).
//!
//! Expected shape: both curves fall steeply at tight bounds and flatten
//! as the bound grows — past some point, loosening the bound buys almost
//! no size, which is the argument for rebalancing the per-level ratio
//! (Sec. 4.5) instead of loosening everything.

use crate::experiments::measure_level;
use crate::support::{default_scale, default_unit, load_dataset};
use tac_core::{choose_strategy, TacConfig};

/// Absolute bounds swept (the paper's x-axis spans ~1e8..4e10 on Nyx
/// baryon density; the synthetic field shares that value scale).
const EBS: &[f64] = &[1e7, 3e7, 1e8, 3e8, 1e9, 3e9, 1e10, 3e10];

/// Runs the sweep.
pub fn report() -> String {
    let scale = default_scale();
    let unit = default_unit(scale);
    let ds = load_dataset("Run1_Z2", scale, 18);
    let cfg = TacConfig {
        unit,
        ..Default::default()
    };

    let mut out = String::new();
    out.push_str("Figure 18: per-level bit-rate vs absolute error bound, Run1_Z2\n");
    for (l, level) in ds.levels().iter().enumerate() {
        let label = if l == 0 { "fine" } else { "coarse" };
        out.push_str(&format!(
            "\n  {label} level: {}^3, density {:.1}%, strategy {:?}\n",
            level.dim(),
            level.density() * 100.0,
            choose_strategy(level, &cfg)
        ));
        out.push_str(&format!(
            "  {:>10} {:>12} {:>10}\n",
            "abs eb", "bit-rate", "CR"
        ));
        let mut prev: Option<f64> = None;
        for &eb in EBS {
            let strategy = choose_strategy(level, &cfg);
            let m = measure_level(level, strategy, eb, unit);
            let slope = prev.map_or(String::from("      -"), |p| {
                format!("{:+7.3}", m.bit_rate - p)
            });
            out.push_str(&format!(
                "  {:>10.0e} {:>12.3} {:>10.1}   d(b/v) {slope}\n",
                eb, m.bit_rate, m.ratio
            ));
            prev = Some(m.bit_rate);
        }
    }
    out.push_str(
        "\n  paper shape: both curves converge toward a floor as eb grows — large\n  \
         bounds trade a lot of quality for almost no size (motivates 3:1 tuning).\n",
    );
    out
}
