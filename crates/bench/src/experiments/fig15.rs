//! Figure 15 — rate-distortion of TAC vs baselines on the Run 2
//! snapshots (T2, T3, T4), whose finest levels are extremely sparse
//! (0.2% … 3e-5). Expected shape: TAC sits top-left of every baseline;
//! the 3D baseline is far behind because up-sampling a deep hierarchy
//! materializes enormous redundancy.

use crate::experiments::fig14::report_for;

const DATASETS: &[&str] = &["Run2_T2", "Run2_T3", "Run2_T4"];

/// Runs the three-panel sweep.
pub fn report() -> String {
    report_for(
        DATASETS,
        "Figure 15: rate-distortion on Run 2 (very sparse finest levels)",
    )
}
