//! Table 2 — overall compression+decompression throughput (MB/s) of the
//! 1D baseline, the 3D baseline, and TAC across all seven datasets at
//! three absolute error bounds (1e8, 1e9, 1e10).
//!
//! Expected shape: the 1D baseline fastest (no pre-processing); TAC close
//! behind; the 3D baseline collapsing on the Run 2 datasets, where
//! up-sampling a deep hierarchy inflates the data by orders of magnitude
//! (the paper measures up to 75x advantage for TAC on Run2_T4).

use crate::support::{default_scale, default_unit, load_dataset, measure};
use tac_core::{Method, TacConfig};
use tac_sz::ErrorBound;

const DATASETS: &[&str] = &[
    "Run1_Z2", "Run1_Z3", "Run1_Z5", "Run1_Z10", "Run2_T2", "Run2_T3", "Run2_T4",
];
const EBS: &[f64] = &[1e8, 1e9, 1e10];

/// Runs the throughput grid.
pub fn report() -> String {
    let scale = default_scale();
    let unit = default_unit(scale);
    let mut out = String::new();
    out.push_str("Table 2: overall throughput (MB/s), compression + decompression\n");
    out.push_str(&format!(
        "  {:<8} {:<10} {:>8} {:>8} {:>8}   {}\n",
        "abs eb", "dataset", "1D", "3D", "TAC", "(3D redundancy factor)"
    ));
    for &eb in EBS {
        for &name in DATASETS {
            let ds = load_dataset(name, scale, 2);
            let original_bytes = ds.total_present() * 8;
            let n = ds.finest_dim();
            let uniform_cells = n * n * n;
            let redundancy = uniform_cells as f64 / ds.total_present() as f64;
            let cfg = TacConfig {
                unit,
                error_bound: ErrorBound::Abs(eb),
                ..Default::default()
            };
            let m1 = measure(&ds, &cfg, Method::Baseline1D, eb);
            let m3 = measure(&ds, &cfg, Method::Baseline3D, eb);
            let mt = measure(&ds, &cfg, Method::Tac, eb);
            out.push_str(&format!(
                "  {:<8.0e} {:<10} {:>8.0} {:>8.0} {:>8.0}   ({:.1}x)\n",
                eb,
                name,
                m1.throughput_mb_s(original_bytes),
                m3.throughput_mb_s(original_bytes),
                mt.throughput_mb_s(original_bytes),
                redundancy
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "  paper shape: 1D fastest; TAC within ~1.5x of 1D on Run 1; the 3D\n  \
         baseline's throughput collapses with the redundancy factor on Run 2\n  \
         (paper: TAC up to 75x faster than 3D on Run2 datasets).\n",
    );
    out
}
