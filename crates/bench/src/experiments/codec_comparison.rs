//! Scalar-codec backend comparison — beyond the paper's single-substrate
//! evaluation, in the direction TAC+ (TPDS'23) takes: the per-level
//! pre-process is codec-agnostic, so the natural question is which
//! error-bounded backend each workload should feed.
//!
//! Two tables:
//! 1. every compression method x every registered codec: ratio,
//!    bit-rate, PSNR, and end-to-end throughput at the same relative
//!    bound;
//! 2. per-level TAC payload accounting, showing how the codecs diverge
//!    between the sparse fine levels (many small batched streams) and
//!    the dense coarse levels (one whole-grid stream).
//!
//! Expected shapes: SZ's Lorenzo/regression prediction wins ratio on the
//! smooth 3D fields; PcoLite's single-scan delta pipeline trades some
//! ratio for decode throughput and tiny fixed overheads (it often wins
//! on the small fine-level group streams, where SZ's Huffman tables
//! dominate). The point of the table is that the answer is per-level —
//! which is exactly what the pluggable backend layer makes actionable.

use crate::support::{
    default_scale, default_unit, load_dataset, measure, measure_f32, narrow_dataset_f32,
    quick_mode, Measured,
};
use tac_core::{compress_dataset, CodecId, Method, MethodBody, TacConfig};
use tac_sz::ErrorBound;

/// One method x codec measurement row.
#[derive(Debug, Clone)]
pub struct CodecRow {
    /// Compression method label.
    pub method: &'static str,
    /// Codec label.
    pub codec: &'static str,
    /// Element type the pipeline ran at (`"f64"` / `"f32"`).
    pub dtype: &'static str,
    /// Compression ratio over present cells.
    pub ratio: f64,
    /// Compression-only throughput (MB/s over present-cell bytes).
    pub compress_mb_s: f64,
    /// Decompression-only throughput (MB/s over present-cell bytes).
    pub decompress_mb_s: f64,
    /// PSNR (dB) over present cells.
    pub psnr: f64,
    /// Compression wall time (seconds).
    pub compress_s: f64,
    /// Decompression wall time (seconds).
    pub decompress_s: f64,
}

/// The configuration the comparison runs under.
pub fn bench_config(unit: usize, codec: CodecId) -> TacConfig {
    TacConfig {
        unit,
        error_bound: ErrorBound::Rel(1e-3),
        codec,
        ..Default::default()
    }
}

/// Measures every method under every registered codec on `ds`.
pub fn measure_matrix(ds: &tac_amr::AmrDataset, unit: usize, reps: usize) -> Vec<CodecRow> {
    matrix_rows(ds.total_present() * 8, "f64", unit, reps, |cfg, method| {
        measure(ds, cfg, method, 1e-3)
    })
}

/// [`measure_matrix`] with the dataset narrowed to `f32` storage: the
/// same sweep through the monomorphized single-precision pipeline and
/// the v4 wire, original bytes counted at 4 B/value.
pub fn measure_matrix_f32(ds: &tac_amr::AmrDataset, unit: usize, reps: usize) -> Vec<CodecRow> {
    let ds32 = narrow_dataset_f32(ds);
    matrix_rows(ds.total_present() * 4, "f32", unit, reps, |cfg, method| {
        measure_f32(&ds32, cfg, method, 1e-3)
    })
}

fn matrix_rows(
    original_bytes: usize,
    dtype: &'static str,
    unit: usize,
    reps: usize,
    mut run: impl FnMut(&TacConfig, Method) -> Measured,
) -> Vec<CodecRow> {
    let mut rows = Vec::new();
    for method in [
        Method::Tac,
        Method::Baseline1D,
        Method::ZMesh,
        Method::Baseline3D,
    ] {
        for codec in CodecId::all() {
            let cfg = bench_config(unit, codec);
            let mut best: Option<Measured> = None;
            for _ in 0..reps.max(1) {
                let m = run(&cfg, method);
                let better = best.as_ref().map_or(true, |b| {
                    m.compress_s + m.decompress_s < b.compress_s + b.decompress_s
                });
                if better {
                    best = Some(m);
                }
            }
            let m = best.expect("at least one rep");
            rows.push(CodecRow {
                method: method.label(),
                codec: codec.label(),
                dtype,
                ratio: m.ratio,
                compress_mb_s: m.compress_mb_s(original_bytes),
                decompress_mb_s: m.decompress_mb_s(original_bytes),
                psnr: m.psnr,
                compress_s: m.compress_s,
                decompress_s: m.decompress_s,
            });
        }
    }
    rows
}

/// Runs the codec-comparison report.
pub fn report() -> String {
    let scale = default_scale();
    let unit = default_unit(scale);
    let reps = if quick_mode() { 1 } else { 3 };
    let ds = load_dataset("Run1_Z10", scale, 14);

    let mut out = String::new();
    out.push_str("Scalar-codec backends: every method x every registered codec\n");
    out.push_str(&format!(
        "  dataset Run1_Z10, finest {}^3, {} present cells, rel eb 1e-3\n",
        ds.finest_dim(),
        ds.total_present(),
    ));
    out.push_str(&format!(
        "  {:<8} {:<10} {:>8} {:>9} {:>10} {:>10} {:>11} {:>11}\n",
        "method", "codec", "ratio", "PSNR dB", "comp s", "decomp s", "comp MB/s", "decomp MB/s"
    ));
    for r in measure_matrix(&ds, unit, reps) {
        out.push_str(&format!(
            "  {:<8} {:<10} {:>8.2} {:>9.1} {:>10.4} {:>10.4} {:>11.2} {:>11.2}\n",
            r.method,
            r.codec,
            r.ratio,
            r.psnr,
            r.compress_s,
            r.decompress_s,
            r.compress_mb_s,
            r.decompress_mb_s
        ));
    }

    // Per-level TAC accounting: where each codec spends its bytes.
    out.push_str("\nPer-level TAC payload (bytes and ratio by codec):\n");
    out.push_str(&format!(
        "  {:<6} {:<6} {:<9} {:<10} {:>13} {:>8}\n",
        "level", "dim", "strategy", "codec", "payload B", "ratio"
    ));
    for codec in CodecId::all() {
        let cfg = bench_config(unit, codec);
        let cd = compress_dataset(&ds, &cfg, Method::Tac).expect("compress");
        if let MethodBody::Tac(levels) = &cd.body {
            for (l, cl) in levels.iter().enumerate() {
                let present = ds.levels()[l].num_present();
                if present == 0 {
                    continue;
                }
                let bytes = cl.total_bytes();
                out.push_str(&format!(
                    "  {:<6} {:<6} {:<9} {:<10} {:>13} {:>8.2}\n",
                    l,
                    cl.dim,
                    format!("{:?}", cl.strategy),
                    codec.label(),
                    bytes,
                    (present * 8) as f64 / bytes.max(1) as f64,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_method_and_codec() {
        crate::support::set_bench_overrides(32, true);
        let ds = load_dataset("Run1_Z10", 32, 3);
        let rows = measure_matrix(&ds, 2, 1);
        assert_eq!(rows.len(), 4 * CodecId::all().len());
        for r in &rows {
            assert_eq!(r.dtype, "f64");
            assert!(r.ratio > 1.0, "{}/{} ratio {}", r.method, r.codec, r.ratio);
            assert!(r.compress_mb_s > 0.0 && r.decompress_mb_s > 0.0);
            assert!(r.psnr > 20.0, "{}/{} psnr {}", r.method, r.codec, r.psnr);
        }
    }

    #[test]
    fn f32_matrix_sweeps_the_same_space() {
        crate::support::set_bench_overrides(32, true);
        let ds = load_dataset("Run1_Z10", 32, 3);
        let rows = measure_matrix_f32(&ds, 2, 1);
        assert_eq!(rows.len(), 4 * CodecId::all().len());
        for r in &rows {
            assert_eq!(r.dtype, "f32");
            assert!(r.ratio > 1.0, "{}/{} ratio {}", r.method, r.codec, r.ratio);
            assert!(r.compress_mb_s > 0.0 && r.decompress_mb_s > 0.0);
            assert!(r.psnr > 20.0, "{}/{} psnr {}", r.method, r.codec, r.psnr);
        }
    }
}
