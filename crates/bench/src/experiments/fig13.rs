//! Figure 13 — pre-processing time of OpST vs AKDTree as density grows.
//!
//! Expected shape: AKDTree roughly flat; OpST rising with density (its
//! partial-BS-update window is bounded by `maxSide`, which grows with
//! density) and crossing AKDTree around the middle of the range — the
//! measurement behind the T1 = 50% threshold.

use tac_amr::{AmrLevel, BlockGrid};
use tac_core::{plan_akdtree, plan_opst};

/// Builds a blobby occupancy level of the requested density on a
/// `dim^3` grid: a smooth threshold field keeps the geometry AMR-like.
fn level_with_density(dim: usize, density: f64, seed: u64) -> AmrLevel {
    // Low-frequency cosine mixture as a stand-in for a smooth score
    // field; threshold at the right quantile for the target density.
    let mut scores = Vec::with_capacity(dim * dim * dim);
    let s = seed as f64 * 0.7;
    for z in 0..dim {
        for y in 0..dim {
            for x in 0..dim {
                let (xf, yf, zf) = (x as f64, y as f64, z as f64);
                let v = (xf * 0.21 + s).sin()
                    + (yf * 0.17 + 0.3 * s).cos()
                    + (zf * 0.13 + 0.1 * s).sin()
                    + ((xf + yf + zf) * 0.05).cos();
                scores.push(v);
            }
        }
    }
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cut = sorted[((1.0 - density) * (sorted.len() - 1) as f64) as usize];
    let mut lvl = AmrLevel::empty(dim);
    for (i, &v) in scores.iter().enumerate() {
        if v >= cut {
            let x = i % dim;
            let y = (i / dim) % dim;
            let z = i / (dim * dim);
            lvl.set_value(x, y, z, v);
        }
    }
    lvl
}

/// Runs the timing sweep.
pub fn report() -> String {
    let quick = crate::support::quick_mode();
    let dim = if quick { 32 } else { 128 };
    let unit = 2; // many unit blocks -> measurable planner cost
    let densities: &[f64] = if quick {
        &[0.2, 0.6, 0.9]
    } else {
        &[0.1, 0.23, 0.4, 0.5, 0.58, 0.64, 0.8, 0.9, 0.99]
    };

    let mut out = String::new();
    out.push_str("Figure 13: pre-process time (ms) of OpST vs AKDTree vs density\n");
    let nb = dim / unit;
    out.push_str(&format!(
        "  grid {dim}^3, unit {unit}^3 ({} unit blocks)\n",
        nb * nb * nb
    ));
    out.push_str(&format!(
        "  {:>8} {:>12} {:>12} {:>9}\n",
        "density", "OpST (ms)", "AKD (ms)", "ratio"
    ));
    for &d in densities {
        let lvl = level_with_density(dim, d, 13);
        let grid = BlockGrid::build(&lvl, unit);
        let t0 = std::time::Instant::now();
        let opst = plan_opst(&grid);
        let opst_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let akd = plan_akdtree(&grid);
        let akd_ms = t1.elapsed().as_secs_f64() * 1e3;
        out.push_str(&format!(
            "  {:>7.0}% {:>12.2} {:>12.2} {:>9.2}  (cubes {}, leaves {})\n",
            d * 100.0,
            opst_ms,
            akd_ms,
            opst_ms / akd_ms.max(1e-9),
            opst.cubes.len(),
            akd.leaves.len()
        ));
    }
    out.push_str(
        "\n  paper shape: AKDTree flat, OpST growing ~linearly with density and\n  \
         overtaking AKDTree's cost around 50% (the T1 threshold).\n",
    );
    out
}
