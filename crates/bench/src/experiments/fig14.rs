//! Figure 14 — rate-distortion of TAC vs the 1D / zMesh / 3D baselines on
//! the four Run 1 snapshots (Z10, Z5, Z3, Z2).
//!
//! Expected shapes: TAC dominates the 1D baseline and zMesh everywhere
//! (zMesh slightly *below* 1D on tree-based data); against the 3D
//! baseline TAC wins clearly on Z10 (sparse finest level, 23%) while the
//! 3D baseline closes in — and can edge ahead at low bit-rates — as the
//! finest-level density climbs to 58/63/64%.

use crate::support::{default_scale, default_unit, load_dataset, measure};
use tac_core::{Method, TacConfig};
use tac_sz::ErrorBound;

const DATASETS: &[&str] = &["Run1_Z10", "Run1_Z5", "Run1_Z3", "Run1_Z2"];
const EBS: &[f64] = &[1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5];

/// Runs the four-panel sweep.
pub fn report() -> String {
    report_for(
        DATASETS,
        "Figure 14: rate-distortion on Run 1 (TAC vs 1D, zMesh, 3D)",
    )
}

/// Shared renderer (Figure 15 reuses it for Run 2).
pub(crate) fn report_for(datasets: &[&str], title: &str) -> String {
    let scale = default_scale();
    let unit = default_unit(scale);
    let quick = crate::support::quick_mode();
    let ebs: &[f64] = if quick { &EBS[..3] } else { EBS };

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for &name in datasets {
        let ds = load_dataset(name, scale, 14);
        out.push_str(&format!(
            "\n  {name}: finest {}^3, densities {:?}\n",
            ds.finest_dim(),
            ds.densities()
                .iter()
                .map(|d| format!("{:.4}", d))
                .collect::<Vec<_>>()
        ));
        out.push_str(&format!(
            "  {:<9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "rel eb", "TAC b/v", "TAC dB", "1D b/v", "1D dB", "zM b/v", "zM dB", "3D b/v", "3D dB"
        ));
        for &eb in ebs {
            let cfg = TacConfig {
                unit,
                error_bound: ErrorBound::Rel(eb),
                ..Default::default()
            };
            let tac = measure(&ds, &cfg, Method::Tac, eb);
            let b1d = measure(&ds, &cfg, Method::Baseline1D, eb);
            let zm = measure(&ds, &cfg, Method::ZMesh, eb);
            let b3d = measure(&ds, &cfg, Method::Baseline3D, eb);
            out.push_str(&format!(
                "  {:<9.0e} {:>8.3} {:>8.2} {:>8.3} {:>8.2} {:>8.3} {:>8.2} {:>8.3} {:>8.2}\n",
                eb,
                tac.bit_rate,
                tac.psnr,
                b1d.bit_rate,
                b1d.psnr,
                zm.bit_rate,
                zm.psnr,
                b3d.bit_rate,
                b3d.psnr
            ));
        }
    }
    out
}
