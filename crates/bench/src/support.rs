//! Shared plumbing for the experiment harnesses: dataset loading at the
//! benchmark scale, CR-matched calibration, spectrum error, timing.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use tac_amr::{to_uniform, AmrDataset, AmrLevel};
use tac_analysis::{amr_distortion, power_spectrum, relative_error};
use tac_core::{
    compress_dataset, compress_dataset_f32, decompress_dataset, decompress_dataset_f32, Method,
    TacConfig,
};
use tac_nyx::FieldKind;
use tac_sz::ErrorBound;

/// Programmatic overrides of the env knobs, for in-process tests:
/// mutating the environment from the parallel test runner races with
/// `getenv` in sibling tests. 0 means "no scale override".
static SCALE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static QUICK_OVERRIDE: AtomicBool = AtomicBool::new(false);

/// Overrides the benchmark scale and quick mode process-wide, taking
/// precedence over the `TAC_BENCH_SCALE` / `TAC_BENCH_QUICK` env vars
/// (`scale = 0` / `quick = false` fall back to the env vars). Thread-safe,
/// unlike `std::env::set_var` under the parallel test runner — but global:
/// tests sharing the binary must not assert the no-override defaults.
#[cfg(test)]
pub(crate) fn set_bench_overrides(scale: usize, quick: bool) {
    SCALE_OVERRIDE.store(scale, Ordering::Relaxed);
    QUICK_OVERRIDE.store(quick, Ordering::Relaxed);
}

/// Default down-scale factor from the paper's grid sizes (8 maps the
/// paper's 512^3 levels to 64^3 — one node instead of a cluster).
/// Override with the `TAC_BENCH_SCALE` environment variable.
pub fn default_scale() -> usize {
    let o = SCALE_OVERRIDE.load(Ordering::Relaxed);
    if o >= 1 {
        return o;
    }
    std::env::var("TAC_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &usize| s >= 1)
        .unwrap_or(8)
}

/// Whether sweeps should be trimmed for a fast pass (the
/// `TAC_BENCH_QUICK` env var, or the programmatic override).
pub fn quick_mode() -> bool {
    QUICK_OVERRIDE.load(Ordering::Relaxed) || std::env::var("TAC_BENCH_QUICK").is_ok()
}

/// Unit-block size appropriate for the benchmark scale (the paper's 16
/// on 512^3 corresponds to 16/scale, floored at 2).
pub fn default_unit(scale: usize) -> usize {
    (16 / scale).max(4).next_power_of_two()
}

/// Generates one catalog dataset at the benchmark scale.
pub fn load_dataset(name: &str, scale: usize, seed: u64) -> AmrDataset {
    tac_nyx::entry(name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
        .generate(FieldKind::BaryonDensity, scale, seed)
}

/// One compression measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Resolved/requested error bound (caller's convention).
    pub eb: f64,
    /// Compression ratio over present cells.
    pub ratio: f64,
    /// Bits per value.
    pub bit_rate: f64,
    /// PSNR (dB) over present cells.
    pub psnr: f64,
    /// Compression wall time (seconds).
    pub compress_s: f64,
    /// Decompression wall time (seconds).
    pub decompress_s: f64,
}

impl Measured {
    /// End-to-end throughput in MB/s over the original (present-cell)
    /// bytes, counting compression + decompression like the paper's
    /// Table 2.
    pub fn throughput_mb_s(&self, original_bytes: usize) -> f64 {
        original_bytes as f64 / 1e6 / (self.compress_s + self.decompress_s)
    }

    /// Compression-only throughput in MB/s over the original bytes.
    pub fn compress_mb_s(&self, original_bytes: usize) -> f64 {
        original_bytes as f64 / 1e6 / self.compress_s
    }

    /// Decompression-only throughput in MB/s over the original bytes —
    /// the number a read-heavy analysis pipeline actually feels.
    pub fn decompress_mb_s(&self, original_bytes: usize) -> f64 {
        original_bytes as f64 / 1e6 / self.decompress_s
    }
}

/// Compresses + decompresses once and measures everything.
pub fn measure(ds: &AmrDataset, cfg: &TacConfig, method: Method, eb_label: f64) -> Measured {
    let t0 = std::time::Instant::now();
    let cd = compress_dataset(ds, cfg, method).expect("compression failed");
    let compress_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let out = decompress_dataset(&cd).expect("decompression failed");
    let decompress_s = t1.elapsed().as_secs_f64();
    let stats = cd.stats();
    let d = amr_distortion(ds, &out);
    Measured {
        eb: eb_label,
        ratio: stats.ratio(),
        bit_rate: stats.bit_rate(),
        psnr: d.psnr,
        compress_s,
        decompress_s,
    }
}

/// Narrows a catalog dataset to `f32` storage (IEEE round-to-nearest
/// per value) for the single-precision legs of the benchmarks.
pub fn narrow_dataset_f32(ds: &AmrDataset) -> AmrDataset<f32> {
    let levels = ds
        .levels()
        .iter()
        .map(|l| {
            let dim = l.dim();
            let mut out = AmrLevel::<f32>::empty(dim);
            for z in 0..dim {
                for y in 0..dim {
                    for x in 0..dim {
                        if l.present(x, y, z) {
                            out.set_value(x, y, z, l.value(x, y, z) as f32);
                        }
                    }
                }
            }
            out
        })
        .collect();
    AmrDataset::new(ds.name(), levels)
}

/// Widens an `f32` dataset back to `f64` (exact) so the distortion
/// analysis — which runs in `f64` — can compare against it.
pub fn widen_dataset_f64(ds: &AmrDataset<f32>) -> AmrDataset {
    let levels = ds
        .levels()
        .iter()
        .map(|l| {
            let dim = l.dim();
            let mut out = AmrLevel::empty(dim);
            for z in 0..dim {
                for y in 0..dim {
                    for x in 0..dim {
                        if l.present(x, y, z) {
                            out.set_value(x, y, z, l.value(x, y, z) as f64);
                        }
                    }
                }
            }
            out
        })
        .collect();
    AmrDataset::new(ds.name(), levels)
}

/// [`measure`] at `f32` storage: same protocol through the
/// monomorphized single-precision pipeline. The ratio accounts original
/// bytes at 4 B/value (via the container's dtype-aware stats), and PSNR
/// is computed against the narrowed original.
pub fn measure_f32(
    ds: &AmrDataset<f32>,
    cfg: &TacConfig,
    method: Method,
    eb_label: f64,
) -> Measured {
    let t0 = std::time::Instant::now();
    let cd = compress_dataset_f32(ds, cfg, method).expect("compression failed");
    let compress_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let out = decompress_dataset_f32(&cd).expect("decompression failed");
    let decompress_s = t1.elapsed().as_secs_f64();
    let stats = cd.stats();
    let d = amr_distortion(&widen_dataset_f64(ds), &widen_dataset_f64(&out));
    Measured {
        eb: eb_label,
        ratio: stats.ratio(),
        bit_rate: stats.bit_rate(),
        psnr: d.psnr,
        compress_s,
        decompress_s,
    }
}

/// Bisects a base absolute error bound so the method lands on
/// `target_cr` (within 1%), returning `(base_eb, measurement)`.
/// `level_scales` are TAC's per-level multipliers (ignored by baselines).
pub fn calibrate_to_cr(
    ds: &AmrDataset,
    method: Method,
    level_scales: Vec<f64>,
    target_cr: f64,
    unit: usize,
) -> (f64, Measured) {
    let (mut lo, mut hi) = (2.0f64, 14.0f64);
    let mut best: Option<(f64, Measured)> = None;
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        let eb = 10f64.powf(mid);
        let cfg = TacConfig {
            unit,
            error_bound: ErrorBound::Abs(eb),
            level_eb_scale: level_scales.clone(),
            ..Default::default()
        };
        let m = measure(ds, &cfg, method, eb);
        let better = match &best {
            None => true,
            Some((_, b)) => (m.ratio - target_cr).abs() < (b.ratio - target_cr).abs(),
        };
        if better {
            best = Some((eb, m));
        }
        if (m.ratio - target_cr).abs() / target_cr < 0.01 {
            break;
        }
        if m.ratio > target_cr {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    best.expect("calibration ran")
}

/// Max relative power-spectrum error for `k < k_limit` between the
/// original dataset and a reconstruction.
pub fn spectrum_error(ds: &AmrDataset, recon: &AmrDataset, k_limit: f64) -> f64 {
    let n = ds.finest_dim();
    let a = power_spectrum(&to_uniform(ds), n);
    let b = power_spectrum(&to_uniform(recon), n);
    relative_error(&a, &b)
        .into_iter()
        .zip(&a.k)
        .filter(|(_, &k)| k < k_limit)
        .map(|(e, _)| e)
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_and_unit_defaults() {
        assert!(default_scale() >= 1);
        assert_eq!(default_unit(8), 4);
        assert_eq!(default_unit(4), 4);
        assert_eq!(default_unit(1), 16);
        assert_eq!(default_unit(32), 4);
    }

    #[test]
    fn measure_reports_consistent_numbers() {
        let ds = load_dataset("Run1_Z10", 32, 5);
        let cfg = TacConfig {
            unit: 2,
            error_bound: ErrorBound::Rel(1e-3),
            ..Default::default()
        };
        let m = measure(&ds, &cfg, Method::Tac, 1e-3);
        assert!(m.ratio > 1.0);
        assert!((m.ratio * m.bit_rate - 64.0).abs() < 1e-6);
        assert!(m.psnr > 0.0);
        assert!(m.throughput_mb_s(ds.total_present() * 8) > 0.0);
    }

    #[test]
    fn calibration_hits_target_cr() {
        // Tiny (16^3) datasets saturate around CR ~7 from fixed stream
        // overheads, so target a modest ratio.
        let ds = load_dataset("Run1_Z10", 32, 6);
        let (_, m) = calibrate_to_cr(&ds, Method::Tac, vec![], 5.0, 2);
        assert!(
            (m.ratio - 5.0).abs() / 5.0 < 0.2,
            "calibrated CR {} for target 5",
            m.ratio
        );
    }
}
