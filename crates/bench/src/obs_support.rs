//! Observability plumbing shared by the bench binaries and criterion
//! harnesses: `--obs` flag detection, recorder installation, and the
//! `TRACE_*.json` / per-stage report artifact writers.
//!
//! Compiled in every build. Without the `obs` cargo feature the helpers
//! degrade to `None`/no-ops, so call sites stay unconditional and the
//! default bench binaries carry no recording machinery.

use std::path::PathBuf;
use tac_obs::export::{chrome_trace_json, StageReport};
use tac_obs::meta::RunMeta;
use tac_obs::Snapshot;

/// Whether `--obs` was passed on the command line.
pub fn obs_requested() -> bool {
    std::env::args().any(|a| a == "--obs")
}

/// Whether profiling is live: the `obs` feature is compiled in *and*
/// `--obs` was requested at the command line.
pub fn obs_active() -> bool {
    tac_obs::enabled() && obs_requested()
}

/// Installs the global recorder when profiling is live; warns when
/// `--obs` was requested but the feature is compiled out. Returns
/// whether spans and counters will be recorded from here on.
#[cfg(feature = "obs")]
pub fn obs_install() -> bool {
    if !obs_active() {
        return false;
    }
    tac_obs::install();
    true
}

/// No-op flavour: the `obs` feature is compiled out.
#[cfg(not(feature = "obs"))]
pub fn obs_install() -> bool {
    if obs_requested() {
        eprintln!("--obs ignored: rebuild with `--features obs` to record a trace");
    }
    false
}

/// Drains the global session into a snapshot, or `None` when profiling
/// is not live. Draining between measured sections keeps each report
/// scoped to its own work.
#[cfg(feature = "obs")]
pub fn obs_take() -> Option<Snapshot> {
    obs_active().then(|| tac_obs::session().take())
}

/// No-op flavour: the `obs` feature is compiled out.
#[cfg(not(feature = "obs"))]
pub fn obs_take() -> Option<Snapshot> {
    None
}

/// Path of an artifact anchored at the workspace root, regardless of
/// the harness's working directory.
pub fn workspace_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

/// Writes `TRACE_<tag>.json` (chrome://tracing format) at the workspace
/// root and returns the rendered per-stage breakdown table.
pub fn write_trace_and_report(tag: &str, snap: &Snapshot) -> String {
    let path = workspace_path(&format!("TRACE_{tag}.json"));
    match std::fs::write(&path, chrome_trace_json(snap)) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    StageReport::from_snapshot(snap).render_text()
}

/// The one-line run-metadata object (git commit, seed, workers, cores,
/// timestamp) embedded as the `meta` header of the bench JSON artifacts.
pub fn meta_json(seed: u64, workers: usize) -> String {
    RunMeta::capture(seed, workers).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_path_lands_at_repo_root() {
        let p = workspace_path("BENCH_codec.json");
        assert!(p.ends_with("../../BENCH_codec.json"));
    }

    #[test]
    fn meta_json_has_the_header_keys() {
        let m = meta_json(14, 4);
        for key in ["git_commit", "seed", "workers", "cores", "timestamp"] {
            assert!(m.contains(&format!("\"{key}\"")), "{m}");
        }
    }

    /// Without `--obs` on the test binary's command line, nothing is
    /// live in either build flavour.
    #[test]
    fn obs_is_inert_without_the_flag() {
        assert!(!obs_active());
        assert!(obs_take().is_none());
    }
}
