//! Error-controlled linear-scaling quantization (SZ step 2).
//!
//! Each point's prediction error `d = v - pred` is mapped to an integer
//! code `round(d / (2*eb))`; reconstruction `pred + 2*eb*code` is then
//! within `eb` of the true value. Codes outside the capacity window — or
//! non-finite arithmetic — mark the point *unpredictable*: its IEEE bits
//! are stored verbatim and it reconstructs exactly.

use tac_dtype::Element;

/// Symbol reserved for unpredictable points in the code stream.
pub const UNPREDICTABLE: u32 = 0;

/// Linear-scaling quantizer with a fixed absolute error bound.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    eb: f64,
    two_eb: f64,
    /// Half the capacity; codes live in `(-radius, radius)`.
    radius: i64,
}

/// Result of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantized {
    /// Point representable as `pred + 2*eb*(symbol - radius)`.
    Code(u32),
    /// Point stored verbatim (symbol [`UNPREDICTABLE`] in the stream).
    Unpredictable,
}

impl Quantizer {
    /// Creates a quantizer for absolute bound `eb` and `capacity` bins.
    ///
    /// # Panics
    /// Panics on non-positive/non-finite `eb` or capacity < 4 (callers
    /// validate via [`crate::SzConfig::validate`]).
    pub fn new(eb: f64, capacity: usize) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "invalid error bound {eb}");
        assert!(capacity >= 4 && capacity % 2 == 0, "invalid capacity");
        Quantizer {
            eb,
            two_eb: 2.0 * eb,
            radius: (capacity / 2) as i64,
        }
    }

    /// The absolute error bound.
    #[inline]
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// Quantizes `value` against `pred`, returning the symbol and the
    /// reconstructed value the decompressor will see.
    #[inline]
    pub fn quantize(&self, value: f64, pred: f64) -> (Quantized, f64) {
        self.quantize_t::<f64>(value, pred)
    }

    /// Element-generic quantization: arithmetic runs in `f64` working
    /// precision, the reconstruction is narrowed to `T` (the value the
    /// decoder will materialize), and the bound check runs on that
    /// *narrowed* value — if `T`'s rounding breaks the bound, the point
    /// falls back to verbatim storage. Encoder and decoder therefore agree
    /// bit-exactly at every element width.
    #[inline]
    pub fn quantize_t<T: Element>(&self, value: T, pred: f64) -> (Quantized, T) {
        let v = value.to_f64();
        let diff = v - pred;
        if !diff.is_finite() {
            return (Quantized::Unpredictable, value);
        }
        let code_f = (diff / self.two_eb).round();
        // Strict interior: reserve the extremes so symbol 0 (unpredictable)
        // and the offset arithmetic never collide.
        if code_f.abs() >= (self.radius - 1) as f64 {
            return (Quantized::Unpredictable, value);
        }
        let code = code_f as i64;
        let recon = T::from_f64(pred + self.two_eb * code as f64);
        // Guard against floating-point edge cases: reconstruction may
        // violate the bound through catastrophic cancellation near huge
        // values or through narrowing to T; fall back to verbatim storage.
        if !(recon.to_f64() - v).abs().le(&self.eb) {
            return (Quantized::Unpredictable, value);
        }
        (Quantized::Code((code + self.radius) as u32), recon)
    }

    /// Reconstructs a value from a non-zero symbol and its prediction.
    #[inline]
    pub fn recover(&self, symbol: u32, pred: f64) -> f64 {
        self.recover_t::<f64>(symbol, pred)
    }

    /// Element-generic inverse of [`Quantizer::quantize_t`]: the same
    /// `f64` bin arithmetic, narrowed to `T` exactly as the encoder did.
    #[inline]
    pub fn recover_t<T: Element>(&self, symbol: u32, pred: f64) -> T {
        debug_assert_ne!(symbol, UNPREDICTABLE);
        let code = symbol as i64 - self.radius;
        T::from_f64(pred + self.two_eb * code as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_respects_error_bound() {
        let q = Quantizer::new(0.01, 65536);
        for i in 0..1000 {
            let v = (i as f64 * 0.737).sin() * 5.0;
            let pred = v + (i as f64 * 0.11).cos() * 0.3; // imperfect prediction
            let (qz, recon) = q.quantize(v, pred);
            match qz {
                Quantized::Code(sym) => {
                    assert!((recon - v).abs() <= 0.01, "bound violated: {recon} vs {v}");
                    assert_eq!(q.recover(sym, pred), recon);
                    assert_ne!(sym, UNPREDICTABLE);
                }
                Quantized::Unpredictable => assert_eq!(recon, v),
            }
        }
    }

    #[test]
    fn perfect_prediction_gives_mid_code() {
        let q = Quantizer::new(1e-3, 1024);
        let (qz, recon) = q.quantize(42.0, 42.0);
        assert_eq!(qz, Quantized::Code(512));
        assert_eq!(recon, 42.0);
    }

    #[test]
    fn far_values_are_unpredictable() {
        let q = Quantizer::new(1e-6, 256);
        let (qz, recon) = q.quantize(1000.0, 0.0);
        assert_eq!(qz, Quantized::Unpredictable);
        assert_eq!(recon, 1000.0);
    }

    #[test]
    fn nan_and_infinity_are_unpredictable() {
        let q = Quantizer::new(0.1, 1024);
        assert_eq!(q.quantize(f64::NAN, 0.0).0, Quantized::Unpredictable);
        assert_eq!(q.quantize(f64::INFINITY, 0.0).0, Quantized::Unpredictable);
        assert_eq!(q.quantize(1.0, f64::NAN).0, Quantized::Unpredictable);
    }

    #[test]
    fn recover_is_inverse_of_quantize() {
        let q = Quantizer::new(0.5, 4096);
        for code in [-100i64, -1, 0, 1, 77, 2000] {
            let pred = 10.0;
            let v = pred + code as f64 * 1.0; // exactly on bin centers
            let (qz, recon) = q.quantize(v, pred);
            if let Quantized::Code(sym) = qz {
                assert_eq!(q.recover(sym, pred), recon);
                assert!((recon - v).abs() <= 0.5);
            }
        }
    }

    #[test]
    fn symbol_zero_never_produced_for_codes() {
        // Code at the negative capacity edge must become Unpredictable,
        // never symbol 0.
        let q = Quantizer::new(1.0, 8); // radius 4, codes in (-3, 3)
        for delta in -10i32..=10 {
            let (qz, _) = q.quantize(delta as f64 * 2.0, 0.0);
            if let Quantized::Code(sym) = qz {
                assert_ne!(sym, UNPREDICTABLE);
            }
        }
    }

    #[test]
    fn f32_narrowing_that_breaks_the_bound_falls_back_to_verbatim() {
        // Near 1e8 the f32 grid spacing is 8: an f64 reconstruction that
        // satisfies the bound can land between representable f32 values and
        // round past it. The post-narrowing check must catch this.
        let q = Quantizer::new(6.0, 65536);
        let v: f32 = 99_999_992.0; // representable; next f32 up is 1e8
        let pred = v as f64 + 5.0; // code rounds to 0, recon_f64 = pred
        let (qz, recon) = q.quantize_t::<f32>(v, pred);
        // recon_f64 = 99_999_997.0 -> nearest f32 is 100_000_000.0, which is
        // 8.0 > 6.0 away from v: must store verbatim, not emit a code.
        assert_eq!(qz, Quantized::Unpredictable);
        assert_eq!(recon.to_bits(), v.to_bits());
    }

    #[test]
    fn f32_quantization_respects_bound_through_narrowing() {
        let q = Quantizer::new(1e-3, 65536);
        for i in 0..1000 {
            let v = ((i as f64 * 0.737).sin() * 5.0) as f32;
            let pred = v as f64 + (i as f64 * 0.11).cos() * 0.3;
            let (qz, recon) = q.quantize_t::<f32>(v, pred);
            match qz {
                Quantized::Code(sym) => {
                    assert!((recon as f64 - v as f64).abs() <= 1e-3);
                    let replay: f32 = q.recover_t(sym, pred);
                    assert_eq!(replay.to_bits(), recon.to_bits());
                }
                Quantized::Unpredictable => assert_eq!(recon.to_bits(), v.to_bits()),
            }
        }
    }

    #[test]
    fn huge_values_fall_back_to_verbatim() {
        // At 1e300 the bin arithmetic loses all precision; the guard must
        // catch it rather than emit an out-of-bound reconstruction.
        let q = Quantizer::new(1e-9, 65536);
        let (qz, recon) = q.quantize(1e300, 0.99e300);
        assert_eq!(qz, Quantized::Unpredictable);
        assert_eq!(recon, 1e300);
    }
}
