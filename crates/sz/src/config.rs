//! Compressor configuration: error-bound modes, quantizer capacity,
//! lossless backend toggle, and array dimensionality.

use crate::error::SzError;
use serde::{Deserialize, Serialize};
use tac_dtype::{Element, TacDtype};

/// How the user bounds the point-wise reconstruction error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ErrorBound {
    /// Point-wise absolute error bound: `|v - v'| <= eb` for every point.
    Abs(f64),
    /// Value-range relative bound: the absolute bound is
    /// `eb * (max - min)` of the input block (SZ's `REL` mode).
    Rel(f64),
}

impl ErrorBound {
    /// Resolves the bound to an absolute epsilon for the given value range.
    ///
    /// Constant inputs (zero range) resolve to a tiny positive epsilon so
    /// that quantization still succeeds; every point then predicts exactly.
    pub fn resolve(self, min: f64, max: f64) -> Result<f64, SzError> {
        self.resolve_for(min, max, TacDtype::F64)
    }

    /// Like [`ErrorBound::resolve`], but the zero-range fallback epsilon is
    /// the smallest positive *normal* of the element type actually being
    /// compressed, so the quantizer step stays representable at that
    /// precision (`f64::MIN_POSITIVE` would silently flush to zero in an
    /// `f32` pipeline).
    pub fn resolve_for(self, min: f64, max: f64, dtype: TacDtype) -> Result<f64, SzError> {
        let abs = match self {
            ErrorBound::Abs(eb) => eb,
            ErrorBound::Rel(rel) => {
                if rel <= 0.0 || !rel.is_finite() {
                    return Err(SzError::InvalidErrorBound(format!(
                        "relative bound must be positive and finite, got {rel}"
                    )));
                }
                let range = max - min;
                if range > 0.0 && range.is_finite() {
                    rel * range
                } else {
                    match dtype {
                        TacDtype::F64 => <f64 as Element>::MIN_POSITIVE,
                        TacDtype::F32 => <f32 as Element>::MIN_POSITIVE,
                    }
                }
            }
        };
        if abs <= 0.0 || !abs.is_finite() {
            return Err(SzError::InvalidErrorBound(format!(
                "resolved absolute bound must be positive and finite, got {abs}"
            )));
        }
        Ok(abs)
    }
}

/// Array shape, rank 1 through 4.
///
/// Layout is always row-major with the **first** dimension fastest: for
/// `D3(nx, ny, nz)` the element `(x, y, z)` lives at `x + nx*(y + ny*z)`.
/// Rank 4 (`D4`) is a batch of independent 3D blocks (the layout TAC's
/// OpST strategy feeds to the compressor): prediction never crosses the
/// outermost (`w`) axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dims {
    /// 1D array of the given length.
    D1(usize),
    /// 2D array `(nx, ny)`.
    D2(usize, usize),
    /// 3D array `(nx, ny, nz)`.
    D3(usize, usize, usize),
    /// Batch of `w` independent 3D blocks, `(nx, ny, nz, w)`.
    D4(usize, usize, usize, usize),
}

impl Dims {
    /// Total number of elements. Saturates on overflow (only reachable via
    /// corrupt headers; validation then rejects the implausible size).
    pub fn len(&self) -> usize {
        let mul = |a: usize, b: usize| a.saturating_mul(b);
        match *self {
            Dims::D1(a) => a,
            Dims::D2(a, b) => mul(a, b),
            Dims::D3(a, b, c) => mul(mul(a, b), c),
            Dims::D4(a, b, c, d) => mul(mul(mul(a, b), c), d),
        }
    }

    /// Whether the shape holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of axes (1-4).
    pub fn rank(&self) -> u8 {
        match self {
            Dims::D1(..) => 1,
            Dims::D2(..) => 2,
            Dims::D3(..) => 3,
            Dims::D4(..) => 4,
        }
    }

    /// Validates that no axis is zero and that `data_len` matches.
    pub fn validate(&self, data_len: usize) -> Result<(), SzError> {
        let any_zero = match *self {
            Dims::D1(a) => a == 0,
            Dims::D2(a, b) => a == 0 || b == 0,
            Dims::D3(a, b, c) => a == 0 || b == 0 || c == 0,
            Dims::D4(a, b, c, d) => a == 0 || b == 0 || c == 0 || d == 0,
        };
        if any_zero {
            return Err(SzError::ZeroDimension);
        }
        if self.len() != data_len {
            return Err(SzError::DimensionMismatch {
                data_len,
                dims_len: self.len(),
            });
        }
        Ok(())
    }
}

/// Full compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SzConfig {
    /// Error-bound mode and magnitude.
    pub error_bound: ErrorBound,
    /// Number of quantization bins (even, >= 4). Code 0 is reserved for
    /// "unpredictable"; codes `1..capacity` map to `[-radius+1, radius-1]`
    /// where `radius = capacity / 2`. SZ's default is 65536.
    pub capacity: usize,
    /// Whether to run the LZSS lossless stage over the encoded payload.
    pub lossless: bool,
    /// Whether rank-3/4 inputs may use the SZ2-style per-block regression
    /// predictor (Lorenzo remains the fallback per block). Disable for
    /// SZ-1.4-style pure-Lorenzo behaviour / ablation studies.
    pub regression: bool,
}

impl SzConfig {
    /// Configuration with an absolute error bound and default settings.
    pub fn abs(eb: f64) -> Self {
        SzConfig {
            error_bound: ErrorBound::Abs(eb),
            ..Default::default()
        }
    }

    /// Configuration with a value-range-relative bound and default settings.
    pub fn rel(eb: f64) -> Self {
        SzConfig {
            error_bound: ErrorBound::Rel(eb),
            ..Default::default()
        }
    }

    /// Disables the lossless backend (useful for ablation benchmarks).
    pub fn without_lossless(mut self) -> Self {
        self.lossless = false;
        self
    }

    /// Disables the regression predictor (pure Lorenzo, SZ-1.4 style).
    pub fn without_regression(mut self) -> Self {
        self.regression = false;
        self
    }

    /// Overrides the quantizer capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Validates capacity constraints.
    pub fn validate(&self) -> Result<(), SzError> {
        if self.capacity < 4 || self.capacity % 2 != 0 || self.capacity > (1 << 28) {
            return Err(SzError::InvalidCapacity(self.capacity));
        }
        Ok(())
    }
}

impl Default for SzConfig {
    fn default() -> Self {
        SzConfig {
            error_bound: ErrorBound::Rel(1e-4),
            capacity: 65536,
            lossless: true,
            regression: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_len_and_rank() {
        assert_eq!(Dims::D1(7).len(), 7);
        assert_eq!(Dims::D2(3, 4).len(), 12);
        assert_eq!(Dims::D3(2, 3, 4).len(), 24);
        assert_eq!(Dims::D4(2, 3, 4, 5).len(), 120);
        assert_eq!(Dims::D1(7).rank(), 1);
        assert_eq!(Dims::D4(1, 1, 1, 1).rank(), 4);
    }

    #[test]
    fn validate_rejects_mismatch_and_zero() {
        assert!(Dims::D2(3, 4).validate(12).is_ok());
        assert!(matches!(
            Dims::D2(3, 4).validate(11),
            Err(SzError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Dims::D3(0, 4, 4).validate(0),
            Err(SzError::ZeroDimension)
        ));
    }

    #[test]
    fn abs_bound_resolution() {
        assert_eq!(ErrorBound::Abs(0.5).resolve(0.0, 1.0).unwrap(), 0.5);
        assert!(ErrorBound::Abs(0.0).resolve(0.0, 1.0).is_err());
        assert!(ErrorBound::Abs(-1.0).resolve(0.0, 1.0).is_err());
        assert!(ErrorBound::Abs(f64::NAN).resolve(0.0, 1.0).is_err());
    }

    #[test]
    fn rel_bound_scales_with_range() {
        let eb = ErrorBound::Rel(1e-3).resolve(-5.0, 5.0).unwrap();
        assert!((eb - 1e-2).abs() < 1e-15);
        // Constant data: falls back to a tiny positive epsilon.
        let eb = ErrorBound::Rel(1e-3).resolve(2.0, 2.0).unwrap();
        assert!(eb > 0.0);
    }

    #[test]
    fn capacity_validation() {
        assert!(SzConfig::abs(1.0).validate().is_ok());
        assert!(SzConfig::abs(1.0).with_capacity(3).validate().is_err());
        assert!(SzConfig::abs(1.0).with_capacity(7).validate().is_err());
        assert!(SzConfig::abs(1.0).with_capacity(8).validate().is_ok());
    }
}
