//! The compression pipeline: prediction -> quantization -> Huffman ->
//! lossless backend, and its exact inverse.
//!
//! Compressor and decompressor share one traversal (`traverse`) that walks
//! the array in row-major order, computes the Lorenzo prediction from the
//! reconstructed buffer, and hands each point to a [`PointCodec`]. The
//! encoder quantizes real values; the decoder replays symbols. Both write
//! the identical reconstruction, which is what guarantees the error bound.

use crate::bitstream::{BitReader, BitWriter};
use crate::config::{Dims, SzConfig};
use crate::container::{Header, FLAG_F32, FLAG_LOSSLESS, MAGIC, VERSION};
use crate::error::SzError;
use crate::huffman::HuffmanCode;
use crate::lossless;
use crate::predictor::{lorenzo_1d, lorenzo_2d, lorenzo_3d};
use crate::quantizer::{Quantized, Quantizer, UNPREDICTABLE};
use crate::regression::RegressionContext;
use crate::wire::ByteReader;
use tac_dtype::{Element, TacDtype};

/// Per-point behaviour plugged into the shared traversal.
///
/// Generic over the element type: predictions are always `f64` working
/// precision, but the stored reconstruction is the element's native width
/// so encoder and decoder narrow identically.
trait PointCodec<T: Element> {
    /// Processes the point at flat index `idx` with prediction `pred`,
    /// returning the reconstructed value to store.
    fn process(&mut self, idx: usize, pred: f64) -> Result<T, SzError>;
}

/// Encoder-side codec: quantizes the original data.
struct Encoder<'a, T: Element> {
    data: &'a [T],
    quantizer: Quantizer,
    symbols: Vec<u32>,
    raws: Vec<T>,
}

impl<T: Element> PointCodec<T> for Encoder<'_, T> {
    #[inline]
    // tac-lint: allow(panic) -- encoder over in-memory data: the traversal only produces idx < dims.len() == data.len(), validated before entry.
    fn process(&mut self, idx: usize, pred: f64) -> Result<T, SzError> {
        let v = self.data[idx];
        let (q, recon) = self.quantizer.quantize_t(v, pred);
        match q {
            Quantized::Code(sym) => self.symbols.push(sym),
            Quantized::Unpredictable => {
                self.symbols.push(UNPREDICTABLE);
                self.raws.push(v);
            }
        }
        Ok(recon)
    }
}

/// Decoder-side codec: replays the symbol stream.
struct Decoder<'a, T: Element> {
    quantizer: Quantizer,
    symbols: &'a [u32],
    raws: &'a [T],
    next_raw: usize,
}

impl<T: Element> PointCodec<T> for Decoder<'_, T> {
    #[inline]
    fn process(&mut self, idx: usize, pred: f64) -> Result<T, SzError> {
        let sym = *self
            .symbols
            .get(idx)
            .ok_or_else(|| SzError::Corrupt("symbol stream exhausted".into()))?;
        if sym == UNPREDICTABLE {
            let v = *self
                .raws
                .get(self.next_raw)
                .ok_or_else(|| SzError::Corrupt("raw value stream exhausted".into()))?;
            self.next_raw += 1;
            Ok(v)
        } else {
            Ok(self.quantizer.recover_t(sym, pred))
        }
    }
}

/// Walks the array row-major (x fastest), predicting each point from the
/// reconstructed buffer — or from a block's regression plane when its
/// slab context says so — and delegating to the codec. `contexts` holds
/// one optional regression context per 3D slab (one for `D3`, `nw` for
/// `D4`, none for ranks 1-2).
// tac-lint: allow(panic) -- shared encode/decode walk: recon.len() == dims.len() is validated by both callers, and every index stays below it by the loop bounds.
fn traverse<T: Element, C: PointCodec<T>>(
    dims: Dims,
    recon: &mut [T],
    contexts: &[Option<RegressionContext>],
    codec: &mut C,
) -> Result<(), SzError> {
    match dims {
        Dims::D1(n) => {
            for i in 0..n {
                let pred = lorenzo_1d(recon, i);
                recon[i] = codec.process(i, pred)?;
            }
        }
        Dims::D2(nx, ny) => {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = x + nx * y;
                    let pred = lorenzo_2d(recon, nx, x, y);
                    recon[idx] = codec.process(idx, pred)?;
                }
            }
        }
        Dims::D3(nx, ny, nz) => {
            traverse_3d(
                nx,
                ny,
                nz,
                0,
                recon,
                contexts.first().and_then(|c| c.as_ref()),
                codec,
            )?;
        }
        Dims::D4(nx, ny, nz, nw) => {
            // Batched 3D: prediction never crosses the w axis.
            let block = nx * ny * nz;
            for w in 0..nw {
                let ctx = contexts.get(w).and_then(|c| c.as_ref());
                traverse_3d(nx, ny, nz, w * block, recon, ctx, codec)?;
            }
        }
    }
    Ok(())
}

// tac-lint: allow(panic, arith) -- shared encode/decode walk: base + nx*ny*nz <= recon.len() holds for every slab by the callers' dims validation, and x + nx*(y + ny*z) < nx*ny*nz by the loop bounds.
fn traverse_3d<T: Element, C: PointCodec<T>>(
    nx: usize,
    ny: usize,
    nz: usize,
    base: usize,
    recon: &mut [T],
    ctx: Option<&RegressionContext>,
    codec: &mut C,
) -> Result<(), SzError> {
    let grid = &mut recon[base..base + nx * ny * nz];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = x + nx * (y + ny * z);
                let pred = match ctx.and_then(|c| c.predict(x, y, z)) {
                    Some(p) => p,
                    None => lorenzo_3d(grid, nx, ny, x, y, z),
                };
                grid[idx] = codec.process(base + idx, pred)?;
            }
        }
    }
    Ok(())
}

/// Builds encoder-side regression contexts (one per 3D slab) when the
/// configuration enables them and the rank is 3 or 4.
// tac-lint: allow(panic) -- encoder-only: slab slices cover exactly data.len() == nx*ny*nz*nw, validated before entry.
fn build_contexts<T: Element>(
    data: &[T],
    dims: Dims,
    abs_eb: f64,
    enabled: bool,
) -> Vec<Option<RegressionContext>> {
    if !enabled {
        return Vec::new();
    }
    match dims {
        Dims::D3(nx, ny, nz) => vec![Some(RegressionContext::build(data, nx, ny, nz, abs_eb))],
        Dims::D4(nx, ny, nz, nw) => {
            let block = nx * ny * nz;
            (0..nw)
                .map(|w| {
                    Some(RegressionContext::build(
                        &data[w * block..(w + 1) * block],
                        nx,
                        ny,
                        nz,
                        abs_eb,
                    ))
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

/// Compresses `data` with the given shape and configuration.
///
/// # Errors
/// Fails on shape/config validation errors; never fails on data content
/// (NaN/Inf values are stored verbatim).
pub fn compress(data: &[f64], dims: Dims, cfg: &SzConfig) -> Result<Vec<u8>, SzError> {
    compress_with_recon_t(data, dims, cfg).map(|(bytes, _)| bytes)
}

/// Like [`compress`] but also returns the reconstruction the decompressor
/// will produce — callers computing distortion metrics (PSNR, power
/// spectra) can skip a decompression pass.
pub fn compress_with_recon(
    data: &[f64],
    dims: Dims,
    cfg: &SzConfig,
) -> Result<(Vec<u8>, Vec<f64>), SzError> {
    compress_with_recon_t(data, dims, cfg)
}

/// Element-generic [`compress`]: monomorphized per width, no per-value
/// dtype branches. The `f64` instantiation is byte-identical to the
/// historical format; `f32` streams set [`FLAG_F32`] and store verbatim
/// values at 4 bytes each.
pub fn compress_t<T: Element>(data: &[T], dims: Dims, cfg: &SzConfig) -> Result<Vec<u8>, SzError> {
    compress_with_recon_t(data, dims, cfg).map(|(bytes, _)| bytes)
}

/// Element-generic [`compress_with_recon`].
pub fn compress_with_recon_t<T: Element>(
    data: &[T],
    dims: Dims,
    cfg: &SzConfig,
) -> Result<(Vec<u8>, Vec<T>), SzError> {
    dims.validate(data.len())?;
    cfg.validate()?;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        if v.is_finite() {
            let v = v.to_f64();
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() {
        // All-NaN/Inf input: any positive bound works, everything is raw.
        min = 0.0;
        max = 0.0;
    }
    let abs_eb = cfg.error_bound.resolve_for(min, max, T::DTYPE)?;
    let quantizer = Quantizer::new(abs_eb, cfg.capacity);
    let contexts = build_contexts(data, dims, abs_eb, cfg.regression);
    if tac_obs::enabled() {
        // Predictor mix: regression vs. Lorenzo blocks, per slab.
        for ctx in contexts.iter().flatten() {
            let regression_blocks = ctx.modes.iter().filter(|&&m| m).count();
            tac_obs::add_bytes(tac_obs::Counter::SzBlocksRegression, regression_blocks);
            tac_obs::add_bytes(
                tac_obs::Counter::SzBlocksLorenzo,
                ctx.modes.len().saturating_sub(regression_blocks),
            );
        }
    }

    let mut recon = vec![T::ZERO; data.len()];
    let mut enc = Encoder {
        data,
        quantizer,
        symbols: Vec::with_capacity(data.len()),
        raws: Vec::new(),
    };
    {
        let _quantize = tac_obs::span(tac_obs::Stage::Quantize);
        traverse(dims, &mut recon, &contexts, &mut enc)?;
    }
    let Encoder { symbols, raws, .. } = enc;
    tac_obs::add_bytes(tac_obs::Counter::SzQuantMisses, raws.len());
    tac_obs::add_bytes(
        tac_obs::Counter::SzQuantHits,
        symbols.len().saturating_sub(raws.len()),
    );

    // Predictor side-section: tag + per-slab serialized contexts.
    let mut pred_section = Vec::new();
    if contexts.is_empty() {
        pred_section.push(0u8);
    } else {
        pred_section.push(1u8);
        for ctx in contexts.iter().flatten() {
            ctx.serialize(abs_eb, &mut pred_section);
        }
    }

    // Payload: raw count + raw values (element-native width) + predictor
    // section + Huffman table + bit length + bits.
    let entropy_span = tac_obs::span(tac_obs::Stage::Entropy);
    let huffman = HuffmanCode::from_symbols(&symbols);
    let mut writer = BitWriter::with_capacity(symbols.len() / 4);
    huffman.encode(&symbols, &mut writer);
    let (bits, bit_len) = writer.finish();
    drop(entropy_span);

    // tac-lint: allow(arith) -- writer-side capacity estimate over in-memory section lengths; a wrong guess only costs a reallocation.
    let mut payload = Vec::with_capacity(
        8 + raws.len() * T::WIRE_BYTES
            + pred_section.len()
            + 8
            + huffman.table_size()
            + 8
            + bits.len(),
    );
    payload.extend_from_slice(&(raws.len() as u64).to_le_bytes());
    for &r in &raws {
        r.append_le(&mut payload);
    }
    payload.extend_from_slice(&(pred_section.len() as u64).to_le_bytes());
    payload.extend_from_slice(&pred_section);
    huffman.serialize_table(&mut payload);
    payload.extend_from_slice(&bit_len.to_le_bytes());
    payload.extend_from_slice(&bits);

    let mut flags = 0u8;
    if T::DTYPE == TacDtype::F32 {
        flags |= FLAG_F32;
    }
    let body = if cfg.lossless {
        let packed = {
            let _lossless = tac_obs::span(tac_obs::Stage::Lossless);
            lossless::compress(&payload)
        };
        if packed.len() < payload.len() {
            flags |= FLAG_LOSSLESS;
            packed
        } else {
            payload
        }
    } else {
        payload
    };

    // tac-lint: allow(arith) -- cfg.validate() bounds capacity to 1 << 28, well inside u32.
    let header = Header {
        flags,
        dims,
        abs_eb,
        capacity: cfg.capacity as u32,
    };
    // tac-lint: allow(arith) -- writer-side capacity estimate over in-memory lengths.
    let mut out = Vec::with_capacity(header.encoded_len() + body.len());
    header.encode(&mut out);
    out.extend_from_slice(&body);
    Ok((out, recon))
}

/// Decompresses a stream produced by [`compress`], returning the data and
/// its shape.
///
/// Rejects `f32` streams with [`SzError::UnsupportedFormat`]; sniff with
/// [`stream_dtype`] and call [`decompress_t::<f32>`] for those.
pub fn decompress(bytes: &[u8]) -> Result<(Vec<f64>, Dims), SzError> {
    decompress_t::<f64>(bytes)
}

/// Element-generic [`decompress`]: the stream's dtype flag must match `T`.
pub fn decompress_t<T: Element>(bytes: &[u8]) -> Result<(Vec<T>, Dims), SzError> {
    let (header, consumed) = Header::decode(bytes)?;
    if header.dtype() != T::DTYPE {
        return Err(SzError::UnsupportedFormat(format!(
            "stream holds {} elements, caller expected {}",
            header.dtype(),
            T::DTYPE
        )));
    }
    let body = bytes
        .get(consumed..)
        .ok_or_else(|| SzError::Corrupt("stream truncated after header".into()))?;
    let payload_owned;
    let payload: &[u8] = if header.flags & FLAG_LOSSLESS != 0 {
        payload_owned = {
            let _lossless = tac_obs::span(tac_obs::Stage::Lossless);
            lossless::decompress(body)?
        };
        &payload_owned
    } else {
        body
    };

    let n = header.dims.len();
    let mut r = ByteReader::new(payload);

    let n_raw = r.get_u64()? as usize;
    // Both bounds matter: `n` caps the semantic count, the payload length
    // caps the up-front allocation (a crafted count must not reserve
    // gigabytes before the reads start failing).
    if n_raw > n || n_raw.saturating_mul(T::WIRE_BYTES) > r.remaining() {
        return Err(SzError::Corrupt(format!(
            "{n_raw} raw values for {n} points in a {}-byte payload",
            payload.len()
        )));
    }
    let mut raws = Vec::with_capacity(n_raw);
    for _ in 0..n_raw {
        let chunk = r.get_bytes(T::WIRE_BYTES)?;
        let v = T::read_le(chunk).ok_or_else(|| SzError::Corrupt("raw value truncated".into()))?;
        raws.push(v);
    }

    // Predictor side-section.
    let pred_len = r.get_u64()? as usize;
    let pred_section = r.get_bytes(pred_len)?;
    let pred_tag = pred_section.first().copied();
    let contexts: Vec<Option<RegressionContext>> = match pred_tag {
        None => return Err(SzError::Corrupt("missing predictor section".into())),
        Some(0) => Vec::new(),
        Some(1) => {
            let slab_dims = match header.dims {
                Dims::D3(nx, ny, nz) => Some((nx, ny, nz, 1usize)),
                Dims::D4(nx, ny, nz, nw) => Some((nx, ny, nz, nw)),
                _ => None,
            };
            let (nx, ny, nz, nw) = slab_dims
                .ok_or_else(|| SzError::Corrupt("regression on rank < 3 stream".into()))?;
            // Every serialized context occupies at least one byte, so a
            // crafted D4 header whose batch axis dwarfs the predictor
            // section must fail here — not in a `with_capacity(nw)` that
            // tries to reserve hundreds of gigabytes.
            if nw > pred_section.len() {
                return Err(SzError::Corrupt(format!(
                    "{nw} regression slabs cannot fit a {}-byte predictor section",
                    pred_section.len()
                )));
            }
            let mut off = 1usize;
            let mut ctxs = Vec::with_capacity(nw);
            for _ in 0..nw {
                let section = pred_section
                    .get(off..)
                    .ok_or_else(|| SzError::Corrupt("predictor section truncated".into()))?;
                let (ctx, used) =
                    RegressionContext::deserialize(section, nx, ny, nz, header.abs_eb)?;
                off = off
                    .checked_add(used)
                    .ok_or_else(|| SzError::Corrupt("predictor cursor overflow".into()))?;
                ctxs.push(Some(ctx));
            }
            if off != pred_section.len() {
                return Err(SzError::Corrupt(
                    "predictor section has trailing bytes".into(),
                ));
            }
            ctxs
        }
        Some(tag) => {
            return Err(SzError::Corrupt(format!("unknown predictor tag {tag}")));
        }
    };

    let entropy_span = tac_obs::span(tac_obs::Stage::Entropy);
    let (huffman, table_len) = HuffmanCode::deserialize_table(r.rest())?;
    r.skip(table_len)?;
    let bit_len = r.get_u64()?;
    // Every Huffman codeword is at least one bit, so `n` symbols need at
    // least `n` bits. Checking before decoding keeps a crafted header's
    // declared point count from driving a huge symbol-buffer allocation
    // backed by a tiny bit stream.
    if (n as u64) > bit_len {
        return Err(SzError::Corrupt(format!(
            "{n} points cannot decode from a {bit_len}-bit stream"
        )));
    }
    let mut reader = BitReader::new(r.rest(), bit_len)?;
    let symbols = huffman.decode(&mut reader, n)?;
    drop(entropy_span);

    let quantizer = Quantizer::new(header.abs_eb, header.capacity as usize);
    let mut recon = vec![T::ZERO; n];
    let mut dec = Decoder {
        quantizer,
        symbols: &symbols,
        raws: &raws,
        next_raw: 0,
    };
    {
        let _quantize = tac_obs::span(tac_obs::Stage::Quantize);
        traverse(header.dims, &mut recon, &contexts, &mut dec)?;
    }
    if dec.next_raw != raws.len() {
        return Err(SzError::Corrupt(format!(
            "{} raw values unused",
            raws.len() - dec.next_raw
        )));
    }
    Ok((recon, header.dims))
}

/// The stream magic every TSZ1 stream starts with — exposed so the
/// codec registry can order its sniff probes by magic length.
pub fn stream_magic() -> &'static [u8] {
    &MAGIC
}

/// Sanity check available to callers: magic-number sniffing.
pub fn looks_like_stream(bytes: &[u8]) -> bool {
    bytes.len() > 5 && bytes.get(..4) == Some(MAGIC.as_slice()) && bytes.get(4) == Some(&VERSION)
}

/// Sniffs the element type of a stream from its flag byte without decoding
/// the payload. Returns `None` when the bytes are not a TSZ1 stream.
pub fn stream_dtype(bytes: &[u8]) -> Option<TacDtype> {
    if !looks_like_stream(bytes) {
        return None;
    }
    let flags = *bytes.get(5)?;
    Some(if flags & FLAG_F32 != 0 {
        TacDtype::F32
    } else {
        TacDtype::F64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_3d(n: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(n * n * n);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let (xf, yf, zf) = (x as f64, y as f64, z as f64);
                    v.push((xf * 0.2).sin() * (yf * 0.15).cos() + (zf * 0.1).sin() * 2.0);
                }
            }
        }
        v
    }

    fn check_bound(orig: &[f64], recon: &[f64], eb: f64) {
        for (i, (&a, &b)) in orig.iter().zip(recon).enumerate() {
            if a.is_finite() {
                assert!((a - b).abs() <= eb * (1.0 + 1e-12), "point {i}: {a} vs {b}");
            } else {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "non-finite point {i} must be exact"
                );
            }
        }
    }

    #[test]
    fn roundtrip_3d_abs_bound() {
        let n = 16;
        let data = smooth_3d(n);
        let cfg = SzConfig::abs(1e-3);
        let bytes = compress(&data, Dims::D3(n, n, n), &cfg).unwrap();
        let (out, dims) = decompress(&bytes).unwrap();
        assert_eq!(dims, Dims::D3(n, n, n));
        check_bound(&data, &out, 1e-3);
        assert!(
            bytes.len() < data.len() * 8 / 4,
            "smooth data should compress 4x+"
        );
    }

    #[test]
    fn roundtrip_1d_and_2d() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.01).sin()).collect();
        let cfg = SzConfig::abs(1e-4);
        let bytes = compress(&data, Dims::D1(500), &cfg).unwrap();
        let (out, _) = decompress(&bytes).unwrap();
        check_bound(&data, &out, 1e-4);

        let bytes = compress(&data, Dims::D2(25, 20), &cfg).unwrap();
        let (out, dims) = decompress(&bytes).unwrap();
        assert_eq!(dims, Dims::D2(25, 20));
        check_bound(&data, &out, 1e-4);
    }

    #[test]
    fn roundtrip_4d_batched() {
        let n = 8;
        let blocks = 5;
        let mut data = Vec::new();
        for w in 0..blocks {
            for i in 0..n * n * n {
                data.push((i as f64 * 0.01 + w as f64).cos());
            }
        }
        let cfg = SzConfig::abs(1e-5);
        let bytes = compress(&data, Dims::D4(n, n, n, blocks), &cfg).unwrap();
        let (out, dims) = decompress(&bytes).unwrap();
        assert_eq!(dims, Dims::D4(n, n, n, blocks));
        check_bound(&data, &out, 1e-5);
    }

    #[test]
    fn relative_bound_resolves_against_range() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect(); // range 999
        let cfg = SzConfig::rel(1e-3);
        let bytes = compress(&data, Dims::D1(1000), &cfg).unwrap();
        let (out, _) = decompress(&bytes).unwrap();
        check_bound(&data, &out, 0.999);
    }

    #[test]
    fn recon_matches_decompressed_exactly() {
        let n = 12;
        let data = smooth_3d(n);
        let cfg = SzConfig::abs(1e-2);
        let (bytes, recon) = compress_with_recon(&data, Dims::D3(n, n, n), &cfg).unwrap();
        let (out, _) = decompress(&bytes).unwrap();
        for (a, b) in recon.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn handles_nan_and_infinity() {
        let mut data = smooth_3d(8);
        data[3] = f64::NAN;
        data[100] = f64::INFINITY;
        data[200] = f64::NEG_INFINITY;
        let cfg = SzConfig::abs(1e-3);
        let bytes = compress(&data, Dims::D3(8, 8, 8), &cfg).unwrap();
        let (out, _) = decompress(&bytes).unwrap();
        check_bound(&data, &out, 1e-3);
        assert!(out[3].is_nan());
        assert_eq!(out[100], f64::INFINITY);
        assert_eq!(out[200], f64::NEG_INFINITY);
    }

    #[test]
    fn constant_field_compresses_tiny() {
        let data = vec![7.25f64; 32 * 32 * 32];
        let cfg = SzConfig::rel(1e-4);
        let bytes = compress(&data, Dims::D3(32, 32, 32), &cfg).unwrap();
        let (out, _) = decompress(&bytes).unwrap();
        assert_eq!(out, data);
        assert!(
            bytes.len() < 600,
            "constant field took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn random_data_still_respects_bound() {
        // Worst case for prediction: white noise.
        let data: Vec<f64> = (0..4096u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
            })
            .collect();
        let cfg = SzConfig::abs(0.5);
        let bytes = compress(&data, Dims::D3(16, 16, 16), &cfg).unwrap();
        let (out, _) = decompress(&bytes).unwrap();
        check_bound(&data, &out, 0.5);
    }

    #[test]
    fn lossless_flag_reduces_or_preserves_size() {
        let n = 16;
        let data = smooth_3d(n);
        let with = compress(&data, Dims::D3(n, n, n), &SzConfig::abs(1e-3)).unwrap();
        let without = compress(
            &data,
            Dims::D3(n, n, n),
            &SzConfig::abs(1e-3).without_lossless(),
        )
        .unwrap();
        assert!(with.len() <= without.len() + 16);
        let (a, _) = decompress(&with).unwrap();
        let (b, _) = decompress(&without).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let data = vec![0.0; 10];
        assert!(matches!(
            compress(&data, Dims::D2(3, 4), &SzConfig::abs(1.0)),
            Err(SzError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_stream_is_rejected_not_panicking() {
        let data = smooth_3d(8);
        let mut bytes = compress(&data, Dims::D3(8, 8, 8), &SzConfig::abs(1e-3)).unwrap();
        // Flip bytes throughout the stream; decompression must error or
        // produce output, never panic.
        for i in (0..bytes.len()).step_by(7) {
            bytes[i] ^= 0xFF;
            let _ = decompress(&bytes);
            bytes[i] ^= 0xFF;
        }
        // Truncations likewise.
        for cut in [0, 1, 5, 17, bytes.len() / 2] {
            assert!(decompress(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn stream_sniffing() {
        let data = vec![1.0; 8];
        let bytes = compress(&data, Dims::D1(8), &SzConfig::abs(1.0)).unwrap();
        assert!(looks_like_stream(&bytes));
        assert!(!looks_like_stream(b"not a stream"));
    }

    #[test]
    fn tiny_inputs() {
        for n in 1..=4usize {
            let data: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
            let bytes = compress(&data, Dims::D1(n), &SzConfig::abs(0.1)).unwrap();
            let (out, _) = decompress(&bytes).unwrap();
            check_bound(&data, &out, 0.1);
        }
    }

    #[test]
    fn generic_f64_path_is_byte_identical_to_legacy() {
        // The monomorphized f64 pipeline must produce the exact bytes the
        // pre-dtype compressor did: golden fixtures depend on it.
        let n = 12;
        let data = smooth_3d(n);
        let cfg = SzConfig::abs(1e-3);
        let a = compress(&data, Dims::D3(n, n, n), &cfg).unwrap();
        let b = compress_t::<f64>(&data, Dims::D3(n, n, n), &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(stream_dtype(&a), Some(TacDtype::F64));
    }

    #[test]
    fn roundtrip_f32_3d_abs_bound() {
        let n = 16;
        let data: Vec<f32> = smooth_3d(n).iter().map(|&v| v as f32).collect();
        let cfg = SzConfig::abs(1e-3);
        let bytes = compress_t::<f32>(&data, Dims::D3(n, n, n), &cfg).unwrap();
        assert_eq!(stream_dtype(&bytes), Some(TacDtype::F32));
        let (out, dims) = decompress_t::<f32>(&bytes).unwrap();
        assert_eq!(dims, Dims::D3(n, n, n));
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            assert!(
                (a as f64 - b as f64).abs() <= 1e-3 * (1.0 + 1e-6),
                "point {i}: {a} vs {b}"
            );
        }
        // f32 verbatim points cost 4 bytes, so the stream should beat the
        // equivalent f64 stream on raw-heavy inputs; here just sanity-size.
        assert!(bytes.len() < data.len() * 4);
    }

    #[test]
    fn f32_recon_matches_decompressed_exactly() {
        let n = 10;
        let data: Vec<f32> = smooth_3d(n).iter().map(|&v| v as f32).collect();
        let cfg = SzConfig::rel(1e-4);
        let (bytes, recon) = compress_with_recon_t::<f32>(&data, Dims::D3(n, n, n), &cfg).unwrap();
        let (out, _) = decompress_t::<f32>(&bytes).unwrap();
        for (a, b) in recon.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_nonfinite_values_roundtrip_bit_exactly() {
        let mut data: Vec<f32> = smooth_3d(8).iter().map(|&v| v as f32).collect();
        data[3] = f32::NAN;
        data[100] = f32::INFINITY;
        data[200] = f32::NEG_INFINITY;
        data[301] = -0.0;
        let bytes = compress_t::<f32>(&data, Dims::D3(8, 8, 8), &SzConfig::abs(1e-3)).unwrap();
        let (out, _) = decompress_t::<f32>(&bytes).unwrap();
        assert!(out[3].is_nan());
        assert_eq!(out[100], f32::INFINITY);
        assert_eq!(out[200], f32::NEG_INFINITY);
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            if a.is_finite() {
                assert!(
                    (a as f64 - b as f64).abs() <= 1e-3 * (1.0 + 1e-6),
                    "point {i}"
                );
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "non-finite point {i}");
            }
        }
    }

    #[test]
    fn dtype_mismatch_is_a_typed_error() {
        let data64 = vec![1.0f64; 32];
        let data32 = vec![1.0f32; 32];
        let cfg = SzConfig::abs(0.1);
        let b64 = compress_t::<f64>(&data64, Dims::D1(32), &cfg).unwrap();
        let b32 = compress_t::<f32>(&data32, Dims::D1(32), &cfg).unwrap();
        assert!(matches!(
            decompress_t::<f32>(&b64),
            Err(SzError::UnsupportedFormat(_))
        ));
        assert!(matches!(
            decompress_t::<f64>(&b32),
            Err(SzError::UnsupportedFormat(_))
        ));
        // The plain f64 entry point reports the same typed error.
        assert!(matches!(
            decompress(&b32),
            Err(SzError::UnsupportedFormat(_))
        ));
    }

    #[test]
    fn f32_stream_is_smaller_than_f64_on_noisy_data() {
        // White noise stores mostly verbatim values, so element width
        // dominates: the f32 stream must be markedly smaller.
        let noise64: Vec<f64> = (0..4096u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
            })
            .collect();
        let noise32: Vec<f32> = noise64.iter().map(|&v| v as f32).collect();
        let cfg = SzConfig::abs(1e-9);
        let b64 = compress_t::<f64>(&noise64, Dims::D3(16, 16, 16), &cfg).unwrap();
        let b32 = compress_t::<f32>(&noise32, Dims::D3(16, 16, 16), &cfg).unwrap();
        assert!(
            (b32.len() as f64) < b64.len() as f64 * 0.75,
            "f32 {} vs f64 {}",
            b32.len(),
            b64.len()
        );
        let (out, _) = decompress_t::<f32>(&b32).unwrap();
        for (&a, &b) in noise32.iter().zip(&out) {
            assert!((a as f64 - b as f64).abs() <= 1e-9);
        }
    }
}
