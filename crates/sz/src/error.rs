//! Error type for compression and decompression failures.

use std::fmt;

/// Errors returned by the compressor / decompressor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzError {
    /// The input slice length does not match the product of the dimensions.
    DimensionMismatch {
        /// Length of the data slice.
        data_len: usize,
        /// Product of the declared dimensions.
        dims_len: usize,
    },
    /// The error bound is zero, negative, NaN, or infinite.
    InvalidErrorBound(String),
    /// The quantizer capacity is invalid (must be an even value >= 4).
    InvalidCapacity(usize),
    /// A dimension is zero.
    ZeroDimension,
    /// The compressed stream is truncated or malformed.
    Corrupt(String),
    /// The compressed stream has an unsupported version or magic number.
    UnsupportedFormat(String),
}

impl fmt::Display for SzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SzError::DimensionMismatch { data_len, dims_len } => write!(
                f,
                "data length {data_len} does not match dimension product {dims_len}"
            ),
            SzError::InvalidErrorBound(msg) => write!(f, "invalid error bound: {msg}"),
            SzError::InvalidCapacity(c) => {
                write!(f, "invalid quantizer capacity {c} (must be even and >= 4)")
            }
            SzError::ZeroDimension => write!(f, "dimensions must all be non-zero"),
            SzError::Corrupt(msg) => write!(f, "corrupt compressed stream: {msg}"),
            SzError::UnsupportedFormat(msg) => write!(f, "unsupported format: {msg}"),
        }
    }
}

impl std::error::Error for SzError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SzError::DimensionMismatch {
            data_len: 10,
            dims_len: 12,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("12"));
        assert!(SzError::ZeroDimension.to_string().contains("non-zero"));
        assert!(SzError::InvalidCapacity(3).to_string().contains('3'));
    }
}
