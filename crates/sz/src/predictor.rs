//! Lorenzo prediction (SZ step 1).
//!
//! The Lorenzo predictor estimates a point from its already-reconstructed
//! neighbours in the negative direction of each axis. Out-of-range
//! neighbours contribute zero, which degrades the first row/column/slab to
//! lower-order prediction — exactly SZ's behaviour, and the reason TAC
//! cares so much about block boundaries (boundary points have fewer real
//! neighbours, so they predict poorly).
//!
//! All predictions read from the *reconstructed* buffer, never the raw
//! input: compressor and decompressor must derive identical predictions or
//! the error bound breaks.
//!
//! Predictors are generic over the element type: neighbours are widened to
//! `f64` working precision (exact for both widths), so the prediction a
//! decoder derives from its `T`-typed reconstruction buffer is bit-equal
//! to the encoder's.

use tac_dtype::Element;

/// 1D Lorenzo: previous value.
#[inline]
pub fn lorenzo_1d<T: Element>(recon: &[T], i: usize) -> f64 {
    if i >= 1 {
        recon[i - 1].to_f64()
    } else {
        0.0
    }
}

/// 2D Lorenzo on an `(nx, ny)` row-major grid (x fastest):
/// `f(x-1,y) + f(x,y-1) - f(x-1,y-1)`.
#[inline]
pub fn lorenzo_2d<T: Element>(recon: &[T], nx: usize, x: usize, y: usize) -> f64 {
    let at = |dx: usize, dy: usize| -> f64 {
        // dx/dy are offsets of 1 meaning "minus one"; guarded by callers.
        recon[(x - dx) + nx * (y - dy)].to_f64()
    };
    match (x >= 1, y >= 1) {
        (true, true) => at(1, 0) + at(0, 1) - at(1, 1),
        (true, false) => at(1, 0),
        (false, true) => at(0, 1),
        (false, false) => 0.0,
    }
}

/// 3D Lorenzo on an `(nx, ny, nz)` row-major grid (x fastest):
/// the inclusion–exclusion sum over the 7 lower-corner neighbours.
#[inline]
pub fn lorenzo_3d<T: Element>(
    recon: &[T],
    nx: usize,
    ny: usize,
    x: usize,
    y: usize,
    z: usize,
) -> f64 {
    let at = |xx: usize, yy: usize, zz: usize| recon[xx + nx * (yy + ny * zz)].to_f64();
    match (x >= 1, y >= 1, z >= 1) {
        (true, true, true) => {
            at(x - 1, y, z) + at(x, y - 1, z) + at(x, y, z - 1)
                - at(x - 1, y - 1, z)
                - at(x - 1, y, z - 1)
                - at(x, y - 1, z - 1)
                + at(x - 1, y - 1, z - 1)
        }
        (true, true, false) => at(x - 1, y, z) + at(x, y - 1, z) - at(x - 1, y - 1, z),
        (true, false, true) => at(x - 1, y, z) + at(x, y, z - 1) - at(x - 1, y, z - 1),
        (false, true, true) => at(x, y - 1, z) + at(x, y, z - 1) - at(x, y - 1, z - 1),
        (true, false, false) => at(x - 1, y, z),
        (false, true, false) => at(x, y - 1, z),
        (false, false, true) => at(x, y, z - 1),
        (false, false, false) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorenzo_1d_uses_previous() {
        let recon = [1.0, 2.0, 3.0];
        assert_eq!(lorenzo_1d(&recon, 0), 0.0);
        assert_eq!(lorenzo_1d(&recon, 1), 1.0);
        assert_eq!(lorenzo_1d(&recon, 2), 2.0);
    }

    #[test]
    fn lorenzo_2d_exact_on_bilinear_fields() {
        // f(x,y) = a + b x + c y is reproduced exactly by 2D Lorenzo for
        // interior points.
        let (nx, ny) = (6, 5);
        let f = |x: usize, y: usize| 2.0 + 3.0 * x as f64 - 1.5 * y as f64;
        let mut grid = vec![0.0; nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                grid[x + nx * y] = f(x, y);
            }
        }
        for y in 1..ny {
            for x in 1..nx {
                let pred = lorenzo_2d(&grid, nx, x, y);
                assert!((pred - f(x, y)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lorenzo_2d_boundary_degrades_to_1d() {
        let (nx, _ny) = (4, 3);
        let grid: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert_eq!(lorenzo_2d(&grid, nx, 0, 0), 0.0);
        assert_eq!(lorenzo_2d(&grid, nx, 2, 0), grid[1]);
        assert_eq!(lorenzo_2d(&grid, nx, 0, 2), grid[nx]);
    }

    #[test]
    fn lorenzo_3d_exact_on_trilinear_fields() {
        // Exact for f = a + bx + cy + dz + exy + fxz + gyz (degree <= 1 in
        // each variable except the xyz term).
        let n = 5;
        let f = |x: usize, y: usize, z: usize| {
            1.0 + 2.0 * x as f64 - 3.0 * y as f64 + 0.5 * z as f64 + 0.25 * (x * y) as f64
                - 0.125 * (x * z) as f64
                + 0.0625 * (y * z) as f64
        };
        let mut grid = vec![0.0; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    grid[x + n * (y + n * z)] = f(x, y, z);
                }
            }
        }
        for z in 1..n {
            for y in 1..n {
                for x in 1..n {
                    let pred = lorenzo_3d(&grid, n, n, x, y, z);
                    assert!(
                        (pred - f(x, y, z)).abs() < 1e-10,
                        "at ({x},{y},{z}): {pred} vs {}",
                        f(x, y, z)
                    );
                }
            }
        }
    }

    #[test]
    fn lorenzo_3d_face_cases_degrade_to_2d() {
        let n = 4;
        let grid: Vec<f64> = (0..n * n * n).map(|i| (i as f64).sqrt()).collect();
        // z = 0 face behaves like 2D Lorenzo in the xy-plane.
        for y in 1..n {
            for x in 1..n {
                let pred3 = lorenzo_3d(&grid, n, n, x, y, 0);
                let pred2 = lorenzo_2d(&grid[..n * n], n, x, y);
                assert_eq!(pred3, pred2);
            }
        }
        // Origin has no neighbours at all.
        assert_eq!(lorenzo_3d(&grid, n, n, 0, 0, 0), 0.0);
    }
}
