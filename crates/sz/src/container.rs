//! On-disk container format for a single compressed array.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  [u8; 4] = "TSZ1"
//! version u8    = 1
//! flags   u8      bit 0: payload is LZSS-compressed
//!                 bit 1: elements are f32 (absent: f64)
//! rank    u8      1..=4
//! dims    rank x u64
//! abs_eb  f64     resolved absolute error bound
//! capacity u32    quantizer bins
//! payload ...     (see compress.rs)
//! ```

use crate::config::Dims;
use crate::error::SzError;
use crate::wire::{ByteReader, ByteWriter};
use tac_dtype::TacDtype;

/// Stream magic number.
pub const MAGIC: [u8; 4] = *b"TSZ1";
/// Current format version.
pub const VERSION: u8 = 1;
/// Flag bit: payload passed through the LZSS stage.
pub const FLAG_LOSSLESS: u8 = 0b0000_0001;
/// Flag bit: elements are `f32` (unset: `f64`, the historical default, so
/// every pre-dtype stream decodes unchanged).
pub const FLAG_F32: u8 = 0b0000_0010;

/// Decoded stream header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Header {
    /// Flag bits (see `FLAG_*`).
    pub flags: u8,
    /// Array shape.
    pub dims: Dims,
    /// Resolved absolute error bound used by the quantizer.
    pub abs_eb: f64,
    /// Quantizer capacity.
    pub capacity: u32,
}

impl Header {
    /// Element type of the stream, derived from the flag bits.
    pub fn dtype(&self) -> TacDtype {
        if self.flags & FLAG_F32 != 0 {
            TacDtype::F32
        } else {
            TacDtype::F64
        }
    }

    /// Serialized size in bytes.
    // tac-lint: allow(arith) -- writer-side size accounting: rank() <= 3, so the sum stays tiny.
    pub fn encoded_len(&self) -> usize {
        4 + 1 + 1 + 1 + self.dims.rank() as usize * 8 + 8 + 4
    }

    /// Appends the encoded header to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u8(VERSION);
        w.put_u8(self.flags);
        w.put_u8(self.dims.rank());
        match self.dims {
            Dims::D1(a) => w.put_u64(a as u64),
            Dims::D2(a, b) => {
                w.put_u64(a as u64);
                w.put_u64(b as u64);
            }
            Dims::D3(a, b, c) => {
                w.put_u64(a as u64);
                w.put_u64(b as u64);
                w.put_u64(c as u64);
            }
            Dims::D4(a, b, c, d) => {
                w.put_u64(a as u64);
                w.put_u64(b as u64);
                w.put_u64(c as u64);
                w.put_u64(d as u64);
            }
        }
        w.put_f64(self.abs_eb);
        w.put_u32(self.capacity);
        out.extend_from_slice(&w.into_bytes());
    }

    /// Decodes a header, returning it and the bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), SzError> {
        let mut r = ByteReader::new(bytes);
        let magic = r
            .get_bytes(4)
            .map_err(|_| SzError::Corrupt("stream shorter than header".into()))?;
        if magic != MAGIC {
            return Err(SzError::UnsupportedFormat(format!(
                "bad magic {magic:02x?}"
            )));
        }
        let version = r
            .get_u8()
            .map_err(|_| SzError::Corrupt("stream shorter than header".into()))?;
        if version != VERSION {
            return Err(SzError::UnsupportedFormat(format!(
                "version {version} (expected {VERSION})"
            )));
        }
        let header_err = |_| SzError::Corrupt("header truncated".into());
        let flags = r.get_u8().map_err(header_err)?;
        let rank = r.get_u8().map_err(header_err)?;
        if !(1..=4).contains(&rank) {
            return Err(SzError::Corrupt(format!("invalid rank {rank}")));
        }
        fn dim(r: &mut ByteReader<'_>) -> Result<usize, SzError> {
            r.get_u64()
                .map(|v| v as usize)
                .map_err(|_| SzError::Corrupt("header truncated".into()))
        }
        let dims = match rank {
            1 => Dims::D1(dim(&mut r)?),
            2 => Dims::D2(dim(&mut r)?, dim(&mut r)?),
            3 => Dims::D3(dim(&mut r)?, dim(&mut r)?, dim(&mut r)?),
            _ => Dims::D4(dim(&mut r)?, dim(&mut r)?, dim(&mut r)?, dim(&mut r)?),
        };
        if dims.is_empty() {
            return Err(SzError::Corrupt("zero-sized dimensions".into()));
        }
        // Reject absurd sizes before the decompressor allocates (declared
        // dims drive a vec![0.0; n] allocation).
        if dims.len() > (1usize << 40) {
            return Err(SzError::Corrupt(format!(
                "declared element count {} is implausible",
                dims.len()
            )));
        }
        let abs_eb = r.get_f64().map_err(header_err)?;
        let capacity = r.get_u32().map_err(header_err)?;
        if abs_eb <= 0.0 || !abs_eb.is_finite() {
            return Err(SzError::Corrupt(format!("invalid stored eb {abs_eb}")));
        }
        if capacity < 4 || capacity % 2 != 0 {
            return Err(SzError::Corrupt(format!(
                "invalid stored capacity {capacity}"
            )));
        }
        Ok((
            Header {
                flags,
                dims,
                abs_eb,
                capacity,
            },
            r.position(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_all_ranks() {
        for dims in [
            Dims::D1(100),
            Dims::D2(10, 20),
            Dims::D3(4, 5, 6),
            Dims::D4(2, 3, 4, 5),
        ] {
            let h = Header {
                flags: FLAG_LOSSLESS,
                dims,
                abs_eb: 1.5e-4,
                capacity: 65536,
            };
            let mut buf = Vec::new();
            h.encode(&mut buf);
            assert_eq!(buf.len(), h.encoded_len());
            let (h2, consumed) = Header::decode(&buf).unwrap();
            assert_eq!(consumed, buf.len());
            assert_eq!(h2, h);
        }
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let h = Header {
            flags: 0,
            dims: Dims::D1(10),
            abs_eb: 1.0,
            capacity: 1024,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            Header::decode(&bad),
            Err(SzError::UnsupportedFormat(_))
        ));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            Header::decode(&bad),
            Err(SzError::UnsupportedFormat(_))
        ));
    }

    #[test]
    fn decode_rejects_invalid_fields() {
        let h = Header {
            flags: 0,
            dims: Dims::D1(10),
            abs_eb: 1.0,
            capacity: 1024,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        // rank byte
        let mut bad = buf.clone();
        bad[6] = 9;
        assert!(Header::decode(&bad).is_err());
        // truncation
        assert!(Header::decode(&buf[..10]).is_err());
        // zero dims
        let zero = Header {
            dims: Dims::D1(0),
            ..h
        };
        let mut buf0 = Vec::new();
        zero.encode(&mut buf0);
        assert!(Header::decode(&buf0).is_err());
    }
}
