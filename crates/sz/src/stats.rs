//! Compression accounting: ratio, bit-rate, and simple distortion summary.

use serde::{Deserialize, Serialize};
use tac_dtype::TacDtype;

/// Size accounting for one compression run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Bytes of the original array (`8 * element count` for `f64`).
    pub original_bytes: usize,
    /// Bytes of the compressed stream (including all metadata).
    pub compressed_bytes: usize,
    /// Number of scalar elements.
    pub elements: usize,
}

impl CompressionStats {
    /// Builds stats from element count and compressed size (f64 elements).
    pub fn new(elements: usize, compressed_bytes: usize) -> Self {
        Self::new_for(elements, compressed_bytes, TacDtype::F64)
    }

    /// Builds stats with the original size accounted at the element type's
    /// native width (4 bytes for f32, 8 for f64).
    pub fn new_for(elements: usize, compressed_bytes: usize, dtype: TacDtype) -> Self {
        CompressionStats {
            original_bytes: elements * dtype.wire_bytes(),
            compressed_bytes,
            elements,
        }
    }

    /// Compression ratio `original / compressed`.
    pub fn ratio(&self) -> f64 {
        self.original_bytes as f64 / self.compressed_bytes.max(1) as f64
    }

    /// Amortized storage cost in bits per value.
    pub fn bit_rate(&self) -> f64 {
        self.compressed_bytes as f64 * 8.0 / self.elements.max(1) as f64
    }

    /// Merges accounting across independently compressed pieces (e.g.,
    /// per-level streams of an AMR dataset).
    pub fn merge(&self, other: &CompressionStats) -> CompressionStats {
        CompressionStats {
            original_bytes: self.original_bytes + other.original_bytes,
            compressed_bytes: self.compressed_bytes + other.compressed_bytes,
            elements: self.elements + other.elements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bitrate() {
        let s = CompressionStats::new(1000, 1000);
        assert!((s.ratio() - 8.0).abs() < 1e-12);
        assert!((s.bit_rate() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_times_bitrate_is_word_size() {
        let s = CompressionStats::new(12345, 6789);
        assert!((s.ratio() * s.bit_rate() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let a = CompressionStats::new(100, 50);
        let b = CompressionStats::new(300, 75);
        let m = a.merge(&b);
        assert_eq!(m.elements, 400);
        assert_eq!(m.original_bytes, 3200);
        assert_eq!(m.compressed_bytes, 125);
    }

    #[test]
    fn degenerate_sizes_do_not_divide_by_zero() {
        let s = CompressionStats::new(0, 0);
        assert!(s.ratio().is_finite());
        assert!(s.bit_rate().is_finite());
    }
}
