//! Shared little-endian wire primitives.
//!
//! One checked byte-level writer/reader pair used by every hand-rolled
//! format in the workspace: the SZ stream header in this crate and the
//! dataset containers (v1 and v2) in `tac-core`. Keeping a single
//! implementation means one set of bounds checks and one place where
//! endianness is decided.

use crate::error::SzError;

/// Little-endian byte writer over a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no framing.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u64`-length-prefixed byte blob.
    pub fn put_blob(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_blob(v.as_bytes());
    }

    /// Bytes written so far (offsets recorded by chunked formats).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Consumes `n` bytes — the single bounds-checked cursor advance
    /// every typed read goes through. Failed reads consume nothing.
    fn take(&mut self, n: usize) -> Result<&'a [u8], SzError> {
        let remain = self.remaining();
        let short = || SzError::Corrupt(format!("need {n} bytes, {remain} remain"));
        let end = self.pos.checked_add(n).ok_or_else(short)?;
        let out = self.buf.get(self.pos..end).ok_or_else(short)?;
        self.pos = end;
        Ok(out)
    }

    /// Consumes exactly `N` bytes as a fixed-size array.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], SzError> {
        let bytes = self.take(N)?;
        <[u8; N]>::try_from(bytes).map_err(|_| SzError::Corrupt("short read".into()))
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SzError> {
        Ok(u8::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SzError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SzError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SzError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64, SzError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Reads `n` raw bytes (borrowed).
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], SzError> {
        self.take(n)
    }

    /// Reads a `u64`-length-prefixed blob (borrowed).
    pub fn get_blob(&mut self) -> Result<&'a [u8], SzError> {
        let len = self.get_u64()? as usize;
        self.get_bytes(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SzError> {
        let blob = self.get_blob()?;
        String::from_utf8(blob.to_vec())
            .map_err(|_| SzError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Advances past `n` bytes without inspecting them (a seek over an
    /// uninteresting payload region).
    pub fn skip(&mut self, n: usize) -> Result<(), SzError> {
        self.take(n).map(|_| ())
    }

    /// The unread tail of the buffer, without consuming it.
    pub fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or_default()
    }

    /// Current byte offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Unread bytes left.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD);
        w.put_u64(1 << 40);
        w.put_f64(-2.5);
        w.put_blob(b"hello");
        w.put_str("Run1_Z10");
        w.put_bytes(&[1, 2, 3]);
        assert_eq!(w.len(), 1 + 4 + 8 + 8 + (8 + 5) + (8 + 8) + 3);
        assert!(!w.is_empty());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap(), -2.5);
        assert_eq!(r.get_blob().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "Run1_Z10");
        assert_eq!(r.get_bytes(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn skip_and_position_track_offsets() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        w.put_bytes(&[9; 10]);
        w.put_u8(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.position(), 8);
        r.skip(10).unwrap();
        assert_eq!(r.position(), 18);
        assert_eq!(r.get_u8().unwrap(), 5);
        assert!(r.skip(1).is_err());
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u32().is_err());
        assert!(r.get_u64().is_err());
        assert!(r.get_f64().is_err());
        assert!(r.get_blob().is_err());
        // Failed reads consume nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u8().unwrap(), 1);
    }

    #[test]
    fn blob_declaring_absurd_length_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_blob().is_err());
    }

    #[test]
    fn invalid_utf8_string_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_blob(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
    }
}
