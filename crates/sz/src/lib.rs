#![forbid(unsafe_code)]

//! # tac-sz
//!
//! A from-scratch, SZ-style **error-bounded lossy compressor** for
//! floating-point scientific data — the substrate the TAC paper (HPDC'22)
//! builds on. The pipeline mirrors the three SZ stages the paper describes:
//!
//! 1. **Prediction** — Lorenzo predictors (1D/2D/3D, plus batched-3D for
//!    rank-4 inputs) evaluated on *reconstructed* neighbours
//!    ([`mod@predictor`]);
//! 2. **Error-controlled quantization** — linear-scaling bins of width
//!    `2*eb` with verbatim fallback for unpredictable points
//!    ([`Quantizer`]);
//! 3. **Entropy + dictionary coding** — canonical Huffman over the
//!    quantization codes followed by an LZSS lossless stage
//!    ([`HuffmanCode`], [`mod@lossless`]).
//!
//! The guarantee: for every finite input value `v` and its reconstruction
//! `v'`, `|v - v'| <= eb` (absolute mode) or `|v - v'| <= eb * range`
//! (value-range-relative mode). Non-finite values round-trip bit-exactly.
//!
//! ```
//! use tac_sz::{compress, decompress, Dims, SzConfig};
//!
//! let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
//! let bytes = compress(&data, Dims::D3(16, 16, 16), &SzConfig::abs(1e-4)).unwrap();
//! let (restored, dims) = decompress(&bytes).unwrap();
//! assert_eq!(dims, Dims::D3(16, 16, 16));
//! for (a, b) in data.iter().zip(&restored) {
//!     assert!((a - b).abs() <= 1e-4);
//! }
//! ```

#![warn(missing_docs)]

mod bitstream;
mod compress;
mod config;
mod container;
mod error;
pub mod huffman;
pub mod lossless;
pub mod predictor;
mod quantizer;
pub mod regression;
mod stats;
pub mod wire;

pub use compress::{
    compress, compress_t, compress_with_recon, compress_with_recon_t, decompress, decompress_t,
    looks_like_stream, stream_dtype, stream_magic,
};
pub use config::{Dims, ErrorBound, SzConfig};
pub use container::{Header, FLAG_F32, FLAG_LOSSLESS};
pub use error::SzError;
pub use huffman::HuffmanCode;
pub use quantizer::{Quantized, Quantizer, UNPREDICTABLE};
pub use regression::{RegressionContext, REGRESSION_BLOCK};
pub use stats::CompressionStats;
pub use tac_dtype::{Element, TacDtype};
