//! MSB-first bit-level writer and reader used by the Huffman coder.

use crate::error::SzError;

/// Accumulates bits MSB-first into a byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits accumulated in `acc`, left-aligned count in [0, 8).
    acc: u8,
    used: u8,
    bits_written: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-reserved capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            ..Default::default()
        }
    }

    /// Appends the low `nbits` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `nbits > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, nbits: u8) {
        assert!(nbits <= 64, "cannot write more than 64 bits at once");
        self.bits_written += nbits as u64;
        let mut remaining = nbits;
        while remaining > 0 {
            let space = 8 - self.used;
            let take = remaining.min(space);
            // Bits [remaining-take, remaining) of `value`, placed at the
            // top of the remaining space in `acc`.
            let chunk = ((value >> (remaining - take)) & ((1u64 << take) - 1)) as u8;
            self.acc |= chunk << (space - take);
            self.used += take;
            remaining -= take;
            if self.used == 8 {
                self.buf.push(self.acc);
                self.acc = 0;
                self.used = 0;
            }
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bits_written
    }

    /// Finishes the stream, padding the final byte with zero bits.
    /// Returns `(bytes, bit_len)`.
    pub fn finish(mut self) -> (Vec<u8>, u64) {
        if self.used > 0 {
            self.buf.push(self.acc);
        }
        (self.buf, self.bits_written)
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit index.
    pos: u64,
    /// Total valid bits in the stream.
    bit_len: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf` containing `bit_len` valid bits.
    ///
    /// # Errors
    /// Fails if `buf` is too short to hold `bit_len` bits.
    pub fn new(buf: &'a [u8], bit_len: u64) -> Result<Self, SzError> {
        if (buf.len() as u64) * 8 < bit_len {
            return Err(SzError::Corrupt(format!(
                "bitstream declares {bit_len} bits but holds only {}",
                buf.len() as u64 * 8
            )));
        }
        Ok(BitReader {
            buf,
            pos: 0,
            bit_len,
        })
    }

    /// Remaining readable bits.
    pub fn remaining(&self) -> u64 {
        self.bit_len - self.pos
    }

    /// Reads `nbits` bits MSB-first.
    ///
    /// # Errors
    /// Fails on over-read.
    #[inline]
    pub fn read_bits(&mut self, nbits: u8) -> Result<u64, SzError> {
        if self.remaining() < nbits as u64 {
            return Err(SzError::Corrupt("bitstream over-read".into()));
        }
        let mut out = 0u64;
        let mut remaining = nbits;
        while remaining > 0 {
            let byte = self
                .buf
                .get((self.pos / 8) as usize)
                .copied()
                .ok_or_else(|| SzError::Corrupt("bitstream over-read".into()))?;
            let offset = (self.pos % 8) as u8;
            let avail = 8 - offset;
            let take = remaining.min(avail);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos += take as u64;
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, SzError> {
        Ok(self.read_bits(1)? == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bit(true);
        w.write_bits(0, 7);
        w.write_bits(u64::MAX, 64);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits).unwrap();
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(7).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn over_read_is_detected() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits).unwrap();
        assert!(r.read_bits(3).is_err());
    }

    #[test]
    fn truncated_buffer_is_detected() {
        assert!(BitReader::new(&[0u8], 9).is_err());
        assert!(BitReader::new(&[0u8], 8).is_ok());
    }

    #[test]
    fn bit_order_is_msb_first() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0, 7);
        let (bytes, _) = w.finish();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn many_single_bits() {
        let pattern: Vec<bool> = (0..1000).map(|i| (i * 7) % 3 == 0).collect();
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 1000);
        let mut r = BitReader::new(&bytes, bits).unwrap();
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        let (bytes, bits) = w.finish();
        assert!(bytes.is_empty());
        assert_eq!(bits, 0);
    }
}
