//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ entropy-codes the quantization codes with a custom Huffman stage;
//! this module reproduces that: build a code from symbol frequencies,
//! serialize only the `(symbol, code length)` table, and reconstruct the
//! canonical code on the decode side.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::SzError;
use crate::wire::ByteReader;
use std::collections::BinaryHeap;

/// Maximum accepted code length. With < 2^32 samples the Huffman depth is
/// bounded well below this; the cap protects the decoder against crafted
/// tables.
const MAX_CODE_LEN: u8 = 64;

/// A built Huffman code: canonical `(code, length)` per distinct symbol.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Sorted distinct symbols.
    symbols: Vec<u32>,
    /// Code length per symbol (parallel to `symbols`).
    lengths: Vec<u8>,
    /// Canonical codewords (parallel to `symbols`).
    codes: Vec<u64>,
}

impl HuffmanCode {
    /// Builds a code from the frequencies of `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty (callers guard this).
    // tac-lint: allow(panic) -- encoder over in-memory input; `i` and `j` stay below sorted.len() by the loop guards.
    pub fn from_symbols(data: &[u32]) -> Self {
        assert!(!data.is_empty(), "cannot build a Huffman code from nothing");
        // Frequency map. Symbols are quantization codes, usually tightly
        // clustered around the mid value; a sorted Vec keeps this simple.
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        let mut symbols = Vec::new();
        let mut freqs: Vec<u64> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let s = sorted[i];
            let mut j = i;
            while j < sorted.len() && sorted[j] == s {
                j += 1;
            }
            symbols.push(s);
            freqs.push((j - i) as u64);
            i = j;
        }
        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);
        HuffmanCode {
            symbols,
            lengths,
            codes,
        }
    }

    /// Number of distinct symbols.
    pub fn num_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// Encodes `data` into `writer`.
    ///
    /// # Panics
    /// Panics if a symbol was not present when the code was built.
    // tac-lint: allow(panic) -- encoder-side: callers encode the same data the table was built from, so lookup succeeds and idx < symbols.len() = codes.len() = lengths.len().
    pub fn encode(&self, data: &[u32], writer: &mut BitWriter) {
        for &s in data {
            let idx = self
                .symbols
                .binary_search(&s)
                .expect("symbol not in Huffman table");
            writer.write_bits(self.codes[idx], self.lengths[idx]);
        }
    }

    /// Serializes the `(symbol, length)` table.
    // tac-lint: allow(arith) -- encoder-side: distinct symbols come from one in-memory block, far below u32::MAX.
    pub fn serialize_table(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.symbols.len() as u32).to_le_bytes());
        for (&s, &l) in self.symbols.iter().zip(&self.lengths) {
            out.extend_from_slice(&s.to_le_bytes());
            out.push(l);
        }
    }

    /// Size in bytes of the serialized table.
    // tac-lint: allow(arith) -- encoder-side accounting over an in-memory table; 5 bytes per symbol cannot overflow usize.
    pub fn table_size(&self) -> usize {
        4 + self.symbols.len() * 5
    }

    /// Deserializes a table written by [`HuffmanCode::serialize_table`].
    /// Returns the code and the number of bytes consumed.
    pub fn deserialize_table(bytes: &[u8]) -> Result<(Self, usize), SzError> {
        let mut r = ByteReader::new(bytes);
        let n = r
            .get_u32()
            .map_err(|_| SzError::Corrupt("huffman table header truncated".into()))?
            as usize;
        if n == 0 {
            return Err(SzError::Corrupt("huffman table is empty".into()));
        }
        // Five bytes per entry: the declared count is bounded by what the
        // buffer can actually hold before anything is allocated.
        if n > r.remaining() / 5 {
            return Err(SzError::Corrupt(format!(
                "huffman table truncated: {n} entries declared, {} bytes remain",
                r.remaining()
            )));
        }
        let mut symbols = Vec::with_capacity(n);
        let mut lengths = Vec::with_capacity(n);
        for _ in 0..n {
            let truncated = |_| SzError::Corrupt("huffman table truncated".into());
            let s = r.get_u32().map_err(truncated)?;
            let l = r.get_u8().map_err(truncated)?;
            if l == 0 || l > MAX_CODE_LEN {
                return Err(SzError::Corrupt(format!("invalid code length {l}")));
            }
            if let Some(&prev) = symbols.last() {
                if s <= prev {
                    return Err(SzError::Corrupt("huffman symbols not sorted".into()));
                }
            }
            symbols.push(s);
            lengths.push(l);
        }
        // Kraft check: sum of 2^-len must not exceed 1 (and equals 1 for a
        // complete code); reject over-subscribed tables.
        let mut kraft = 0u128;
        for &l in &lengths {
            kraft += 1u128 << (MAX_CODE_LEN - l);
        }
        if n > 1 && kraft > 1u128 << MAX_CODE_LEN {
            return Err(SzError::Corrupt("huffman table violates Kraft".into()));
        }
        let codes = canonical_codes(&lengths);
        Ok((
            HuffmanCode {
                symbols,
                lengths,
                codes,
            },
            r.position(),
        ))
    }

    /// Decodes `count` symbols from `reader`.
    pub fn decode(&self, reader: &mut BitReader<'_>, count: usize) -> Result<Vec<u32>, SzError> {
        let decoder = CanonicalDecoder::new(self);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(decoder.decode_one(reader)?);
        }
        Ok(out)
    }
}

/// Canonical decoding state: for each code length, the first canonical code
/// of that length and the index of its first symbol.
struct CanonicalDecoder<'a> {
    code: &'a HuffmanCode,
    /// Indices into a by-length ordering of symbols.
    by_len_symbol: Vec<u32>,
    /// For each length 1..=max: (first_code, first_index, count).
    levels: Vec<(u64, u32, u32)>,
    single_symbol: Option<u32>,
}

impl<'a> CanonicalDecoder<'a> {
    fn new(code: &'a HuffmanCode) -> Self {
        if code.symbols.len() == 1 {
            return CanonicalDecoder {
                code,
                by_len_symbol: Vec::new(),
                levels: Vec::new(),
                single_symbol: code.symbols.first().copied(),
            };
        }
        // Canonical order is (length, symbol). `symbols` is already
        // sorted, so sorting the zipped pairs gives exactly that without
        // any index round-trips.
        let mut pairs: Vec<(u8, u32)> = code
            .lengths
            .iter()
            .copied()
            .zip(code.symbols.iter().copied())
            .collect();
        pairs.sort_unstable();
        let by_len_symbol: Vec<u32> = pairs.iter().map(|&(_, s)| s).collect();
        let max_len = usize::from(pairs.last().map(|&(l, _)| l).unwrap_or(0));

        let mut counts = vec![0u32; max_len.saturating_add(1)];
        for &(l, _) in &pairs {
            if let Some(c) = counts.get_mut(usize::from(l)) {
                *c += 1;
            }
        }
        let mut levels = Vec::with_capacity(max_len);
        let mut next_code = 0u64;
        let mut first_index = 0u32;
        for &count in counts.iter().skip(1) {
            next_code <<= 1;
            levels.push((next_code, first_index, count));
            next_code += u64::from(count);
            first_index = first_index.saturating_add(count);
        }
        CanonicalDecoder {
            code,
            by_len_symbol,
            levels,
            single_symbol: None,
        }
    }

    #[inline]
    fn decode_one(&self, reader: &mut BitReader<'_>) -> Result<u32, SzError> {
        if let Some(s) = self.single_symbol {
            // Degenerate one-symbol alphabet: a 1-bit code was written.
            reader.read_bit()?;
            return Ok(s);
        }
        let mut acc = 0u64;
        for &(first_code, first_index, count) in &self.levels {
            acc = (acc << 1) | u64::from(reader.read_bit()?);
            if count > 0 && acc >= first_code && acc - first_code < u64::from(count) {
                let idx = u64::from(first_index) + (acc - first_code);
                return self
                    .by_len_symbol
                    .get(idx as usize)
                    .copied()
                    .ok_or_else(|| SzError::Corrupt("invalid huffman codeword".into()));
            }
        }
        Err(SzError::Corrupt("invalid huffman codeword".into()))
    }

    #[allow(dead_code)]
    fn code(&self) -> &HuffmanCode {
        self.code
    }
}

/// Computes Huffman code lengths from frequencies (package-style heap
/// algorithm). A single symbol gets length 1.
// tac-lint: allow(panic, arith) -- encoder-only tree build: the heap holds n >= 2 items when popped twice, every node id is < 2n-1 by construction, and n is an in-memory symbol count.
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    if n == 1 {
        return vec![1];
    }
    // Min-heap of (freq, node). Internal tree built with parent pointers.
    #[derive(PartialEq, Eq)]
    struct Item {
        freq: u64,
        node: u32,
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on node id for determinism.
            other.freq.cmp(&self.freq).then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut parent = vec![u32::MAX; 2 * n - 1];
    let mut heap: BinaryHeap<Item> = freqs
        .iter()
        .enumerate()
        .map(|(i, &f)| Item {
            freq: f,
            node: i as u32,
        })
        .collect();
    let mut next = n as u32;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.node as usize] = next;
        parent[b.node as usize] = next;
        heap.push(Item {
            freq: a.freq + b.freq,
            node: next,
        });
        next += 1;
    }
    (0..n)
        .map(|i| {
            let mut len = 0u8;
            let mut node = i as u32;
            while parent[node as usize] != u32::MAX {
                node = parent[node as usize];
                len += 1;
            }
            len
        })
        .collect()
}

/// Assigns canonical codewords given code lengths: symbols sorted by
/// (length, symbol index) receive consecutive codes.
///
/// Total: runs on lengths deserialized from the wire, so every lookup is
/// checked even though `l <= max_len` holds by construction.
fn canonical_codes(lengths: &[u8]) -> Vec<u64> {
    let max_len = usize::from(lengths.iter().copied().max().unwrap_or(0));
    let mut counts = vec![0u64; max_len.saturating_add(1)];
    for &l in lengths {
        if let Some(c) = counts.get_mut(usize::from(l)) {
            *c += 1;
        }
    }
    let mut next_code = vec![0u64; max_len.saturating_add(1)];
    let mut code = 0u64;
    for len in 1..=max_len {
        let shorter = counts.get(len.wrapping_sub(1)).copied().unwrap_or(0);
        code = (code + shorter) << 1;
        if let Some(slot) = next_code.get_mut(len) {
            *slot = code;
        }
    }
    // Assign in symbol order (lengths are stored in symbol order; canonical
    // ordering demands (length, symbol) — symbols are sorted, so iterating
    // in symbol order and bumping the per-length counter is canonical).
    let mut codes = Vec::with_capacity(lengths.len());
    for &l in lengths {
        match next_code.get_mut(usize::from(l)) {
            Some(slot) => {
                codes.push(*slot);
                *slot += 1;
            }
            None => codes.push(0),
        }
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u32]) {
        let code = HuffmanCode::from_symbols(data);
        let mut w = BitWriter::new();
        code.encode(data, &mut w);
        let mut table = Vec::new();
        code.serialize_table(&mut table);
        let (bytes, bits) = w.finish();

        let (decoded_code, consumed) = HuffmanCode::deserialize_table(&table).unwrap();
        assert_eq!(consumed, table.len());
        let mut r = BitReader::new(&bytes, bits).unwrap();
        let out = decoded_code.decode(&mut r, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_small() {
        roundtrip(&[1, 2, 3, 2, 1, 2, 2, 2, 9]);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[42; 100]);
    }

    #[test]
    fn roundtrip_two_symbols() {
        roundtrip(&[7, 8, 7, 7, 8, 7]);
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        // Geometric-ish frequencies stress unequal code lengths.
        let mut data = Vec::new();
        for s in 0u32..16 {
            for _ in 0..(1usize << (15 - s as usize)) {
                data.push(s);
            }
        }
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_large_alphabet() {
        let data: Vec<u32> = (0..5000u32).map(|i| (i * i) % 997 + 30000).collect();
        roundtrip(&data);
    }

    #[test]
    fn skewed_code_is_shorter_than_uniform() {
        // 90% of mass on one symbol should beat 2 bits/symbol.
        let mut data = vec![0u32; 900];
        data.extend([1u32, 2, 3].iter().cycle().take(100));
        let code = HuffmanCode::from_symbols(&data);
        let mut w = BitWriter::new();
        code.encode(&data, &mut w);
        let (_, bits) = w.finish();
        assert!(bits < 2 * data.len() as u64, "bits = {bits}");
    }

    #[test]
    fn table_rejects_garbage() {
        assert!(HuffmanCode::deserialize_table(&[1, 2]).is_err());
        // Claims 10 symbols but provides none.
        let mut t = 10u32.to_le_bytes().to_vec();
        t.push(1);
        assert!(HuffmanCode::deserialize_table(&t).is_err());
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let data = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let code = HuffmanCode::from_symbols(&data);
        let mut w = BitWriter::new();
        code.encode(&data, &mut w);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits / 2).unwrap();
        assert!(code.decode(&mut r, data.len()).is_err());
    }

    #[test]
    fn kraft_violation_rejected() {
        // Three symbols all claiming length 1 over-subscribes the code space.
        let mut t = 3u32.to_le_bytes().to_vec();
        for s in 0u32..3 {
            t.extend_from_slice(&s.to_le_bytes());
            t.push(1);
        }
        assert!(HuffmanCode::deserialize_table(&t).is_err());
    }
}
