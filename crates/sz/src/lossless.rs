//! LZSS-style byte-level lossless backend.
//!
//! SZ finishes with a dictionary coder (gzip/zstd) over the entropy-coded
//! payload; compression crates are outside this project's allowed
//! dependency set, so this module provides an in-repo LZ77 variant:
//!
//! * 64 KiB sliding window, hash-chain match finder over 4-byte prefixes;
//! * token stream of literals and `(offset, length)` matches with flag
//!   bits grouped eight to a control byte;
//! * match lengths 4..=258 encoded in one byte, offsets in two.
//!
//! `compress` is guaranteed lossless and never fails; `decompress`
//! validates every back-reference.

use crate::error::SzError;
use crate::wire::ByteReader;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 258;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;

// tac-lint: allow(panic) -- encoder-side hash over in-memory input; every caller guarantees i + 3 < data.len() before probing.
#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`, returning the token stream. Output layout:
/// `u64 LE` uncompressed length, then control-byte-grouped tokens.
// tac-lint: allow(panic, arith) -- encoder over trusted in-memory data: indices stay below input.len() by construction, offsets fit the 64 KiB window (u16) and match lengths 4..=258 fit a byte after the MIN_MATCH bias.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    if input.is_empty() {
        return out;
    }

    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut prev = vec![u32::MAX; input.len()];

    // Tokens are buffered in groups of 8 under one control byte; bit i set
    // means token i is a match.
    let mut ctrl = 0u8;
    let mut ctrl_bits = 0u8;
    let mut group: Vec<u8> = Vec::with_capacity(8 * 3);
    let flush = |out: &mut Vec<u8>, ctrl: &mut u8, ctrl_bits: &mut u8, group: &mut Vec<u8>| {
        if *ctrl_bits > 0 {
            out.push(*ctrl);
            out.extend_from_slice(group);
            *ctrl = 0;
            *ctrl_bits = 0;
            group.clear();
        }
    };

    let mut i = 0usize;
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(input, i);
            let chain_head = head[h];
            let mut cand = chain_head;
            let mut steps = 0;
            while cand != u32::MAX && steps < MAX_CHAIN {
                let c = cand as usize;
                if i - c >= WINDOW {
                    break;
                }
                // Cheap rejection: compare the byte just past the current
                // best match first.
                if best_len == 0 || input.get(c + best_len) == input.get(i + best_len) {
                    let max_len = MAX_MATCH.min(input.len() - i);
                    let mut l = 0;
                    while l < max_len && input[c + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - c;
                        if l >= MAX_MATCH {
                            break;
                        }
                    }
                }
                cand = prev[c];
                steps += 1;
            }
            prev[i] = chain_head;
            head[h] = i as u32;
        }

        if best_len >= MIN_MATCH {
            ctrl |= 1 << ctrl_bits;
            group.extend_from_slice(&(best_off as u16).to_le_bytes());
            group.push((best_len - MIN_MATCH) as u8);
            // Insert hash entries for the skipped positions so later
            // matches can reference inside this match.
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= input.len() {
                let h = hash4(input, j);
                prev[j] = head[h];
                head[h] = j as u32;
                j += 1;
            }
            i = end;
        } else {
            group.push(input[i]);
            i += 1;
        }
        ctrl_bits += 1;
        if ctrl_bits == 8 {
            flush(&mut out, &mut ctrl, &mut ctrl_bits, &mut group);
        }
    }
    flush(&mut out, &mut ctrl, &mut ctrl_bits, &mut group);
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, SzError> {
    let mut r = ByteReader::new(input);
    let n = r
        .get_u64()
        .map_err(|_| SzError::Corrupt("lzss stream shorter than header".into()))?
        as usize;
    // Bound the up-front allocation by what the token stream could ever
    // produce: each token needs at least 3 bytes (plus control bits) and
    // expands to at most MAX_MATCH bytes, so a tiny stream declaring a
    // terabyte output is corrupt, not a reservation request.
    let max_expansion = r.remaining().saturating_mul(MAX_MATCH);
    if n > max_expansion {
        return Err(SzError::Corrupt(format!(
            "lzss declares {n} output bytes from a {}-byte stream (max {max_expansion})",
            input.len()
        )));
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let ctrl = r
            .get_u8()
            .map_err(|_| SzError::Corrupt("lzss stream truncated (control)".into()))?;
        for bit in 0..8 {
            if out.len() >= n {
                break;
            }
            if ctrl & (1 << bit) != 0 {
                let truncated = |_| SzError::Corrupt("lzss stream truncated (match)".into());
                let off = r.get_u16().map_err(truncated)? as usize;
                let len = MIN_MATCH + r.get_u8().map_err(truncated)? as usize;
                if off == 0 || off > out.len() {
                    return Err(SzError::Corrupt(format!(
                        "lzss back-reference {off} beyond {} decoded bytes",
                        out.len()
                    )));
                }
                let start = out.len() - off;
                if len <= off {
                    // Source and destination cannot overlap: bulk copy.
                    // `start + len <= out.len()` follows from `len <= off`.
                    let end = start.saturating_add(len).min(out.len());
                    out.extend_from_within(start..end);
                } else {
                    // Overlapping copies are valid (RLE-style): the
                    // source grows as the copy proceeds, so go byte-wise.
                    for k in 0..len {
                        let b = out.get(start.saturating_add(k)).copied().ok_or_else(|| {
                            SzError::Corrupt("lzss back-reference escaped the buffer".into())
                        })?;
                        out.push(b);
                    }
                }
            } else {
                let b = r
                    .get_u8()
                    .map_err(|_| SzError::Corrupt("lzss stream truncated (literal)".into()))?;
                out.push(b);
            }
        }
    }
    if out.len() != n {
        return Err(SzError::Corrupt(format!(
            "lzss produced {} bytes, expected {n}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_short() {
        roundtrip(b"abc");
        roundtrip(b"a");
    }

    #[test]
    fn roundtrip_repetitive() {
        let data: Vec<u8> = b"abcabcabcabcabcabc".repeat(100);
        let c = compress(&data);
        assert!(c.len() < data.len() / 3, "repetitive data should shrink");
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_zeros_rle() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        assert!(
            c.len() < 2000,
            "zero run should compress hard, got {}",
            c.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_incompressible() {
        // Pseudo-random bytes: output may expand slightly (1 control bit
        // per literal) but must round-trip.
        let data: Vec<u8> = (0..50_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_overlapping_match() {
        // "aaaaa..." forces matches whose source overlaps the destination.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_long_window_reference() {
        let mut data = Vec::new();
        let phrase = b"the quick brown fox jumps over the lazy dog";
        data.extend_from_slice(phrase);
        data.extend(std::iter::repeat(7u8).take(40_000));
        data.extend_from_slice(phrase);
        roundtrip(&data);
    }

    #[test]
    fn rejects_truncation() {
        let data: Vec<u8> = b"hello world hello world hello world".to_vec();
        let c = compress(&data);
        for cut in [0usize, 4, 8, c.len() - 1] {
            if cut < c.len() {
                assert!(decompress(&c[..cut]).is_err() || cut == c.len());
            }
        }
    }

    #[test]
    fn rejects_bad_backreference() {
        // Hand-craft: n=4, control byte with match flag, offset 9 (> decoded).
        let mut s = 4u64.to_le_bytes().to_vec();
        s.push(0b0000_0001);
        s.extend_from_slice(&9u16.to_le_bytes());
        s.push(0);
        assert!(decompress(&s).is_err());
    }

    #[test]
    fn compresses_float_like_payloads() {
        // Quantization codes from smooth data: long runs of the same byte
        // pattern with occasional jitter.
        let mut data = Vec::new();
        for i in 0..20_000u32 {
            let code: u16 = 32768 + ((i / 100) % 3) as u16;
            data.extend_from_slice(&code.to_le_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 4);
        roundtrip(&data);
    }
}
