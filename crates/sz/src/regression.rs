//! SZ2-style per-block linear regression predictor.
//!
//! Pure Lorenzo prediction reads *reconstructed* neighbours, so every
//! point inherits its neighbours' quantization noise; on smooth data this
//! feedback sustains ~1.5 bits/value of code entropy forever and caps the
//! compression ratio around 40 regardless of the error bound. SZ 2
//! (Liang et al., 2018) fixed exactly this with a second predictor: fit
//! `v ~ b0 + b1*x + b2*y + b3*z` per small block, transmit the quantized
//! coefficients, and predict from them alone — no feedback, so smooth
//! blocks quantize to code 0 everywhere and the entropy stage erases
//! them.
//!
//! Per block the encoder picks whichever predictor has the smaller sum of
//! absolute residuals on the original data (the same selection idea as
//! SZ2's sampled test). Block flags and coefficient codes travel in a
//! side stream; coefficient quantization steps are chosen so the total
//! prediction drift stays below `eb/2`, leaving the point quantizer's
//! `2*eb` bins plenty of headroom.

use crate::error::SzError;
use tac_dtype::Element;

/// Block edge length for regression (SZ2 uses 6).
pub const REGRESSION_BLOCK: usize = 6;

/// Quantized plane-fit coefficients for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCoeffs {
    /// Intercept at the block's local origin corner.
    pub b0: f64,
    /// Slope per cell along x/y/z.
    pub b: [f64; 3],
}

/// Per-array regression context: block modes and coefficients, in block
/// raster order (x fastest).
#[derive(Debug, Clone)]
pub struct RegressionContext {
    /// Grid extents in cells.
    pub dims: (usize, usize, usize),
    /// Blocks per axis.
    pub nb: (usize, usize, usize),
    /// `true` = regression block, `false` = Lorenzo block.
    pub modes: Vec<bool>,
    /// Coefficients for regression blocks (slot is unused — zeroed — for
    /// Lorenzo blocks, keeping indexing trivial).
    pub coeffs: Vec<BlockCoeffs>,
}

impl RegressionContext {
    /// Blocks per axis for given extents.
    fn grid(nx: usize, ny: usize, nz: usize) -> (usize, usize, usize) {
        (
            nx.div_ceil(REGRESSION_BLOCK),
            ny.div_ceil(REGRESSION_BLOCK),
            nz.div_ceil(REGRESSION_BLOCK),
        )
    }

    /// Index of the block containing cell `(x, y, z)`.
    #[inline]
    pub fn block_of(&self, x: usize, y: usize, z: usize) -> usize {
        let bx = x / REGRESSION_BLOCK;
        let by = y / REGRESSION_BLOCK;
        let bz = z / REGRESSION_BLOCK;
        bx + self.nb.0 * (by + self.nb.1 * bz)
    }

    /// Whether the cell's block uses regression, and if so the predicted
    /// value at that cell.
    #[inline]
    pub fn predict(&self, x: usize, y: usize, z: usize) -> Option<f64> {
        let b = self.block_of(x, y, z);
        if !self.modes[b] {
            return None;
        }
        let c = &self.coeffs[b];
        let lx = (x % REGRESSION_BLOCK) as f64;
        let ly = (y % REGRESSION_BLOCK) as f64;
        let lz = (z % REGRESSION_BLOCK) as f64;
        Some(c.b0 + c.b[0] * lx + c.b[1] * ly + c.b[2] * lz)
    }

    /// Builds the encoder-side context: fits every block, compares the
    /// plane fit's residuals against a Lorenzo estimate on the *original*
    /// data, and keeps regression where it wins. Coefficients are already
    /// quantized (encoder and decoder share exact values). Fitting widens
    /// elements to `f64`; the serialized coefficients are width-agnostic.
    pub fn build<T: Element>(data: &[T], nx: usize, ny: usize, nz: usize, eb: f64) -> Self {
        let nb = Self::grid(nx, ny, nz);
        let nblocks = nb.0 * nb.1 * nb.2;
        let mut modes = vec![false; nblocks];
        let mut coeffs = vec![
            BlockCoeffs {
                b0: 0.0,
                b: [0.0; 3]
            };
            nblocks
        ];
        let (q0, q1) = coeff_steps(eb);
        for bz in 0..nb.2 {
            for by in 0..nb.1 {
                for bx in 0..nb.0 {
                    let bi = bx + nb.0 * (by + nb.1 * bz);
                    let x0 = bx * REGRESSION_BLOCK;
                    let y0 = by * REGRESSION_BLOCK;
                    let z0 = bz * REGRESSION_BLOCK;
                    let w = REGRESSION_BLOCK.min(nx - x0);
                    let h = REGRESSION_BLOCK.min(ny - y0);
                    let d = REGRESSION_BLOCK.min(nz - z0);
                    let fit = fit_block(data, nx, ny, (x0, y0, z0), (w, h, d));
                    // Quantize the coefficients to the shared grid.
                    let fit = BlockCoeffs {
                        b0: (fit.b0 / q0).round() * q0,
                        b: [
                            (fit.b[0] / q1).round() * q1,
                            (fit.b[1] / q1).round() * q1,
                            (fit.b[2] / q1).round() * q1,
                        ],
                    };
                    if !fit.b0.is_finite()
                        || fit.b.iter().any(|v| !v.is_finite())
                        || regression_loses(data, nx, ny, (x0, y0, z0), (w, h, d), &fit, eb)
                    {
                        continue;
                    }
                    modes[bi] = true;
                    coeffs[bi] = fit;
                }
            }
        }
        RegressionContext {
            dims: (nx, ny, nz),
            nb,
            modes,
            coeffs,
        }
    }

    /// Serializes flags + coefficient codes (coefficients are stored as
    /// zigzag varints of their quantization codes).
    pub fn serialize(&self, eb: f64, out: &mut Vec<u8>) {
        let (q0, q1) = coeff_steps(eb);
        // Flag bitset.
        let mut byte = 0u8;
        let mut used = 0;
        let mut flags = Vec::with_capacity(self.modes.len() / 8 + 1);
        for &m in &self.modes {
            byte |= (m as u8) << used;
            used += 1;
            if used == 8 {
                flags.push(byte);
                byte = 0;
                used = 0;
            }
        }
        if used > 0 {
            flags.push(byte);
        }
        out.extend_from_slice(&flags);
        for (bi, &m) in self.modes.iter().enumerate() {
            if !m {
                continue;
            }
            let c = &self.coeffs[bi];
            write_zigzag(out, (c.b0 / q0).round() as i64);
            for k in 0..3 {
                write_zigzag(out, (c.b[k] / q1).round() as i64);
            }
        }
    }

    /// Parses a context serialized by [`RegressionContext::serialize`].
    /// Returns the context and consumed byte count.
    pub fn deserialize(
        bytes: &[u8],
        nx: usize,
        ny: usize,
        nz: usize,
        eb: f64,
    ) -> Result<(Self, usize), SzError> {
        let nb = Self::grid(nx, ny, nz);
        let nblocks = nb.0 * nb.1 * nb.2;
        let flag_bytes = nblocks.div_ceil(8);
        if bytes.len() < flag_bytes {
            return Err(SzError::Corrupt("regression flags truncated".into()));
        }
        let mut modes = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            modes.push(bytes[i / 8] >> (i % 8) & 1 == 1);
        }
        let (q0, q1) = coeff_steps(eb);
        let mut pos = flag_bytes;
        let mut coeffs = vec![
            BlockCoeffs {
                b0: 0.0,
                b: [0.0; 3]
            };
            nblocks
        ];
        for (bi, &m) in modes.iter().enumerate() {
            if !m {
                continue;
            }
            let (v0, n0) = read_zigzag(&bytes[pos..])?;
            pos += n0;
            let mut b = [0.0; 3];
            let b0 = v0 as f64 * q0;
            for slot in b.iter_mut() {
                let (v, n) = read_zigzag(&bytes[pos..])?;
                pos += n;
                *slot = v as f64 * q1;
            }
            coeffs[bi] = BlockCoeffs { b0, b };
        }
        Ok((
            RegressionContext {
                dims: (nx, ny, nz),
                nb,
                modes,
                coeffs,
            },
            pos,
        ))
    }
}

/// Coefficient quantization steps `(intercept, slope)`: total prediction
/// drift stays under `eb/2` for any cell of a block.
fn coeff_steps(eb: f64) -> (f64, f64) {
    (eb / 4.0, eb / (4.0 * REGRESSION_BLOCK as f64))
}

/// Least-squares plane fit over one block (local coordinates measured
/// from the block's low corner). Axis-wise orthogonality on the full
/// cuboid grid makes this a closed form.
fn fit_block<T: Element>(
    data: &[T],
    nx: usize,
    ny: usize,
    (x0, y0, z0): (usize, usize, usize),
    (w, h, d): (usize, usize, usize),
) -> BlockCoeffs {
    let count = (w * h * d) as f64;
    let mut mean = 0.0;
    for z in 0..d {
        for y in 0..h {
            let row = x0 + nx * (y0 + y + ny * (z0 + z));
            for x in 0..w {
                mean += data[row + x].to_f64();
            }
        }
    }
    mean /= count;
    // Centered coordinate moments: sum (x - cx)^2 over the block factors
    // per axis.
    let cx = (w as f64 - 1.0) / 2.0;
    let cy = (h as f64 - 1.0) / 2.0;
    let cz = (d as f64 - 1.0) / 2.0;
    let sq = |n: usize, c: f64| -> f64 { (0..n).map(|i| (i as f64 - c) * (i as f64 - c)).sum() };
    let (sxx, syy, szz) = (
        sq(w, cx) * (h * d) as f64,
        sq(h, cy) * (w * d) as f64,
        sq(d, cz) * (w * h) as f64,
    );
    let mut sxv = 0.0;
    let mut syv = 0.0;
    let mut szv = 0.0;
    for z in 0..d {
        for y in 0..h {
            let row = x0 + nx * (y0 + y + ny * (z0 + z));
            for x in 0..w {
                let v = data[row + x].to_f64();
                sxv += (x as f64 - cx) * v;
                syv += (y as f64 - cy) * v;
                szv += (z as f64 - cz) * v;
            }
        }
    }
    let b1 = if sxx > 0.0 { sxv / sxx } else { 0.0 };
    let b2 = if syy > 0.0 { syv / syy } else { 0.0 };
    let b3 = if szz > 0.0 { szv / szz } else { 0.0 };
    // Convert centered intercept to the low-corner origin convention.
    let b0 = mean - b1 * cx - b2 * cy - b3 * cz;
    BlockCoeffs {
        b0,
        b: [b1, b2, b3],
    }
}

/// Mode selection: regression loses when its sum of absolute residuals
/// exceeds the Lorenzo estimate. The Lorenzo estimate is computed on
/// *original* neighbours, which misses the quantization-noise feedback
/// the real decoder-side Lorenzo suffers (~`eb` of extra error per
/// point); that noise term is added explicitly, exactly the adjustment
/// SZ2's selector applies.
fn regression_loses<T: Element>(
    data: &[T],
    nx: usize,
    ny: usize,
    (x0, y0, z0): (usize, usize, usize),
    (w, h, d): (usize, usize, usize),
    fit: &BlockCoeffs,
    eb: f64,
) -> bool {
    let mut sae_reg = 0.0f64;
    let mut sae_lor = 0.0f64;
    let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                let (gx, gy, gz) = (x0 + x, y0 + y, z0 + z);
                let v = data[idx(gx, gy, gz)].to_f64();
                let pred_r =
                    fit.b0 + fit.b[0] * x as f64 + fit.b[1] * y as f64 + fit.b[2] * z as f64;
                sae_reg += (v - pred_r).abs();
                let pred_l = crate::predictor::lorenzo_3d(data, nx, ny, gx, gy, gz);
                sae_lor += (v - pred_l).abs();
            }
        }
    }
    let noise = eb * (w * h * d) as f64;
    sae_reg >= sae_lor + noise
}

fn write_zigzag(out: &mut Vec<u8>, v: i64) {
    let mut u = ((v << 1) ^ (v >> 63)) as u64;
    loop {
        let byte = (u & 0x7f) as u8;
        u >>= 7;
        if u == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_zigzag(bytes: &[u8]) -> Result<(i64, usize), SzError> {
    let mut u = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if shift >= 64 {
            break;
        }
        u |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            let v = ((u >> 1) as i64) ^ -((u & 1) as i64);
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(SzError::Corrupt("varint truncated".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_field(nx: usize, ny: usize, nz: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    v.push(3.0 + 0.5 * x as f64 - 0.25 * y as f64 + 0.125 * z as f64);
                }
            }
        }
        v
    }

    #[test]
    fn plane_fit_recovers_linear_fields() {
        let (nx, ny, nz) = (12, 12, 12);
        let data = linear_field(nx, ny, nz);
        let fit = fit_block(&data, nx, ny, (0, 0, 0), (6, 6, 6));
        assert!((fit.b0 - 3.0).abs() < 1e-9);
        assert!((fit.b[0] - 0.5).abs() < 1e-9);
        assert!((fit.b[1] + 0.25).abs() < 1e-9);
        assert!((fit.b[2] - 0.125).abs() < 1e-9);
        // Offset block: intercept shifts to the block corner value.
        let fit = fit_block(&data, nx, ny, (6, 6, 6), (6, 6, 6));
        let corner = data[6 + nx * (6 + ny * 6)];
        assert!((fit.b0 - corner).abs() < 1e-9);
    }

    #[test]
    fn context_predicts_linear_fields_within_drift() {
        let (nx, ny, nz) = (13, 9, 7); // ragged extents exercise edges
        let data = linear_field(nx, ny, nz);
        let eb = 1e-3;
        let ctx = RegressionContext::build(&data, nx, ny, nz, eb);
        assert!(ctx.modes.iter().all(|&m| m), "linear data: all regression");
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let p = ctx.predict(x, y, z).expect("regression mode");
                    let v = data[x + nx * (y + ny * z)];
                    assert!(
                        (p - v).abs() <= eb / 2.0,
                        "drift {} at ({x},{y},{z})",
                        p - v
                    );
                }
            }
        }
    }

    #[test]
    fn rough_blocks_fall_back_to_lorenzo() {
        let n = 12;
        // Alternating-sign noise: a plane fit is useless.
        let data: Vec<f64> = (0..n * n * n)
            .map(|i| if (i / 7) % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let ctx = RegressionContext::build(&data, n, n, n, 1e-3);
        assert!(
            ctx.modes.iter().filter(|&&m| m).count() < ctx.modes.len(),
            "noise should not be all-regression"
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let (nx, ny, nz) = (16, 10, 8);
        let data: Vec<f64> = (0..nx * ny * nz)
            .map(|i| (i as f64 * 0.01).sin() * 100.0 + i as f64 * 0.1)
            .collect();
        let eb = 1e-2;
        let ctx = RegressionContext::build(&data, nx, ny, nz, eb);
        let mut buf = Vec::new();
        ctx.serialize(eb, &mut buf);
        let (back, consumed) = RegressionContext::deserialize(&buf, nx, ny, nz, eb).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(back.modes, ctx.modes);
        for (a, b) in back.coeffs.iter().zip(&ctx.coeffs) {
            assert_eq!(a, b, "coefficients must roundtrip bit-exactly");
        }
    }

    #[test]
    fn deserialize_rejects_truncation() {
        let n = 12;
        let data = linear_field(n, n, n);
        let eb = 1e-3;
        let ctx = RegressionContext::build(&data, n, n, n, eb);
        let mut buf = Vec::new();
        ctx.serialize(eb, &mut buf);
        assert!(RegressionContext::deserialize(&buf[..buf.len() - 1], n, n, n, eb).is_err());
        assert!(RegressionContext::deserialize(&[], n, n, n, eb).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        let mut buf = Vec::new();
        for v in [0i64, 1, -1, 63, -64, 1 << 40, -(1 << 40), i64::MAX / 2] {
            buf.clear();
            write_zigzag(&mut buf, v);
            let (back, n) = read_zigzag(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }
}
