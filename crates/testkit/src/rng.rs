//! Seeded, dependency-free pseudo-randomness for scenario generation
//! and fuzzing.
//!
//! The generator is xorshift64* seeded through a splitmix64 scramble, so
//! consecutive small seeds (0, 1, 2, ...) still produce uncorrelated
//! streams. Everything in this crate that involves randomness routes
//! through [`TestRng`], which is what makes every scenario and every
//! fuzz run exactly reproducible from a single `u64`.

/// A small, fast, deterministic PRNG (xorshift64* with splitmix64
/// seeding). Not cryptographic — it only has to be reproducible and
/// well-mixed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed. Any seed is valid (including 0).
    pub fn new(seed: u64) -> Self {
        // splitmix64 finalizer: turns adjacent seeds into distant states
        // and guarantees a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng { state: z | 1 }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::new(8);
        assert_ne!(TestRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = TestRng::new(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }

    #[test]
    fn below_and_unit_stay_in_range() {
        let mut r = TestRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            let v = r.range_f64(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut r = TestRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
