//! Structure-aware mutational fuzzing of the container wire formats.
//!
//! The corpus is a set of **valid** containers (several scenarios x
//! methods x codecs x wire versions), so mutations start from deep
//! inside the accepting grammar instead of dying at the magic check.
//! Each iteration picks a corpus item, applies a seeded stack of
//! mutations (bit flips, field overwrites with boundary integers,
//! truncations, splices between corpus items, targeted header/footer
//! corruption), and probes the full decode surface:
//! [`CompressedDataset::from_bytes`], `decompress_dataset`,
//! `decompress_region`, and re-serialization of anything accepted.
//!
//! The contract under test: **corrupt bytes may be rejected with an
//! error or may decode to some container, but must never panic, demand
//! absurd allocations, or decode into a structurally incoherent
//! dataset.** Every violation the fuzzer has ever found is pinned in
//! `tests/fuzz_regressions.rs` with the offending bytes inlined.

use crate::rng::TestRng;
use crate::scenario::scenario;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tac_amr::Aabb;
use tac_core::{
    compress_dataset, decompress_dataset_any, decompress_region, decompress_region_f32, AnyDataset,
    CodecId, CompressedDataset, Element, Method, TacConfig, CHUNK_ROW_BYTES_V4,
};

/// Fuzz-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Mutated inputs to probe.
    pub iterations: usize,
    /// Seed for the whole run (corpus choice, mutation schedule).
    pub seed: u64,
}

impl Default for FuzzConfig {
    /// The CI smoke configuration: 2000 iterations, fixed seed.
    fn default() -> Self {
        FuzzConfig {
            iterations: 2000,
            seed: 0x7AC_F022,
        }
    }
}

/// What probing one input observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeResult {
    /// Some decode step returned a clean `Err` (the expected outcome).
    Rejected,
    /// Every probed step succeeded (the mutation dodged all checksums —
    /// fine, as long as the result is coherent).
    Decoded,
    /// A decode step panicked (always a bug; the payload is recorded).
    Panicked(String),
    /// Decode succeeded but the result violates structural invariants
    /// (always a bug).
    Incoherent(String),
}

/// One recorded failure: enough to reproduce without the fuzzer.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Iteration index within the run.
    pub iteration: usize,
    /// Mutation trail that produced the bytes.
    pub description: String,
    /// The offending input.
    pub bytes: Vec<u8>,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Inputs probed.
    pub iterations: usize,
    /// Inputs rejected with a clean error.
    pub rejected: usize,
    /// Inputs that decoded successfully end to end.
    pub accepted: usize,
    /// Panicking inputs (bugs).
    pub panics: Vec<FuzzCase>,
    /// Structurally incoherent decodes (bugs).
    pub incoherent: Vec<FuzzCase>,
}

impl FuzzOutcome {
    /// Whether the run observed zero bugs.
    pub fn clean(&self) -> bool {
        self.panics.is_empty() && self.incoherent.is_empty()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "fuzz: {} iterations, {} rejected, {} accepted, {} panics, {} incoherent",
            self.iterations,
            self.rejected,
            self.accepted,
            self.panics.len(),
            self.incoherent.len()
        )
    }
}

/// Builds the corpus of valid containers the mutations start from:
/// three small scenarios, all four methods, every registered codec
/// where it adds a wire difference, and both container versions.
pub fn corpus() -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for name in ["tiny-extremes", "degenerate-corner", "spike-field"] {
        let spec = scenario(name).expect("registered scenario");
        let ds = spec.build(1);
        for codec in CodecId::all() {
            let cfg = TacConfig {
                codec,
                ..spec.config()
            };
            let cd = compress_dataset(&ds, &cfg, Method::Tac).expect("corpus compress");
            out.push(cd.to_bytes()); // v2 for SZ, v3 for pco-lite
            out.push(cd.to_bytes_v1());
        }
        let cfg = spec.config();
        for method in [Method::Baseline1D, Method::ZMesh, Method::Baseline3D] {
            let cd = compress_dataset(&ds, &cfg, method).expect("corpus compress");
            out.push(cd.to_bytes());
        }
        // Adaptive selection: the winner is a normal fixed-method
        // container on the wire, but mixed per-level codec tags only
        // arise through this path, so mutations should start from one.
        let cd = compress_dataset(&ds, &cfg, Method::Auto).expect("corpus compress");
        out.push(cd.to_bytes());
        out.push(cd.to_bytes_v1());
    }
    // f32 containers: the v4 wire (header dtype tag + per-row tags) and
    // its monolithic v1 sibling join the corpus, so mutations reach the
    // dtype-validation paths too.
    for name in ["tiny-extremes-f32", "checkerboard-f32"] {
        let spec = scenario(name).expect("registered scenario");
        let ds = crate::conformance::narrow_to_f32(&spec.build(1));
        for codec in CodecId::all() {
            let cfg = TacConfig {
                codec,
                ..spec.config()
            };
            let cd = tac_core::compress_dataset_t(&ds, &cfg, Method::Tac).expect("corpus compress");
            out.push(cd.to_bytes()); // v4
            out.push(cd.to_bytes_v1());
        }
        // An adaptively-selected f32 container joins the v4 corpus too.
        let cd = tac_core::compress_dataset_t(&ds, &spec.config(), Method::Auto)
            .expect("corpus compress");
        out.push(cd.to_bytes());
    }
    out
}

/// Probes one byte string through the whole decode surface, catching
/// panics. This is exactly what the fuzzer asserts on, and what the
/// pinned regression tests replay.
pub fn probe_container(bytes: &[u8]) -> ProbeResult {
    probe_with(|| {
        // Region decode must fail or succeed cleanly whatever the bytes
        // — through both monomorphizations.
        let _ = decompress_region(bytes, Aabb::new((0, 0, 0), (2, 2, 2)));
        let _ = decompress_region_f32(bytes, Aabb::new((0, 0, 0), (2, 2, 2)));
        match CompressedDataset::from_bytes(bytes) {
            Err(_) => Err(()),
            // Decode at whatever element type the container declares.
            Ok(cd) => match decompress_dataset_any(&cd) {
                Err(_) => Err(()),
                Ok(AnyDataset::F64(ds)) => check_coherence(&cd, &ds),
                Ok(AnyDataset::F32(ds)) => check_coherence(&cd, &ds),
            },
        }
    })
}

/// Structural coherence of an accepted decode, at either element type.
fn check_coherence<T: Element>(
    cd: &CompressedDataset,
    ds: &tac_amr::AmrDataset<T>,
) -> Result<Option<String>, ()> {
    if ds.num_levels() != cd.num_levels() {
        return Ok(Some(format!(
            "decode produced {} levels for {} masks",
            ds.num_levels(),
            cd.num_levels()
        )));
    }
    for (l, level) in ds.levels().iter().enumerate() {
        let mask = &cd.masks[l];
        if mask.len() != level.num_cells() {
            return Ok(Some(format!("level {l}: mask/grid size mismatch")));
        }
        for i in 0..level.num_cells() {
            if !mask.get(i) && level.data()[i].to_f64() != 0.0 {
                return Ok(Some(format!("level {l}: absent cell {i} non-zero")));
            }
        }
    }
    // Accepted containers must re-serialize without panicking (the
    // writer trusts parsed state).
    let _ = cd.to_bytes();
    let _ = cd.to_bytes_v1();
    Ok(None)
}

/// Runs a probe body under `catch_unwind`, converting its three clean
/// outcomes (`Err(())` = rejected, `Ok(None)` = decoded, `Ok(Some(why))`
/// = incoherent) and any panic into a [`ProbeResult`]. Factored out of
/// [`probe_container`] so the panic-conversion path is testable.
fn probe_with(f: impl FnOnce() -> Result<Option<String>, ()>) -> ProbeResult {
    match catch_unwind(AssertUnwindSafe(f)) {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            ProbeResult::Panicked(msg)
        }
        Ok(Err(())) => ProbeResult::Rejected,
        Ok(Ok(None)) => ProbeResult::Decoded,
        Ok(Ok(Some(why))) => ProbeResult::Incoherent(why),
    }
}

/// Interesting integers for field overwrites: the values that historically
/// break length arithmetic.
const BOUNDARY_U64: [u64; 8] = [
    0,
    1,
    0x7F,
    0xFF,
    u32::MAX as u64,
    u64::MAX,
    u64::MAX - 1,
    1 << 40,
];

/// Applies one seeded mutation in place, returning its description.
fn mutate(bytes: &mut Vec<u8>, donor: &[u8], rng: &mut TestRng) -> String {
    if bytes.is_empty() {
        bytes.push(rng.next_u64() as u8);
        return "seed byte into empty input".into();
    }
    let len = bytes.len();
    match rng.below(12) {
        0 => {
            let i = rng.below(len);
            let bit = rng.below(8);
            bytes[i] ^= 1 << bit;
            format!("flip bit {bit} of byte {i}")
        }
        1 => {
            let i = rng.below(len);
            bytes[i] = if rng.chance(0.5) { 0x00 } else { 0xFF };
            format!("saturate byte {i}")
        }
        2 => {
            let i = rng.below(len);
            let v = BOUNDARY_U64[rng.below(BOUNDARY_U64.len())] as u32;
            let end = (i + 4).min(len);
            bytes[i..end].copy_from_slice(&v.to_le_bytes()[..end - i]);
            format!("u32 {v:#x} at {i}")
        }
        3 => {
            let i = rng.below(len);
            let v = BOUNDARY_U64[rng.below(BOUNDARY_U64.len())];
            let end = (i + 8).min(len);
            bytes[i..end].copy_from_slice(&v.to_le_bytes()[..end - i]);
            format!("u64 {v:#x} at {i}")
        }
        4 => {
            let cut = rng.below(len);
            bytes.truncate(cut);
            format!("truncate to {cut}")
        }
        5 => {
            let n = 1 + rng.below(32);
            for _ in 0..n {
                bytes.push(rng.next_u64() as u8);
            }
            format!("append {n} garbage bytes")
        }
        6 => {
            // Splice a donor range over a random position.
            let dn = donor.len().max(1);
            let src = rng.below(dn);
            let span = 1 + rng.below((dn - src).min(64));
            let dst = rng.below(len);
            let end = (dst + span).min(len);
            let take = end - dst;
            bytes[dst..end].copy_from_slice(&donor[src..src + take]);
            format!("splice {take} donor bytes at {dst}")
        }
        7 => {
            // Insert (shifting offsets) — desynchronizes every length field.
            let i = rng.below(len + 1);
            let n = 1 + rng.below(8);
            for k in 0..n {
                bytes.insert(i + k, rng.next_u64() as u8);
            }
            format!("insert {n} bytes at {i}")
        }
        8 => {
            // Targeted tail corruption: the chunk table and footer live
            // in the last bytes of a chunked container.
            let window = len.min(64);
            let i = len - window + rng.below(window);
            bytes[i] ^= (rng.next_u64() as u8) | 1;
            format!("tail corrupt byte {i}")
        }
        9 => {
            // Targeted dtype corruption: the v4 header tag lives at byte
            // 6, and each v4 chunk row carries its own tag. Half the
            // time hit the header; otherwise hunt a per-row tag.
            if len > 6 && rng.chance(0.5) {
                let v = [0u8, 1, 2, 9, 0xFF][rng.below(5)];
                bytes[6] = v;
                format!("header dtype byte = {v:#x}")
            } else if let Some(pos) = v4_row_dtype_pos(bytes, rng) {
                bytes[pos] ^= 1 + rng.below(255) as u8;
                format!("corrupt v4 row dtype byte at {pos}")
            } else {
                let i = rng.below(len);
                bytes[i] ^= 1;
                format!("flip low bit of byte {i}")
            }
        }
        10 => {
            // Targeted ANS corruption: hunt an embedded pco-ans stream
            // and corrupt the region just past its header — exception
            // count, first page's bin table, rANS seed states, renorm
            // word bytes — the decoder's drain/geometry checks must
            // catch all of it.
            if let Some(pos) = pco_ans_region_pos(bytes, rng) {
                bytes[pos] ^= 1 + rng.below(255) as u8;
                format!("corrupt pco-ans table/state byte at {pos}")
            } else {
                let i = rng.below(len);
                bytes[i] ^= 2;
                format!("flip bit 1 of byte {i}")
            }
        }
        _ => {
            // Targeted head corruption: version/method/dims/level count.
            let window = len.min(32);
            let i = rng.below(window);
            bytes[i] = rng.next_u64() as u8;
            format!("head corrupt byte {i}")
        }
    }
}

/// Picks a byte position inside an embedded pco-ans stream's ANS-table
/// / seed-state region, provided the container holds one. The stream is
/// located by its registered magic, so this needs no private constants.
fn pco_ans_region_pos(bytes: &[u8], rng: &mut TestRng) -> Option<usize> {
    let magic = tac_core::codec_for(CodecId::PcoAns).magic();
    let starts: Vec<usize> = bytes
        .windows(magic.len())
        .enumerate()
        .filter(|(_, w)| *w == magic)
        .map(|(i, _)| i)
        .collect();
    if starts.is_empty() {
        return None;
    }
    let start = starts[rng.below(starts.len())];
    // Skip the fixed stream header (magic, version, flags, rank) and
    // land within the next 96 bytes: dims/eb tail, exception count, the
    // first page's bin table, seed states, and leading renorm words.
    let lo = start.checked_add(7)?;
    let hi = start.checked_add(96)?.min(bytes.len());
    (lo < hi).then(|| lo + rng.below(hi - lo))
}

/// Locates the dtype byte of a random chunk row, provided the bytes
/// still look like an intact v4 chunked container (version byte 4,
/// in-bounds footer offset and row count).
fn v4_row_dtype_pos(bytes: &[u8], rng: &mut TestRng) -> Option<usize> {
    // Row layout: level u8, offset u64, len u64, codec u8, dtype u8, …
    const ROW_DTYPE_OFFSET: usize = 18;
    if bytes.len() < 13 || bytes.get(4) != Some(&4) {
        return None;
    }
    let footer: [u8; 8] = bytes[bytes.len() - 8..].try_into().ok()?;
    let table_pos = usize::try_from(u64::from_le_bytes(footer)).ok()?;
    let count_bytes: [u8; 4] = bytes.get(table_pos..table_pos + 4)?.try_into().ok()?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    if count == 0 {
        return None;
    }
    let row = rng.below(count);
    let pos = table_pos
        .checked_add(4)?
        .checked_add(row.checked_mul(CHUNK_ROW_BYTES_V4)?)?
        .checked_add(ROW_DTYPE_OFFSET)?;
    (pos < bytes.len()).then_some(pos)
}

/// Runs the fuzzer. Deterministic in `cfg`: the same config replays the
/// same mutation schedule bit for bit.
pub fn fuzz_containers(cfg: &FuzzConfig) -> FuzzOutcome {
    let corpus = corpus();
    let mut rng = TestRng::new(cfg.seed);
    let mut outcome = FuzzOutcome {
        iterations: cfg.iterations,
        rejected: 0,
        accepted: 0,
        panics: Vec::new(),
        incoherent: Vec::new(),
    };
    for iteration in 0..cfg.iterations {
        let mut bytes = corpus[rng.below(corpus.len())].clone();
        let donor = &corpus[rng.below(corpus.len())];
        let rounds = 1 + rng.below(4);
        let mut trail = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            trail.push(mutate(&mut bytes, donor, &mut rng));
        }
        match probe_container(&bytes) {
            ProbeResult::Rejected => outcome.rejected += 1,
            ProbeResult::Decoded => outcome.accepted += 1,
            ProbeResult::Panicked(msg) => outcome.panics.push(FuzzCase {
                iteration,
                description: format!("panic: {msg}; trail: {}", trail.join(" -> ")),
                bytes,
            }),
            ProbeResult::Incoherent(msg) => outcome.incoherent.push(FuzzCase {
                iteration,
                description: format!("incoherent: {msg}; trail: {}", trail.join(" -> ")),
                bytes,
            }),
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_items_all_probe_as_valid() {
        for (i, bytes) in corpus().iter().enumerate() {
            assert_eq!(
                probe_container(bytes),
                ProbeResult::Decoded,
                "corpus item {i}"
            );
        }
    }

    #[test]
    fn short_fuzz_run_is_clean_and_deterministic() {
        let cfg = FuzzConfig {
            iterations: 150,
            seed: 99,
        };
        let a = fuzz_containers(&cfg);
        assert!(a.clean(), "{}", a.summary());
        assert_eq!(a.rejected + a.accepted, 150);
        // Mutations overwhelmingly produce invalid containers.
        assert!(a.rejected > 100, "{}", a.summary());
        let b = fuzz_containers(&cfg);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn ans_mutation_arm_finds_embedded_pco_ans_streams() {
        // At least one corpus item embeds a pco-ans stream, and the
        // targeted arm must be able to land inside it.
        let mut rng = TestRng::new(7);
        let hits = corpus()
            .iter()
            .filter(|bytes| pco_ans_region_pos(bytes, &mut rng).is_some())
            .count();
        assert!(hits > 0, "no corpus item embeds a pco-ans stream");
        // And a container with no such stream yields None.
        let mut rng = TestRng::new(7);
        assert_eq!(pco_ans_region_pos(b"no magic here at all", &mut rng), None);
    }

    #[test]
    fn probe_converts_panics_instead_of_propagating() {
        // The shared wrapper — the exact code path probe_container runs
        // on a panicking decode — must convert, not propagate.
        assert_eq!(
            probe_with(|| panic!("boom")),
            ProbeResult::Panicked("boom".into())
        );
        assert_eq!(
            probe_with(|| panic!("{} {}", "formatted", 7)),
            ProbeResult::Panicked("formatted 7".into())
        );
        assert_eq!(
            probe_with(|| Ok(Some("bad shape".into()))),
            ProbeResult::Incoherent("bad shape".into())
        );
        // And a garbage input is merely rejected.
        assert_eq!(
            probe_container(b"definitely not a container"),
            ProbeResult::Rejected
        );
        assert_eq!(probe_container(&[]), ProbeResult::Rejected);
    }
}
