#![forbid(unsafe_code)]

//! # tac-testkit
//!
//! Systematic evidence that the TAC stack keeps its promises on
//! structures far outside the paper's seven Nyx snapshots. The crate
//! has three parts, all deterministic from a single `u64` seed and all
//! free of external dependencies:
//!
//! * **Scenario registry** ([`scenarios`], [`ScenarioSpec`]) —
//!   generators for adversarial AMR datasets: shock fronts,
//!   spike fields, 1e-30..1e30 dynamic range, denormals and `-0.0`,
//!   five-level single-column refinement, checkerboard masks, and
//!   degenerate shapes (empty levels, 1^3 grids, all-masked levels),
//!   alongside the nyx-like GRF baseline. Irregular geometries build
//!   through [`dataset_from_assignment`].
//! * **Conformance matrix** ([`run_conformance`],
//!   [`ConformanceReport`]) — sweeps every scenario through
//!   {TAC, 1D, zMesh, 3D} x {sz, pco-lite} x {memory, v1, v2/v3} x
//!   {1, 2, 4, 8} workers, asserting the resolved error bound
//!   pointwise, byte-identity across worker counts, bit-exact
//!   non-finite round-trips, and ROI⊆full-decode agreement; emits the
//!   machine-readable `CONFORMANCE.json` CI artifact.
//! * **Container fuzzer** ([`fuzz_containers`], [`probe_container`]) —
//!   structure-aware mutation of valid v1/v2/v3 containers (bit flips,
//!   boundary-integer field overwrites, truncation, splicing) asserting
//!   decode never panics, never over-allocates, and never accepts an
//!   incoherent container. Findings get pinned as named tests in
//!   `tests/fuzz_regressions.rs`.
//!
//! ```
//! use tac_testkit::{run_scenarios, scenario};
//!
//! let spec = scenario("tiny-extremes").unwrap();
//! let report = run_scenarios(&[spec], 42);
//! assert!(report.all_pass(), "{}", report.summary());
//! ```

#![warn(missing_docs)]

mod conformance;
mod fuzz;
mod rng;
mod scenario;

pub use conformance::{
    run_conformance, run_scenarios, ConformanceCell, ConformanceReport, ContainerFormat,
    WORKER_COUNTS,
};
pub use fuzz::{
    corpus, fuzz_containers, probe_container, FuzzCase, FuzzConfig, FuzzOutcome, ProbeResult,
};
pub use rng::TestRng;
pub use scenario::{dataset_from_assignment, scenario, scenarios, ScenarioSpec};
